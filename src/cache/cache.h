/**
 * @file
 * A complete cache: array + partitioning scheme (+ statistics).
 *
 * The Cache drives the array/scheme split described in the paper's
 * Sec. 3.2: the array produces replacement candidates, the scheme
 * (which embeds or subsumes a replacement policy) ranks them and
 * tracks partition state. The same class models both private L1s
 * (SetAssocArray + Unpartitioned) and the shared partitioned L2.
 */

#ifndef VANTAGE_CACHE_CACHE_H_
#define VANTAGE_CACHE_CACHE_H_

#include <memory>
#include <string>
#include <vector>

#include "array/cache_array.h"
#include "common/check.h"
#include "common/digest.h"
#include "partition/scheme.h"
#include "stats/counters.h"
#include "stats/histogram.h"

namespace vantage {

class StatsRegistry;

/** Per-partition hit/miss counters. */
struct CacheAccessStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }

    double
    missRate() const
    {
        const std::uint64_t total = accesses();
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Array + scheme + bookkeeping. */
class Cache
{
  public:
    /**
     * @param array the tag/data array.
     * @param scheme the allocation-enforcement scheme.
     * @param name for reports.
     */
    Cache(std::unique_ptr<CacheArray> array,
          std::unique_ptr<PartitionScheme> scheme, std::string name);

    Cache(const Cache &) = delete;
    Cache &operator=(const Cache &) = delete;

    /**
     * Access a line on behalf of partition `part`.
     * On a miss the line is filled (unless the scheme bypasses);
     * stores mark the line dirty and evicting a dirty line counts a
     * writeback. @return Hit or Miss.
     */
    AccessResult access(Addr addr, PartId part,
                        AccessType type = AccessType::Load);

    /** True when addr is currently cached (no state change). */
    bool contains(Addr addr) const;

    const std::string &name() const { return name_; }
    CacheArray &array() { return *array_; }
    const CacheArray &array() const { return *array_; }
    PartitionScheme &scheme() { return *scheme_; }
    const PartitionScheme &scheme() const { return *scheme_; }

    const CacheAccessStats &partAccessStats(PartId part) const;
    CacheAccessStats totalStats() const;
    void resetStats();

    /**
     * Allocate distribution histograms: candidate-walk length on
     * misses here, and the per-partition VantagePartHists when the
     * scheme is a Vantage controller. Off by default (the miss path
     * then pays a single null check). Registered under
     * `prefix`.hist.walk_len by registerStats(); cleared by
     * resetStats().
     */
    void enableHistograms();

    /** Dirty evictions since the last resetStats(). */
    std::uint64_t writebacks() const { return writebacks_; }

    /**
     * Register this cache's counters under `prefix`: writebacks,
     * aggregate hits/misses/miss_rate, and per-partition
     * `prefix`.partN.{hits,misses}. If the scheme is a Vantage
     * controller its registerStats() is chained under
     * `prefix`.vantage. The registry reads live counters; it must not
     * outlive this cache.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Live-introspection export for the metrics service: writebacks,
     * aggregate and per-partition hit/miss counters under `prefix`.
     * Unlike registerStats() this does NOT chain the scheme — the
     * caller registers it separately (typically under a top-level
     * "vantage" prefix) so the exporter-facing metric names stay
     * flat. See obs/introspect.h for the threading contract.
     */
    void registerIntrospection(StatsRegistry &reg,
                               const std::string &prefix) const;

    /**
     * Fold every subsequent access outcome into `digest` (pass
     * nullptr to detach). Each access contributes one word:
     * outcome | victimPart << 16 | demotionDelta << 32, where
     * outcome is 0 = hit, 1 = miss+fill, 2 = miss+bypass and
     * victimPart is 0xffff when no valid line was evicted.
     */
    void attachDigest(AccessDigest *digest);

    /**
     * Tenant lifecycle: activate a retired partition slot (resetting
     * its hit/miss counters for the new tenant) / retire an active
     * one so its lines drain. Both fold a marker word into the
     * attached digest — outcome 3 = create, 4 = destroy, with the
     * slot id in the victim-part field — so replayed lifecycle
     * streams are covered by the same bit-exactness check as
     * accesses. See PartitionScheme for drain semantics.
     */
    void createPartition(PartId part);
    void destroyPartition(PartId part);

    /**
     * Run the array's and the scheme's structural invariant checks,
     * collecting violations into `rep`. Always compiled (tests and
     * the fuzz driver call it in any build); costs nothing unless
     * called.
     */
    void checkInvariants(InvariantReport &rep) const;

    /** checkInvariants() that panics with a summary on failure. */
    void checkNow() const;

  private:
    /** Digest fold + (in VANTAGE_CHECK builds) periodic self-check. */
    void afterAccess(std::uint64_t outcome, std::uint64_t victim_part);

    std::unique_ptr<CacheArray> array_;
    std::unique_ptr<PartitionScheme> scheme_;
    std::string name_;
    std::vector<CacheAccessStats> stats_;
    CandidateBuf candBuf_; ///< Inline, reused — no per-miss heap use.
    std::uint64_t writebacks_ = 0;
    std::unique_ptr<Histogram> walkLenHist_;
    AccessDigest *digest_ = nullptr;
    std::uint64_t lastDemotions_ = 0;
    std::uint64_t accessesSinceCheck_ = 0;
};

} // namespace vantage

#endif // VANTAGE_CACHE_CACHE_H_

/**
 * @file
 * Banked shared cache (paper Table 2: the 8 MB L2 is 4 banks of
 * 2 MB, each with its own Vantage controller — "with 32K lines per
 * bank, this amounts to 256 bits per partition [per bank]").
 *
 * BankedCache routes each line address to a bank by H3 hash and
 * keeps one complete Cache (array + scheme) per bank. Allocations
 * are expressed globally and divided evenly across banks, which is
 * exact in expectation because the hash spreads every partition's
 * lines uniformly over banks.
 *
 * Sharded execution (vsim --shard-workers=N): banks are statically
 * assigned to N worker threads (bank % N), each fed by a bounded
 * lock-free SPSC request ring and answered over a matching result
 * ring (common/spsc_ring.h). Because a bank's accesses always land
 * in one ring, in issue order, every bank processes exactly the
 * serial access sequence — the sequencing property the bit-identical
 * digest guarantee rests on (DESIGN.md §12). Digests fold into
 * per-bank streams and finalizeDigest() merges them in canonical
 * bank-major order, so the merged value is independent of worker
 * count (including 0 = serial). The coordinator (CmpSim) owns all
 * shard telemetry; workers touch only their banks and rings, which
 * keeps the mode clean under ThreadSanitizer.
 */

#ifndef VANTAGE_CACHE_BANKED_CACHE_H_
#define VANTAGE_CACHE_BANKED_CACHE_H_

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "cache/shared_l2.h"
#include "common/spsc_ring.h"
#include "common/thread_pool.h"
#include "hash/h3.h"
#include "stats/histogram.h"

namespace vantage {

/** One routed access, coordinator -> bank worker. */
struct ShardRequest
{
    Addr addr = 0;
    PartId part = 0;
    AccessType type = AccessType::Load;
    std::uint32_t bank = 0;
    bool stop = false; ///< Sentinel: worker exits, access ignored.
};

/** One access outcome, bank worker -> coordinator. */
struct ShardResult
{
    AccessResult result = AccessResult::Miss;
    /** Dirty evictions this access caused (its bank's delta). */
    std::uint32_t wbDelta = 0;
};

/** N independent banks behind one access interface. */
class BankedCache : public SharedL2
{
  public:
    /**
     * @param banks one Cache per bank; all must have the same
     *        partition count.
     * @param seed bank-routing hash seed.
     */
    explicit BankedCache(std::vector<std::unique_ptr<Cache>> banks,
                         std::uint64_t seed = 0xba4c);

    ~BankedCache() override;

    /** Route and access; same semantics as Cache::access. */
    AccessResult access(Addr addr, PartId part,
                        AccessType type = AccessType::Load) override;

    bool contains(Addr addr) const;

    /** Bank an address maps to. */
    std::uint32_t bankOf(Addr addr) const;

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    Cache &bank(std::uint32_t b);
    const Cache &bank(std::uint32_t b) const;

    std::uint32_t numPartitions() const override;
    std::uint32_t allocationQuantum() const override;

    /**
     * Set global allocations (in each bank-scheme's units); each
     * bank receives the same per-partition share. In shard mode the
     * caller must quiesce (drain every in-flight access) first —
     * this is the epoch barrier at UCP reallocation points.
     */
    void
    setAllocations(const std::vector<std::uint32_t> &units) override;

    /** Apply DRRIP duel winners to every bank's VantageRrip. */
    void applyBrrip(const std::vector<bool> &brrip) override;
    bool wantsBrrip() const override;

    /** Aggregate actual size of a partition across banks. */
    std::uint64_t actualSize(PartId part) const override;

    /** Aggregate target size of a partition across banks. */
    std::uint64_t targetSize(PartId part) const override;

    /** Aggregate hit/miss stats across banks. */
    CacheAccessStats totalStats() const override;
    CacheAccessStats partAccessStats(PartId part) const override;
    std::uint64_t writebacks() const override;
    void resetStats() override;

    /**
     * Live-introspection export with the simulator's top-level
     * prefixes: each bank's cache counters under cache.bankB and its
     * scheme state under vantage.bankB (Vantage controllers) or
     * scheme.bankB, so per-bank metrics render with both bank and
     * part labels on the Prometheus endpoint.
     */
    void
    registerLiveIntrospection(StatsRegistry &reg) const override;

    /**
     * Legacy explicit-prefix export: each bank's cache counters
     * under `prefix`.bankB.cache and its scheme state under
     * `prefix`.bankB.
     */
    void registerIntrospection(StatsRegistry &reg,
                               const std::string &prefix) const;

    /** Post-mortem export: every bank under `prefix`.bankB. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const override;

    void enableHistograms() override;

    /**
     * Fold access outcomes into per-bank streams merged into
     * `digest` by finalizeDigest(). The per-bank streams make the
     * digest independent of the worker count: each bank observes its
     * serial access order no matter which thread runs it.
     */
    void attachDigest(AccessDigest *digest) override;

    /** Merge the per-bank streams, bank-major (order is part of the
     *  digest definition). Call once, after the last access, with
     *  shard workers quiesced. */
    void finalizeDigest() override;

    /** Run every bank's invariant checks into one report. */
    void checkInvariants(InvariantReport &rep) const override;

    /**
     * Tenant lifecycle: applied to every bank in bank order, with
     * shard workers quiesced, so each bank folds the lifecycle
     * marker into its digest stream at the same point in its serial
     * access order for any worker count.
     */
    void createPartition(PartId part) override;
    void destroyPartition(PartId part) override;
    bool partitionActive(PartId part) const override;

    BankedCache *banked() override { return this; }

    // ------------------------------------------------------------------
    // Shard runtime (driven by CmpSim; see DESIGN.md §12).

    /**
     * Spin up `workers` bank workers (<= numBanks()), each on its
     * own thread-pool thread with request/result rings of at least
     * `ringCapacity` slots. Until shardStop(), access() must not be
     * called — route through shardTryEnqueue()/shardPopResult().
     */
    void shardStart(std::uint32_t workers, std::size_t ringCapacity);

    /** Stop and join the workers (in-flight results are drained). */
    void shardStop();

    bool shardActive() const { return shardWorkers_ > 0; }
    std::uint32_t shardWorkers() const { return shardWorkers_; }

    /**
     * Route one access to its bank's worker. On success sets
     * `worker` (the ring to pop the result from) and records the
     * queue-depth sample; on a full ring counts a stall and returns
     * false — the caller must pop a result and retry.
     */
    bool shardTryEnqueue(Addr addr, PartId part, AccessType type,
                         std::uint32_t &worker);

    /** Pop `worker`'s oldest outcome, sleeping until one arrives. */
    ShardResult shardPopResult(std::uint32_t worker);

    /**
     * Coordinator-side writeback accumulator: CmpSim folds each
     * result's wbDelta in resolution (= issue) order, reproducing
     * the serial `writebacks()` reads bit for bit. Reset together
     * with the bank counters by resetStats().
     */
    void shardNoteWb(std::uint32_t delta) { shardWbFolded_ += delta; }
    std::uint64_t shardWbFolded() const { return shardWbFolded_; }

    /**
     * Per-worker shard telemetry under `prefix`.worker.W: accesses
     * routed, enqueue stalls, and a queue-depth histogram. All
     * coordinator-written; safe for the metrics sampler under the
     * registry's relaxed-read contract.
     */
    void registerShardStats(StatsRegistry &reg,
                            const std::string &prefix) const;

  private:
    void shardWorkerLoop(std::uint32_t w);

    /** Per-worker telemetry, written only by the coordinator. */
    struct ShardWorkerStats
    {
        std::uint64_t accesses = 0;
        std::uint64_t enqueueStalls = 0;
        Histogram queueDepth;
    };

    std::vector<std::unique_ptr<Cache>> banks_;
    H3Hash hash_;

    // Digest plumbing: the external digest plus one stream per bank.
    AccessDigest *extDigest_ = nullptr;
    std::vector<AccessDigest> bankDigests_;

    // Shard runtime state (empty while serial).
    std::uint32_t shardWorkers_ = 0;
    std::uint64_t shardWbFolded_ = 0;
    std::unique_ptr<ThreadPool> shardPool_;
    std::vector<std::unique_ptr<SpscRing<ShardRequest>>> shardReq_;
    std::vector<std::unique_ptr<SpscRing<ShardResult>>> shardRes_;
    std::vector<std::future<void>> shardJoin_;
    std::vector<std::unique_ptr<ShardWorkerStats>> shardStats_;
};

} // namespace vantage

#endif // VANTAGE_CACHE_BANKED_CACHE_H_

/**
 * @file
 * Banked shared cache (paper Table 2: the 8 MB L2 is 4 banks of
 * 2 MB, each with its own Vantage controller — "with 32K lines per
 * bank, this amounts to 256 bits per partition [per bank]").
 *
 * BankedCache routes each line address to a bank by H3 hash and
 * keeps one complete Cache (array + scheme) per bank. Allocations
 * are expressed globally and divided evenly across banks, which is
 * exact in expectation because the hash spreads every partition's
 * lines uniformly over banks.
 */

#ifndef VANTAGE_CACHE_BANKED_CACHE_H_
#define VANTAGE_CACHE_BANKED_CACHE_H_

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "hash/h3.h"

namespace vantage {

/** N independent banks behind one access interface. */
class BankedCache
{
  public:
    /**
     * @param banks one Cache per bank; all must have the same
     *        partition count.
     * @param seed bank-routing hash seed.
     */
    explicit BankedCache(std::vector<std::unique_ptr<Cache>> banks,
                         std::uint64_t seed = 0xba4c);

    /** Route and access; same semantics as Cache::access. */
    AccessResult access(Addr addr, PartId part,
                        AccessType type = AccessType::Load);

    bool contains(Addr addr) const;

    /** Bank an address maps to. */
    std::uint32_t bankOf(Addr addr) const;

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    Cache &bank(std::uint32_t b);
    const Cache &bank(std::uint32_t b) const;

    /**
     * Set global allocations (in each bank-scheme's units); each
     * bank receives the same per-partition share.
     */
    void setAllocations(const std::vector<std::uint32_t> &units);

    /** Aggregate actual size of a partition across banks. */
    std::uint64_t actualSize(PartId part) const;

    /** Aggregate target size of a partition across banks. */
    std::uint64_t targetSize(PartId part) const;

    /** Aggregate hit/miss stats across banks. */
    CacheAccessStats totalStats() const;
    CacheAccessStats partAccessStats(PartId part) const;
    std::uint64_t writebacks() const;
    void resetStats();

    /**
     * Live-introspection export: each bank's cache counters under
     * `prefix`.bankB.cache and its scheme state under
     * `prefix`.bankB (so per-bank Vantage controllers render with
     * both bank and part labels on the Prometheus endpoint).
     */
    void registerIntrospection(StatsRegistry &reg,
                               const std::string &prefix) const;

    /** Fold every bank's access outcomes into one digest. */
    void attachDigest(AccessDigest *digest);

    /** Run every bank's invariant checks into one report. */
    void checkInvariants(InvariantReport &rep) const;

  private:
    std::vector<std::unique_ptr<Cache>> banks_;
    H3Hash hash_;
};

} // namespace vantage

#endif // VANTAGE_CACHE_BANKED_CACHE_H_

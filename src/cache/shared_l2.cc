#include "cache/shared_l2.h"

#include "core/vantage.h"
#include "core/vantage_variants.h"

namespace vantage {

MonoL2::MonoL2(std::unique_ptr<Cache> cache)
    : cache_(std::move(cache))
{
    vantage_assert(cache_ != nullptr, "MonoL2 needs a cache");
}

MonoL2::~MonoL2() = default;

std::uint32_t
MonoL2::numPartitions() const
{
    return cache_->scheme().numPartitions();
}

std::uint32_t
MonoL2::allocationQuantum() const
{
    return cache_->scheme().allocationQuantum();
}

void
MonoL2::setAllocations(const std::vector<std::uint32_t> &units)
{
    cache_->scheme().setAllocations(units);
}

void
MonoL2::applyBrrip(const std::vector<bool> &brrip)
{
    auto *vr = dynamic_cast<VantageRrip *>(&cache_->scheme());
    if (vr == nullptr) {
        return;
    }
    const auto parts =
        static_cast<PartId>(cache_->scheme().numPartitions());
    for (PartId p = 0; p < parts; ++p) {
        vr->setBrrip(p, brrip[p]);
    }
}

bool
MonoL2::wantsBrrip() const
{
    return dynamic_cast<const VantageRrip *>(&cache_->scheme()) !=
           nullptr;
}

std::uint64_t
MonoL2::targetSize(PartId part) const
{
    return cache_->scheme().targetSize(part);
}

std::uint64_t
MonoL2::actualSize(PartId part) const
{
    return cache_->scheme().actualSize(part);
}

CacheAccessStats
MonoL2::totalStats() const
{
    return cache_->totalStats();
}

CacheAccessStats
MonoL2::partAccessStats(PartId part) const
{
    return cache_->partAccessStats(part);
}

void
MonoL2::resetStats()
{
    cache_->resetStats();
}

void
MonoL2::attachDigest(AccessDigest *digest)
{
    cache_->attachDigest(digest);
}

void
MonoL2::enableHistograms()
{
    cache_->enableHistograms();
}

void
MonoL2::registerStats(StatsRegistry &reg,
                      const std::string &prefix) const
{
    cache_->registerStats(reg, prefix);
}

void
MonoL2::registerLiveIntrospection(StatsRegistry &reg) const
{
    cache_->registerIntrospection(reg, "cache");
    if (const auto *v = dynamic_cast<const VantageController *>(
            &cache_->scheme())) {
        v->registerIntrospection(reg, "vantage");
    } else {
        cache_->scheme().registerIntrospection(reg, "scheme");
    }
}

void
MonoL2::checkInvariants(InvariantReport &rep) const
{
    cache_->checkInvariants(rep);
}

void
MonoL2::createPartition(PartId part)
{
    cache_->createPartition(part);
}

void
MonoL2::destroyPartition(PartId part)
{
    cache_->destroyPartition(part);
}

bool
MonoL2::partitionActive(PartId part) const
{
    return cache_->scheme().partitionActive(part);
}

} // namespace vantage

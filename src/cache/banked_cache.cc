#include "cache/banked_cache.h"

#include "common/log.h"

namespace vantage {

BankedCache::BankedCache(std::vector<std::unique_ptr<Cache>> banks,
                         std::uint64_t seed)
    : banks_(std::move(banks)), hash_(seed)
{
    vantage_assert(!banks_.empty(), "need at least one bank");
    const std::uint32_t parts = banks_[0]->scheme().numPartitions();
    for (const auto &bank : banks_) {
        vantage_assert(bank != nullptr, "null bank");
        vantage_assert(bank->scheme().numPartitions() == parts,
                       "banks disagree on partition count");
    }
}

std::uint32_t
BankedCache::bankOf(Addr addr) const
{
    // Non-power-of-two bank counts are fine: hash then reduce.
    return static_cast<std::uint32_t>(hash_(addr) % banks_.size());
}

AccessResult
BankedCache::access(Addr addr, PartId part, AccessType type)
{
    return banks_[bankOf(addr)]->access(addr, part, type);
}

bool
BankedCache::contains(Addr addr) const
{
    return banks_[bankOf(addr)]->contains(addr);
}

Cache &
BankedCache::bank(std::uint32_t b)
{
    vantage_assert(b < banks_.size(), "bank %u out of range", b);
    return *banks_[b];
}

const Cache &
BankedCache::bank(std::uint32_t b) const
{
    vantage_assert(b < banks_.size(), "bank %u out of range", b);
    return *banks_[b];
}

void
BankedCache::setAllocations(const std::vector<std::uint32_t> &units)
{
    for (auto &bank : banks_) {
        bank->scheme().setAllocations(units);
    }
}

std::uint64_t
BankedCache::actualSize(PartId part) const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->scheme().actualSize(part);
    }
    return total;
}

std::uint64_t
BankedCache::targetSize(PartId part) const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->scheme().targetSize(part);
    }
    return total;
}

CacheAccessStats
BankedCache::totalStats() const
{
    CacheAccessStats out;
    for (const auto &bank : banks_) {
        const CacheAccessStats s = bank->totalStats();
        out.hits += s.hits;
        out.misses += s.misses;
    }
    return out;
}

CacheAccessStats
BankedCache::partAccessStats(PartId part) const
{
    CacheAccessStats out;
    for (const auto &bank : banks_) {
        const CacheAccessStats &s = bank->partAccessStats(part);
        out.hits += s.hits;
        out.misses += s.misses;
    }
    return out;
}

std::uint64_t
BankedCache::writebacks() const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->writebacks();
    }
    return total;
}

void
BankedCache::resetStats()
{
    for (auto &bank : banks_) {
        bank->resetStats();
    }
}

void
BankedCache::attachDigest(AccessDigest *digest)
{
    for (auto &bank : banks_) {
        bank->attachDigest(digest);
    }
}

void
BankedCache::checkInvariants(InvariantReport &rep) const
{
    for (const auto &bank : banks_) {
        bank->checkInvariants(rep);
    }
}

void
BankedCache::registerIntrospection(StatsRegistry &reg,
                                   const std::string &prefix) const
{
    for (std::uint32_t b = 0; b < numBanks(); ++b) {
        const std::string base =
            prefix + ".bank" + std::to_string(b);
        banks_[b]->registerIntrospection(reg, base + ".cache");
        banks_[b]->scheme().registerIntrospection(reg, base);
    }
}

} // namespace vantage

#include "cache/banked_cache.h"

#include <chrono>

#include "common/log.h"
#include "core/vantage_variants.h"
#include "stats/registry.h"

namespace vantage {

BankedCache::BankedCache(std::vector<std::unique_ptr<Cache>> banks,
                         std::uint64_t seed)
    : banks_(std::move(banks)), hash_(seed)
{
    vantage_assert(!banks_.empty(), "need at least one bank");
    const std::uint32_t parts = banks_[0]->scheme().numPartitions();
    for (const auto &bank : banks_) {
        vantage_assert(bank != nullptr, "null bank");
        vantage_assert(bank->scheme().numPartitions() == parts,
                       "banks disagree on partition count");
    }
}

BankedCache::~BankedCache()
{
    // Backstop: the simulator stops shard mode itself; tolerate
    // teardown with workers still up.
    shardStop();
}

std::uint32_t
BankedCache::bankOf(Addr addr) const
{
    // Non-power-of-two bank counts are fine: hash then reduce.
    return static_cast<std::uint32_t>(hash_(addr) % banks_.size());
}

AccessResult
BankedCache::access(Addr addr, PartId part, AccessType type)
{
    vantage_assert(!shardActive(),
                   "serial access while shard workers are running");
    return banks_[bankOf(addr)]->access(addr, part, type);
}

bool
BankedCache::contains(Addr addr) const
{
    return banks_[bankOf(addr)]->contains(addr);
}

Cache &
BankedCache::bank(std::uint32_t b)
{
    vantage_assert(b < banks_.size(), "bank %u out of range", b);
    return *banks_[b];
}

const Cache &
BankedCache::bank(std::uint32_t b) const
{
    vantage_assert(b < banks_.size(), "bank %u out of range", b);
    return *banks_[b];
}

std::uint32_t
BankedCache::numPartitions() const
{
    return banks_[0]->scheme().numPartitions();
}

std::uint32_t
BankedCache::allocationQuantum() const
{
    return banks_[0]->scheme().allocationQuantum();
}

void
BankedCache::setAllocations(const std::vector<std::uint32_t> &units)
{
    for (auto &bank : banks_) {
        bank->scheme().setAllocations(units);
    }
}

void
BankedCache::applyBrrip(const std::vector<bool> &brrip)
{
    for (auto &bank : banks_) {
        auto *vr = dynamic_cast<VantageRrip *>(&bank->scheme());
        if (vr == nullptr) {
            return; // Homogeneous banks: first miss ends it.
        }
        const auto parts =
            static_cast<PartId>(bank->scheme().numPartitions());
        for (PartId p = 0; p < parts; ++p) {
            vr->setBrrip(p, brrip[p]);
        }
    }
}

bool
BankedCache::wantsBrrip() const
{
    return dynamic_cast<const VantageRrip *>(
               &banks_[0]->scheme()) != nullptr;
}

std::uint64_t
BankedCache::actualSize(PartId part) const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->scheme().actualSize(part);
    }
    return total;
}

std::uint64_t
BankedCache::targetSize(PartId part) const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->scheme().targetSize(part);
    }
    return total;
}

CacheAccessStats
BankedCache::totalStats() const
{
    CacheAccessStats out;
    for (const auto &bank : banks_) {
        const CacheAccessStats s = bank->totalStats();
        out.hits += s.hits;
        out.misses += s.misses;
    }
    return out;
}

CacheAccessStats
BankedCache::partAccessStats(PartId part) const
{
    CacheAccessStats out;
    for (const auto &bank : banks_) {
        const CacheAccessStats &s = bank->partAccessStats(part);
        out.hits += s.hits;
        out.misses += s.misses;
    }
    return out;
}

std::uint64_t
BankedCache::writebacks() const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_) {
        total += bank->writebacks();
    }
    return total;
}

void
BankedCache::resetStats()
{
    for (auto &bank : banks_) {
        bank->resetStats();
    }
    // Keep the shard-mode accumulator in lockstep with the bank
    // counters, so shardWbFolded() and writebacks() stay two views
    // of the same cumulative-since-reset quantity.
    shardWbFolded_ = 0;
}

void
BankedCache::enableHistograms()
{
    for (auto &bank : banks_) {
        bank->enableHistograms();
    }
}

void
BankedCache::attachDigest(AccessDigest *digest)
{
    extDigest_ = digest;
    if (digest == nullptr) {
        for (auto &bank : banks_) {
            bank->attachDigest(nullptr);
        }
        bankDigests_.clear();
        return;
    }
    // Sized once up front: the banks hold pointers into this vector.
    bankDigests_.assign(banks_.size(), AccessDigest());
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        banks_[b]->attachDigest(&bankDigests_[b]);
    }
}

void
BankedCache::finalizeDigest()
{
    if (extDigest_ == nullptr) {
        return;
    }
    // Bank-major merge: each bank's stream value is one word of the
    // outer digest. The order is fixed, so the result is identical
    // for any worker count (0 included).
    for (const AccessDigest &d : bankDigests_) {
        extDigest_->fold(d.value());
    }
}

void
BankedCache::checkInvariants(InvariantReport &rep) const
{
    for (const auto &bank : banks_) {
        bank->checkInvariants(rep);
    }
}

void
BankedCache::createPartition(PartId part)
{
    vantage_assert(!shardActive(),
                   "lifecycle change while shard workers are running");
    for (auto &bank : banks_) {
        bank->createPartition(part);
    }
}

void
BankedCache::destroyPartition(PartId part)
{
    vantage_assert(!shardActive(),
                   "lifecycle change while shard workers are running");
    for (auto &bank : banks_) {
        bank->destroyPartition(part);
    }
}

bool
BankedCache::partitionActive(PartId part) const
{
    return banks_[0]->scheme().partitionActive(part);
}

void
BankedCache::registerIntrospection(StatsRegistry &reg,
                                   const std::string &prefix) const
{
    for (std::uint32_t b = 0; b < numBanks(); ++b) {
        const std::string base =
            prefix + ".bank" + std::to_string(b);
        banks_[b]->registerIntrospection(reg, base + ".cache");
        banks_[b]->scheme().registerIntrospection(reg, base);
    }
}

void
BankedCache::registerLiveIntrospection(StatsRegistry &reg) const
{
    for (std::uint32_t b = 0; b < numBanks(); ++b) {
        const std::string suffix = ".bank" + std::to_string(b);
        banks_[b]->registerIntrospection(reg, "cache" + suffix);
        const auto &scheme = banks_[b]->scheme();
        if (const auto *v =
                dynamic_cast<const VantageController *>(&scheme)) {
            v->registerIntrospection(reg, "vantage" + suffix);
        } else {
            scheme.registerIntrospection(reg, "scheme" + suffix);
        }
    }
}

void
BankedCache::registerStats(StatsRegistry &reg,
                           const std::string &prefix) const
{
    for (std::uint32_t b = 0; b < numBanks(); ++b) {
        banks_[b]->registerStats(
            reg, prefix + ".bank" + std::to_string(b));
    }
}

// ----------------------------------------------------------------------
// Shard runtime.

void
BankedCache::shardStart(std::uint32_t workers,
                        std::size_t ringCapacity)
{
    vantage_assert(!shardActive(), "shard workers already running");
    vantage_assert(workers > 0, "need at least one shard worker");
    vantage_assert(workers <= numBanks(),
                   "%u shard workers for %u banks", workers,
                   numBanks());
    shardWorkers_ = workers;
    shardReq_.reserve(workers);
    shardRes_.reserve(workers);
    shardStats_.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
        shardReq_.push_back(
            std::make_unique<SpscRing<ShardRequest>>(ringCapacity));
        shardRes_.push_back(
            std::make_unique<SpscRing<ShardResult>>(ringCapacity));
        shardStats_.push_back(std::make_unique<ShardWorkerStats>());
    }
    shardPool_ = std::make_unique<ThreadPool>(workers);
    shardJoin_.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
        shardJoin_.push_back(
            shardPool_->submit([this, w] { shardWorkerLoop(w); }));
    }
}

void
BankedCache::shardStop()
{
    if (!shardActive()) {
        return;
    }
    // A worker blocked publishing into a full result ring cannot
    // consume its stop sentinel, so keep draining results while
    // delivering the sentinels and waiting for the loops to exit.
    // Normal teardown (coordinator consumed every result) never
    // discards anything here.
    const auto drain = [this](std::uint32_t w) {
        ShardResult r;
        while (shardRes_[w]->tryPop(r)) {
        }
    };
    for (std::uint32_t w = 0; w < shardWorkers_; ++w) {
        ShardRequest stop;
        stop.stop = true;
        while (!shardReq_[w]->tryPush(stop)) {
            drain(w);
        }
    }
    for (std::uint32_t w = 0; w < shardWorkers_; ++w) {
        while (shardJoin_[w].wait_for(std::chrono::milliseconds(
                   1)) != std::future_status::ready) {
            drain(w);
        }
        shardJoin_[w].get();
    }
    shardPool_.reset();
    shardJoin_.clear();
    shardReq_.clear();
    shardRes_.clear();
    shardWorkers_ = 0;
}

bool
BankedCache::shardTryEnqueue(Addr addr, PartId part, AccessType type,
                             std::uint32_t &worker)
{
    const std::uint32_t bank = bankOf(addr);
    const std::uint32_t w = bank % shardWorkers_;
    ShardWorkerStats &st = *shardStats_[w];
    ShardRequest req;
    req.addr = addr;
    req.part = part;
    req.type = type;
    req.bank = bank;
    if (!shardReq_[w]->tryPush(req)) {
        ++st.enqueueStalls;
        return false;
    }
    ++st.accesses;
    st.queueDepth.add(shardReq_[w]->size());
    worker = w;
    return true;
}

ShardResult
BankedCache::shardPopResult(std::uint32_t worker)
{
    ShardResult out;
    shardRes_[worker]->pop(out);
    return out;
}

void
BankedCache::shardWorkerLoop(std::uint32_t w)
{
    ShardRequest req;
    for (;;) {
        shardReq_[w]->pop(req);
        if (req.stop) {
            return;
        }
        Cache &bank = *banks_[req.bank];
        const std::uint64_t before = bank.writebacks();
        ShardResult out;
        out.result = bank.access(req.addr, req.part, req.type);
        out.wbDelta =
            static_cast<std::uint32_t>(bank.writebacks() - before);
        shardRes_[w]->push(out);
    }
}

void
BankedCache::registerShardStats(StatsRegistry &reg,
                                const std::string &prefix) const
{
    const std::uint32_t workers = shardWorkers_;
    reg.addGauge(prefix + ".workers", [workers] {
        return static_cast<double>(workers);
    });
    for (std::uint32_t w = 0; w < workers; ++w) {
        const std::string base =
            prefix + ".worker." + std::to_string(w);
        const ShardWorkerStats &st = *shardStats_[w];
        reg.addCounter(base + ".accesses", &st.accesses);
        reg.addCounter(base + ".enqueue_stalls", &st.enqueueStalls);
        reg.addHistogram(base + ".queue_depth", &st.queueDepth);
    }
}

} // namespace vantage

#include "cache/cache.h"

#include "common/log.h"
#include "core/vantage.h"
#include "stats/registry.h"
#include "trace/event_trace.h"

namespace vantage {

namespace {
/// Victim-partition field of the digest word when nothing valid was
/// evicted.
constexpr std::uint64_t kNoVictim = 0xffff;
} // namespace

Cache::Cache(std::unique_ptr<CacheArray> array,
             std::unique_ptr<PartitionScheme> scheme, std::string name)
    : array_(std::move(array)), scheme_(std::move(scheme)),
      name_(std::move(name))
{
    vantage_assert(array_ != nullptr, "cache needs an array");
    vantage_assert(scheme_ != nullptr, "cache needs a scheme");
    stats_.resize(scheme_->numPartitions());
    vantage_assert(array_->numCandidates() <= CandidateBuf::kCapacity,
                   "array offers %u candidates, buffer holds %u",
                   array_->numCandidates(), CandidateBuf::kCapacity);
}

AccessResult
Cache::access(Addr addr, PartId part, AccessType type)
{
    vantage_assert(part < stats_.size(),
                   "partition %u out of range in cache %s", part,
                   name_.c_str());
    VANTAGE_TRACE_SPAN(kTraceAccess, name_.c_str());
    const LineId slot = array_->lookup(addr);
    if (slot != kInvalidLine) {
        ++stats_[part].hits;
        if (type == AccessType::Store) {
            array_->cold(slot).dirty = true;
        }
        scheme_->onHit(*array_, slot, part);
        afterAccess(0, kNoVictim);
        return AccessResult::Hit;
    }

    ++stats_[part].misses;
    array_->candidates(addr, candBuf_);
    vantage_assert(!candBuf_.empty(), "array produced no candidates");
    if (walkLenHist_) {
        walkLenHist_->add(candBuf_.size());
    }
    const VictimChoice choice =
        scheme_->selectVictim(*array_, part, addr, candBuf_);
    if (choice.bypass) {
        afterAccess(2, kNoVictim);
        return AccessResult::Miss;
    }

    const LineId victim_slot = candBuf_[choice.candIdx].slot;
    const Line &victim = array_->line(victim_slot);
    const std::uint64_t victim_part =
        victim.valid() ? (victim.part & 0xffff) : kNoVictim;
    if (victim.valid()) {
        if (array_->cold(victim_slot).dirty) {
            ++writebacks_;
        }
        scheme_->onEvict(*array_, victim_slot);
    }
    const LineId root = array_->replace(addr, candBuf_, choice.candIdx);
    array_->line(root).part = part;
    array_->cold(root).dirty = type == AccessType::Store;
    scheme_->onInsert(*array_, root, part);
    afterAccess(1, victim_part);
    return AccessResult::Miss;
}

void
Cache::attachDigest(AccessDigest *digest)
{
    digest_ = digest;
    lastDemotions_ = scheme_->demotionCount();
}

void
Cache::afterAccess(std::uint64_t outcome, std::uint64_t victim_part)
{
    if (digest_) {
        const std::uint64_t dems = scheme_->demotionCount();
        const std::uint64_t delta = dems - lastDemotions_;
        lastDemotions_ = dems;
        digest_->fold(outcome | (victim_part << 16) | (delta << 32));
    }
    // Periodic structural self-check; compiled out by default so the
    // hot path stays untouched in release builds.
    VANTAGE_IFCHECK({
        constexpr std::uint64_t kCheckPeriod = 4096;
        if (++accessesSinceCheck_ >= kCheckPeriod) {
            accessesSinceCheck_ = 0;
            checkNow();
        }
    });
}

void
Cache::createPartition(PartId part)
{
    vantage_assert(part < stats_.size(),
                   "createPartition(%u) in cache %s with %zu slots",
                   part, name_.c_str(), stats_.size());
    scheme_->createPartition(part);
    // The new tenant starts with clean hit/miss counters; any lines
    // still draining from the slot's previous occupant stay resident.
    stats_[part] = CacheAccessStats{};
    if (digest_) {
        digest_->fold(3 | (static_cast<std::uint64_t>(part) << 16));
    }
}

void
Cache::destroyPartition(PartId part)
{
    vantage_assert(part < stats_.size(),
                   "destroyPartition(%u) in cache %s with %zu slots",
                   part, name_.c_str(), stats_.size());
    scheme_->destroyPartition(part);
    if (digest_) {
        digest_->fold(4 | (static_cast<std::uint64_t>(part) << 16));
    }
}

void
Cache::checkInvariants(InvariantReport &rep) const
{
    array_->checkInvariants(rep);
    scheme_->checkInvariants(*array_, rep);
}

void
Cache::checkNow() const
{
    InvariantReport rep;
    checkInvariants(rep);
    if (!rep.ok()) {
        panic("cache %s failed invariant checks:\n%s",
              name_.c_str(), rep.summary().c_str());
    }
}

bool
Cache::contains(Addr addr) const
{
    return array_->lookup(addr) != kInvalidLine;
}

const CacheAccessStats &
Cache::partAccessStats(PartId part) const
{
    vantage_assert(part < stats_.size(), "partition %u out of range",
                   part);
    return stats_[part];
}

CacheAccessStats
Cache::totalStats() const
{
    CacheAccessStats total;
    for (const auto &s : stats_) {
        total.hits += s.hits;
        total.misses += s.misses;
    }
    return total;
}

void
Cache::registerStats(StatsRegistry &reg,
                     const std::string &prefix) const
{
    reg.addCounter(prefix + ".writebacks", &writebacks_);
    reg.addCounter(prefix + ".hits",
                   [this] { return totalStats().hits; });
    reg.addCounter(prefix + ".misses",
                   [this] { return totalStats().misses; });
    reg.addGauge(prefix + ".miss_rate",
                 [this] { return totalStats().missRate(); });
    for (PartId p = 0; p < stats_.size(); ++p) {
        const std::string base =
            prefix + ".part" + std::to_string(p);
        const CacheAccessStats *s = &stats_[p];
        reg.addCounter(base + ".hits", &s->hits);
        reg.addCounter(base + ".misses", &s->misses);
    }
    if (walkLenHist_) {
        reg.addHistogram(prefix + ".hist.walk_len", walkLenHist_.get());
    }
    if (const auto *v =
            dynamic_cast<const VantageController *>(scheme_.get())) {
        v->registerStats(reg, prefix + ".vantage");
    }
}

void
Cache::registerIntrospection(StatsRegistry &reg,
                             const std::string &prefix) const
{
    reg.addCounter(prefix + ".writebacks", &writebacks_);
    reg.addCounter(prefix + ".hits",
                   [this] { return totalStats().hits; });
    reg.addCounter(prefix + ".misses",
                   [this] { return totalStats().misses; });
    for (PartId p = 0; p < stats_.size(); ++p) {
        const std::string base =
            prefix + ".part" + std::to_string(p);
        const CacheAccessStats *s = &stats_[p];
        reg.addCounter(base + ".hits", &s->hits);
        reg.addCounter(base + ".misses", &s->misses);
        // Live series follow the tenant lifecycle; cumulative totals
        // for retired slots stay in registerStats() exports.
        reg.addGuard(base, [this, p] {
            return scheme_->partitionActive(p);
        });
    }
    if (walkLenHist_) {
        reg.addHistogram(prefix + ".hist.walk_len",
                         walkLenHist_.get());
    }
}

void
Cache::enableHistograms()
{
    if (!walkLenHist_) {
        walkLenHist_ = std::make_unique<Histogram>();
    }
    if (auto *v = dynamic_cast<VantageController *>(scheme_.get())) {
        v->enableHistograms();
    }
}

void
Cache::resetStats()
{
    for (auto &s : stats_) {
        s = CacheAccessStats{};
    }
    writebacks_ = 0;
    if (walkLenHist_) {
        walkLenHist_->reset();
    }
}

} // namespace vantage

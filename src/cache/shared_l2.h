/**
 * @file
 * Shared-L2 abstraction: one interface over a flat Cache and a
 * BankedCache, so the CMP simulator and the vsim driver are agnostic
 * to the L2 organization.
 *
 * The simulator only ever needed a Cache before banked L2s became
 * first-class (vsim --banks); rather than teach every call site two
 * shapes, this interface carries exactly the operations CmpSim and
 * the driver perform on the shared cache: the access itself, the
 * repartitioning surface (quantum/allocations/BRRIP duel results),
 * aggregate sizes and stats, digest attachment, and the stats/
 * introspection exports. MonoL2 adapts a flat Cache with zero
 * behavior change — every virtual forwards to the exact call the
 * simulator used to make — which is what keeps the 13 pinned golden
 * digests (all mono configurations) bit-identical across this
 * refactor.
 */

#ifndef VANTAGE_CACHE_SHARED_L2_H_
#define VANTAGE_CACHE_SHARED_L2_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"

namespace vantage {

class BankedCache;

/** The shared-cache surface the CMP simulator drives. */
class SharedL2
{
  public:
    virtual ~SharedL2() = default;

    /** Same semantics as Cache::access. */
    virtual AccessResult access(Addr addr, PartId part,
                                AccessType type) = 0;

    /** Dirty evictions since the last resetStats(). */
    virtual std::uint64_t writebacks() const = 0;

    virtual std::uint32_t numPartitions() const = 0;
    virtual std::uint32_t allocationQuantum() const = 0;

    /** Scheme-units allocation (replicated per bank when banked). */
    virtual void
    setAllocations(const std::vector<std::uint32_t> &units) = 0;

    /**
     * Apply per-partition DRRIP dueling winners. No-op unless the
     * scheme is a VantageRrip (matching the simulator's historical
     * dynamic_cast guard).
     */
    virtual void applyBrrip(const std::vector<bool> &brrip) = 0;

    /**
     * Whether the scheme consumes applyBrrip(). Gates the
     * Ucp::brripChoices() call, which asserts on non-RRIP monitors.
     */
    virtual bool wantsBrrip() const = 0;

    /** Aggregate per-partition sizes (summed across banks). */
    virtual std::uint64_t targetSize(PartId part) const = 0;
    virtual std::uint64_t actualSize(PartId part) const = 0;

    /** Aggregate hit/miss stats. */
    virtual CacheAccessStats totalStats() const = 0;
    virtual CacheAccessStats partAccessStats(PartId part) const = 0;
    virtual void resetStats() = 0;

    /**
     * Fold access outcomes into `digest`. Banked caches fold into
     * per-bank streams; finalizeDigest() merges them bank-major.
     */
    virtual void attachDigest(AccessDigest *digest) = 0;

    /**
     * Merge any per-bank digest streams into the attached digest, in
     * canonical bank-major order. Call once, after the last access;
     * a flat cache folds inline and needs no merge (default no-op).
     */
    virtual void finalizeDigest() {}

    virtual void enableHistograms() = 0;

    /** Post-mortem stats export (vsim --stats-out). */
    virtual void registerStats(StatsRegistry &reg,
                               const std::string &prefix) const = 0;

    /**
     * Live-introspection export for the metrics service, using the
     * simulator's top-level prefixes ("cache", "vantage"/"scheme").
     */
    virtual void
    registerLiveIntrospection(StatsRegistry &reg) const = 0;

    virtual void checkInvariants(InvariantReport &rep) const = 0;

    /**
     * Tenant lifecycle (see Cache::createPartition): activate /
     * retire a partition slot. Banked caches apply the change — and
     * fold its digest marker — in every bank, in bank order.
     */
    virtual void createPartition(PartId part) = 0;
    virtual void destroyPartition(PartId part) = 0;
    virtual bool partitionActive(PartId part) const = 0;

    /** The flat cache when this L2 is one, else nullptr. */
    virtual Cache *monoCache() { return nullptr; }

    /** The banked cache when this L2 is one, else nullptr. */
    virtual BankedCache *banked() { return nullptr; }
};

/** A flat Cache behind the SharedL2 interface. */
class MonoL2 : public SharedL2
{
  public:
    explicit MonoL2(std::unique_ptr<Cache> cache);
    ~MonoL2() override;

    AccessResult
    access(Addr addr, PartId part, AccessType type) override
    {
        return cache_->access(addr, part, type);
    }

    std::uint64_t
    writebacks() const override
    {
        return cache_->writebacks();
    }

    std::uint32_t numPartitions() const override;
    std::uint32_t allocationQuantum() const override;
    void
    setAllocations(const std::vector<std::uint32_t> &units) override;
    void applyBrrip(const std::vector<bool> &brrip) override;
    bool wantsBrrip() const override;
    std::uint64_t targetSize(PartId part) const override;
    std::uint64_t actualSize(PartId part) const override;
    CacheAccessStats totalStats() const override;
    CacheAccessStats partAccessStats(PartId part) const override;
    void resetStats() override;
    void attachDigest(AccessDigest *digest) override;
    void enableHistograms() override;
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const override;
    void registerLiveIntrospection(StatsRegistry &reg) const override;
    void checkInvariants(InvariantReport &rep) const override;
    void createPartition(PartId part) override;
    void destroyPartition(PartId part) override;
    bool partitionActive(PartId part) const override;

    Cache *monoCache() override { return cache_.get(); }

  private:
    std::unique_ptr<Cache> cache_;
};

} // namespace vantage

#endif // VANTAGE_CACHE_SHARED_L2_H_

/**
 * @file
 * Variants of the Vantage controller.
 *
 * VantageOracle is the paper's Sec. 6.2 validation configuration:
 * feedback-based aperture control with *perfect knowledge of the
 * apertures* — each candidate's exact quantile within its partition
 * is compared against the aperture from Eq. 7 — instead of the
 * practical setpoint mechanism. The paper reports that this performs
 * exactly like the practical controller; our model_validation bench
 * reproduces that check.
 *
 * VantageRrip is the Vantage-DRRIP configuration of Fig. 11: lines
 * carry a 3-bit RRPV instead of a coarse timestamp, each partition is
 * assigned SRRIP or BRRIP insertion (chosen per interval by the
 * allocation policy's dueling monitors), demotions use a per-partition
 * *setpoint RRPV*, and lines from partitions below their target size
 * are not aged.
 */

#ifndef VANTAGE_CORE_VANTAGE_VARIANTS_H_
#define VANTAGE_CORE_VANTAGE_VARIANTS_H_

#include "common/rng.h"
#include "core/vantage.h"
#include "replacement/rrip.h"

namespace vantage {

/** Perfect-aperture oracle controller (analysis-exact demotions). */
class VantageOracle : public VantageController
{
  public:
    VantageOracle(std::size_t num_lines, const VantageConfig &cfg)
        : VantageController(num_lines, cfg)
    {
        fastDemote_ = false; // Overrides shouldDemote().
    }

    std::string name() const override { return "vantage-oracle"; }

  protected:
    bool
    shouldDemote(PartId part, const PartState &ps,
                 const Line &line) const override
    {
        (void)part;
        const double aperture = apertureOf(ps);
        if (aperture <= 0.0) {
            return false;
        }
        // Demote the top `aperture` fraction of eviction priorities.
        return demotionPriority(ps, line.rank) >= 1.0 - aperture;
    }
};

/** Vantage over RRIP ranks (Vantage-DRRIP when driven by dueling). */
class VantageRrip : public VantageController
{
  public:
    VantageRrip(std::size_t num_lines, const VantageConfig &cfg,
                std::uint64_t seed = 0xbead)
        : VantageController(num_lines, cfg), rng_(seed),
          useBrrip_(cfg.numPartitions, false),
          setpointRrpv_(cfg.numPartitions, RripBase::kDistant)
    {
        fastDemote_ = false; // Overrides the demotion hooks.
    }

    std::string name() const override { return "vantage-rrip"; }

    /** Select SRRIP (false) or BRRIP (true) insertion for `part`. */
    void
    setBrrip(PartId part, bool use_brrip)
    {
        vantage_assert(part < numPartitions(),
                       "partition %u out of range", part);
        useBrrip_[part] = use_brrip;
    }

    bool usesBrrip(PartId part) const { return useBrrip_[part]; }

    std::uint8_t
    setpointRrpv(PartId part) const
    {
        return setpointRrpv_[part];
    }

  protected:
    std::uint8_t
    insertionRank(PartId part) override
    {
        if (useBrrip_[part]) {
            return rng_.chance(1.0 / 32.0) ? RripBase::kLong
                                           : RripBase::kDistant;
        }
        return RripBase::kLong;
    }

    std::uint8_t
    hitRank(PartId part, std::uint8_t old_rank) override
    {
        (void)part;
        (void)old_rank;
        return 0; // Hit priority: near-immediate re-reference.
    }

    bool
    shouldDemote(PartId part, const PartState &ps,
                 const Line &line) const override
    {
        (void)part;
        if (ps.actualSize <= ps.targetSize) {
            return false;
        }
        if (ps.targetSize == 0) {
            return true;
        }
        return line.rank >= setpointRrpv_[part];
    }

    double
    demotionPriority(const PartState &ps,
                     std::uint8_t rank) const override
    {
        // Fraction of the partition's lines with a lower RRPV.
        if (ps.actualSize == 0) {
            return 1.0;
        }
        std::uint64_t lower = 0;
        for (std::uint32_t v = 0; v < rank; ++v) {
            lower += ps.tsHist[v];
        }
        return std::min(1.0, static_cast<double>(lower) /
                                 static_cast<double>(ps.actualSize));
    }

    void
    onDemotionCheckKept(PartId part, Line &line) override
    {
        // Age surviving candidates of over-target partitions so their
        // RRPVs drift toward the setpoint; under-target partitions
        // are left alone (Sec. 6.2).
        PartState &ps = parts_[part];
        if (ps.actualSize <= ps.targetSize ||
            line.rank >= RripBase::kDistant) {
            return;
        }
        --ps.tsHist[line.rank];
        ++line.rank;
        ++ps.tsHist[line.rank];
    }

    void
    tickAccessCounter(PartId part) override
    {
        (void)part; // RRPVs do not use the coarse timestamp clock.
    }

    void
    adjustSetpoint(PartId part) override
    {
        PartState &ps = parts_[part];
        ++stats_.setpointAdjusts;
        const std::uint32_t desired = desiredDemotions(ps);
        // Note the inverted sense versus timestamps: raising the
        // setpoint RRPV makes fewer lines demotable.
        if (ps.candsDemoted > desired) {
            if (setpointRrpv_[part] < RripBase::kDistant + 1) {
                ++setpointRrpv_[part];
            }
        } else if (ps.candsDemoted < desired) {
            if (setpointRrpv_[part] > 1) {
                --setpointRrpv_[part];
            }
        }
        ps.candsSeen = 0;
        ps.candsDemoted = 0;
    }

    void
    onPartitionCreate(PartId part) override
    {
        VantageController::onPartitionCreate(part);
        useBrrip_[part] = false;
        setpointRrpv_[part] = RripBase::kDistant;
    }

  private:
    Rng rng_;
    std::vector<bool> useBrrip_;
    std::vector<std::uint8_t> setpointRrpv_;
};

/**
 * Vantage over LFU ranks — the paper's Sec. 4.2 generality claim:
 * "in LFU we would choose a setpoint access frequency". Lines carry
 * a saturating 8-bit access-frequency counter; a candidate is demoted
 * when its partition is over target and its frequency falls at or
 * below the per-partition *setpoint frequency*, which the same
 * feedback loop adjusts.
 */
class VantageLfu : public VantageController
{
  public:
    VantageLfu(std::size_t num_lines, const VantageConfig &cfg)
        : VantageController(num_lines, cfg),
          setpointFreq_(cfg.numPartitions, 0)
    {
        fastDemote_ = false; // Overrides shouldDemote().
    }

    std::string name() const override { return "vantage-lfu"; }

    std::uint8_t
    setpointFreq(PartId part) const
    {
        return setpointFreq_[part];
    }

  protected:
    std::uint8_t
    insertionRank(PartId part) override
    {
        (void)part;
        return 0; // New lines start with zero observed reuse.
    }

    std::uint8_t
    hitRank(PartId part, std::uint8_t old_rank) override
    {
        (void)part;
        return old_rank < 255 ? old_rank + 1 : 255;
    }

    bool
    shouldDemote(PartId part, const PartState &ps,
                 const Line &line) const override
    {
        if (ps.actualSize <= ps.targetSize) {
            return false;
        }
        if (ps.targetSize == 0) {
            return true;
        }
        return line.rank <= setpointFreq_[part];
    }

    double
    demotionPriority(const PartState &ps,
                     std::uint8_t rank) const override
    {
        // Fraction of the partition's lines used *more* often — the
        // share LFU would rather keep.
        if (ps.actualSize == 0) {
            return 1.0;
        }
        std::uint64_t hotter = 0;
        for (std::uint32_t f = rank + 1; f < 256; ++f) {
            hotter += ps.tsHist[f];
        }
        return std::min(1.0, static_cast<double>(hotter) /
                                 static_cast<double>(ps.actualSize));
    }

    void
    tickAccessCounter(PartId part) override
    {
        (void)part; // Frequencies do not use the timestamp clock.
    }

    void
    adjustSetpoint(PartId part) override
    {
        PartState &ps = parts_[part];
        ++stats_.setpointAdjusts;
        const std::uint32_t desired = desiredDemotions(ps);
        // Demote when freq <= setpoint: raising the setpoint demotes
        // more lines.
        if (ps.candsDemoted > desired) {
            if (setpointFreq_[part] > 0) {
                --setpointFreq_[part];
            }
        } else if (ps.candsDemoted < desired) {
            if (setpointFreq_[part] < 255) {
                ++setpointFreq_[part];
            }
        }
        ps.candsSeen = 0;
        ps.candsDemoted = 0;
    }

    void
    onPartitionCreate(PartId part) override
    {
        VantageController::onPartitionCreate(part);
        setpointFreq_[part] = 0;
    }

  private:
    std::vector<std::uint8_t> setpointFreq_;
};

} // namespace vantage

#endif // VANTAGE_CORE_VANTAGE_VARIANTS_H_

#include "core/model.h"

#include <cmath>

#include "common/log.h"

namespace vantage {
namespace model {

double
assocCdf(double x, std::uint32_t r)
{
    vantage_assert(r >= 1, "need at least one candidate");
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    return std::pow(x, static_cast<double>(r));
}

double
binomialPmf(std::uint32_t i, std::uint32_t r, double p)
{
    vantage_assert(i <= r, "binomial i=%u > r=%u", i, r);
    vantage_assert(p >= 0.0 && p <= 1.0, "p=%f out of range", p);
    // log-space to stay stable for large R.
    double log_comb = 0.0;
    for (std::uint32_t k = 1; k <= i; ++k) {
        log_comb += std::log(static_cast<double>(r - i + k)) -
                    std::log(static_cast<double>(k));
    }
    if ((p == 0.0 && i > 0) || (p == 1.0 && i < r)) return 0.0;
    double log_pmf = log_comb;
    if (i > 0) log_pmf += static_cast<double>(i) * std::log(p);
    if (r - i > 0) {
        log_pmf += static_cast<double>(r - i) * std::log(1.0 - p);
    }
    return std::exp(log_pmf);
}

double
managedCdfExactOne(double x, std::uint32_t r, double u)
{
    vantage_assert(u >= 0.0 && u < 1.0, "u=%f out of range", u);
    if (x <= 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    const double m = 1.0 - u;
    double acc = 0.0;
    for (std::uint32_t i = 1; i < r; ++i) {
        acc += binomialPmf(i, r, m) * std::pow(x, static_cast<double>(i));
    }
    // Normalize over the included terms so the CDF reaches 1.0; the
    // excluded i = 0 and i = R cases carry negligible probability.
    double mass = 0.0;
    for (std::uint32_t i = 1; i < r; ++i) {
        mass += binomialPmf(i, r, m);
    }
    return mass > 0.0 ? acc / mass : 0.0;
}

double
managedCdfOnAverage(double x, double aperture)
{
    vantage_assert(aperture > 0.0 && aperture <= 1.0,
                   "aperture %f out of range", aperture);
    if (x < 1.0 - aperture) return 0.0;
    if (x >= 1.0) return 1.0;
    return (x - (1.0 - aperture)) / aperture;
}

double
balancedAperture(std::uint32_t r, double m)
{
    vantage_assert(m > 0.0 && m <= 1.0, "m=%f out of range", m);
    return 1.0 / (static_cast<double>(r) * m);
}

double
aperture(double churn_share, double size_share, std::uint32_t r,
         double m)
{
    vantage_assert(size_share > 0.0, "size share must be positive");
    return (churn_share / size_share) * balancedAperture(r, m);
}

double
minStableSize(double churn_share, double total_size, double amax,
              std::uint32_t r, double m)
{
    vantage_assert(amax > 0.0 && amax <= 1.0, "Amax=%f out of range",
                   amax);
    return churn_share * total_size /
           (amax * static_cast<double>(r) * m);
}

double
worstCaseBorrow(double amax, std::uint32_t r)
{
    return 1.0 / (amax * static_cast<double>(r));
}

double
aggregateOutgrowth(double slack, double amax, std::uint32_t r)
{
    return slack / (amax * static_cast<double>(r));
}

double
unmanagedFraction(std::uint32_t r, double amax, double slack,
                  double pev)
{
    vantage_assert(pev > 0.0 && pev <= 1.0, "Pev=%f out of range", pev);
    const double ev_term =
        1.0 - std::pow(pev, 1.0 / static_cast<double>(r));
    return ev_term + (1.0 + slack) / (amax * static_cast<double>(r));
}

double
worstCaseEvictionProb(std::uint32_t r, double u_ev)
{
    vantage_assert(u_ev >= 0.0 && u_ev <= 1.0, "u=%f out of range",
                   u_ev);
    return std::pow(1.0 - u_ev, static_cast<double>(r));
}

StateOverhead
stateOverhead(std::uint64_t lines, std::uint32_t partitions,
              std::uint32_t banks)
{
    vantage_assert(lines > 0, "empty cache");
    vantage_assert(partitions >= 1, "need a partition");
    vantage_assert(banks >= 1, "need a bank");

    StateOverhead out{};
    // Partition ids: P partitions plus the unmanaged region.
    std::uint32_t bits = 0;
    while ((1u << bits) < partitions + 1) {
        ++bits;
    }
    out.tagBitsPerLine = bits;

    // Fig. 4: ~256 bits of controller registers per partition, per
    // bank (CurrentTS, SetpointTS, AccessCounter, sizes, counters,
    // and the 8-entry thresholds table).
    out.controllerBits = static_cast<std::uint64_t>(256) *
                         partitions * banks;

    const double line_bits = 64.0 * 8.0; // 64-byte lines.
    out.tagOverhead = static_cast<double>(bits) / line_bits;
    out.totalOverhead =
        out.tagOverhead +
        static_cast<double>(out.controllerBits) /
            (static_cast<double>(lines) * line_bits);
    return out;
}

} // namespace model
} // namespace vantage

/**
 * @file
 * The Vantage cache controller (paper Secs. 3 and 4).
 *
 * Vantage partitions the *managed* region of the cache (a fraction
 * m = 1 - u of all lines) by controlling the replacement process:
 *
 *  - Lines are tagged with a partition id; the reserved id
 *    kUnmanagedPart marks the unmanaged region.
 *  - On each miss, every replacement candidate is checked for
 *    *demotion*: a candidate whose partition exceeds its target size
 *    and whose coarse timestamp falls outside the partition's
 *    [SetpointTS, CurrentTS] keep-window moves to the unmanaged
 *    region (a tag change only).
 *  - The victim is preferably the oldest unmanaged candidate, so the
 *    unmanaged region absorbs nearly all evictions and partitions
 *    never steal space from each other.
 *  - Hits on unmanaged lines *promote* them into the accessor's
 *    partition.
 *
 * The per-partition aperture (the fraction of candidates demoted) is
 * not computed explicitly. Instead, feedback-based aperture control
 * (Sec. 4.1) lets a partition outgrow its target by up to
 * slack * target, mapping outgrowth linearly to aperture in
 * [0, Amax]; and setpoint-based demotions (Sec. 4.2) track that
 * aperture by nudging SetpointTS after every `c` candidates seen from
 * the partition, using an 8-entry demotion-thresholds lookup table
 * (Fig. 3c) rebuilt at resize time.
 *
 * Controller state matches the paper's Fig. 4: per-partition
 * CurrentTS, SetpointTS, AccessCounter, ActualSize, TargetSize,
 * CandsSeen, CandsDemoted and the thresholds table. The simulator
 * additionally keeps per-partition timestamp histograms to measure
 * demotion-priority CDFs (Figs. 2 and 8); hardware would not.
 */

#ifndef VANTAGE_CORE_VANTAGE_H_
#define VANTAGE_CORE_VANTAGE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "partition/scheme.h"
#include "stats/cdf.h"
#include "stats/histogram.h"
#include "stats/trace.h"
#include "trace/event_trace.h"

namespace vantage {

class StatsRegistry;

/** Configuration of the Vantage controller. */
struct VantageConfig
{
    /** Number of partitions (excluding the unmanaged region). */
    std::uint32_t numPartitions = 1;
    /** Fraction of the cache left unmanaged (u). */
    double unmanagedFraction = 0.05;
    /** Maximum aperture (Amax). */
    double maxAperture = 0.5;
    /** Feedback slack: aperture reaches Amax at (1+slack)*target. */
    double slack = 0.1;
    /** Candidates seen from a partition between setpoint updates (c). */
    std::uint32_t candsPerAdjust = 256;
    /** Entries in the demotion-thresholds lookup table. */
    std::uint32_t thresholdEntries = 8;
    /**
     * Stability option 2 of Sec. 3.4: when a partition saturates its
     * aperture and still exceeds (1 + slack) * target, throttle its
     * churn by inserting its fills directly into the unmanaged
     * region, instead of letting it borrow further (the default,
     * option 1). Trades a little low-churn -> high-churn interference
     * for a smaller unmanaged-region reserve.
     */
    bool throttleHighChurn = false;
};

/** Per-partition statistics exported by the controller. */
struct VantagePartStats
{
    std::uint64_t insertions = 0; ///< Fills (the partition's churn).
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
    std::uint64_t hits = 0;
    std::uint64_t forcedEvictions = 0; ///< Evicted while still managed.
    std::uint64_t throttledInserts = 0; ///< Fills sent unmanaged.
};

/**
 * Opt-in per-partition distribution histograms (log2-bucketed); see
 * VantageController::enableHistograms(). All record quantities the
 * paper reasons about in Secs. 3.4/4.1-4.2.
 */
struct VantagePartHists
{
    /** Aperture at each setpoint adjustment, in basis points. */
    Histogram apertureBp;
    /** Line age (current - rank timestamp ticks) at demotion. */
    Histogram demotionAge;
    /** Line age at forced eviction from the managed region. */
    Histogram evictionAge;
    /** Controller accesses between consecutive demotions. */
    Histogram demotionGap;
    std::uint64_t lastDemotionAccess = 0;
};

/** Global controller statistics. */
struct VantageStats
{
    std::uint64_t evictions = 0;
    std::uint64_t evictionsFromManaged = 0; ///< Forced (no unmanaged cand).
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
    std::uint64_t setpointAdjusts = 0;
};

/** Vantage: fine-grain partitioning via churn-based management. */
class VantageController : public PartitionScheme
{
  public:
    /**
     * @param num_lines total lines of the array this controller
     *        manages.
     * @param cfg controller parameters.
     */
    VantageController(std::size_t num_lines, const VantageConfig &cfg);

    std::string name() const override { return "vantage"; }

    std::uint32_t
    numPartitions() const override
    {
        return cfg_.numPartitions;
    }

    /** Fine-grain quantum: 256 units over the managed region. */
    std::uint32_t allocationQuantum() const override { return 256; }

    void setAllocations(
        const std::vector<std::uint32_t> &units) override;

    /** Directly set per-partition targets in lines (finest grain). */
    void setTargetLines(const std::vector<std::uint64_t> &lines);

    /**
     * Delete a partition (Sec. 3.4): target goes to zero and its
     * lines drain into the unmanaged region; the id can be reused
     * once actualSize reaches zero.
     */
    void deletePartition(PartId part);

    void onHit(CacheArray &array, LineId slot,
               PartId accessor) override;
    VictimChoice selectVictim(CacheArray &array, PartId inserting,
                              Addr addr,
                              const CandidateBuf &cands) override;
    void onEvict(CacheArray &array, LineId slot) override;
    void onInsert(CacheArray &array, LineId slot,
                  PartId part) override;

    std::uint64_t actualSize(PartId part) const override;
    std::uint64_t targetSize(PartId part) const override;

    std::uint64_t
    demotionCount() const override
    {
        return stats_.demotions;
    }

    /**
     * Verify the Fig. 4 register file against ground truth (Secs.
     * 3.4-3.6): conservation of lines (per-partition recounts match
     * ActualSize, the unmanaged recount matches unmanagedSize(), and
     * every valid line carries a legal partition tag), timestamp-
     * histogram consistency, threshold-table monotonicity, candidate
     * accounting (CandsDemoted <= CandsSeen <= c), aperture <= Amax,
     * and sum(TargetSize) <= managed capacity.
     */
    void checkInvariants(const CacheArray &array,
                         InvariantReport &rep) const override;

    /** Lines currently tagged unmanaged. */
    std::uint64_t unmanagedSize() const { return unmanagedSize_; }

    /** Managed-region capacity in lines, (1 - u) * num_lines. */
    std::uint64_t managedLines() const { return managedLines_; }

    const VantageStats &stats() const { return stats_; }
    const VantagePartStats &partStats(PartId part) const;

    /**
     * Allocate the per-partition distribution histograms
     * (VantagePartHists); off by default so the demotion/eviction
     * paths pay nothing. Registered under
     * `prefix`.partN.hist.* by registerStats(); cleared by
     * resetStats().
     */
    void enableHistograms();
    bool histogramsEnabled() const { return !hists_.empty(); }
    const VantagePartHists &partHists(PartId part) const;

    /** Reset statistics (not controller state). */
    void resetStats();

    /**
     * Record demotion priorities of one partition into a CDF: for
     * each demotion, the fraction of the partition's lines that are
     * younger (lower eviction priority) than the demoted line. This
     * is the paper's demotion-priority metric (Figs. 2c and 8).
     */
    void attachDemotionCdf(PartId part, EmpiricalCdf *cdf);

    /** Current setpoint/current timestamps (for tests). */
    std::uint8_t currentTs(PartId part) const;
    std::uint8_t setpointTs(PartId part) const;

    /** Estimated aperture of `part` (Eq. 7), in [0, Amax]. */
    double aperture(PartId part) const;

    /**
     * Attach a periodic state trace: every trace->period() controller
     * accesses (hits + fills), one TraceSample per partition is
     * recorded. Pass nullptr to detach. The trace must outlive the
     * controller's use of it.
     */
    void attachTrace(ControllerTrace *trace);

    /** Controller accesses (hits + fills) seen so far. */
    std::uint64_t accessesSeen() const { return accessesSeen_; }

    /**
     * Register controller statistics under `prefix`: global
     * demotion/promotion/eviction counters plus per-partition
     * `prefix`.partN.{target,actual,aperture,hits,insertions,
     * demotions,promotions,forced_evictions,throttled_inserts}.
     * The registry reads live state; export after the run.
     */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix) const;

    /**
     * Live-introspection export for the metrics service: extends the
     * base scheme's target/actual gauges with the controller's
     * convergence state — per-partition aperture (basis points),
     * setpoint/current timestamps, demotion/promotion/insertion
     * counters, a threshold-table summary, and the global
     * managed/unmanaged split. Paths use exporter-facing names, so
     * `prefix` = "vantage" yields vantage_aperture_bp{part="N"} etc.
     * on the Prometheus endpoint.
     */
    void registerIntrospection(
        StatsRegistry &reg, const std::string &prefix) const override;

    const VantageConfig &config() const { return cfg_; }

  protected:
    /** Fig. 4 per-partition register file (widths in comments). */
    struct PartState
    {
        std::uint64_t targetSize = 0;   // TargetSize (16b)
        std::uint64_t actualSize = 0;   // ActualSize (16b)
        std::uint8_t currentTs = 0;     // CurrentTS (8b)
        std::uint8_t setpointTs = 0;    // SetpointTS (8b)
        std::uint64_t accessCounter = 0; // AccessCounter (16b)
        std::uint32_t candsSeen = 0;    // CandsSeen (8b)
        std::uint32_t candsDemoted = 0; // CandsDemoted (8b)
        // 8-entry demotion thresholds lookup table (Fig. 3c).
        std::vector<std::uint64_t> thrSize; // ThrSize[k] (16b each)
        std::vector<std::uint32_t> thrDems; // ThrDems[k] (8b each)
        // Simulator-only: histogram of line timestamps, for demotion
        // priority measurement.
        std::array<std::uint64_t, 256> tsHist{};
    };

    /**
     * Decide whether a managed candidate should be demoted. The base
     * implementation is the paper's practical controller:
     * setpoint-based demotions gated on ActualSize > TargetSize.
     * Variants override this (perfect-aperture oracle, RRIP).
     */
    virtual bool shouldDemote(PartId part, const PartState &ps,
                              const Line &line) const;

    /** Metadata for a line newly inserted into `part`. */
    virtual std::uint8_t insertionRank(PartId part);

    /** Metadata update for a hit on a managed line of `part`. */
    virtual std::uint8_t hitRank(PartId part, std::uint8_t old_rank);

    /**
     * Eviction priority of a line within its partition, in [0, 1]
     * (1 = partition's best eviction candidate), used for demotion
     * CDF capture and forced-eviction victim choice.
     */
    virtual double demotionPriority(const PartState &ps,
                                    std::uint8_t rank) const;

    /** Hook after a managed candidate survives its demotion check. */
    virtual void onDemotionCheckKept(PartId part, Line &line);

    /**
     * Lifecycle hooks (PartitionScheme). Destroy follows Sec. 3.4:
     * deletePartition() semantics — target 0 and full-aperture drain
     * through the unmanaged region. Create resets the new tenant's
     * control registers (timestamps, setpoint, candidate counters)
     * but keeps ActualSize and the timestamp histogram: they describe
     * lines still resident from the previous occupant, which the new
     * tenant inherits and churns out normally.
     */
    void onPartitionCreate(PartId part) override;
    void onPartitionDestroy(PartId part) override;

    void rebuildThresholds(PartId part);
    /** Count a controller access; sample the trace when one is due. */
    void noteAccess();
    /** Append one TraceSample per partition to the attached trace. */
    void sampleTrace();
    /** Advance the coarse timestamp clock; no-op for RRIP variants. */
    virtual void tickAccessCounter(PartId part);
    void tickUnmanagedTs();
    /** Nudge the setpoint after `c` candidates from a partition. */
    virtual void adjustSetpoint(PartId part);

    /** Desired demotions per c candidates, from the lookup table. */
    std::uint32_t desiredDemotions(const PartState &ps) const;
    bool inKeepWindow(const PartState &ps, std::uint8_t ts) const;
    void demote(Line &line, PartId from);

    /** Aperture from the linear transfer function of Eq. 7. */
    double apertureOf(const PartState &ps) const;

    /**
     * Record a decision about `part` with the full Fig. 4 register
     * state (aperture, setpoint/current TS, candidate counters); a
     * no-op while no audit ring is attached.
     */
    void recordVantageDecision(DecisionKind kind, PartId part);

    /**
     * True while the demotion decision is exactly the base
     * controller's (setpoint window over the hot rank array):
     * selectVictim() then runs a single flattened, branch-light pass
     * that inlines the check instead of calling the shouldDemote /
     * onDemotionCheckKept virtuals per candidate. Any variant that
     * overrides either hook must clear this in its constructor to
     * get the virtual dispatch back.
     */
    bool fastDemote_ = true;

    VantageConfig cfg_;
    std::uint64_t numLines_;
    std::uint64_t managedLines_;

    std::vector<PartState> parts_;
    std::vector<VantagePartStats> partStats_;
    VantageStats stats_;

    // Unmanaged-region state: its own coarse timestamp, advanced once
    // per (unmanaged target size)/16 demotions.
    std::uint8_t unmanagedTs_ = 0;
    std::uint64_t unmanagedSize_ = 0;
    std::uint64_t unmanagedTickPeriod_;
    std::uint64_t demotionsSinceTick_ = 0;

    PartId demotionCdfPart_ = kInvalidPart;
    EmpiricalCdf *demotionCdf_ = nullptr;

    // Observability: optional periodic state trace.
    ControllerTrace *trace_ = nullptr;
    std::uint64_t accessesSeen_ = 0;

    // Opt-in distribution telemetry; empty unless enableHistograms().
    std::vector<VantagePartHists> hists_;
    // Interned per-partition counter-event names, built lazily by the
    // tracing hooks ("vantage.aperture.partN").
    mutable std::vector<const char *> traceCounterNames_;
};

} // namespace vantage

#endif // VANTAGE_CORE_VANTAGE_H_

#include "core/vantage.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bits.h"
#include "common/log.h"
#include "simd/simd.h"
#include "stats/prof.h"
#include "stats/registry.h"

namespace vantage {

VantageController::VantageController(std::size_t num_lines,
                                     const VantageConfig &cfg)
    : cfg_(cfg), numLines_(num_lines)
{
    vantage_assert(cfg.numPartitions >= 1, "need at least 1 partition");
    vantage_assert(cfg.unmanagedFraction > 0.0 &&
                   cfg.unmanagedFraction < 1.0,
                   "u=%f out of range", cfg.unmanagedFraction);
    vantage_assert(cfg.maxAperture > 0.0 && cfg.maxAperture <= 1.0,
                   "Amax=%f out of range", cfg.maxAperture);
    vantage_assert(cfg.slack > 0.0, "slack must be positive");
    vantage_assert(cfg.thresholdEntries >= 1, "need threshold entries");

    managedLines_ = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(num_lines) *
                     (1.0 - cfg.unmanagedFraction)));
    vantage_assert(managedLines_ >= cfg.numPartitions,
                   "managed region too small for %u partitions",
                   cfg.numPartitions);
    const std::uint64_t unmanaged_target = numLines_ - managedLines_;
    unmanagedTickPeriod_ = std::max<std::uint64_t>(
        unmanaged_target / 16, 1);

    parts_.resize(cfg.numPartitions);
    partStats_.resize(cfg.numPartitions);
    for (auto &ps : parts_) {
        ps.thrSize.resize(cfg.thresholdEntries, 0);
        ps.thrDems.resize(cfg.thresholdEntries, 0);
    }

    // Default: equal split of the managed region.
    std::vector<std::uint64_t> targets(
        cfg.numPartitions, managedLines_ / cfg.numPartitions);
    targets[0] += managedLines_ % cfg.numPartitions;
    setTargetLines(targets);
}

void
VantageController::setAllocations(
    const std::vector<std::uint32_t> &units)
{
    vantage_assert(units.size() == cfg_.numPartitions,
                   "got %zu allocations for %u partitions",
                   units.size(), cfg_.numPartitions);
    const std::uint64_t total =
        std::accumulate(units.begin(), units.end(), std::uint64_t{0});
    vantage_assert(total <= allocationQuantum(),
                   "allocations total %llu units, quantum is %u",
                   static_cast<unsigned long long>(total),
                   allocationQuantum());
    std::vector<std::uint64_t> lines(units.size());
    for (std::size_t p = 0; p < units.size(); ++p) {
        lines[p] = managedLines_ * units[p] / allocationQuantum();
    }
    setTargetLines(lines);
}

void
VantageController::setTargetLines(
    const std::vector<std::uint64_t> &lines)
{
    vantage_assert(lines.size() == cfg_.numPartitions,
                   "got %zu targets for %u partitions", lines.size(),
                   cfg_.numPartitions);
    const std::uint64_t total =
        std::accumulate(lines.begin(), lines.end(), std::uint64_t{0});
    if (total > managedLines_) {
        fatal("targets total %llu lines, managed region has %llu",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(managedLines_));
    }
    for (PartId p = 0; p < cfg_.numPartitions; ++p) {
        const std::uint64_t before = parts_[p].targetSize;
        parts_[p].targetSize = lines[p];
        rebuildThresholds(p);
        if (lines[p] != before) {
            recordVantageDecision(DecisionKind::Repartition, p);
        }
    }
}

void
VantageController::deletePartition(PartId part)
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    const std::uint64_t before = parts_[part].targetSize;
    parts_[part].targetSize = 0;
    rebuildThresholds(part);
    if (before != 0) {
        recordVantageDecision(DecisionKind::Repartition, part);
    }
}

void
VantageController::onPartitionDestroy(PartId part)
{
    // Sec. 3.4 deletion: target 0 puts every resident line outside
    // the keep window, so the slot drains at full aperture through
    // the unmanaged region.
    deletePartition(part);
}

void
VantageController::onPartitionCreate(PartId part)
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    PartState &ps = parts_[part];
    // Fresh control registers for the new tenant. ActualSize and
    // tsHist are deliberately kept: they describe lines still
    // resident from the previous occupant (lazy drain), which the
    // new tenant inherits — resetting them would break conservation.
    ps.currentTs = 0;
    ps.setpointTs = 0;
    ps.accessCounter = 0;
    ps.candsSeen = 0;
    ps.candsDemoted = 0;
    ps.targetSize = 0;
    rebuildThresholds(part);
    partStats_[part] = VantagePartStats{};
    if (!hists_.empty()) {
        VantagePartHists &h = hists_[part];
        h.apertureBp.reset();
        h.demotionAge.reset();
        h.evictionAge.reset();
        h.demotionGap.reset();
        h.lastDemotionAccess = accessesSeen_;
    }
}

void
VantageController::rebuildThresholds(PartId part)
{
    // Fig. 3c: entry k covers sizes in
    //   [T * (1 + slack*k/n), T * (1 + slack*(k+1)/n))
    // (the last entry extends upward), and allows
    //   c * Amax * (k+1)/n
    // demotions per c candidates seen — a staircase approximation of
    // the linear transfer function of Eq. 7.
    PartState &ps = parts_[part];
    const auto n = static_cast<double>(cfg_.thresholdEntries);
    // The slack band [T, (1+slack)T] is split across the first n-1
    // boundaries; the last entry covers everything above it (as in
    // the paper's example: 1000/1033/1066/1100 for n = 4).
    const double span = cfg_.thresholdEntries > 1 ? n - 1.0 : 1.0;
    const auto t = static_cast<double>(ps.targetSize);
    const double c_amax =
        static_cast<double>(cfg_.candsPerAdjust) * cfg_.maxAperture;
    for (std::uint32_t k = 0; k < cfg_.thresholdEntries; ++k) {
        ps.thrSize[k] = static_cast<std::uint64_t>(
            std::llround(t * (1.0 + cfg_.slack *
                                        static_cast<double>(k) /
                                        span)));
        ps.thrDems[k] = std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(std::llround(
                   c_amax * static_cast<double>(k + 1) / n)));
    }
}

void
VantageController::noteAccess()
{
    ++accessesSeen_;
    if (trace_ != nullptr && trace_->due(accessesSeen_)) {
        sampleTrace();
    }
}

void
VantageController::sampleTrace()
{
    for (PartId p = 0; p < cfg_.numPartitions; ++p) {
        const PartState &ps = parts_[p];
        TraceSample s;
        s.access = accessesSeen_;
        s.part = p;
        s.targetSize = ps.targetSize;
        s.actualSize = ps.actualSize;
        s.aperture = apertureOf(ps);
        s.currentTs = ps.currentTs;
        s.setpointTs = ps.setpointTs;
        s.candsSeen = ps.candsSeen;
        s.candsDemoted = ps.candsDemoted;
        s.demotions = partStats_[p].demotions;
        s.promotions = partStats_[p].promotions;
        trace_->record(s);
    }
}

void
VantageController::tickAccessCounter(PartId part)
{
    PartState &ps = parts_[part];
    const std::uint64_t period =
        std::max<std::uint64_t>(ps.actualSize / 16, 1);
    if (++ps.accessCounter >= period) {
        ps.accessCounter = 0;
        ++ps.currentTs;
        // Keep the setpoint at a constant distance (Sec. 4.2).
        ++ps.setpointTs;
    }
}

void
VantageController::tickUnmanagedTs()
{
    if (++demotionsSinceTick_ >= unmanagedTickPeriod_) {
        demotionsSinceTick_ = 0;
        ++unmanagedTs_;
    }
}

bool
VantageController::inKeepWindow(const PartState &ps,
                                std::uint8_t ts) const
{
    // Keep lines whose timestamp lies in [SetpointTS, CurrentTS]
    // (Fig. 3b); everything outside is demotable.
    return inModRange(ts, ps.setpointTs,
                      static_cast<std::uint8_t>(ps.currentTs + 1), 8);
}

std::uint32_t
VantageController::desiredDemotions(const PartState &ps) const
{
    // The last lookup-table entry whose size bound does not exceed
    // ActualSize gives the allowed demotions per c candidates.
    std::uint32_t desired = 0;
    if (ps.actualSize > ps.targetSize) {
        for (std::uint32_t k = 0; k < cfg_.thresholdEntries; ++k) {
            if (ps.actualSize >= ps.thrSize[k]) {
                desired = ps.thrDems[k];
            }
        }
    }
    return desired;
}

void
VantageController::adjustSetpoint(PartId part)
{
    PartState &ps = parts_[part];
    ++stats_.setpointAdjusts;
    const std::uint32_t desired = desiredDemotions(ps);

    if (!hists_.empty()) {
        hists_[part].apertureBp.add(static_cast<std::uint64_t>(
            std::llround(apertureOf(ps) * 1e4)));
    }
#ifdef VANTAGE_TRACE_ENABLED
    if (TraceSession::instance().enabled(kTraceVantage)) {
        if (traceCounterNames_.empty()) {
            traceCounterNames_.resize(cfg_.numPartitions);
            for (PartId p = 0; p < cfg_.numPartitions; ++p) {
                traceCounterNames_[p] = TraceSession::instance().intern(
                    "vantage.aperture.part" + std::to_string(p));
            }
        }
        traceCounter(kTraceVantage, traceCounterNames_[part],
                     "aperture", apertureOf(ps));
        traceInstant(kTraceVantage, "vantage.setpoint_adjust", "part",
                     static_cast<double>(part));
    }
#endif

    const std::uint32_t window =
        modDist(ps.setpointTs,
                static_cast<std::uint8_t>(ps.currentTs + 1), 8);
    if (ps.candsDemoted > desired) {
        // Too many demotions: widen the keep window.
        if (window < 255) {
            --ps.setpointTs;
            recordVantageDecision(DecisionKind::SetpointWiden, part);
        }
    } else if (ps.candsDemoted < desired) {
        // Too few: shrink the keep window toward zero width.
        if (window > 0) {
            ++ps.setpointTs;
            recordVantageDecision(DecisionKind::SetpointShrink, part);
        }
    }
    ps.candsSeen = 0;
    ps.candsDemoted = 0;
}

bool
VantageController::shouldDemote(PartId part, const PartState &ps,
                                const Line &line) const
{
    (void)part;
    if (ps.actualSize <= ps.targetSize) {
        return false;
    }
    // A deleted partition (target 0) drains at full aperture.
    return ps.targetSize == 0 || !inKeepWindow(ps, line.rank);
}

std::uint8_t
VantageController::insertionRank(PartId part)
{
    return parts_[part].currentTs;
}

std::uint8_t
VantageController::hitRank(PartId part, std::uint8_t old_rank)
{
    (void)old_rank;
    return parts_[part].currentTs;
}

void
VantageController::onDemotionCheckKept(PartId part, Line &line)
{
    (void)part;
    (void)line;
}

void
VantageController::recordVantageDecision(DecisionKind kind, PartId part)
{
    DecisionAudit *const a = audit();
    if (a == nullptr) {
        return;
    }
    const PartState &ps = parts_[part];
    DecisionRecord rec;
    rec.kind = kind;
    rec.part = part;
    rec.accessesSeen = accessesSeen_;
    rec.targetLines = ps.targetSize;
    rec.actualLines = ps.actualSize;
    rec.apertureBp = static_cast<std::uint32_t>(
        std::llround(apertureOf(ps) * 1e4));
    rec.setpointTs = ps.setpointTs;
    rec.currentTs = ps.currentTs;
    rec.candsSeen = ps.candsSeen;
    rec.candsDemoted = ps.candsDemoted;
    a->record(rec);
}

double
VantageController::apertureOf(const PartState &ps) const
{
    // Eq. 7: linear in the outgrowth, clamped at Amax.
    if (ps.targetSize == 0) {
        return ps.actualSize > 0 ? cfg_.maxAperture : 0.0;
    }
    if (ps.actualSize <= ps.targetSize) {
        return 0.0;
    }
    const double overshoot =
        static_cast<double>(ps.actualSize - ps.targetSize) /
        static_cast<double>(ps.targetSize);
    if (overshoot >= cfg_.slack) {
        return cfg_.maxAperture;
    }
    return cfg_.maxAperture * overshoot / cfg_.slack;
}

double
VantageController::demotionPriority(const PartState &ps,
                                    std::uint8_t ts) const
{
    // Fraction of the partition's lines *younger* than this line —
    // i.e. the share the policy would rather keep. 1.0 would be the
    // globally oldest line.
    if (ps.actualSize == 0) {
        return 1.0;
    }
    const std::uint32_t age = modDist(ts, ps.currentTs, 8);
    std::uint64_t younger = 0;
    for (std::uint32_t a = 0; a < age; ++a) {
        younger += ps.tsHist[static_cast<std::uint8_t>(
            ps.currentTs - a)];
    }
    return std::min(1.0, static_cast<double>(younger) /
                             static_cast<double>(ps.actualSize));
}

void
VantageController::demote(Line &line, PartId from)
{
    PartState &ps = parts_[from];
    if (!hists_.empty()) {
        VantagePartHists &h = hists_[from];
        h.demotionAge.add(modDist(line.rank, ps.currentTs, 8));
        h.demotionGap.add(accessesSeen_ - h.lastDemotionAccess);
        h.lastDemotionAccess = accessesSeen_;
    }
    VANTAGE_TRACE_INSTANT(kTraceVantage, "vantage.demote", "part",
                          from);
    vantage_assert(ps.tsHist[line.rank] > 0,
                   "timestamp histogram underflow in partition %u",
                   from);
    --ps.tsHist[line.rank];
    vantage_assert(ps.actualSize > 0, "demotion from empty partition");
    --ps.actualSize;
    ++ps.candsDemoted;
    ++partStats_[from].demotions;
    ++stats_.demotions;

    line.part = kUnmanagedPart;
    line.rank = unmanagedTs_;
    ++unmanagedSize_;
    tickUnmanagedTs();
}

void
VantageController::onHit(CacheArray &array, LineId slot,
                         PartId accessor)
{
    Line &line = array.line(slot);
    vantage_assert(accessor < cfg_.numPartitions,
                   "accessor %u out of range", accessor);
    noteAccess();
    if (line.part == kUnmanagedPart) {
        // Promotion: the line rejoins the accessor's partition.
        VANTAGE_TRACE_INSTANT(kTraceVantage, "vantage.promote", "part",
                              accessor);
        PartState &ps = parts_[accessor];
        line.part = accessor;
        line.rank = hitRank(accessor, 0);
        ++ps.tsHist[line.rank];
        ++ps.actualSize;
        vantage_assert(unmanagedSize_ > 0,
                       "promotion from empty unmanaged region");
        --unmanagedSize_;
        ++partStats_[accessor].promotions;
        ++stats_.promotions;
        ++partStats_[accessor].hits;
        tickAccessCounter(accessor);
        return;
    }

    vantage_assert(line.part < cfg_.numPartitions,
                   "hit on line with bad partition %u", line.part);
    PartState &ps = parts_[line.part];
    vantage_assert(ps.tsHist[line.rank] > 0,
                   "timestamp histogram underflow in partition %u",
                   line.part);
    --ps.tsHist[line.rank];
    line.rank = hitRank(line.part, line.rank);
    ++ps.tsHist[line.rank];
    ++partStats_[line.part].hits;
    tickAccessCounter(line.part);
}

VictimChoice
VantageController::selectVictim(CacheArray &array, PartId inserting,
                                Addr addr, const CandidateBuf &cands)
{
    (void)inserting;
    (void)addr;
    VANTAGE_PROF("vantage.select_victim");
    VANTAGE_TRACE_SPAN(kTraceVantage, "vantage.select_victim");

    std::int32_t first_invalid = -1;
    std::int32_t oldest_unmanaged = -1;
    std::uint32_t oldest_age = 0;
    std::int32_t first_demoted = -1;
    PartId first_demoted_part = 0;

    Line *const lines = array.linesData();
    const Candidate *const cv = cands.data();
    const std::uint32_t cands_per_adjust = cfg_.candsPerAdjust;
    EmpiricalCdf *const cdf = demotionCdf_;
    const PartId cdf_part = demotionCdfPart_;
    const std::uint32_t n = cands.size();

    if (fastDemote_) {
        // Vectorized demotion pass over the hot SoA plane. Arrays
        // emit each slot at most once per candidate list, so one
        // up-front gather of {valid, part, rank} (classify) reads
        // exactly what the serial loop would have read lane by lane —
        // selectVictim itself is the only mutator while it runs, and
        // demote() only touches the lane being processed. The managed
        // lanes must still commit their side effects (candsSeen,
        // demotions, setpoint moves) serially in index order, because
        // each demotion can change the keep window the NEXT candidate
        // of that partition is judged against; the unmanaged-age fold
        // between two managed lanes is order-free because the
        // unmanaged timestamp only ticks inside demote(). See
        // DESIGN.md §15 for the full bit-identity argument.
        std::uint32_t parts[CandidateBuf::kCapacity];
        std::uint8_t ranks[CandidateBuf::kCapacity];
        std::uint64_t valid_mask = 0;
        std::uint64_t unmanaged_mask = 0;
        simd::ops().classify(lines, cv, n, parts, ranks, &valid_mask,
                             &unmanaged_mask);
        const std::uint64_t all =
            n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
        const std::uint64_t invalid_mask = ~valid_mask & all;
        if (invalid_mask != 0) {
            first_invalid = static_cast<std::int32_t>(
                __builtin_ctzll(invalid_mask));
        }

        // Fold the oldest unmanaged candidate over lanes [lo, hi)
        // with the CURRENT unmanaged timestamp — called before each
        // managed lane commits (and once for the final span), which
        // reproduces the serial loop's timestamp observation order.
        const auto fold_unmanaged = [&](std::uint32_t lo,
                                        std::uint32_t hi) {
            if (lo >= hi) {
                return;
            }
            std::uint64_t m = (unmanaged_mask >> lo) << lo;
            if (hi < 64) {
                m &= (std::uint64_t{1} << hi) - 1;
            }
            const std::uint8_t uts = unmanagedTs_;
            while (m != 0) {
                const std::uint32_t i = static_cast<std::uint32_t>(
                    __builtin_ctzll(m));
                m &= m - 1;
                const std::uint32_t age =
                    static_cast<std::uint8_t>(uts - ranks[i]);
                if (oldest_unmanaged < 0 || age > oldest_age) {
                    oldest_unmanaged = static_cast<std::int32_t>(i);
                    oldest_age = age;
                }
            }
        };

        std::uint64_t managed = valid_mask & ~unmanaged_mask;
        std::uint32_t span_lo = 0;
        while (managed != 0) {
            const std::uint32_t i = static_cast<std::uint32_t>(
                __builtin_ctzll(managed));
            managed &= managed - 1;
            fold_unmanaged(span_lo, i);
            span_lo = i + 1;

            // Managed candidate: demotion check (Sec. 4.3).
            const PartId p = parts[i];
            vantage_assert(p < cfg_.numPartitions,
                           "candidate with bad partition %u", p);
            PartState &ps = parts_[p];
            ++ps.candsSeen;
            const bool dem =
                ps.actualSize > ps.targetSize &&
                (ps.targetSize == 0 || !inKeepWindow(ps, ranks[i]));
            if (dem) {
                if (cdf != nullptr && p == cdf_part) {
                    cdf->add(demotionPriority(ps, ranks[i]));
                }
                demote(lines[cv[i].slot], p);
                if (first_demoted < 0) {
                    first_demoted = static_cast<std::int32_t>(i);
                    first_demoted_part = p;
                }
            }
            if (ps.candsSeen >= cands_per_adjust) {
                adjustSetpoint(p);
            }
        }
        fold_unmanaged(span_lo, n);
    } else {
        // Variants override the demotion hooks: keep the serial
        // reference loop with the virtual calls.
        for (std::uint32_t i = 0; i < n; ++i) {
#if defined(__GNUC__) || defined(__clang__)
            // Hide the hot-array load latency of candidate i+8
            // behind the demotion work on candidate i.
            if (i + 8 < n) {
                __builtin_prefetch(&lines[cv[i + 8].slot], 0, 1);
            }
#endif
            Line &line = lines[cv[i].slot];
            if (!line.valid()) {
                if (first_invalid < 0) {
                    first_invalid = static_cast<std::int32_t>(i);
                }
                continue;
            }
            if (line.part == kUnmanagedPart) {
                const std::uint32_t age =
                    modDist(line.rank, unmanagedTs_, 8);
                if (oldest_unmanaged < 0 || age > oldest_age) {
                    oldest_unmanaged = static_cast<std::int32_t>(i);
                    oldest_age = age;
                }
                continue;
            }

            // Managed candidate: demotion check (Sec. 4.3).
            const PartId p = line.part;
            vantage_assert(p < cfg_.numPartitions,
                           "candidate with bad partition %u", p);
            PartState &ps = parts_[p];
            ++ps.candsSeen;
            const bool dem = shouldDemote(p, ps, line);
            if (dem) {
                if (cdf != nullptr && p == cdf_part) {
                    cdf->add(demotionPriority(ps, line.rank));
                }
                demote(line, p);
                if (first_demoted < 0) {
                    first_demoted = static_cast<std::int32_t>(i);
                    first_demoted_part = p;
                }
            } else {
                onDemotionCheckKept(p, line);
            }
            if (ps.candsSeen >= cands_per_adjust) {
                adjustSetpoint(p);
            }
        }
    }

    if (first_invalid >= 0) {
        return {first_invalid, false};
    }

    ++stats_.evictions;
    if (oldest_unmanaged >= 0) {
        return {oldest_unmanaged, false};
    }

    // No unmanaged candidate: a forced eviction from the managed
    // region (should be rare when u is sized per the models).
    ++stats_.evictionsFromManaged;
    if (first_demoted >= 0) {
        recordVantageDecision(DecisionKind::ForcedEviction,
                              first_demoted_part);
        return {first_demoted, false};
    }

    // Nothing was even demotable; evict the candidate that is oldest
    // within its own partition.
    std::int32_t victim = 0;
    double victim_age = -1.0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        const Line &line = lines[cv[i].slot];
        const PartState &ps = parts_[line.part];
        const double age = demotionPriority(ps, line.rank);
        if (age > victim_age) {
            victim_age = age;
            victim = static_cast<std::int32_t>(i);
        }
    }
    const PartId victim_part = array.line(cands[victim].slot).part;
    ++partStats_[victim_part].forcedEvictions;
    recordVantageDecision(DecisionKind::ForcedEviction, victim_part);
    return {victim, false};
}

void
VantageController::onEvict(CacheArray &array, LineId slot)
{
    const Line &line = array.line(slot);
    if (line.part == kUnmanagedPart) {
        vantage_assert(unmanagedSize_ > 0,
                       "eviction from empty unmanaged region");
        --unmanagedSize_;
        return;
    }
    vantage_assert(line.part < cfg_.numPartitions,
                   "eviction of line with bad partition %u", line.part);
    PartState &ps = parts_[line.part];
    if (!hists_.empty()) {
        hists_[line.part].evictionAge.add(
            modDist(line.rank, ps.currentTs, 8));
    }
    vantage_assert(ps.tsHist[line.rank] > 0,
                   "timestamp histogram underflow in partition %u",
                   line.part);
    --ps.tsHist[line.rank];
    vantage_assert(ps.actualSize > 0, "eviction from empty partition");
    --ps.actualSize;
}

void
VantageController::onInsert(CacheArray &array, LineId slot,
                            PartId part)
{
    Line &line = array.line(slot);
    vantage_assert(part < cfg_.numPartitions,
                   "insertion into bad partition %u", part);
    noteAccess();
    PartState &ps = parts_[part];

    if (cfg_.throttleHighChurn) {
        // Sec. 3.4, option 2: once the aperture has saturated (size
        // beyond the slack band), stop feeding the partition — its
        // fills land in the unmanaged region and age out normally.
        const std::uint64_t limit =
            ps.targetSize +
            static_cast<std::uint64_t>(
                cfg_.slack * static_cast<double>(ps.targetSize));
        if (ps.actualSize >= limit) {
            line.part = kUnmanagedPart;
            line.rank = unmanagedTs_;
            ++unmanagedSize_;
            ++partStats_[part].throttledInserts;
            recordVantageDecision(DecisionKind::ThrottledInsert, part);
            tickAccessCounter(part);
            return;
        }
    }

    line.part = part;
    line.rank = insertionRank(part);
    ++ps.tsHist[line.rank];
    ++ps.actualSize;
    ++partStats_[part].insertions;
    tickAccessCounter(part);
}

std::uint64_t
VantageController::actualSize(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    return parts_[part].actualSize;
}

std::uint64_t
VantageController::targetSize(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    return parts_[part].targetSize;
}

void
VantageController::checkInvariants(const CacheArray &array,
                                   InvariantReport &rep) const
{
    const std::uint32_t num_parts = cfg_.numPartitions;

    // Ground truth: rescan the array and rebuild sizes + histograms.
    std::vector<std::uint64_t> counted(num_parts, 0);
    std::vector<std::array<std::uint64_t, 256>> hist(num_parts);
    for (auto &h : hist) {
        h.fill(0);
    }
    std::uint64_t counted_unmanaged = 0;
    for (LineId slot = 0; slot < array.numLines(); ++slot) {
        const Line &line = array.line(slot);
        if (!line.valid()) {
            continue;
        }
        if (line.part == kUnmanagedPart) {
            ++counted_unmanaged;
            continue;
        }
        if (!rep.expect(line.part < num_parts,
                        "vantage: line %#llx carries illegal "
                        "partition %u",
                        static_cast<unsigned long long>(line.addr),
                        line.part)) {
            continue;
        }
        ++counted[line.part];
        ++hist[line.part][line.rank];
    }

    // Conservation: demotions/promotions/evictions must only move
    // lines between the managed partitions and the unmanaged region,
    // never create or leak them.
    rep.expect(counted_unmanaged == unmanagedSize_,
               "vantage: unmanaged recount %llu != UnmanagedSize %llu",
               static_cast<unsigned long long>(counted_unmanaged),
               static_cast<unsigned long long>(unmanagedSize_));

    std::uint64_t target_total = 0;
    for (PartId p = 0; p < num_parts; ++p) {
        const PartState &ps = parts_[p];
        rep.expect(counted[p] == ps.actualSize,
                   "vantage: part %u recount %llu != ActualSize %llu",
                   p, static_cast<unsigned long long>(counted[p]),
                   static_cast<unsigned long long>(ps.actualSize));
        for (std::uint32_t ts = 0; ts < 256; ++ts) {
            if (hist[p][ts] != ps.tsHist[ts]) {
                rep.fail("vantage: part %u tsHist[%u] = %llu, recount "
                         "%llu",
                         p, ts,
                         static_cast<unsigned long long>(
                             ps.tsHist[ts]),
                         static_cast<unsigned long long>(hist[p][ts]));
                break; // One histogram mismatch per partition.
            }
        }

        // Fig. 4 register file self-consistency.
        rep.expect(ps.candsDemoted <= ps.candsSeen,
                   "vantage: part %u CandsDemoted %u > CandsSeen %u",
                   p, ps.candsDemoted, ps.candsSeen);
        rep.expect(ps.candsSeen <= cfg_.candsPerAdjust,
                   "vantage: part %u CandsSeen %u exceeds c = %u", p,
                   ps.candsSeen, cfg_.candsPerAdjust);
        rep.expect(apertureOf(ps) <=
                       cfg_.maxAperture + 1e-9,
                   "vantage: part %u aperture %f above Amax %f", p,
                   apertureOf(ps), cfg_.maxAperture);

        // Threshold table (Fig. 3c): a staircase approximation of the
        // linear transfer function must be monotone in both columns
        // and never allow more demotions than candidates seen.
        for (std::uint32_t k = 0; k < cfg_.thresholdEntries; ++k) {
            if (k > 0) {
                rep.expect(ps.thrSize[k] >= ps.thrSize[k - 1],
                           "vantage: part %u ThrSize not monotone at "
                           "entry %u",
                           p, k);
                rep.expect(ps.thrDems[k] >= ps.thrDems[k - 1],
                           "vantage: part %u ThrDems not monotone at "
                           "entry %u",
                           p, k);
            }
            rep.expect(ps.thrDems[k] >= 1 &&
                           ps.thrDems[k] <= cfg_.candsPerAdjust,
                       "vantage: part %u ThrDems[%u] = %u outside "
                       "[1, c = %u]",
                       p, k, ps.thrDems[k], cfg_.candsPerAdjust);
        }
        // Dynamic lifecycle: a retired slot must stay at target 0 so
        // its residue keeps draining at full aperture.
        rep.expect(partitionActive(p) || ps.targetSize == 0,
                   "vantage: retired part %u has target %llu", p,
                   static_cast<unsigned long long>(ps.targetSize));
        target_total += ps.targetSize;
    }
    rep.expect(target_total <= managedLines_,
               "vantage: targets total %llu above managed capacity "
               "%llu",
               static_cast<unsigned long long>(target_total),
               static_cast<unsigned long long>(managedLines_));
}

const VantagePartStats &
VantageController::partStats(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    return partStats_[part];
}

void
VantageController::resetStats()
{
    stats_ = VantageStats{};
    for (auto &s : partStats_) {
        s = VantagePartStats{};
    }
    for (auto &h : hists_) {
        h.apertureBp.reset();
        h.demotionAge.reset();
        h.evictionAge.reset();
        h.demotionGap.reset();
        // Anchor the gap series at the reset point, not at the last
        // pre-warmup demotion.
        h.lastDemotionAccess = accessesSeen_;
    }
}

void
VantageController::enableHistograms()
{
    if (hists_.empty()) {
        hists_.resize(cfg_.numPartitions);
    }
}

const VantagePartHists &
VantageController::partHists(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    vantage_assert(!hists_.empty(), "histograms not enabled");
    return hists_[part];
}

void
VantageController::attachDemotionCdf(PartId part, EmpiricalCdf *cdf)
{
    demotionCdfPart_ = part;
    demotionCdf_ = cdf;
}

std::uint8_t
VantageController::currentTs(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    return parts_[part].currentTs;
}

std::uint8_t
VantageController::setpointTs(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    return parts_[part].setpointTs;
}

double
VantageController::aperture(PartId part) const
{
    vantage_assert(part < cfg_.numPartitions,
                   "partition %u out of range", part);
    return apertureOf(parts_[part]);
}

void
VantageController::attachTrace(ControllerTrace *trace)
{
    trace_ = trace;
}

void
VantageController::registerStats(StatsRegistry &reg,
                                 const std::string &prefix) const
{
    reg.addCounter(prefix + ".evictions", &stats_.evictions);
    reg.addCounter(prefix + ".evictions_from_managed",
                   &stats_.evictionsFromManaged);
    reg.addCounter(prefix + ".demotions", &stats_.demotions);
    reg.addCounter(prefix + ".promotions", &stats_.promotions);
    reg.addCounter(prefix + ".setpoint_adjusts",
                   &stats_.setpointAdjusts);
    reg.addCounter(prefix + ".accesses", &accessesSeen_);
    reg.addGauge(prefix + ".unmanaged_size",
                 [this] { return static_cast<double>(unmanagedSize_); });
    reg.addGauge(prefix + ".managed_lines", [this] {
        return static_cast<double>(managedLines_);
    });
    for (PartId p = 0; p < cfg_.numPartitions; ++p) {
        const std::string base =
            prefix + ".part" + std::to_string(p);
        const PartState *ps = &parts_[p];
        const VantagePartStats *st = &partStats_[p];
        reg.addGauge(base + ".target", [ps] {
            return static_cast<double>(ps->targetSize);
        });
        reg.addGauge(base + ".actual", [ps] {
            return static_cast<double>(ps->actualSize);
        });
        reg.addGauge(base + ".aperture",
                     [this, ps] { return apertureOf(*ps); });
        reg.addGauge(base + ".setpoint_ts", [ps] {
            return static_cast<double>(ps->setpointTs);
        });
        reg.addGauge(base + ".current_ts", [ps] {
            return static_cast<double>(ps->currentTs);
        });
        reg.addCounter(base + ".hits", &st->hits);
        reg.addCounter(base + ".insertions", &st->insertions);
        reg.addCounter(base + ".demotions", &st->demotions);
        reg.addCounter(base + ".promotions", &st->promotions);
        reg.addCounter(base + ".forced_evictions",
                       &st->forcedEvictions);
        reg.addCounter(base + ".throttled_inserts",
                       &st->throttledInserts);
        if (!hists_.empty()) {
            const VantagePartHists *h = &hists_[p];
            reg.addHistogram(base + ".hist.aperture_bp",
                             &h->apertureBp);
            reg.addHistogram(base + ".hist.demotion_age",
                             &h->demotionAge);
            reg.addHistogram(base + ".hist.eviction_age",
                             &h->evictionAge);
            reg.addHistogram(base + ".hist.demotion_gap",
                             &h->demotionGap);
        }
    }
}

void
VantageController::registerIntrospection(
    StatsRegistry &reg, const std::string &prefix) const
{
    reg.addString(prefix + ".scheme", name());

    // Global region split and churn counters. Counters register by
    // raw pointer so the sampler thread reads them with relaxed
    // atomic loads; gauges are single-word reads.
    reg.addGauge(prefix + ".managed_lines", [this] {
        return static_cast<double>(managedLines_);
    });
    reg.addGauge(prefix + ".unmanaged_lines", [this] {
        return static_cast<double>(unmanagedSize_);
    });
    reg.addCounter(prefix + ".evictions", &stats_.evictions);
    reg.addCounter(prefix + ".evictions_from_managed",
                   &stats_.evictionsFromManaged);
    reg.addCounter(prefix + ".demotions", &stats_.demotions);
    reg.addCounter(prefix + ".promotions", &stats_.promotions);
    reg.addCounter(prefix + ".setpoint_adjusts",
                   &stats_.setpointAdjusts);
    reg.addCounter(prefix + ".accesses", &accessesSeen_);

    // Size the lifecycle flags before installing guards that read
    // them from the sampler thread (see PartitionScheme).
    ensureLifecycle();
    for (PartId p = 0; p < cfg_.numPartitions; ++p) {
        const std::string base =
            prefix + ".part" + std::to_string(p);
        const PartState *ps = &parts_[p];
        const VantagePartStats *st = &partStats_[p];

        // Convergence state: aperture in basis points (Eq. 7 over
        // live outgrowth) plus the Fig. 4 timestamp registers.
        reg.addGauge(base + ".aperture_bp", [this, ps] {
            return apertureOf(*ps) * 10000.0;
        });
        reg.addGauge(base + ".target_lines", [ps] {
            return static_cast<double>(ps->targetSize);
        });
        reg.addGauge(base + ".actual_lines", [ps] {
            return static_cast<double>(ps->actualSize);
        });
        reg.addGauge(base + ".setpoint_ts", [ps] {
            return static_cast<double>(ps->setpointTs);
        });
        reg.addGauge(base + ".current_ts", [ps] {
            return static_cast<double>(ps->currentTs);
        });

        // Churn counters; rates come from the snapshot deltas.
        reg.addCounter(base + ".hits", &st->hits);
        reg.addCounter(base + ".insertions", &st->insertions);
        reg.addCounter(base + ".demotions", &st->demotions);
        reg.addCounter(base + ".promotions", &st->promotions);
        reg.addCounter(base + ".forced_evictions",
                       &st->forcedEvictions);
        reg.addCounter(base + ".throttled_inserts",
                       &st->throttledInserts);

        // Threshold-table summary (Fig. 3c): enough to see whether
        // the table is built and how aggressive its top bin is,
        // without exporting all 8 rows. The table vectors are only
        // resized at construction; rebuilds rewrite elements in
        // place, so these reads stay within bounds concurrently.
        reg.addGauge(base + ".thr_entries", [ps] {
            return static_cast<double>(ps->thrSize.size());
        });
        reg.addGauge(base + ".thr_size_floor", [ps] {
            return ps->thrSize.empty()
                       ? 0.0
                       : static_cast<double>(ps->thrSize.front());
        });
        reg.addGauge(base + ".thr_dems_max", [ps] {
            return ps->thrDems.empty()
                       ? 0.0
                       : static_cast<double>(ps->thrDems.back());
        });
        // Retired slots drop their partN series until slot reuse.
        reg.addGuard(base, [this, p] { return partitionActive(p); });
    }
}

} // namespace vantage

/**
 * @file
 * Gradual repartitioning (paper Sec. 3.4, transient behavior).
 *
 * "Vantage applications that resize partitions at high frequency
 * should control the upsizing and downsizing of partitions
 * progressively and in multiple steps" — otherwise upsized partitions
 * can gain capacity faster than downsized ones release it, and the
 * managed region transiently outgrows its share.
 *
 * GradualResizer sits between an allocation policy and a
 * VantageController: the policy sets *goals*; each step() moves the
 * live targets a bounded number of lines toward the goals, applying
 * decreases before increases so the total never exceeds the managed
 * region.
 */

#ifndef VANTAGE_CORE_RESIZER_H_
#define VANTAGE_CORE_RESIZER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.h"
#include "core/vantage.h"

namespace vantage {

/** Moves Vantage targets toward goals in bounded steps. */
class GradualResizer
{
  public:
    /**
     * @param controller the controller whose targets are managed.
     * @param max_step_lines largest per-partition change per step().
     */
    GradualResizer(VantageController &controller,
                   std::uint64_t max_step_lines)
        : controller_(controller), maxStep_(max_step_lines)
    {
        vantage_assert(max_step_lines > 0, "step must be positive");
        goals_.resize(controller.numPartitions());
        for (PartId p = 0; p < controller.numPartitions(); ++p) {
            goals_[p] = controller.targetSize(p);
        }
    }

    /** Set the goals; takes effect over subsequent step() calls. */
    void
    setGoals(const std::vector<std::uint64_t> &goals)
    {
        vantage_assert(goals.size() == goals_.size(),
                       "got %zu goals for %zu partitions",
                       goals.size(), goals_.size());
        std::uint64_t total = 0;
        for (const auto g : goals) {
            total += g;
        }
        vantage_assert(total <= controller_.managedLines(),
                       "goals exceed the managed region");
        goals_ = goals;
    }

    /**
     * Advance every target at most max_step_lines toward its goal.
     * Increases are limited to the capacity currently freed, so the
     * sum of targets never rises above its pre-step value plus what
     * decreases released. @return true when all goals are reached.
     */
    bool
    step()
    {
        const std::uint32_t n = controller_.numPartitions();
        std::vector<std::uint64_t> next(n);
        for (PartId p = 0; p < n; ++p) {
            const std::uint64_t cur = controller_.targetSize(p);
            next[p] = cur;
            if (goals_[p] < cur) {
                next[p] = cur - std::min(maxStep_, cur - goals_[p]);
            }
        }

        // Headroom: anything already unallocated plus what decreases
        // just released.
        std::uint64_t allocated = 0;
        for (PartId p = 0; p < n; ++p) {
            allocated += next[p];
        }
        std::uint64_t headroom =
            controller_.managedLines() - allocated;

        bool done = true;
        for (PartId p = 0; p < n && headroom > 0; ++p) {
            if (goals_[p] > next[p]) {
                std::uint64_t delta =
                    std::min(maxStep_, goals_[p] - next[p]);
                // Share headroom proportionally-enough: first come,
                // bounded per step; leftovers arrive next step.
                delta = std::min(delta, headroom);
                next[p] += delta;
                headroom -= delta;
            }
        }
        for (PartId p = 0; p < n; ++p) {
            if (next[p] != goals_[p]) {
                done = false;
            }
        }
        controller_.setTargetLines(next);
        return done;
    }

    const std::vector<std::uint64_t> &goals() const { return goals_; }

  private:
    VantageController &controller_;
    std::uint64_t maxStep_;
    std::vector<std::uint64_t> goals_;
};

} // namespace vantage

#endif // VANTAGE_CORE_RESIZER_H_

/**
 * @file
 * Closed-form analytical models from the Vantage paper.
 *
 * Vantage is "derived from statistical analysis, not empirical
 * observation" (Sec. 3.1); every bound the controller relies on comes
 * from the formulas below. The simulation benches and tests validate
 * the implementation against these forms (and they directly generate
 * Figs. 1, 2 and 5).
 *
 * Notation (as in the paper):
 *   R     replacement candidates per eviction
 *   u     fraction of the cache left unmanaged; m = 1 - u managed
 *   A     aperture: fraction of a partition demoted when seen
 *   Amax  maximum allowed aperture
 *   Ci    churn (insertion rate) of partition i
 *   Si    actual size of partition i (fraction of the cache)
 *   Ti    target size of partition i
 *   Pev   worst-case probability of a forced managed-region eviction
 */

#ifndef VANTAGE_CORE_MODEL_H_
#define VANTAGE_CORE_MODEL_H_

#include <cstdint>

namespace vantage {
namespace model {

/**
 * Eq. 1 — associativity CDF under the uniformity assumption:
 * FA(x) = x^R for x in [0, 1].
 */
double assocCdf(double x, std::uint32_t r);

/** Binomial PMF B(i, R) with success probability p. */
double binomialPmf(std::uint32_t i, std::uint32_t r, double p);

/**
 * Eq. 2 — associativity CDF for demotions in the managed region when
 * exactly one demotion is performed per eviction:
 * FM(x) ~= sum_{i=1}^{R-1} B(i, R) x^i, with B(i, R) binomial in the
 * managed fraction m = 1 - u. (The i = 0 and i = R terms are
 * negligible and ignored, as in the paper.)
 */
double managedCdfExactOne(double x, std::uint32_t r, double u);

/**
 * Eq. 3 — associativity CDF when demoting one line per eviction *on
 * average*, using an aperture A: uniform on [1 - A, 1].
 */
double managedCdfOnAverage(double x, double aperture);

/** The steady-state aperture 1 / (R * m) that balances equal parts. */
double balancedAperture(std::uint32_t r, double m);

/**
 * Eq. 4 — aperture for a partition with churn share ci = Ci / sum(C)
 * and size share si = Si / sum(S):  A_i = (ci / si) * 1 / (R * m).
 */
double aperture(double churn_share, double size_share, std::uint32_t r,
                double m);

/**
 * Eq. 5 — minimum stable size (fraction of the cache) of a partition
 * with churn share ci when clamped at Amax:
 * MSS_i = ci * sum(S) / (Amax * R * m).
 */
double minStableSize(double churn_share, double total_size, double amax,
                     std::uint32_t r, double m);

/**
 * Eq. 6 — worst-case aggregate space borrowed from the unmanaged
 * region by high-churn partitions: ~= 1 / (Amax * R).
 */
double worstCaseBorrow(double amax, std::uint32_t r);

/**
 * Eq. 9 — aggregate steady-state outgrowth due to feedback-based
 * aperture control with the given slack: slack / (Amax * R).
 */
double aggregateOutgrowth(double slack, double amax, std::uint32_t r);

/**
 * Sec. 4.3 — unmanaged region sizing:
 * u = 1 - Pev^(1/R) + (1 + slack) / (Amax * R).
 *
 * The first term makes forced managed-region evictions rarer than
 * Pev; the second leaves room for minimum stable sizes and feedback
 * slack.
 */
double unmanagedFraction(std::uint32_t r, double amax, double slack,
                         double pev);

/**
 * Inverse of the Pev term: the worst-case forced-eviction probability
 * for a given unmanaged fraction, Pev = (1 - u_ev)^R, where u_ev is
 * the share of the unmanaged region actually providing eviction
 * candidates (i.e. u minus the borrow/slack reserves).
 */
double worstCaseEvictionProb(std::uint32_t r, double u_ev);

/**
 * Hardware state cost of a Vantage implementation (Sec. 4.3 and
 * Fig. 4): per-tag partition-id bits on top of a nominal tag, plus
 * the per-partition controller register file.
 */
struct StateOverhead
{
    std::uint32_t tagBitsPerLine;    ///< Partition-id bits added.
    std::uint64_t controllerBits;    ///< Register-file bits total.
    double tagOverhead;              ///< Fraction of cache capacity.
    double totalOverhead;            ///< Tags + controller fraction.
};

/**
 * Compute the overheads for a cache of `lines` 64-byte lines with
 * `partitions` partitions (plus the unmanaged-region id) and
 * `banks` banks, assuming nominal 64-bit tags and the Fig. 4
 * register file (256 bits per partition per bank).
 */
StateOverhead stateOverhead(std::uint64_t lines,
                            std::uint32_t partitions,
                            std::uint32_t banks = 1);

} // namespace model
} // namespace vantage

#endif // VANTAGE_CORE_MODEL_H_

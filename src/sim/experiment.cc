#include "sim/experiment.h"

#include <cstdlib>

#include "array/random_array.h"
#include "array/set_assoc.h"
#include "array/zarray.h"
#include "common/log.h"
#include "core/vantage_variants.h"
#include "obs/metrics_service.h"
#include "partition/pipp.h"
#include "partition/unpartitioned.h"
#include "partition/way_partition.h"
#include "replacement/lru.h"
#include "replacement/rrip.h"
#include "stats/registry.h"
#include "trace/event_trace.h"

namespace vantage {

const char *
arrayKindName(ArrayKind k)
{
    switch (k) {
      case ArrayKind::Z4_52:
        return "Z4/52";
      case ArrayKind::Z4_16:
        return "Z4/16";
      case ArrayKind::SA16:
        return "SA16";
      case ArrayKind::SA64:
        return "SA64";
      case ArrayKind::Random:
        return "Rand52";
    }
    panic("bad array kind %d", static_cast<int>(k));
}

const char *
schemeKindName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::UnpartLru:
        return "LRU";
      case SchemeKind::UnpartSrrip:
        return "SRRIP";
      case SchemeKind::UnpartDrrip:
        return "DRRIP";
      case SchemeKind::UnpartTaDrrip:
        return "TA-DRRIP";
      case SchemeKind::WayPart:
        return "WayPart";
      case SchemeKind::Pipp:
        return "PIPP";
      case SchemeKind::Vantage:
        return "Vantage";
      case SchemeKind::VantageDrrip:
        return "Vantage-DRRIP";
      case SchemeKind::VantageOracle:
        return "Vantage-Oracle";
    }
    panic("bad scheme kind %d", static_cast<int>(k));
}

std::string
L2Spec::name() const
{
    return std::string(schemeKindName(scheme)) + "-" +
           arrayKindName(array);
}

std::unique_ptr<CacheArray>
buildArray(const L2Spec &spec)
{
    switch (spec.array) {
      case ArrayKind::Z4_52:
        return std::make_unique<ZArray>(spec.lines, 4, 52, spec.seed);
      case ArrayKind::Z4_16:
        return std::make_unique<ZArray>(spec.lines, 4, 16, spec.seed);
      case ArrayKind::SA16:
        return std::make_unique<SetAssocArray>(spec.lines, 16, true,
                                               spec.seed);
      case ArrayKind::SA64:
        return std::make_unique<SetAssocArray>(spec.lines, 64, true,
                                               spec.seed);
      case ArrayKind::Random:
        return std::make_unique<RandomArray>(spec.lines, 52,
                                             spec.seed);
    }
    panic("bad array kind %d", static_cast<int>(spec.array));
}

namespace {

/** Associativity the DRRIP dueling monitors model. */
std::uint32_t
monitorWays(const L2Spec &spec)
{
    switch (spec.array) {
      case ArrayKind::SA16:
        return 16;
      case ArrayKind::SA64:
        return 64;
      default:
        return 16; // Stand-in geometry for zcaches.
    }
}

/** LRU flavor matched to the array: exact for SA, coarse for Z. */
std::unique_ptr<ReplPolicy>
baseLru(const L2Spec &spec)
{
    if (spec.array == ArrayKind::SA16 ||
        spec.array == ArrayKind::SA64) {
        return std::make_unique<ExactLru>();
    }
    return std::make_unique<CoarseLru>(spec.lines);
}

} // namespace

std::unique_ptr<Cache>
buildL2(const L2Spec &spec)
{
    std::unique_ptr<CacheArray> array = buildArray(spec);
    const std::uint32_t ways = array->numWays();
    const std::uint64_t lines_per_way = spec.lines / ways;

    std::unique_ptr<PartitionScheme> scheme;
    VantageConfig vcfg = spec.vantage;
    vcfg.numPartitions = spec.numPartitions;

    switch (spec.scheme) {
      case SchemeKind::UnpartLru:
        scheme = std::make_unique<Unpartitioned>(spec.numPartitions,
                                                 baseLru(spec));
        break;
      case SchemeKind::UnpartSrrip:
        scheme = std::make_unique<Unpartitioned>(
            spec.numPartitions, std::make_unique<Srrip>());
        break;
      case SchemeKind::UnpartDrrip:
        scheme = std::make_unique<Unpartitioned>(
            spec.numPartitions,
            std::make_unique<Drrip>(spec.lines, monitorWays(spec),
                                    spec.seed));
        break;
      case SchemeKind::UnpartTaDrrip:
        scheme = std::make_unique<Unpartitioned>(
            spec.numPartitions,
            std::make_unique<TaDrrip>(spec.numPartitions, spec.lines,
                                      monitorWays(spec), spec.seed));
        break;
      case SchemeKind::WayPart:
        scheme = std::make_unique<WayPartitioning>(
            spec.numPartitions, ways, lines_per_way,
            std::make_unique<ExactLru>());
        break;
      case SchemeKind::Pipp:
        scheme = std::make_unique<Pipp>(spec.numPartitions, ways,
                                        lines_per_way, spec.lines,
                                        PippConfig{}, spec.seed);
        break;
      case SchemeKind::Vantage:
        scheme = std::make_unique<VantageController>(spec.lines, vcfg);
        break;
      case SchemeKind::VantageDrrip:
        scheme = std::make_unique<VantageRrip>(spec.lines, vcfg,
                                               spec.seed);
        break;
      case SchemeKind::VantageOracle:
        scheme = std::make_unique<VantageOracle>(spec.lines, vcfg);
        break;
    }
    vantage_assert(scheme != nullptr, "no scheme built");
    return std::make_unique<Cache>(std::move(array),
                                   std::move(scheme), spec.name());
}

std::unique_ptr<BankedCache>
buildBankedL2(const L2Spec &spec, std::uint32_t banks)
{
    vantage_assert(banks > 0, "need at least one bank");
    vantage_assert(spec.lines % banks == 0,
                   "%llu lines do not split into %u banks",
                   static_cast<unsigned long long>(spec.lines),
                   banks);
    std::vector<std::unique_ptr<Cache>> bs;
    bs.reserve(banks);
    for (std::uint32_t b = 0; b < banks; ++b) {
        // Same per-bank derivation as the fuzz driver: distinct
        // array/scheme seeds per bank, per-bank share of the lines.
        L2Spec bank_spec = spec;
        bank_spec.lines = spec.lines / banks;
        bank_spec.seed = spec.seed + 0x9e37ull * (b + 1);
        bs.push_back(buildL2(bank_spec));
    }
    return std::make_unique<BankedCache>(std::move(bs),
                                         spec.seed ^ 0xba4cull);
}

RunScale
RunScale::fromEnv()
{
    RunScale scale;
    if (const char *s = std::getenv("VANTAGE_WARMUP")) {
        scale.warmupAccesses = std::strtoull(s, nullptr, 10);
    }
    if (const char *s = std::getenv("VANTAGE_INSTRS")) {
        scale.instructions = std::strtoull(s, nullptr, 10);
    }
    if (const char *s = std::getenv("VANTAGE_MIX_SEEDS")) {
        scale.mixSeedsPerClass = static_cast<std::uint32_t>(
            std::strtoul(s, nullptr, 10));
    }
    if (const char *s = std::getenv("VANTAGE_STATS_PERIOD")) {
        scale.statsPeriod = std::strtoull(s, nullptr, 10);
        if (scale.statsPeriod == 0) {
            warn_once("VANTAGE_STATS_PERIOD=0 clamped to 1");
            scale.statsPeriod = 1;
        }
    }
    if (const char *s = std::getenv("VANTAGE_JOBS")) {
        scale.jobs = static_cast<std::uint32_t>(
            std::strtoul(s, nullptr, 10));
    }
    if (const char *s = std::getenv("VANTAGE_HEARTBEAT")) {
        scale.heartbeatEvery = std::strtoull(s, nullptr, 10);
    }
    return scale;
}

MixResult
runMix(const CmpConfig &cfg, const L2Spec &spec,
       const std::vector<AppSpec> &apps, const RunScale &scale,
       const std::string &mix_name, std::uint64_t seed,
       const MixHooks &hooks)
{
    CmpSim sim(cfg, apps, buildL2(spec), seed);
    if (scale.heartbeatEvery != 0) {
        sim.setHeartbeat(scale.heartbeatEvery,
                         mix_name + "/" + spec.name());
        if (hooks.heartbeatSink) {
            sim.setHeartbeatSink(hooks.heartbeatSink);
        }
    }

    // Live metrics: the registry must outlive the service's view of
    // it, so it is scoped to the whole run and unregistered before
    // the sim is torn down.
    StatsRegistry live_reg;
    if (hooks.metrics != nullptr) {
        sim.registerLiveStats(live_reg);
        hooks.metrics->addSource(
            hooks.job.empty() ? mix_name + "/" + spec.name()
                              : hooks.job,
            &live_reg);
    }

    {
        TraceSpan span(kTraceSim, "sim.warmup");
        sim.warmup(scale.warmupAccesses);
    }
    sim.l2().resetStats();
    {
        TraceSpan span(kTraceSim, "sim.run");
        sim.run(scale.instructions);
    }

    if (hooks.metrics != nullptr) {
        hooks.metrics->removeSource(&live_reg);
    }

    MixResult result;
    result.mix = mix_name;
    result.config = spec.name();
    result.throughput = sim.throughput();
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        result.cores.push_back(sim.result(c));
    }
    return result;
}

} // namespace vantage

/**
 * @file
 * Indexed min-heap over per-core clocks.
 *
 * The CMP simulator advances the core with the smallest local cycle
 * count on every step. A linear scan is O(cores) per step and starts
 * to dominate the sim loop beyond a handful of cores; this heap keeps
 * the minimum at the root so the scheduler pays O(1) per query and
 * O(log cores) per clock update.
 *
 * Ordering is lexicographic on (cycle, core index), which makes the
 * minimum unique: ties on cycle resolve to the lowest core index,
 * exactly the core a first-match linear scan with strict `<` would
 * return. That equivalence is what keeps the access interleaving —
 * and therefore the golden digests — bit-identical to the scan.
 */

#ifndef VANTAGE_SIM_CORE_HEAP_H_
#define VANTAGE_SIM_CORE_HEAP_H_

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace vantage {

/** Min-heap of core clocks with O(1) lookup of any core's position. */
class CoreClockHeap
{
  public:
    CoreClockHeap() = default;

    /** Reinitialize for `n` cores, all clocks at zero. */
    void
    reset(std::uint32_t n)
    {
        keys_.assign(n, 0);
        heap_.resize(n);
        pos_.resize(n);
        // All keys equal: identity order is a valid heap and matches
        // the lexicographic tie-break.
        for (std::uint32_t i = 0; i < n; ++i) {
            heap_[i] = i;
            pos_[i] = i;
        }
    }

    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(heap_.size());
    }

    /** Core with the smallest (cycle, index) pair. */
    std::uint32_t
    top() const
    {
        vantage_assert(!heap_.empty(), "empty core heap");
        return heap_[0];
    }

    /** Clock of a core. */
    Cycle
    key(std::uint32_t core) const
    {
        vantage_assert(core < keys_.size(), "core %u out of range",
                       core);
        return keys_[core];
    }

    /**
     * Set a core's clock. Cycles only move forward in the simulator,
     * so the common case is a sift-down from the root, but the update
     * restores the heap property in either direction.
     */
    void
    update(std::uint32_t core, Cycle cycle)
    {
        vantage_assert(core < keys_.size(), "core %u out of range",
                       core);
        keys_[core] = cycle;
        if (!siftDown(pos_[core])) {
            siftUp(pos_[core]);
        }
    }

  private:
    /** (cycle, index) lexicographic order. */
    bool
    less(std::uint32_t a, std::uint32_t b) const
    {
        return keys_[a] != keys_[b] ? keys_[a] < keys_[b] : a < b;
    }

    void
    swapAt(std::uint32_t i, std::uint32_t j)
    {
        std::swap(heap_[i], heap_[j]);
        pos_[heap_[i]] = i;
        pos_[heap_[j]] = j;
    }

    /** @return true if the node moved. */
    bool
    siftDown(std::uint32_t i)
    {
        const auto n = static_cast<std::uint32_t>(heap_.size());
        bool moved = false;
        for (;;) {
            const std::uint32_t l = 2 * i + 1;
            const std::uint32_t r = l + 1;
            std::uint32_t smallest = i;
            if (l < n && less(heap_[l], heap_[smallest])) {
                smallest = l;
            }
            if (r < n && less(heap_[r], heap_[smallest])) {
                smallest = r;
            }
            if (smallest == i) {
                return moved;
            }
            swapAt(i, smallest);
            i = smallest;
            moved = true;
        }
    }

    void
    siftUp(std::uint32_t i)
    {
        while (i > 0) {
            const std::uint32_t parent = (i - 1) / 2;
            if (!less(heap_[i], heap_[parent])) {
                return;
            }
            swapAt(i, parent);
            i = parent;
        }
    }

    std::vector<Cycle> keys_;         ///< Clock per core.
    std::vector<std::uint32_t> heap_; ///< Heap of core indices.
    std::vector<std::uint32_t> pos_;  ///< Heap slot per core.
};

} // namespace vantage

#endif // VANTAGE_SIM_CORE_HEAP_H_

/**
 * @file
 * Execution-driven CMP simulator.
 *
 * Models the paper's machine (Table 2): in-order cores at IPC = 1
 * except on memory accesses, private L1s, a shared partitioned L2 and
 * a bandwidth-limited memory. Each core runs one synthetic
 * application; UCP repartitions the L2 on a fixed cycle interval.
 *
 * The simulator is access-driven: cores are advanced in timestamp
 * order one memory access at a time, which serializes the shared L2
 * exactly as a cycle-by-cycle interleaving would at this modeling
 * fidelity, while running millions of accesses per second.
 *
 * Sharded mode (`shardWorkers > 0`, banked L2s only) splits each
 * shared-L2 access into an issue half (core front-end, on the
 * coordinator) and a resolve half (timing application, when the bank
 * worker's result arrives). A pending core is scheduled by the lower
 * bound issueCycle + l2HitLatency; since every L2 outcome costs at
 * least that, the conservative key reproduces the serial step order
 * exactly, and outcomes are applied in issue (FIFO) order, so the
 * result — including the outcome digest — is bit-identical to the
 * serial run at any worker count. See DESIGN.md §12.
 */

#ifndef VANTAGE_SIM_CMP_SIM_H_
#define VANTAGE_SIM_CMP_SIM_H_

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/banked_cache.h"
#include "cache/shared_l2.h"
#include "sim/cmp_config.h"
#include "sim/core_heap.h"
#include "stats/histogram.h"
#include "workload/access_stream.h"
#include "workload/app_model.h"

namespace vantage {

class DecisionAudit;
class QosEngine;

/** Per-core results after a measured run. */
struct CoreResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** L2 misses per kilo-instruction. */
    double
    mpki() const
    {
        return instructions ? 1000.0 * static_cast<double>(l2Misses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/** Cores + L1s + shared L2 + memory + allocation policy. */
class CmpSim
{
  public:
    /**
     * @param cfg machine parameters; apps.size() must equal
     *        cfg.numCores.
     * @param apps one application per core.
     * @param l2 the shared cache (scheme partition count must equal
     *        the core count).
     * @param seed base seed for the app generators.
     */
    CmpSim(const CmpConfig &cfg, std::vector<AppSpec> apps,
           std::unique_ptr<Cache> l2, std::uint64_t seed = 1);

    /**
     * Trace-driven (or custom-stream) construction: one AccessStream
     * per core instead of synthetic app specs.
     */
    CmpSim(const CmpConfig &cfg,
           std::vector<std::unique_ptr<AccessStream>> streams,
           std::unique_ptr<Cache> l2);

    /**
     * Organization-agnostic construction: any SharedL2 (flat or
     * banked). `shardWorkers > 0` runs the banked L2's banks on that
     * many worker threads (requires l2->banked(), shardWorkers <=
     * bank count); 0 keeps the serial path.
     */
    CmpSim(const CmpConfig &cfg, std::vector<AppSpec> apps,
           std::unique_ptr<SharedL2> l2, std::uint64_t seed = 1,
           std::uint32_t shardWorkers = 0);

    CmpSim(const CmpConfig &cfg,
           std::vector<std::unique_ptr<AccessStream>> streams,
           std::unique_ptr<SharedL2> l2,
           std::uint32_t shardWorkers = 0);

    /**
     * Run until every core has issued `accesses` memory accesses,
     * without recording results (cache warmup).
     */
    void warmup(std::uint64_t accesses);

    /**
     * Measured run: every core executes until it retires
     * `instructions`; cores that finish keep running (keeping
     * pressure on the shared cache, as in the paper's methodology)
     * until all have finished. Results snapshot at each core's
     * completion point.
     */
    void run(std::uint64_t instructions);

    const CoreResult &result(std::uint32_t core) const;

    /** Sum of per-core IPCs — the paper's throughput metric. */
    double throughput() const;

    /** Weighted speedup vs the provided single-core baseline IPCs. */
    double weightedSpeedup(const std::vector<double> &alone_ipc) const;

    /**
     * Harmonic mean of weighted speedups — the fairness-leaning
     * metric other partitioning studies report (Sec. 5 mentions it;
     * the paper found it tracks throughput under UCP).
     */
    double hmeanSpeedup(const std::vector<double> &alone_ipc) const;

    /** The flat shared cache; asserts when the L2 is banked. */
    Cache &l2();
    const Cache &l2() const;

    /** The shared L2, whatever its organization. */
    SharedL2 &sharedL2() { return *l2_; }
    const SharedL2 &sharedL2() const { return *l2_; }

    /** Whether bank workers execute the shared L2. */
    bool sharded() const { return shardL2_ != nullptr; }

    Ucp *ucp() { return ucp_.get(); }

    /** Current global cycle (max over cores). */
    Cycle now() const;

    /**
     * Emit a single-line JSON progress record ("heartbeat") to stderr
     * every `every` memory accesses stepped, tagged with `label`.
     * Records carry accesses/instructions done, sim-loop rates,
     * per-partition target/actual sizes and trace drop counts.
     * Observational only — results and digests are unaffected.
     * `every` = 0 disables.
     */
    void setHeartbeat(std::uint64_t every, std::string label);

    /**
     * Route heartbeat records to `sink` instead of stderr (one
     * complete JSON line per call, no trailing newline). Suite
     * runners use this to interleave heartbeats cleanly with their
     * progress display; --heartbeat-out points it at a file. Pass
     * nullptr to restore stderr.
     */
    void setHeartbeatSink(std::function<void(const std::string &)> sink);

    /**
     * Register live-readable state for the metrics service: per-core
     * progress counters (instructions, cycles, L2 accesses/misses)
     * and an IPC gauge under core.N, the shared cache's counters
     * under "cache", the partitioning scheme's introspection subtree
     * under "vantage" (Vantage controllers) or "scheme" (others;
     * banked L2s add a .bankB segment), UCP's monitors under "umon",
     * simulator-level gauges under "sim", and — in sharded mode —
     * the shard runtime's telemetry under "shard". The registry must
     * be fully built before any sampler thread reads it and must not
     * outlive this simulator.
     */
    void registerLiveStats(StatsRegistry &reg) const;

    /**
     * Attach the QoS engine: every `every` stepped accesses the
     * engine evaluates one snapshot of `reg` (deterministic epoch
     * numbering; synthetic snapshot clock). Both must outlive the
     * simulation. Observational only — the engine reads the registry
     * and never feeds back, so digests are unaffected. `every` = 0
     * or nullptr detaches.
     */
    void attachQos(QosEngine *qos, StatsRegistry *reg,
                   std::uint64_t every);

    /**
     * Attach a decision audit ring to the shared L2's scheme. Flat
     * (mono) L2s only: banked caches run their schemes on worker
     * threads under --shard-workers, where the single-writer ring
     * would race; attaching to a banked L2 is a no-op.
     */
    void attachAudit(DecisionAudit *audit);

    /**
     * Shard-runtime telemetry under "shard": per-worker routed
     * accesses, enqueue stalls and queue-depth histograms, plus the
     * epoch-barrier count and wait-time histogram (µs). No-op when
     * not sharded.
     */
    void registerShardStats(StatsRegistry &reg) const;

    /**
     * Distribution of shared-L2 accesses between UCP reallocations
     * (the repartition interval is fixed in cycles, so the access gap
     * is the interesting distribution). Empty when UCP is off.
     */
    const Histogram &reallocGapHistogram() const
    {
        return reallocGap_;
    }

    /**
     * Invoked after every repartitioning with the current cycle —
     * hook for time-series capture (Fig. 8).
     */
    std::function<void(Cycle)> onRepartition;

  private:
    struct CoreState
    {
        Cycle cycle = 0;
        std::uint64_t instructions = 0;
        double instrCarry = 0.0; ///< Fractional instruction gap.
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Misses = 0;
        bool done = false;
        CoreResult snapshot;
        Cycle startCycle = 0;
        std::uint64_t startInstructions = 0;
        std::uint64_t startL2Accesses = 0;
        std::uint64_t startL2Misses = 0;
    };

    /** One in-flight shared-L2 access (sharded mode). */
    struct PendingAccess
    {
        std::uint32_t core = 0;
        std::uint32_t worker = 0;
        Cycle issueCycle = 0; ///< Core clock when the access issued.
    };

    /** Advance the lowest-timestamp core by one memory access. */
    void step(std::uint32_t core);

    /**
     * Sharded issue half of step(): front-end + L1; an L1 miss is
     * enqueued to its bank worker and the core parked on the
     * conservative lower bound issueCycle + l2HitLatency.
     */
    void stepSharded(std::uint32_t core);

    /**
     * Apply the oldest in-flight access's outcome (FIFO — the issue
     * order, which is the serial order, so memory-bus and writeback
     * state evolve exactly as in a serial run).
     */
    void resolveOldest();

    /** Resolve every in-flight access (epoch barrier). */
    void quiesce();

    /** quiesce() + barrier telemetry (wait time, count). */
    void barrierQuiesce();

    void fillSnapshot(CoreState &cs);

    /**
     * Core with the smallest local clock (lowest index on ties) —
     * O(1) off the scheduling heap.
     */
    std::uint32_t nextCore() const { return clockHeap_.top(); }

    void maybeRepartition();
    void markStart();

    void buildCaches(std::uint32_t shardWorkers);

    void warmupSharded(std::uint64_t accesses);
    void runSharded(std::uint64_t instructions);

    /** One heartbeat line; `phase` is "warmup" or "run". */
    void emitHeartbeat(const char *phase);

    /** One QoS epoch: snapshot the live registry, run the rules. */
    void stepQos();

    /** Count a stepped access toward the QoS epoch cadence. */
    void
    qosTick()
    {
        if (qos_ != nullptr && qosEvery_ != 0 &&
            ++qosTickCtr_ >= qosEvery_) {
            qosTickCtr_ = 0;
            stepQos();
        }
    }

    /** Count a stepped access toward the heartbeat cadence. */
    void
    heartbeatTick(const char *phase)
    {
        qosTick();
        if (heartbeatEvery_ != 0 &&
            ++heartbeatTick_ >= heartbeatEvery_) {
            heartbeatTick_ = 0;
            if (shardL2_ != nullptr) {
                // The record reads shared state the workers own
                // mid-flight; settle them first. Observational:
                // resolution timing never changes outcomes.
                quiesce();
            }
            emitHeartbeat(phase);
        }
    }

    CmpConfig cfg_;
    std::vector<std::unique_ptr<AccessStream>> apps_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<SharedL2> l2_;
    std::unique_ptr<Ucp> ucp_;

    std::vector<CoreState> cores_;
    CoreClockHeap clockHeap_;
    Cycle memFree_ = 0;
    std::uint64_t l2WritebacksSeen_ = 0;
    Cycle nextRepartition_;

    // Sharded-mode state. shardL2_ is the banked view of l2_ when
    // workers run, else nullptr; the FIFO holds in-flight accesses
    // in issue order.
    BankedCache *shardL2_ = nullptr;
    std::deque<PendingAccess> pendingFifo_;
    std::vector<std::uint8_t> corePending_;
    std::vector<std::uint8_t> snapshotOnResolve_;
    Histogram barrierWait_; ///< Epoch-barrier wait, microseconds.
    std::uint64_t shardBarriers_ = 0;

    // Accesses between reallocations (telemetry; cold path).
    Histogram reallocGap_;
    std::uint64_t lastReallocAccesses_ = 0;

    // Heartbeat state (observational only).
    std::uint64_t heartbeatEvery_ = 0;
    std::uint64_t heartbeatTick_ = 0;
    std::uint64_t heartbeatSeq_ = 0;
    std::uint64_t heartbeatLastInstrs_ = 0;
    std::uint64_t heartbeatLastAccesses_ = 0;
    std::string heartbeatLabel_;
    std::chrono::steady_clock::time_point heartbeatLastTime_{};
    std::function<void(const std::string &)> heartbeatSink_;

    // QoS engine + decision audit (observational only).
    QosEngine *qos_ = nullptr;
    StatsRegistry *qosReg_ = nullptr;
    std::uint64_t qosEvery_ = 0;
    std::uint64_t qosTickCtr_ = 0;
    std::uint64_t qosEpoch_ = 0;
    DecisionAudit *audit_ = nullptr;
};

} // namespace vantage

#endif // VANTAGE_SIM_CMP_SIM_H_

/**
 * @file
 * Execution-driven CMP simulator.
 *
 * Models the paper's machine (Table 2): in-order cores at IPC = 1
 * except on memory accesses, private L1s, a shared partitioned L2 and
 * a bandwidth-limited memory. Each core runs one synthetic
 * application; UCP repartitions the L2 on a fixed cycle interval.
 *
 * The simulator is access-driven: cores are advanced in timestamp
 * order one memory access at a time, which serializes the shared L2
 * exactly as a cycle-by-cycle interleaving would at this modeling
 * fidelity, while running millions of accesses per second.
 */

#ifndef VANTAGE_SIM_CMP_SIM_H_
#define VANTAGE_SIM_CMP_SIM_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "sim/cmp_config.h"
#include "sim/core_heap.h"
#include "stats/histogram.h"
#include "workload/access_stream.h"
#include "workload/app_model.h"

namespace vantage {

/** Per-core results after a measured run. */
struct CoreResult
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /** L2 misses per kilo-instruction. */
    double
    mpki() const
    {
        return instructions ? 1000.0 * static_cast<double>(l2Misses) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/** Cores + L1s + shared L2 + memory + allocation policy. */
class CmpSim
{
  public:
    /**
     * @param cfg machine parameters; apps.size() must equal
     *        cfg.numCores.
     * @param apps one application per core.
     * @param l2 the shared cache (scheme partition count must equal
     *        the core count).
     * @param seed base seed for the app generators.
     */
    CmpSim(const CmpConfig &cfg, std::vector<AppSpec> apps,
           std::unique_ptr<Cache> l2, std::uint64_t seed = 1);

    /**
     * Trace-driven (or custom-stream) construction: one AccessStream
     * per core instead of synthetic app specs.
     */
    CmpSim(const CmpConfig &cfg,
           std::vector<std::unique_ptr<AccessStream>> streams,
           std::unique_ptr<Cache> l2);

    /**
     * Run until every core has issued `accesses` memory accesses,
     * without recording results (cache warmup).
     */
    void warmup(std::uint64_t accesses);

    /**
     * Measured run: every core executes until it retires
     * `instructions`; cores that finish keep running (keeping
     * pressure on the shared cache, as in the paper's methodology)
     * until all have finished. Results snapshot at each core's
     * completion point.
     */
    void run(std::uint64_t instructions);

    const CoreResult &result(std::uint32_t core) const;

    /** Sum of per-core IPCs — the paper's throughput metric. */
    double throughput() const;

    /** Weighted speedup vs the provided single-core baseline IPCs. */
    double weightedSpeedup(const std::vector<double> &alone_ipc) const;

    /**
     * Harmonic mean of weighted speedups — the fairness-leaning
     * metric other partitioning studies report (Sec. 5 mentions it;
     * the paper found it tracks throughput under UCP).
     */
    double hmeanSpeedup(const std::vector<double> &alone_ipc) const;

    Cache &l2() { return *l2_; }
    const Cache &l2() const { return *l2_; }
    Ucp *ucp() { return ucp_.get(); }

    /** Current global cycle (max over cores). */
    Cycle now() const;

    /**
     * Emit a single-line JSON progress record ("heartbeat") to stderr
     * every `every` memory accesses stepped, tagged with `label`.
     * Records carry accesses/instructions done, sim-loop rates,
     * per-partition target/actual sizes and trace drop counts.
     * Observational only — results and digests are unaffected.
     * `every` = 0 disables.
     */
    void setHeartbeat(std::uint64_t every, std::string label);

    /**
     * Route heartbeat records to `sink` instead of stderr (one
     * complete JSON line per call, no trailing newline). Suite
     * runners use this to interleave heartbeats cleanly with their
     * progress display; --heartbeat-out points it at a file. Pass
     * nullptr to restore stderr.
     */
    void setHeartbeatSink(std::function<void(const std::string &)> sink);

    /**
     * Register live-readable state for the metrics service: per-core
     * progress counters (instructions, cycles, L2 accesses/misses)
     * and an IPC gauge under core.N, the shared cache's counters
     * under "cache", the partitioning scheme's introspection subtree
     * under "vantage" (Vantage controllers) or "scheme" (others),
     * UCP's monitors under "umon", and simulator-level gauges under
     * "sim". The registry must be fully built before any sampler
     * thread reads it and must not outlive this simulator.
     */
    void registerLiveStats(StatsRegistry &reg) const;

    /**
     * Distribution of shared-L2 accesses between UCP reallocations
     * (the repartition interval is fixed in cycles, so the access gap
     * is the interesting distribution). Empty when UCP is off.
     */
    const Histogram &reallocGapHistogram() const
    {
        return reallocGap_;
    }

    /**
     * Invoked after every repartitioning with the current cycle —
     * hook for time-series capture (Fig. 8).
     */
    std::function<void(Cycle)> onRepartition;

  private:
    struct CoreState
    {
        Cycle cycle = 0;
        std::uint64_t instructions = 0;
        double instrCarry = 0.0; ///< Fractional instruction gap.
        std::uint64_t l2Accesses = 0;
        std::uint64_t l2Misses = 0;
        bool done = false;
        CoreResult snapshot;
        Cycle startCycle = 0;
        std::uint64_t startInstructions = 0;
        std::uint64_t startL2Accesses = 0;
        std::uint64_t startL2Misses = 0;
    };

    /** Advance the lowest-timestamp core by one memory access. */
    void step(std::uint32_t core);

    /**
     * Core with the smallest local clock (lowest index on ties) —
     * O(1) off the scheduling heap.
     */
    std::uint32_t nextCore() const { return clockHeap_.top(); }

    void maybeRepartition();
    void markStart();

    void buildCaches();

    /** One heartbeat line; `phase` is "warmup" or "run". */
    void emitHeartbeat(const char *phase);

    /** Count a stepped access toward the heartbeat cadence. */
    void
    heartbeatTick(const char *phase)
    {
        if (heartbeatEvery_ != 0 &&
            ++heartbeatTick_ >= heartbeatEvery_) {
            heartbeatTick_ = 0;
            emitHeartbeat(phase);
        }
    }

    CmpConfig cfg_;
    std::vector<std::unique_ptr<AccessStream>> apps_;
    std::vector<std::unique_ptr<Cache>> l1s_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Ucp> ucp_;

    std::vector<CoreState> cores_;
    CoreClockHeap clockHeap_;
    Cycle memFree_ = 0;
    std::uint64_t l2WritebacksSeen_ = 0;
    Cycle nextRepartition_;

    // Accesses between reallocations (telemetry; cold path).
    Histogram reallocGap_;
    std::uint64_t lastReallocAccesses_ = 0;

    // Heartbeat state (observational only).
    std::uint64_t heartbeatEvery_ = 0;
    std::uint64_t heartbeatTick_ = 0;
    std::uint64_t heartbeatSeq_ = 0;
    std::uint64_t heartbeatLastInstrs_ = 0;
    std::uint64_t heartbeatLastAccesses_ = 0;
    std::string heartbeatLabel_;
    std::chrono::steady_clock::time_point heartbeatLastTime_{};
    std::function<void(const std::string &)> heartbeatSink_;
};

} // namespace vantage

#endif // VANTAGE_SIM_CMP_SIM_H_

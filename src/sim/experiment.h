/**
 * @file
 * Experiment plumbing shared by the benchmark harnesses: named L2
 * configurations (array x scheme), mix runners, and run-scale
 * controls.
 *
 * Run scale: the quick defaults finish each figure in minutes. The
 * environment overrides let a user reproduce paper-scale runs:
 *   VANTAGE_MIX_SEEDS     mixes per class (paper: 10)
 *   VANTAGE_INSTRS        measured instructions per core
 *   VANTAGE_WARMUP        warmup memory accesses per core
 *   VANTAGE_STATS_PERIOD  controller accesses between trace samples
 *   VANTAGE_JOBS          parallel runMix jobs for suite runs
 *                         (default: hardware concurrency)
 *   VANTAGE_HEARTBEAT     memory accesses between one-line JSON
 *                         progress records on stderr (0 = off)
 */

#ifndef VANTAGE_SIM_EXPERIMENT_H_
#define VANTAGE_SIM_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/banked_cache.h"
#include "cache/cache.h"
#include "core/vantage.h"
#include "sim/cmp_sim.h"

namespace vantage {

/** Cache-array designs used in the evaluation. */
enum class ArrayKind {
    Z4_52, ///< 4-way zcache, 52 candidates (the paper's default).
    Z4_16, ///< 4-way zcache, 16 candidates.
    SA16,  ///< 16-way hashed set-associative.
    SA64,  ///< 64-way hashed set-associative.
    Random ///< Idealized uniform-candidates array (R = 52).
};

/** Management schemes used in the evaluation. */
enum class SchemeKind {
    UnpartLru,    ///< Shared cache, LRU (baseline).
    UnpartSrrip,  ///< Shared cache, SRRIP.
    UnpartDrrip,  ///< Shared cache, DRRIP.
    UnpartTaDrrip,///< Shared cache, TA-DRRIP.
    WayPart,      ///< Way-partitioning + LRU.
    Pipp,         ///< PIPP.
    Vantage,      ///< Vantage-LRU.
    VantageDrrip, ///< Vantage-DRRIP (RRIP ranks + dueling monitors).
    VantageOracle ///< Perfect-aperture validation variant.
};

const char *arrayKindName(ArrayKind k);
const char *schemeKindName(SchemeKind k);

/** Full description of one shared-L2 configuration. */
struct L2Spec
{
    ArrayKind array = ArrayKind::Z4_52;
    SchemeKind scheme = SchemeKind::Vantage;
    std::uint64_t lines = 32768;
    std::uint32_t numPartitions = 4;
    /** Vantage knobs (u, Amax, slack); ignored by other schemes. */
    VantageConfig vantage;
    std::uint64_t seed = 0x12;

    std::string name() const;
};

/** Construct the array for a spec. */
std::unique_ptr<CacheArray> buildArray(const L2Spec &spec);

/** Construct the full L2 cache for a spec. */
std::unique_ptr<Cache> buildL2(const L2Spec &spec);

/**
 * Construct a banked L2 for a spec: `banks` banks of lines/banks
 * lines each (lines must divide evenly), every bank its own complete
 * Cache with a bank-distinct seed, routed by an H3 hash derived from
 * the spec seed. Matches the fuzz driver's banked construction so a
 * (spec, banks) pair means the same cache everywhere.
 */
std::unique_ptr<BankedCache> buildBankedL2(const L2Spec &spec,
                                           std::uint32_t banks);

/** Scale of a simulation run. */
struct RunScale
{
    std::uint64_t warmupAccesses = 50'000;  ///< Per core.
    std::uint64_t instructions = 1'500'000; ///< Measured, per core.
    std::uint32_t mixSeedsPerClass = 1;
    /** Controller accesses between ControllerTrace samples. */
    std::uint64_t statsPeriod = 10'000;
    /**
     * Parallel runMix jobs for suite-style runs (each simulation
     * stays single-threaded). 0 = auto: $VANTAGE_JOBS if set, else
     * hardware concurrency. Results are independent of this value —
     * a parallel suite run is bit-identical to a serial one.
     */
    std::uint32_t jobs = 0;
    /**
     * Emit a single-line JSON heartbeat to stderr every this many
     * memory accesses stepped (0 = disabled). Observational only:
     * results and digests are unaffected.
     */
    std::uint64_t heartbeatEvery = 0;

    /** Defaults overridden by VANTAGE_* environment variables. */
    static RunScale fromEnv();
};

/** Result of one mix under one configuration. */
struct MixResult
{
    std::string mix;
    std::string config;
    double throughput = 0.0;
    std::vector<CoreResult> cores;
};

class MetricsService;

/**
 * Observability hooks for one runMix invocation. All optional and
 * purely observational — results and digests are unaffected.
 */
struct MixHooks
{
    /**
     * Receives each heartbeat record (one complete JSON line, no
     * trailing newline) instead of stderr. Suite runners route
     * heartbeats through their progress display so parallel jobs
     * never interleave mid-line.
     */
    std::function<void(const std::string &)> heartbeatSink;

    /**
     * When set, the run registers its live stats with the service
     * under `job` for its duration, so one endpoint exposes every
     * in-flight mix of a suite run.
     */
    MetricsService *metrics = nullptr;
    std::string job;
};

/**
 * Run one mix: build the L2, warm up, measure.
 * @param cfg machine model (numCores must match apps.size()).
 */
MixResult runMix(const CmpConfig &cfg, const L2Spec &spec,
                 const std::vector<AppSpec> &apps,
                 const RunScale &scale, const std::string &mix_name,
                 std::uint64_t seed = 1,
                 const MixHooks &hooks = MixHooks());

} // namespace vantage

#endif // VANTAGE_SIM_EXPERIMENT_H_

/**
 * @file
 * vsim: the command-line simulator driver.
 *
 * Runs one workload under one L2 configuration and prints per-core
 * and cache-level statistics. See cliUsage() (or `vsim --help`) for
 * the option grammar, and DESIGN.md for the mix classes.
 */

#include <cstdio>
#include <memory>

#include "common/hp_alloc.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "simd/simd.h"
#include "core/vantage.h"
#include "obs/audit.h"
#include "obs/metrics_service.h"
#include "obs/qos.h"
#include "serve/journal.h"
#include "serve/server.h"
#include "serve/tenant_sim.h"
#include "sim/cli.h"
#include "stats/prof.h"
#include "stats/registry.h"
#include "stats/table.h"
#include "stats/trace.h"
#include "trace/event_trace.h"
#include "workload/mixes.h"
#include "workload/profiles.h"
#include "workload/trace_stream.h"

using namespace vantage;

namespace {

/** Register run metadata, per-core results and L2 stats. */
void
buildRegistry(StatsRegistry &reg, const CliOptions &opts,
              const CmpSim &sim,
              const std::vector<std::string> &core_names)
{
    reg.addString("run.config", opts.l2.name());
    reg.addGauge("run.cores", [&opts] {
        return static_cast<double>(opts.machine.numCores);
    });
    reg.addGauge("run.l2_lines", [&opts] {
        return static_cast<double>(opts.l2.lines);
    });
    reg.addGauge("run.seed",
                 [&opts] { return static_cast<double>(opts.seed); });
    reg.addGauge("run.instructions", [&opts] {
        return static_cast<double>(opts.scale.instructions);
    });
    reg.addGauge("run.warmup_accesses", [&opts] {
        return static_cast<double>(opts.scale.warmupAccesses);
    });
    reg.addGauge("run.throughput",
                 [&sim] { return sim.throughput(); });
    for (std::uint32_t c = 0; c < opts.machine.numCores; ++c) {
        const std::string base = "core." + std::to_string(c);
        reg.addString(base + ".workload", core_names[c]);
        reg.addCounter(base + ".instructions", [&sim, c] {
            return sim.result(c).instructions;
        });
        reg.addCounter(base + ".cycles", [&sim, c] {
            return sim.result(c).cycles;
        });
        reg.addCounter(base + ".l2_accesses", [&sim, c] {
            return sim.result(c).l2Accesses;
        });
        reg.addCounter(base + ".l2_misses", [&sim, c] {
            return sim.result(c).l2Misses;
        });
        reg.addGauge(base + ".ipc",
                     [&sim, c] { return sim.result(c).ipc(); });
        reg.addGauge(base + ".mpki",
                     [&sim, c] { return sim.result(c).mpki(); });
    }
    sim.sharedL2().registerStats(reg, "cache.l2");
    sim.registerShardStats(reg);
    reg.addHistogram("sim.realloc_gap_accesses",
                     &sim.reallocGapHistogram());
    if (TraceSession::instance().enabledAny()) {
        TraceSession::instance().registerStats(reg, "trace");
    }
    profExport(reg);
}

/**
 * The --slo / --qos-out observability attachments, shared by the
 * workload, lifecycle and serve drivers: a QoS engine built from the
 * SLO spec, the decision audit ring it cross-references, and the
 * JSONL event sink. All observational — attached engines leave
 * digests bit-identical.
 */
struct QosHarness
{
    std::unique_ptr<QosEngine> qos;
    std::unique_ptr<DecisionAudit> audit;
    FILE *out = nullptr;

    ~QosHarness()
    {
        if (out != nullptr) {
            std::fclose(out);
        }
    }

    bool enabled() const { return qos != nullptr; }

    void
    build(const CliOptions &opts)
    {
        if (opts.sloSpec.empty() && opts.qosOut.empty()) {
            return;
        }
        QosConfig cfg;
        std::string error;
        if (!opts.sloSpec.empty() &&
            !parseSloSpec(opts.sloSpec, cfg, error)) {
            fatal("--slo: %s", error.c_str());
        }
        qos = std::make_unique<QosEngine>(cfg);
        audit = std::make_unique<DecisionAudit>();
        if (!opts.qosOut.empty()) {
            out = std::fopen(opts.qosOut.c_str(), "a");
            if (out == nullptr) {
                fatal("cannot open --qos-out file %s",
                      opts.qosOut.c_str());
            }
            qos->setSink([this](const QosEvent &ev) {
                std::fprintf(out, "%s\n", qosEventJson(ev).c_str());
                std::fflush(out);
            });
        } else {
            qos->setSink([](const QosEvent &ev) {
                std::fprintf(stderr, "vsim: qos %s\n",
                             qosEventJson(ev).c_str());
            });
        }
    }

    /** SLO violation + decision counters for the live endpoint. */
    void
    registerMetrics(StatsRegistry &reg)
    {
        if (qos) {
            qos->registerMetrics(reg, "vantage.slo");
            audit->registerMetrics(reg, "vantage.decision");
        }
    }

    /** End-of-run summary line and the audit tail to --qos-out. */
    void
    finish()
    {
        if (!qos) {
            return;
        }
        std::printf("qos: %llu violations raised (%zu active at "
                    "end) over %llu epochs; %llu controller "
                    "decisions recorded\n",
                    static_cast<unsigned long long>(
                        qos->violationsTotal()),
                    qos->active().size(),
                    static_cast<unsigned long long>(
                        qos->epochsSeen()),
                    static_cast<unsigned long long>(audit->total()));
        if (out != nullptr) {
            for (const DecisionRecord &rec : audit->tail(64)) {
                std::fprintf(out, "%s\n", decisionJson(rec).c_str());
            }
            std::fflush(out);
        }
    }
};

/** The --serve / --lifecycle configuration, from the CLI options. */
JournalHeader
serveHeader(const CliOptions &opts)
{
    JournalHeader hdr;
    hdr.spec = opts.l2;
    hdr.maxTenants = opts.maxTenants;
    hdr.epochAccesses = opts.epochAccesses;
    hdr.useUcp = opts.machine.useUcp;
    return hdr;
}

void
printDigest(std::uint64_t digest)
{
    std::printf("digest: 0x%016llx\n",
                static_cast<unsigned long long>(digest));
}

/** vsim --replay: re-execute a serve journal bit-identically. */
int
runReplay(const CliOptions &opts)
{
    JournalReader reader;
    std::string error;
    if (!reader.load(opts.replayPath, error)) {
        fatal("replay: %s", error.c_str());
    }
    std::fprintf(stderr, "vsim: replaying %zu events from %s\n",
                 reader.records().size(), opts.replayPath.c_str());
    printDigest(replayJournal(reader));
    return 0;
}

/** vsim --lifecycle N: the synthetic tenant-churn scenario. */
int
runLifecycle(const CliOptions &opts)
{
    const JournalHeader hdr = serveHeader(opts);
    std::unique_ptr<JournalWriter> journal;
    if (!opts.serveJournal.empty()) {
        journal = std::make_unique<JournalWriter>(opts.serveJournal,
                                                  hdr);
    }
    TenantSim sim(hdr);
    QosHarness qos;
    qos.build(opts);
    StatsRegistry qos_reg;
    if (qos.enabled()) {
        sim.registerLiveStats(qos_reg);
        qos.registerMetrics(qos_reg);
        sim.attachQos(qos.qos.get(), &qos_reg);
        sim.attachAudit(qos.audit.get());
    }
    const std::uint64_t digest = runLifecycleScenario(
        sim, hdr, opts.lifecycleAccesses, journal.get());
    journal.reset();
    qos.finish();
    printDigest(digest);
    return 0;
}

/** vsim --serve: the tenant daemon. */
int
runServe(const CliOptions &opts)
{
    const JournalHeader hdr = serveHeader(opts);
    TenantSim sim(hdr);
    std::unique_ptr<JournalWriter> journal;
    if (!opts.serveJournal.empty()) {
        journal = std::make_unique<JournalWriter>(opts.serveJournal,
                                                  hdr);
    }

    // QoS / audit and the live Prometheus endpoint share one
    // registry. The registry must be fully built before the metrics
    // sampler thread starts, and the service is stopped before the
    // sim is torn down.
    QosHarness qos;
    qos.build(opts);
    StatsRegistry live_reg;
    if (qos.enabled() || opts.metricsPort >= 0) {
        sim.registerLiveStats(live_reg);
        qos.registerMetrics(live_reg);
    }
    if (qos.enabled()) {
        sim.attachQos(qos.qos.get(), &live_reg);
        sim.attachAudit(qos.audit.get());
    }
    std::unique_ptr<MetricsService> metrics;
    if (opts.metricsPort >= 0) {
        MetricsServiceConfig mcfg;
        mcfg.port = static_cast<std::uint16_t>(opts.metricsPort);
        mcfg.epochMillis = opts.metricsPeriodMs;
        metrics = std::make_unique<MetricsService>(mcfg);
        std::string merror;
        if (!metrics->start(merror)) {
            fatal("cannot start metrics service: %s",
                  merror.c_str());
        }
        metrics->addSource("vsim-serve", &live_reg);
        std::fprintf(
            stderr,
            "vsim: metrics listening on http://127.0.0.1:%d/metrics\n",
            metrics->port());
    }

    ServeServer server(sim, journal.get());
    std::string error;
    if (!server.start(static_cast<std::uint16_t>(opts.servePort),
                      error)) {
        fatal("serve: %s", error.c_str());
    }
    std::fprintf(stderr, "vsim: serving on 127.0.0.1:%u\n",
                 server.port());
    server.run();
    journal.reset();
    if (metrics) {
        std::fprintf(stderr,
                     "vsim: metrics served %llu scrapes over %llu "
                     "epochs\n",
                     static_cast<unsigned long long>(
                         metrics->scrapes()),
                     static_cast<unsigned long long>(
                         metrics->epochs()));
        metrics->stop();
    }

    InvariantReport rep;
    sim.checkInvariants(rep);
    if (!rep.ok()) {
        fatal("serve: invariants violated at shutdown:\n%s",
              rep.summary().c_str());
    }
    std::fprintf(stderr,
                 "vsim: served %llu frames, %llu accesses\n",
                 static_cast<unsigned long long>(
                     server.framesProcessed()),
                 static_cast<unsigned long long>(sim.accesses()));
    qos.finish();
    printDigest(sim.finishDigest());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    std::string error;
    CliOptions opts = parseCli(args, error);
    if (opts.showHelp) {
        std::fputs(cliUsage().c_str(), stdout);
        return 0;
    }
    if (!error.empty()) {
        std::fprintf(stderr, "vsim: %s\n%s", error.c_str(),
                     cliUsage().c_str());
        return 1;
    }

    // Serve / replay / lifecycle bypass the workload machinery
    // entirely: the event stream (live, journaled, or synthetic) is
    // the workload.
    if (!opts.replayPath.empty()) {
        return runReplay(opts);
    }
    if (opts.lifecycleAccesses > 0) {
        return runLifecycle(opts);
    }
    if (opts.servePort >= 0) {
        return runServe(opts);
    }

    // Arm event tracing before any instrumented code runs.
    if (!opts.eventsOut.empty()) {
        TraceSession &session = TraceSession::instance();
        session.enable(opts.traceCategories);
        session.setProcessName("vsim");
        traceSetThreadName("main");
    }

    // Build the per-core workload. The shared L2 is flat by default
    // or banked under --banks; --shard-workers runs the banks on
    // worker threads (results are identical either way).
    auto build_shared_l2 = [&opts]() -> std::unique_ptr<SharedL2> {
        if (opts.banks > 0) {
            return buildBankedL2(opts.l2, opts.banks);
        }
        return std::make_unique<MonoL2>(buildL2(opts.l2));
    };
    std::vector<std::string> core_names;
    std::unique_ptr<CmpSim> sim;
    if (!opts.traces.empty()) {
        std::vector<std::unique_ptr<AccessStream>> streams;
        for (const auto &path : opts.traces) {
            streams.push_back(std::make_unique<TraceStream>(
                TraceStream::fromFile(path)));
            core_names.push_back(path);
        }
        sim = std::make_unique<CmpSim>(opts.machine,
                                       std::move(streams),
                                       build_shared_l2(),
                                       opts.shardWorkers);
    } else {
        std::vector<AppSpec> apps;
        if (opts.mix) {
            const std::uint32_t per_slot = opts.machine.numCores / 4;
            apps = makeMix(opts.mix->first, per_slot,
                           opts.mix->second);
        } else {
            for (const auto &name : opts.apps) {
                apps.push_back(appByName(name));
            }
        }
        for (const auto &app : apps) {
            core_names.push_back(app.name);
        }
        sim = std::make_unique<CmpSim>(opts.machine, apps,
                                       build_shared_l2(), opts.seed,
                                       opts.shardWorkers);
    }

    std::fprintf(stderr,
                 "vsim: %u cores, %s, %llu L2 lines, %llu warmup + "
                 "%llu measured instrs/core\n",
                 opts.machine.numCores, opts.l2.name().c_str(),
                 static_cast<unsigned long long>(opts.l2.lines),
                 static_cast<unsigned long long>(
                     opts.scale.warmupAccesses),
                 static_cast<unsigned long long>(
                     opts.scale.instructions));
    std::fprintf(stderr, "vsim: simd %s kernels, hugepages %s\n",
                 simd::levelName(),
                 hugePagesEnabled() ? "on" : "off");
    if (opts.banks > 0) {
        std::fprintf(stderr,
                     "vsim: %u banks of %llu lines, %u shard "
                     "worker(s)\n",
                     opts.banks,
                     static_cast<unsigned long long>(opts.l2.lines /
                                                     opts.banks),
                     opts.shardWorkers);
    }

    // Controller trace (--trace-out): samples the measured phase.
    // Banked L2s have one controller per bank, so there is no single
    // controller to trace.
    ControllerTrace trace(opts.scale.statsPeriod);
    VantageController *vctl = nullptr;
    if (Cache *mono = sim->sharedL2().monoCache()) {
        vctl = dynamic_cast<VantageController *>(&mono->scheme());
    }
    if (!opts.traceOut.empty() && vctl == nullptr) {
        fatal("--trace-out requires a vantage scheme on a flat "
              "(non-banked) L2, got %s%s",
              opts.l2.name().c_str(),
              opts.banks > 0 ? " with --banks" : "");
    }

    // The digest covers warmup too: array state after warmup feeds
    // into every measured outcome, so folding from the first access
    // catches divergence as early as possible.
    AccessDigest digest;
    if (opts.digest) {
        sim->sharedL2().attachDigest(&digest);
    }

    // Per-partition histograms ride along with --stats-out and the
    // live endpoint (they are observational, but skipping the adds
    // keeps the default path untouched).
    if (!opts.statsOut.empty() || opts.metricsPort >= 0) {
        sim->sharedL2().enableHistograms();
    }

    // Heartbeats: --heartbeat-out routes the records to a file and
    // implies a default cadence when --heartbeat was not given.
    FILE *heartbeat_file = nullptr;
    std::uint64_t heartbeat_every = opts.scale.heartbeatEvery;
    if (!opts.heartbeatOut.empty() && heartbeat_every == 0) {
        heartbeat_every = 1'000'000;
    }
    if (heartbeat_every != 0) {
        sim->setHeartbeat(heartbeat_every, opts.l2.name());
        if (!opts.heartbeatOut.empty()) {
            heartbeat_file = std::fopen(opts.heartbeatOut.c_str(),
                                        "a");
            if (heartbeat_file == nullptr) {
                fatal("cannot open --heartbeat-out file %s",
                      opts.heartbeatOut.c_str());
            }
            sim->setHeartbeatSink(
                [heartbeat_file](const std::string &line) {
                    std::fprintf(heartbeat_file, "%s\n",
                                 line.c_str());
                    std::fflush(heartbeat_file);
                });
        }
    }

    // QoS engine + decision audit (--slo / --qos-out): evaluated
    // every --epoch accesses over the live-introspection registry.
    // Live metrics endpoint (--metrics-port). The registry must be
    // fully built before the service's sampler thread starts, and
    // both must be torn down before the sim (declaration order
    // handles the service; it stops its threads in the destructor).
    QosHarness qos;
    qos.build(opts);
    StatsRegistry live_reg;
    if (opts.metricsPort >= 0 || qos.enabled()) {
        sim->registerLiveStats(live_reg);
        qos.registerMetrics(live_reg);
    }
    if (qos.enabled()) {
        sim->attachQos(qos.qos.get(), &live_reg, opts.epochAccesses);
        sim->attachAudit(qos.audit.get());
    }
    std::unique_ptr<MetricsService> metrics;
    if (opts.metricsPort >= 0) {
        MetricsServiceConfig mcfg;
        mcfg.port = static_cast<std::uint16_t>(opts.metricsPort);
        mcfg.epochMillis = opts.metricsPeriodMs;
        metrics = std::make_unique<MetricsService>(mcfg);
        std::string merror;
        if (!metrics->start(merror)) {
            fatal("cannot start metrics service: %s",
                  merror.c_str());
        }
        metrics->addSource("vsim/" + opts.l2.name(), &live_reg);
        std::fprintf(
            stderr,
            "vsim: metrics listening on http://127.0.0.1:%d/metrics\n",
            metrics->port());
    }

    {
        // When tracing, run the sim phases as pool jobs on a
        // one-worker pool so the timeline shows the same
        // pool.job/worker structure the suite runner produces. The
        // pool is scoped: its destructor joins the worker before the
        // trace is exported, guaranteeing writer quiescence.
        std::unique_ptr<ThreadPool> pool;
        if (TraceSession::instance().enabledAny()) {
            pool = std::make_unique<ThreadPool>(1);
        }
        auto run_phase = [&pool](const char *name, auto &&fn) {
            if (pool) {
                pool->submit([&fn, name] {
                        TraceSpan span(kTraceSim, name);
                        fn();
                    })
                    .get();
            } else {
                fn();
            }
        };
        run_phase("sim.warmup", [&] {
            sim->warmup(opts.scale.warmupAccesses);
        });
        sim->sharedL2().resetStats();
        profResetAll();
        if (!opts.traceOut.empty()) {
            vctl->attachTrace(&trace);
        }
        run_phase("sim.run",
                  [&] { sim->run(opts.scale.instructions); });
    }

    TablePrinter table({"core", "workload", "IPC", "L2 accesses",
                        "L2 misses", "L2 MPKI"});
    for (std::uint32_t c = 0; c < opts.machine.numCores; ++c) {
        const CoreResult &r = sim->result(c);
        table.addRow({std::to_string(c), core_names[c],
                      TablePrinter::fmt(r.ipc(), 3),
                      std::to_string(r.l2Accesses),
                      std::to_string(r.l2Misses),
                      TablePrinter::fmt(r.mpki(), 2)});
    }
    table.print();
    std::printf("throughput (sum of IPCs): %.3f\n",
                sim->throughput());
    std::printf("L2 writebacks: %llu\n",
                static_cast<unsigned long long>(
                    sim->sharedL2().writebacks()));
    if (opts.digest) {
        // Banked digests fold their per-bank streams into the
        // external digest bank-major; a no-op for flat caches.
        sim->sharedL2().finalizeDigest();
        std::printf("digest: 0x%016llx\n",
                    static_cast<unsigned long long>(digest.value()));
    }

    // Observability exports.
    if (!opts.statsOut.empty()) {
        StatsRegistry reg;
        buildRegistry(reg, opts, *sim, core_names);
        reg.writeJsonFile(opts.statsOut);
        std::fprintf(stderr, "vsim: stats written to %s\n",
                     opts.statsOut.c_str());
    }
    if (!opts.traceOut.empty()) {
        trace.writeCsvFile(opts.traceOut);
        std::fprintf(stderr,
                     "vsim: trace written to %s (%zu samples)\n",
                     opts.traceOut.c_str(), trace.samples().size());
    }
    if (!opts.eventsOut.empty()) {
        TraceSession &session = TraceSession::instance();
        if (session.writeJsonFile(opts.eventsOut)) {
            std::fprintf(
                stderr,
                "vsim: events written to %s (%llu recorded, %llu "
                "dropped)\n",
                opts.eventsOut.c_str(),
                static_cast<unsigned long long>(session.recorded()),
                static_cast<unsigned long long>(session.dropped()));
        } else {
            std::fprintf(stderr,
                         "vsim: failed to write events to %s\n",
                         opts.eventsOut.c_str());
            return 1;
        }
    }

    // Partition detail where the scheme has meaningful sizes.
    if (opts.l2.scheme != SchemeKind::UnpartLru &&
        opts.l2.scheme != SchemeKind::UnpartSrrip &&
        opts.l2.scheme != SchemeKind::UnpartDrrip &&
        opts.l2.scheme != SchemeKind::UnpartTaDrrip) {
        TablePrinter parts({"partition", "target", "actual"});
        for (PartId p = 0; p < opts.machine.numCores; ++p) {
            parts.addRow(
                {std::to_string(p),
                 std::to_string(sim->sharedL2().targetSize(p)),
                 std::to_string(sim->sharedL2().actualSize(p))});
        }
        parts.print();
        if (VantageController *v = vctl) {
            const VantageStats &vs = v->stats();
            std::printf("vantage: %llu demotions, %llu promotions, "
                        "%.2e forced managed evictions, unmanaged "
                        "size %llu\n",
                        static_cast<unsigned long long>(vs.demotions),
                        static_cast<unsigned long long>(
                            vs.promotions),
                        vs.evictions
                            ? static_cast<double>(
                                  vs.evictionsFromManaged) /
                                  static_cast<double>(vs.evictions)
                            : 0.0,
                        static_cast<unsigned long long>(
                            v->unmanagedSize()));
        }
    }

    qos.finish();
    if (metrics) {
        std::fprintf(stderr,
                     "vsim: metrics served %llu scrapes over %llu "
                     "epochs\n",
                     static_cast<unsigned long long>(
                         metrics->scrapes()),
                     static_cast<unsigned long long>(
                         metrics->epochs()));
        metrics->stop();
    }
    if (heartbeat_file != nullptr) {
        std::fclose(heartbeat_file);
    }
    return 0;
}

/**
 * @file
 * Machine configurations (paper Table 2) and L2 factory helpers.
 *
 * The paper's two machines:
 *  - small: 4 in-order cores, 32 KB 4-way private L1s, shared 2 MB
 *    L2, 4 GB/s of memory bandwidth.
 *  - large: 32 in-order cores, same L1s, shared 8 MB 4-bank L2,
 *    32 GB/s of memory bandwidth.
 *
 * Cores run at IPC = 1 except on memory accesses, at 2 GHz. Default
 * latencies: 1-cycle L1, 12-cycle L2 (4-cycle average L1-to-bank plus
 * 8-cycle bank), 200-cycle zero-load memory.
 *
 * The repartitioning interval defaults to 500 K cycles — a 10x
 * scale-down of the paper's 5 M cycles, matching the scaled-down
 * instruction budgets the quick benches use. Set
 * repartitionCycles = 5'000'000 for paper-scale runs.
 */

#ifndef VANTAGE_SIM_CMP_CONFIG_H_
#define VANTAGE_SIM_CMP_CONFIG_H_

#include <cstdint>

#include "alloc/ucp.h"
#include "workload/profiles.h"

namespace vantage {

/** Machine model parameters. */
struct CmpConfig
{
    std::uint32_t numCores = 4;

    // Private L1s: 32 KB, 4-way (512 lines of 64 B).
    std::uint64_t l1Lines = 512;
    std::uint32_t l1Ways = 4;
    std::uint32_t l1HitLatency = 1;

    // Shared L2.
    std::uint32_t l2HitLatency = 12;

    // Memory: zero-load latency plus a bandwidth-driven serial term.
    std::uint32_t memLatency = 200;
    double memCyclesPerLine = 32.0; ///< 4 GB/s at 2 GHz, 64 B lines.

    // Allocation policy.
    bool useUcp = true;
    std::uint64_t repartitionCycles = 500'000;
    UcpConfig ucp;

    /** Paper's small machine: 4 cores, 2 MB L2, 4 GB/s. */
    static CmpConfig
    small4Core()
    {
        CmpConfig cfg;
        cfg.numCores = 4;
        cfg.memCyclesPerLine = 32.0; // 4 GB/s.
        cfg.ucp.umonWays = 16;
        cfg.ucp.modeledSets = 2048; // 2 MB / 64 B / 16 ways.
        // More monitor sets than the paper's 64 so the curves
        // converge within scaled-down runs; the sampling *period*
        // stays at the set count, preserving per-set stack distances.
        cfg.ucp.umonSets = 256;
        return cfg;
    }

    /** Paper's large machine: 32 cores, 8 MB L2, 32 GB/s. */
    static CmpConfig
    large32Core()
    {
        CmpConfig cfg;
        cfg.numCores = 32;
        cfg.memCyclesPerLine = 4.0; // 32 GB/s.
        cfg.ucp.umonWays = 64;
        cfg.ucp.modeledSets = 2048; // 8 MB / 64 B / 64 ways.
        cfg.ucp.umonSets = 256; // See small4Core().
        return cfg;
    }

    /** L2 line count for the paper machine of this core count. */
    std::uint64_t
    l2Lines() const
    {
        // 2 MB for the 4-core machine, 8 MB for the 32-core one.
        return numCores <= 4 ? 2 * kLinesPerMb : 8 * kLinesPerMb;
    }
};

} // namespace vantage

#endif // VANTAGE_SIM_CMP_CONFIG_H_

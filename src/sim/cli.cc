#include "sim/cli.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "obs/qos.h"

namespace vantage {

namespace {

/** Split a comma-separated list. */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::istringstream in(value);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

bool
parseU64(const std::string &value, std::uint64_t &out)
{
    // strtoull alone would silently wrap negatives ("-5" parses as
    // 2^64-5), so a zero/negative guard downstream never fires;
    // require pure digits up front.
    if (value.empty()) {
        return false;
    }
    for (const char c : value) {
        if (c < '0' || c > '9') {
            return false;
        }
    }
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && errno != ERANGE;
}

bool
parseF(const std::string &value, double &out)
{
    char *end = nullptr;
    out = std::strtod(value.c_str(), &end);
    return end != nullptr && *end == '\0' && !value.empty();
}

} // namespace

std::optional<SchemeKind>
schemeFromName(const std::string &name)
{
    if (name == "lru") return SchemeKind::UnpartLru;
    if (name == "srrip") return SchemeKind::UnpartSrrip;
    if (name == "drrip") return SchemeKind::UnpartDrrip;
    if (name == "tadrrip") return SchemeKind::UnpartTaDrrip;
    if (name == "waypart") return SchemeKind::WayPart;
    if (name == "pipp") return SchemeKind::Pipp;
    if (name == "vantage") return SchemeKind::Vantage;
    if (name == "vantage-drrip") return SchemeKind::VantageDrrip;
    if (name == "vantage-oracle") return SchemeKind::VantageOracle;
    return std::nullopt;
}

std::optional<ArrayKind>
arrayFromName(const std::string &name)
{
    if (name == "z4-52") return ArrayKind::Z4_52;
    if (name == "z4-16") return ArrayKind::Z4_16;
    if (name == "sa16") return ArrayKind::SA16;
    if (name == "sa64") return ArrayKind::SA64;
    if (name == "random") return ArrayKind::Random;
    return std::nullopt;
}

std::string
cliUsage()
{
    return "usage: vsim [options]\n"
           "\n"
           "workload (choose one):\n"
           "  --mix CLASS[:SEED]   mix class 0-34 (see DESIGN.md)\n"
           "  --apps a,b,c         profile names (one per core)\n"
           "  --traces f1,f2       trace files (one per core)\n"
           "\n"
           "machine:\n"
           "  --cores N            core count (default: app count)\n"
           "  --l2-lines N         L2 lines (default: paper machine)\n"
           "  --banks N            split the L2 into N banks, each\n"
           "                       with its own controller (paper\n"
           "                       Table 2; N must divide the line\n"
           "                       count; default: flat cache)\n"
           "  --shard-workers N    run the banks of a single\n"
           "                       simulation on N worker threads\n"
           "                       (requires --banks, N <= banks;\n"
           "                       0 = serial, the default; results\n"
           "                       and digests are identical for\n"
           "                       every value)\n"
           "  --no-ucp             static equal allocations\n"
           "  --repartition N      UCP interval in cycles\n"
           "\n"
           "L2 management:\n"
           "  --scheme NAME        lru srrip drrip tadrrip waypart\n"
           "                       pipp vantage vantage-drrip\n"
           "                       vantage-oracle (default vantage)\n"
           "  --array NAME         z4-52 z4-16 sa16 sa64 random\n"
           "  --unmanaged F        Vantage u (default 0.05)\n"
           "  --amax F             Vantage Amax (default 0.5)\n"
           "  --slack F            Vantage slack (default 0.1)\n"
           "\n"
           "run:\n"
           "  --instrs N           measured instructions per core\n"
           "  --warmup N           warmup accesses per core\n"
           "  --seed N             simulation seed\n"
           "  --jobs N             parallel jobs for suite-style\n"
           "                       runs (or $VANTAGE_JOBS; default\n"
           "                       hardware concurrency; a single\n"
           "                       vsim simulation always runs on\n"
           "                       one thread)\n"
           "\n"
           "observability:\n"
           "  --stats-out FILE     write end-of-run stats as JSON\n"
           "  --trace-out FILE     write a controller trace as CSV\n"
           "                       (vantage schemes only)\n"
           "  --stats-period N     controller accesses between trace\n"
           "                       samples (default 10000)\n"
           "  --events-out FILE    write a Chrome trace_event JSON\n"
           "                       timeline (open in Perfetto or\n"
           "                       chrome://tracing)\n"
           "  --trace-categories L comma list for --events-out:\n"
           "                       access,vantage,zcache,alloc,pool,\n"
           "                       suite,sim or all (default all;\n"
           "                       access/vantage/zcache detail needs\n"
           "                       a -DVANTAGE_TRACE=ON build)\n"
           "  --heartbeat N        single-line JSON progress record\n"
           "                       on stderr every N memory accesses\n"
           "  --heartbeat-out FILE append heartbeat records to FILE\n"
           "                       instead of stderr (implies\n"
           "                       --heartbeat with its default\n"
           "                       cadence when not given)\n"
           "  --metrics-port N     serve live Prometheus metrics on\n"
           "                       127.0.0.1:N (0 picks a free port,\n"
           "                       announced on stderr); scrape\n"
           "                       /metrics, or watch with\n"
           "                       scripts/vsim_top.py\n"
           "  --metrics-period-ms N  metrics sampling epoch\n"
           "                       (default 250)\n"
           "  --digest             print a 64-bit FNV-1a digest of\n"
           "                       per-access L2 outcomes (golden\n"
           "                       regression tests)\n"
           "  --slo SPEC           per-partition QoS SLOs, checked\n"
           "                       every epoch; SPEC is ';'-joined\n"
           "                       clauses of 'key=value' pairs with\n"
           "                       keys slack, aperture_bp, missrate,\n"
           "                       latency_us; an 'N:' prefix scopes\n"
           "                       a clause to partition N (see\n"
           "                       README \"QoS engine\")\n"
           "  --qos-out FILE       append QoS violation events and\n"
           "                       the decision audit tail as JSON\n"
           "                       lines (implies QoS evaluation)\n"
           "\n"
           "serve / replay (see README \"Serve mode\"):\n"
           "  --serve PORT         run as a daemon on 127.0.0.1:PORT\n"
           "                       (0 picks a free port, announced\n"
           "                       on stderr); tenants join/leave\n"
           "                       over the frame protocol and each\n"
           "                       gets its own partition\n"
           "  --serve-journal FILE journal every event (joins,\n"
           "                       leaves, accesses) for --replay\n"
           "  --replay FILE        re-execute a journal; prints a\n"
           "                       digest bit-identical to the\n"
           "                       recording session's\n"
           "  --lifecycle N        synthetic serve session: N\n"
           "                       accesses with seeded tenant\n"
           "                       join/leave churn (no sockets)\n"
           "  --max-tenants N      tenant slot capacity for --serve\n"
           "                       and --lifecycle (default 8)\n"
           "  --epoch N            accesses per repartitioning epoch\n"
           "                       in serve/lifecycle mode\n"
           "                       (default 50000)\n"
           "\n"
           "Options also accept the --option=value form.\n"
           "  --help               this text\n";
}

CliOptions
parseCli(const std::vector<std::string> &args, std::string &error)
{
    CliOptions opts;
    opts.machine = CmpConfig::small4Core();
    opts.l2.scheme = SchemeKind::Vantage;
    opts.l2.array = ArrayKind::Z4_52;
    opts.l2.lines = 0; // Resolved after cores are known.
    opts.scale.warmupAccesses = 50'000;
    opts.scale.instructions = 1'000'000;
    error.clear();

    std::uint64_t cores = 0;

    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string arg = args[i];
        // --option=value is equivalent to --option value.
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
                has_inline = true;
            }
        }
        auto next = [&](std::string &out) {
            if (has_inline) {
                out = inline_value;
                return true;
            }
            if (i + 1 >= args.size()) {
                error = arg + " needs a value";
                return false;
            }
            out = args[++i];
            return true;
        };

        std::string value;
        if (arg == "--help" || arg == "-h" || arg == "--no-ucp" ||
            arg == "--digest") {
            if (has_inline) {
                error = arg + " takes no value";
                return opts;
            }
            if (arg == "--no-ucp") {
                opts.machine.useUcp = false;
                continue;
            }
            if (arg == "--digest") {
                opts.digest = true;
                continue;
            }
            opts.showHelp = true;
            return opts;
        } else if (arg == "--cores") {
            if (!next(value) || !parseU64(value, cores) ||
                cores == 0) {
                error = "bad --cores value";
                return opts;
            }
        } else if (arg == "--scheme") {
            if (!next(value)) return opts;
            const auto kind = schemeFromName(value);
            if (!kind) {
                error = "unknown scheme '" + value + "'";
                return opts;
            }
            opts.l2.scheme = *kind;
        } else if (arg == "--array") {
            if (!next(value)) return opts;
            const auto kind = arrayFromName(value);
            if (!kind) {
                error = "unknown array '" + value + "'";
                return opts;
            }
            opts.l2.array = *kind;
        } else if (arg == "--mix") {
            if (!next(value)) return opts;
            std::uint32_t cls = 0, mix_seed = 0;
            const auto colon = value.find(':');
            std::uint64_t tmp = 0;
            if (!parseU64(value.substr(0, colon), tmp) || tmp >= 35) {
                error = "bad --mix class (0-34)";
                return opts;
            }
            cls = static_cast<std::uint32_t>(tmp);
            if (colon != std::string::npos) {
                if (!parseU64(value.substr(colon + 1), tmp)) {
                    error = "bad --mix seed";
                    return opts;
                }
                mix_seed = static_cast<std::uint32_t>(tmp);
            }
            opts.mix = {cls, mix_seed};
        } else if (arg == "--apps") {
            if (!next(value)) return opts;
            opts.apps = splitList(value);
        } else if (arg == "--traces") {
            if (!next(value)) return opts;
            opts.traces = splitList(value);
        } else if (arg == "--instrs") {
            if (!next(value) ||
                !parseU64(value, opts.scale.instructions)) {
                error = "bad --instrs value";
                return opts;
            }
        } else if (arg == "--warmup") {
            if (!next(value) ||
                !parseU64(value, opts.scale.warmupAccesses)) {
                error = "bad --warmup value";
                return opts;
            }
        } else if (arg == "--l2-lines") {
            if (!next(value) || !parseU64(value, opts.l2.lines)) {
                error = "bad --l2-lines value";
                return opts;
            }
        } else if (arg == "--banks") {
            std::uint64_t banks = 0;
            if (!next(value) || !parseU64(value, banks) ||
                banks == 0 || banks > 1024) {
                error = "bad --banks value (1-1024)";
                return opts;
            }
            opts.banks = static_cast<std::uint32_t>(banks);
        } else if (arg == "--shard-workers") {
            std::uint64_t workers = 0;
            if (!next(value) || !parseU64(value, workers) ||
                workers > 256) {
                error = "bad --shard-workers value (0-256)";
                return opts;
            }
            opts.shardWorkers = static_cast<std::uint32_t>(workers);
        } else if (arg == "--unmanaged") {
            if (!next(value) ||
                !parseF(value, opts.l2.vantage.unmanagedFraction)) {
                error = "bad --unmanaged value";
                return opts;
            }
        } else if (arg == "--amax") {
            if (!next(value) ||
                !parseF(value, opts.l2.vantage.maxAperture)) {
                error = "bad --amax value";
                return opts;
            }
        } else if (arg == "--slack") {
            if (!next(value) ||
                !parseF(value, opts.l2.vantage.slack)) {
                error = "bad --slack value";
                return opts;
            }
        } else if (arg == "--repartition") {
            if (!next(value) ||
                !parseU64(value,
                          opts.machine.repartitionCycles)) {
                error = "bad --repartition value";
                return opts;
            }
        } else if (arg == "--seed") {
            if (!next(value) || !parseU64(value, opts.seed)) {
                error = "bad --seed value";
                return opts;
            }
        } else if (arg == "--jobs") {
            std::uint64_t jobs = 0;
            if (!next(value) || !parseU64(value, jobs) ||
                jobs == 0) {
                error = "bad --jobs value";
                return opts;
            }
            opts.scale.jobs = static_cast<std::uint32_t>(jobs);
        } else if (arg == "--stats-out") {
            if (!next(value) || value.empty()) {
                error = "bad --stats-out value";
                return opts;
            }
            opts.statsOut = value;
        } else if (arg == "--trace-out") {
            if (!next(value) || value.empty()) {
                error = "bad --trace-out value";
                return opts;
            }
            opts.traceOut = value;
        } else if (arg == "--stats-period") {
            if (!next(value) ||
                !parseU64(value, opts.scale.statsPeriod) ||
                opts.scale.statsPeriod == 0) {
                error = "bad --stats-period value";
                return opts;
            }
        } else if (arg == "--events-out") {
            if (!next(value) || value.empty()) {
                error = "bad --events-out value";
                return opts;
            }
            opts.eventsOut = value;
        } else if (arg == "--trace-categories") {
            if (!next(value)) return opts;
            std::string cat_error;
            const std::uint32_t mask =
                TraceSession::parseCategories(value, cat_error);
            if (!cat_error.empty()) {
                error = cat_error;
                return opts;
            }
            opts.traceCategories = mask;
        } else if (arg == "--heartbeat") {
            if (!next(value) ||
                !parseU64(value, opts.scale.heartbeatEvery) ||
                opts.scale.heartbeatEvery == 0) {
                error = "bad --heartbeat value";
                return opts;
            }
        } else if (arg == "--heartbeat-out") {
            if (!next(value) || value.empty()) {
                error = "bad --heartbeat-out value";
                return opts;
            }
            opts.heartbeatOut = value;
        } else if (arg == "--metrics-port") {
            std::uint64_t port = 0;
            if (!next(value) || !parseU64(value, port) ||
                port > 65535) {
                error = "bad --metrics-port value (0-65535)";
                return opts;
            }
            opts.metricsPort = static_cast<int>(port);
        } else if (arg == "--serve") {
            std::uint64_t port = 0;
            if (!next(value) || !parseU64(value, port) ||
                port > 65535) {
                error = "bad --serve port (0-65535)";
                return opts;
            }
            opts.servePort = static_cast<int>(port);
        } else if (arg == "--serve-journal") {
            if (!next(value) || value.empty()) {
                error = "bad --serve-journal value";
                return opts;
            }
            opts.serveJournal = value;
        } else if (arg == "--replay") {
            if (!next(value) || value.empty()) {
                error = "bad --replay value";
                return opts;
            }
            opts.replayPath = value;
        } else if (arg == "--lifecycle") {
            if (!next(value) ||
                !parseU64(value, opts.lifecycleAccesses) ||
                opts.lifecycleAccesses == 0) {
                error = "bad --lifecycle value";
                return opts;
            }
        } else if (arg == "--max-tenants") {
            std::uint64_t tenants = 0;
            if (!next(value) || !parseU64(value, tenants) ||
                tenants == 0 || tenants > 1024) {
                error = "bad --max-tenants value (1-1024)";
                return opts;
            }
            opts.maxTenants = static_cast<std::uint32_t>(tenants);
        } else if (arg == "--epoch") {
            if (!next(value) ||
                !parseU64(value, opts.epochAccesses) ||
                opts.epochAccesses == 0) {
                error = "bad --epoch value";
                return opts;
            }
        } else if (arg == "--metrics-period-ms") {
            if (!next(value) ||
                !parseU64(value, opts.metricsPeriodMs) ||
                opts.metricsPeriodMs == 0) {
                error = "bad --metrics-period-ms value";
                return opts;
            }
        } else if (arg == "--slo") {
            if (!next(value) || value.empty()) {
                error = "bad --slo value";
                return opts;
            }
            // Validate the grammar here so a typo exits with a
            // message instead of surfacing mid-run.
            QosConfig probe;
            std::string slo_error;
            if (!parseSloSpec(value, probe, slo_error)) {
                error = "bad --slo spec: " + slo_error;
                return opts;
            }
            opts.sloSpec = value;
        } else if (arg == "--qos-out") {
            if (!next(value) || value.empty()) {
                error = "bad --qos-out value";
                return opts;
            }
            opts.qosOut = value;
        } else {
            error = "unknown option '" + arg + "'";
            return opts;
        }
    }

    // Workload selection: exactly one source.
    const int sources = (opts.mix ? 1 : 0) +
                        (opts.apps.empty() ? 0 : 1) +
                        (opts.traces.empty() ? 0 : 1);
    if (sources == 0) {
        opts.mix = {10u, 0u}; // A mixed default class.
    } else if (sources > 1) {
        error = "choose one of --mix / --apps / --traces";
        return opts;
    }

    // Resolve core count.
    std::uint32_t inferred = 4;
    if (!opts.apps.empty()) {
        inferred = static_cast<std::uint32_t>(opts.apps.size());
    } else if (!opts.traces.empty()) {
        inferred = static_cast<std::uint32_t>(opts.traces.size());
    }
    opts.machine.numCores =
        cores ? static_cast<std::uint32_t>(cores) : inferred;
    if (opts.mix && cores && cores % 4 != 0) {
        error = "--mix needs a multiple of 4 cores";
        return opts;
    }

    if (opts.machine.numCores > 4) {
        // Big machine defaults for big runs.
        const CmpConfig big = CmpConfig::large32Core();
        opts.machine.memCyclesPerLine = big.memCyclesPerLine;
        opts.machine.ucp = big.ucp;
        opts.machine.useUcp = opts.machine.useUcp && true;
    }
    // Range-check the Vantage knobs here so a bad value exits with a
    // message instead of tripping an assert deep in the controller.
    const VantageConfig &v = opts.l2.vantage;
    if (!(v.unmanagedFraction > 0.0 && v.unmanagedFraction < 1.0)) {
        error = "--unmanaged must be in (0, 1)";
        return opts;
    }
    if (!(v.maxAperture > 0.0 && v.maxAperture <= 1.0)) {
        error = "--amax must be in (0, 1]";
        return opts;
    }
    if (!(v.slack > 0.0 && v.slack < 1.0)) {
        error = "--slack must be in (0, 1)";
        return opts;
    }

    if (opts.l2.lines == 0) {
        opts.l2.lines = opts.machine.l2Lines();
    }
    // Sharding only exists for banked caches, and a worker with no
    // bank (or a bank split that does not divide the lines) is a
    // configuration error, not an assert.
    if (opts.shardWorkers > 0 && opts.banks == 0) {
        error = "--shard-workers requires --banks";
        return opts;
    }
    if (opts.banks > 0 && opts.shardWorkers > opts.banks) {
        error = "--shard-workers must not exceed --banks";
        return opts;
    }
    if (opts.banks > 0 && opts.l2.lines % opts.banks != 0) {
        error = "--banks must divide the L2 line count";
        return opts;
    }
    // Serve / replay / lifecycle select the whole run mode; they
    // cannot be combined with each other.
    const int modes = (opts.servePort >= 0 ? 1 : 0) +
                      (opts.replayPath.empty() ? 0 : 1) +
                      (opts.lifecycleAccesses > 0 ? 1 : 0);
    if (modes > 1) {
        error = "choose one of --serve / --replay / --lifecycle";
        return opts;
    }
    if (!opts.serveJournal.empty() && opts.servePort < 0 &&
        opts.lifecycleAccesses == 0) {
        error = "--serve-journal requires --serve or --lifecycle";
        return opts;
    }
    if (!opts.replayPath.empty() && !opts.digest) {
        // Replay's whole point is the digest; always print it.
        opts.digest = true;
    }
    opts.l2.numPartitions = opts.machine.numCores;
    opts.l2.seed = opts.seed + 0x5ec;
    return opts;
}

} // namespace vantage

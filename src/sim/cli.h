/**
 * @file
 * Command-line options for the `vsim` driver.
 *
 * Parsing is separated from main() so the option grammar is unit
 * testable. The grammar:
 *
 *   vsim [--cores N] [--scheme NAME] [--array NAME]
 *        [--mix CLASS[:SEED] | --apps a,b,c | --traces f1,f2,...]
 *        [--instrs N] [--warmup N] [--l2-lines N]
 *        [--banks N] [--shard-workers N]
 *        [--unmanaged F] [--amax F] [--slack F]
 *        [--no-ucp] [--repartition N] [--seed N] [--jobs N]
 *        [--stats-out FILE] [--trace-out FILE] [--stats-period N]
 *        [--events-out FILE] [--trace-categories LIST]
 *        [--heartbeat N] [--heartbeat-out FILE]
 *        [--metrics-port N] [--metrics-period-ms N] [--digest]
 *        [--slo SPEC] [--qos-out FILE]
 *        [--serve PORT] [--serve-journal FILE] [--replay FILE]
 *        [--lifecycle N] [--max-tenants N] [--epoch N]
 *
 * Every value-taking option also accepts the --option=value form.
 *
 * Scheme names: lru, srrip, drrip, tadrrip, waypart, pipp, vantage,
 * vantage-drrip, vantage-oracle.
 * Array names: z4-52, z4-16, sa16, sa64, random.
 */

#ifndef VANTAGE_SIM_CLI_H_
#define VANTAGE_SIM_CLI_H_

#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "trace/event_trace.h"

namespace vantage {

/** Parsed vsim invocation. */
struct CliOptions
{
    CmpConfig machine;
    L2Spec l2;
    RunScale scale;
    std::uint64_t seed = 1;

    /**
     * Bank count for a banked L2 (0 = flat cache). Must divide the
     * L2 line count.
     */
    std::uint32_t banks = 0;

    /**
     * Bank-worker threads for a single sharded simulation (0 =
     * serial, the default). Requires --banks and must not exceed it;
     * results and digests are bit-identical for every value.
     */
    std::uint32_t shardWorkers = 0;

    /** Exactly one of these selects the workload. */
    std::optional<std::pair<std::uint32_t, std::uint32_t>> mix;
    std::vector<std::string> apps;   ///< Profile names.
    std::vector<std::string> traces; ///< Trace file paths.

    /** Observability outputs (empty: disabled). */
    std::string statsOut;  ///< End-of-run stats registry, JSON.
    std::string traceOut;  ///< Controller trace, CSV.
    std::string eventsOut; ///< Chrome trace_event timeline, JSON.
    /** Category mask for --events-out (default: all). */
    std::uint32_t traceCategories = kTraceAllCategories;

    /** Heartbeat JSON lines to this file instead of stderr. */
    std::string heartbeatOut;

    /**
     * Live Prometheus endpoint port: -1 disabled, 0 ephemeral (the
     * bound port is announced on stderr), else the given port.
     */
    int metricsPort = -1;
    /** Metrics sampling epoch, in milliseconds. */
    std::uint64_t metricsPeriodMs = 250;

    /** Print a 64-bit digest of per-access L2 outcomes. */
    bool digest = false;

    /**
     * QoS SLO spec (see parseSloSpec in obs/qos.h); empty disables
     * the engine unless --qos-out is given (default SLOs only).
     */
    std::string sloSpec;

    /** QoS violation events + audit tail, as JSON lines. */
    std::string qosOut;

    /**
     * Serve mode (-1 disabled): listen for tenant clients on
     * 127.0.0.1:servePort (0 picks an ephemeral port, announced on
     * stderr). Mutually exclusive with --replay and --lifecycle.
     */
    int servePort = -1;

    /** Journal the serve/lifecycle event stream to this file. */
    std::string serveJournal;

    /** Replay a serve journal instead of running a workload. */
    std::string replayPath;

    /**
     * Synthetic tenant-lifecycle scenario: this many accesses with
     * seeded joins/leaves mid-run (0 disabled). Golden-digest
     * vehicle for the dynamic-partition machinery.
     */
    std::uint64_t lifecycleAccesses = 0;

    /** Tenant slot capacity for --serve / --lifecycle. */
    std::uint32_t maxTenants = 8;

    /** Accesses per repartitioning epoch in serve/lifecycle mode. */
    std::uint64_t epochAccesses = 50'000;

    bool showHelp = false;
};

/**
 * Parse argv. @return options, or an error message in `error` (the
 * returned options are then unspecified).
 */
CliOptions parseCli(const std::vector<std::string> &args,
                    std::string &error);

/** Map a scheme name to its kind; nullopt when unknown. */
std::optional<SchemeKind> schemeFromName(const std::string &name);

/** Map an array name to its kind; nullopt when unknown. */
std::optional<ArrayKind> arrayFromName(const std::string &name);

/** The --help text. */
std::string cliUsage();

} // namespace vantage

#endif // VANTAGE_SIM_CLI_H_

#include "sim/cmp_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "array/set_assoc.h"
#include "common/log.h"
#include "core/vantage_variants.h"
#include "obs/audit.h"
#include "obs/qos.h"
#include "partition/unpartitioned.h"
#include "replacement/lru.h"
#include "stats/json.h"
#include "stats/registry.h"
#include "stats/snapshot.h"
#include "trace/event_trace.h"

namespace vantage {

CmpSim::CmpSim(const CmpConfig &cfg, std::vector<AppSpec> apps,
               std::unique_ptr<Cache> l2, std::uint64_t seed)
    : CmpSim(cfg, std::move(apps),
             std::make_unique<MonoL2>(std::move(l2)), seed, 0)
{
}

CmpSim::CmpSim(const CmpConfig &cfg,
               std::vector<std::unique_ptr<AccessStream>> streams,
               std::unique_ptr<Cache> l2)
    : CmpSim(cfg, std::move(streams),
             std::make_unique<MonoL2>(std::move(l2)), 0)
{
}

CmpSim::CmpSim(const CmpConfig &cfg, std::vector<AppSpec> apps,
               std::unique_ptr<SharedL2> l2, std::uint64_t seed,
               std::uint32_t shardWorkers)
    : cfg_(cfg), l2_(std::move(l2)),
      nextRepartition_(cfg.repartitionCycles)
{
    vantage_assert(apps.size() == cfg.numCores,
                   "%zu apps for %u cores", apps.size(), cfg.numCores);
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        apps_.push_back(std::make_unique<AppModel>(
            std::move(apps[c]), c, seed * 7919 + c));
    }
    buildCaches(shardWorkers);
}

CmpSim::CmpSim(const CmpConfig &cfg,
               std::vector<std::unique_ptr<AccessStream>> streams,
               std::unique_ptr<SharedL2> l2,
               std::uint32_t shardWorkers)
    : cfg_(cfg), apps_(std::move(streams)), l2_(std::move(l2)),
      nextRepartition_(cfg.repartitionCycles)
{
    vantage_assert(apps_.size() == cfg.numCores,
                   "%zu streams for %u cores", apps_.size(),
                   cfg.numCores);
    for (const auto &stream : apps_) {
        vantage_assert(stream != nullptr, "null access stream");
    }
    buildCaches(shardWorkers);
}

void
CmpSim::buildCaches(std::uint32_t shardWorkers)
{
    vantage_assert(l2_ != nullptr, "need a shared L2");
    vantage_assert(l2_->numPartitions() == cfg_.numCores,
                   "L2 has %u partitions for %u cores",
                   l2_->numPartitions(), cfg_.numCores);
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        l1s_.push_back(std::make_unique<Cache>(
            std::make_unique<SetAssocArray>(cfg_.l1Lines, cfg_.l1Ways,
                                            true, 0x11c0de + c),
            std::make_unique<Unpartitioned>(
                1, std::make_unique<ExactLru>()),
            "l1-" + std::to_string(c)));
    }
    cores_.resize(cfg_.numCores);
    clockHeap_.reset(cfg_.numCores);
    if (cfg_.useUcp) {
        ucp_ = std::make_unique<Ucp>(cfg_.numCores, cfg_.ucp);
    }
    if (shardWorkers > 0) {
        shardL2_ = l2_->banked();
        vantage_assert(shardL2_ != nullptr,
                       "shard workers need a banked L2");
        // One in-flight access per core bounds every ring, so the
        // coordinator's blocking pushes can never deadlock.
        const std::size_t cap =
            std::max<std::size_t>(8, cfg_.numCores);
        shardL2_->shardStart(shardWorkers, cap);
        corePending_.assign(cfg_.numCores, 0);
        snapshotOnResolve_.assign(cfg_.numCores, 0);
    }
}

Cache &
CmpSim::l2()
{
    Cache *mono = l2_->monoCache();
    vantage_assert(mono != nullptr, "l2() needs a flat L2 cache");
    return *mono;
}

const Cache &
CmpSim::l2() const
{
    Cache *mono = const_cast<SharedL2 &>(*l2_).monoCache();
    vantage_assert(mono != nullptr, "l2() needs a flat L2 cache");
    return *mono;
}

void
CmpSim::step(std::uint32_t core)
{
    CoreState &cs = cores_[core];
    AccessStream &app = *apps_[core];

    // Non-memory instructions run at IPC = 1. instrPerMem may be
    // fractional; carry the remainder across accesses.
    const double gap_f = app.instrPerMem() + cs.instrCarry;
    const auto gap = static_cast<std::uint64_t>(gap_f);
    cs.instrCarry = gap_f - static_cast<double>(gap);
    cs.cycle += gap;
    cs.instructions += gap + 1; // The memory instruction itself.

    const MemRef ref = app.next();
    if (l1s_[core]->access(ref.addr, 0, ref.type) ==
        AccessResult::Hit) {
        cs.cycle += cfg_.l1HitLatency;
        clockHeap_.update(core, cs.cycle);
        return;
    }

    // L1 miss: go to the shared L2. L1 victims are modeled clean
    // (their dirty traffic is absorbed by the L2's non-inclusive
    // write path and does not reach memory).
    ++cs.l2Accesses;
    if (ucp_) {
        ucp_->observe(core, ref.addr);
    }
    if (l2_->access(ref.addr, core, ref.type) == AccessResult::Hit) {
        cs.cycle += cfg_.l2HitLatency;
        clockHeap_.update(core, cs.cycle);
        return;
    }

    // L2 miss: bandwidth-limited memory access. A dirty victim's
    // writeback consumes bandwidth but is off the critical path.
    ++cs.l2Misses;
    const std::uint64_t wbs = l2_->writebacks();
    Cycle service = static_cast<Cycle>(cfg_.memCyclesPerLine);
    if (wbs != l2WritebacksSeen_) {
        service += static_cast<Cycle>(cfg_.memCyclesPerLine) *
                   (wbs - l2WritebacksSeen_);
        l2WritebacksSeen_ = wbs;
    }
    const Cycle start = std::max(cs.cycle, memFree_);
    memFree_ = start + service;
    cs.cycle = start + cfg_.memLatency;
    clockHeap_.update(core, cs.cycle);
}

void
CmpSim::stepSharded(std::uint32_t core)
{
    CoreState &cs = cores_[core];
    AccessStream &app = *apps_[core];

    // Front end: identical to step().
    const double gap_f = app.instrPerMem() + cs.instrCarry;
    const auto gap = static_cast<std::uint64_t>(gap_f);
    cs.instrCarry = gap_f - static_cast<double>(gap);
    cs.cycle += gap;
    cs.instructions += gap + 1;

    const MemRef ref = app.next();
    if (l1s_[core]->access(ref.addr, 0, ref.type) ==
        AccessResult::Hit) {
        cs.cycle += cfg_.l1HitLatency;
        clockHeap_.update(core, cs.cycle);
        return;
    }

    ++cs.l2Accesses;
    if (ucp_) {
        ucp_->observe(core, ref.addr);
    }
    // Ship the L2 access to its bank worker. A full ring can only
    // mean older accesses are in flight, so resolving the oldest is
    // both safe and guaranteed to make space eventually.
    std::uint32_t worker = 0;
    while (!shardL2_->shardTryEnqueue(ref.addr, core, ref.type,
                                      worker)) {
        resolveOldest();
    }
    corePending_[core] = 1;
    pendingFifo_.push_back(PendingAccess{core, worker, cs.cycle});
    // Conservative scheduling key: every L2 outcome costs at least
    // the L2 hit latency, and any pending core whose true finish
    // time could precede (or tie-and-win against) another core's is
    // forced to resolve before that core issues — so issue order
    // equals the serial step order.
    clockHeap_.update(core, cs.cycle + cfg_.l2HitLatency);
}

void
CmpSim::resolveOldest()
{
    vantage_assert(!pendingFifo_.empty(),
                   "resolve with nothing in flight");
    const PendingAccess pa = pendingFifo_.front();
    pendingFifo_.pop_front();
    const ShardResult r = shardL2_->shardPopResult(pa.worker);
    // FIFO = issue = serial order, so the writeback accumulator and
    // the memory-bus state below see the exact serial sequence.
    shardL2_->shardNoteWb(r.wbDelta);

    CoreState &cs = cores_[pa.core];
    if (r.result == AccessResult::Hit) {
        cs.cycle = pa.issueCycle + cfg_.l2HitLatency;
    } else {
        ++cs.l2Misses;
        const std::uint64_t wbs = shardL2_->shardWbFolded();
        Cycle service = static_cast<Cycle>(cfg_.memCyclesPerLine);
        if (wbs != l2WritebacksSeen_) {
            service += static_cast<Cycle>(cfg_.memCyclesPerLine) *
                       (wbs - l2WritebacksSeen_);
            l2WritebacksSeen_ = wbs;
        }
        const Cycle start = std::max(pa.issueCycle, memFree_);
        memFree_ = start + service;
        cs.cycle = start + cfg_.memLatency;
    }
    corePending_[pa.core] = 0;
    clockHeap_.update(pa.core, cs.cycle);
    if (snapshotOnResolve_[pa.core]) {
        snapshotOnResolve_[pa.core] = 0;
        fillSnapshot(cs);
    }
}

void
CmpSim::quiesce()
{
    while (!pendingFifo_.empty()) {
        resolveOldest();
    }
}

void
CmpSim::barrierQuiesce()
{
    ++shardBarriers_;
    if (pendingFifo_.empty()) {
        barrierWait_.add(0);
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    quiesce();
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    barrierWait_.add(static_cast<std::uint64_t>(us));
}

void
CmpSim::fillSnapshot(CoreState &cs)
{
    cs.snapshot.instructions =
        cs.instructions - cs.startInstructions;
    cs.snapshot.cycles = cs.cycle - cs.startCycle;
    cs.snapshot.l2Accesses = cs.l2Accesses - cs.startL2Accesses;
    cs.snapshot.l2Misses = cs.l2Misses - cs.startL2Misses;
}

void
CmpSim::maybeRepartition()
{
    if (!ucp_) {
        return;
    }
    const Cycle min_cycle =
        cores_[nextCore()].cycle; // Trailing core defines "now".
    while (min_cycle >= nextRepartition_) {
        const std::uint32_t quantum = l2_->allocationQuantum();
        if (quantum < cfg_.numCores) {
            // Unpartitioned baselines: nothing to allocate.
            ucp_->nextInterval();
            nextRepartition_ += cfg_.repartitionCycles;
            continue;
        }
        // Epoch barrier: setAllocations mutates bank state, so
        // every in-flight access must land first. Serial order is
        // preserved — all accesses issued before this point resolve
        // before the new allocations apply, exactly as in a serial
        // run.
        if (shardL2_ != nullptr) {
            barrierQuiesce();
        }
        // Way-granular schemes need at least one way per partition;
        // fine-grain quanta can go down to a single unit.
        TraceSpan span(kTraceAlloc, "ucp.repartition");
        std::uint64_t l2_accesses = 0;
        for (const auto &cs : cores_) {
            l2_accesses += cs.l2Accesses;
        }
        reallocGap_.add(l2_accesses - lastReallocAccesses_);
        lastReallocAccesses_ = l2_accesses;
        const std::uint32_t min_units = 1;
        l2_->setAllocations(
            ucp_->computeAllocations(quantum, min_units));
        // Vantage-DRRIP: apply the per-partition dueling winners.
        if (l2_->wantsBrrip()) {
            l2_->applyBrrip(ucp_->brripChoices());
        }
        ucp_->nextInterval();
        if (onRepartition) {
            onRepartition(nextRepartition_);
        }
        nextRepartition_ += cfg_.repartitionCycles;
    }
}

void
CmpSim::markStart()
{
    for (auto &cs : cores_) {
        cs.done = false;
        cs.startCycle = cs.cycle;
        cs.startInstructions = cs.instructions;
        cs.startL2Accesses = cs.l2Accesses;
        cs.startL2Misses = cs.l2Misses;
    }
}

void
CmpSim::warmup(std::uint64_t accesses)
{
    if (shardL2_ != nullptr) {
        warmupSharded(accesses);
        return;
    }
    std::vector<std::uint64_t> issued(cfg_.numCores, 0);
    std::uint32_t remaining = cfg_.numCores;
    while (remaining > 0) {
        const std::uint32_t core = nextCore();
        step(core);
        maybeRepartition();
        heartbeatTick("warmup");
        if (issued[core] < accesses && ++issued[core] == accesses) {
            --remaining;
        }
    }
}

void
CmpSim::warmupSharded(std::uint64_t accesses)
{
    std::vector<std::uint64_t> issued(cfg_.numCores, 0);
    std::uint32_t remaining = cfg_.numCores;
    while (remaining > 0) {
        const std::uint32_t core = nextCore();
        if (corePending_[core]) {
            // The trailing core's true clock is unknown; resolving
            // the oldest in-flight access either settles it or
            // tightens the schedule.
            resolveOldest();
            continue;
        }
        // The top core's key is its exact clock here, so this check
        // is bit-equivalent to the serial post-step check.
        maybeRepartition();
        stepSharded(core);
        heartbeatTick("warmup");
        if (issued[core] < accesses && ++issued[core] == accesses) {
            --remaining;
        }
    }
    quiesce();
    maybeRepartition(); // The serial loop's final post-step check.
}

void
CmpSim::run(std::uint64_t instructions)
{
    if (shardL2_ != nullptr) {
        runSharded(instructions);
        return;
    }
    markStart();
    std::uint32_t remaining = cfg_.numCores;
    while (remaining > 0) {
        const std::uint32_t core = nextCore();
        CoreState &cs = cores_[core];
        step(core);
        maybeRepartition();
        heartbeatTick("run");
        if (!cs.done &&
            cs.instructions - cs.startInstructions >= instructions) {
            cs.done = true;
            fillSnapshot(cs);
            --remaining;
        }
    }
}

void
CmpSim::runSharded(std::uint64_t instructions)
{
    markStart();
    std::uint32_t remaining = cfg_.numCores;
    while (remaining > 0) {
        const std::uint32_t core = nextCore();
        if (corePending_[core]) {
            resolveOldest();
            continue;
        }
        maybeRepartition();
        stepSharded(core);
        heartbeatTick("run");
        CoreState &cs = cores_[core];
        if (!cs.done &&
            cs.instructions - cs.startInstructions >= instructions) {
            cs.done = true;
            if (corePending_[core]) {
                // The finishing access is in flight; snapshot when
                // its outcome (cycle, miss count) lands.
                snapshotOnResolve_[core] = 1;
            } else {
                fillSnapshot(cs);
            }
            --remaining;
        }
    }
    quiesce();
    maybeRepartition();
}

void
CmpSim::setHeartbeat(std::uint64_t every, std::string label)
{
    heartbeatEvery_ = every;
    heartbeatLabel_ = std::move(label);
    heartbeatTick_ = 0;
    heartbeatSeq_ = 0;
    heartbeatLastInstrs_ = 0;
    heartbeatLastAccesses_ = 0;
    heartbeatLastTime_ = std::chrono::steady_clock::now();
}

void
CmpSim::registerLiveStats(StatsRegistry &reg) const
{
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        const std::string base = "core." + std::to_string(c);
        const CoreState *cs = &cores_[c];
        reg.addCounter(base + ".instructions", &cs->instructions);
        reg.addCounter(base + ".cycles", &cs->cycle);
        reg.addCounter(base + ".l2_accesses", &cs->l2Accesses);
        reg.addCounter(base + ".l2_misses", &cs->l2Misses);
        reg.addGauge(base + ".ipc", [cs] {
            return cs->cycle ? static_cast<double>(cs->instructions) /
                                   static_cast<double>(cs->cycle)
                             : 0.0;
        });
    }

    l2_->registerLiveIntrospection(reg);
    if (ucp_) {
        ucp_->registerIntrospection(reg, "umon");
        reg.addHistogram("sim.realloc_gap", &reallocGap_);
    }
    registerShardStats(reg);

    reg.addGauge("sim.cycle",
                 [this] { return static_cast<double>(now()); });
    reg.addCounter("sim.heartbeats", &heartbeatSeq_);
}

void
CmpSim::registerShardStats(StatsRegistry &reg) const
{
    if (shardL2_ == nullptr) {
        return;
    }
    shardL2_->registerShardStats(reg, "shard");
    reg.addHistogram("shard.barrier_wait_us", &barrierWait_);
    reg.addCounter("shard.barriers", &shardBarriers_);
}

namespace {

/** Append a JSON number, mapping non-finite values to null. */
void
appendRate(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

} // namespace

void
CmpSim::emitHeartbeat(const char *phase)
{
    ++heartbeatSeq_;
    const auto now_t = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now_t - heartbeatLastTime_)
            .count();

    // Accesses stepped since setHeartbeat(); the tick counter rolls
    // over exactly at heartbeatEvery_, so the product is exact.
    const std::uint64_t accesses = heartbeatSeq_ * heartbeatEvery_;
    std::uint64_t instrs = 0;
    for (const auto &cs : cores_) {
        instrs += cs.instructions;
    }

    // A zero-elapsed interval (coarse clock, or beats closer than
    // its resolution) has no defined rate. Emit nulls and keep the
    // window open — the next beat computes its rate over the
    // combined interval instead of dividing by zero.
    const bool timed = dt > 0.0;
    const double acc_per_s =
        timed ? static_cast<double>(accesses -
                                    heartbeatLastAccesses_) /
                    dt
              : std::numeric_limits<double>::quiet_NaN();
    const double instr_per_s =
        timed
            ? static_cast<double>(instrs - heartbeatLastInstrs_) / dt
            : std::numeric_limits<double>::quiet_NaN();
    if (timed) {
        heartbeatLastTime_ = now_t;
        heartbeatLastAccesses_ = accesses;
        heartbeatLastInstrs_ = instrs;
    }

    std::string line = "{\"heartbeat\":";
    line += std::to_string(heartbeatSeq_);
    line += ",\"phase\":\"";
    line += phase;
    line += "\",\"label\":\"";
    line += JsonWriter::escape(heartbeatLabel_);
    line += "\",\"accesses\":";
    line += std::to_string(accesses);
    line += ",\"instructions\":";
    line += std::to_string(instrs);
    line += ",\"acc_per_s\":";
    appendRate(line, acc_per_s);
    line += ",\"instr_per_s\":";
    appendRate(line, instr_per_s);
    line += ",\"parts\":[";
    for (PartId p = 0; p < l2_->numPartitions(); ++p) {
        if (p != 0) {
            line += ',';
        }
        line += "{\"target\":";
        line += std::to_string(l2_->targetSize(p));
        line += ",\"actual\":";
        line += std::to_string(l2_->actualSize(p));
        line += '}';
    }
    line += "],\"trace_dropped\":";
    line += std::to_string(TraceSession::instance().dropped());
    if (qos_ != nullptr) {
        line += ",\"qos_active\":";
        line += std::to_string(qos_->active().size());
        line += ",\"qos_violations_total\":";
        line += std::to_string(qos_->violationsTotal());
    }
    if (audit_ != nullptr) {
        line += ",\"decisions_total\":";
        line += std::to_string(audit_->total());
    }
    line += '}';
    if (heartbeatSink_) {
        heartbeatSink_(line);
        return;
    }
    // Single fprintf so concurrent writers can't interleave inside a
    // record.
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
CmpSim::setHeartbeatSink(
    std::function<void(const std::string &)> sink)
{
    heartbeatSink_ = std::move(sink);
}

void
CmpSim::attachQos(QosEngine *qos, StatsRegistry *reg,
                  std::uint64_t every)
{
    qos_ = (reg != nullptr && every != 0) ? qos : nullptr;
    qosReg_ = reg;
    qosEvery_ = every;
    qosTickCtr_ = 0;
}

void
CmpSim::attachAudit(DecisionAudit *audit)
{
    Cache *const mono = l2_->monoCache();
    if (mono == nullptr) {
        if (audit != nullptr) {
            warn("decision audit is mono-L2 only; banked L2 decisions "
                 "are not recorded");
        }
        return;
    }
    audit_ = audit;
    mono->scheme().attachAudit(audit);
}

void
CmpSim::stepQos()
{
    // Deterministic epoch clock: the snapshot timestamp is the epoch
    // number, not wall time, so rates are per-epoch and identical
    // across runs.
    ++qosEpoch_;
    qos_->step(takeSnapshot(*qosReg_, qosEpoch_,
                            static_cast<double>(qosEpoch_)));
}

const CoreResult &
CmpSim::result(std::uint32_t core) const
{
    vantage_assert(core < cfg_.numCores, "core %u out of range", core);
    return cores_[core].snapshot;
}

double
CmpSim::throughput() const
{
    double acc = 0.0;
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        acc += cores_[c].snapshot.ipc();
    }
    return acc;
}

double
CmpSim::weightedSpeedup(const std::vector<double> &alone_ipc) const
{
    vantage_assert(alone_ipc.size() == cfg_.numCores,
                   "%zu baseline IPCs for %u cores", alone_ipc.size(),
                   cfg_.numCores);
    double acc = 0.0;
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        if (alone_ipc[c] > 0.0) {
            acc += cores_[c].snapshot.ipc() / alone_ipc[c];
        }
    }
    return acc;
}

double
CmpSim::hmeanSpeedup(const std::vector<double> &alone_ipc) const
{
    vantage_assert(alone_ipc.size() == cfg_.numCores,
                   "%zu baseline IPCs for %u cores", alone_ipc.size(),
                   cfg_.numCores);
    double inv = 0.0;
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c) {
        const double speedup = alone_ipc[c] > 0.0
                                   ? cores_[c].snapshot.ipc() /
                                         alone_ipc[c]
                                   : 0.0;
        if (speedup <= 0.0) {
            return 0.0;
        }
        inv += 1.0 / speedup;
    }
    return static_cast<double>(cfg_.numCores) / inv;
}

Cycle
CmpSim::now() const
{
    Cycle best = 0;
    for (const auto &cs : cores_) {
        best = std::max(best, cs.cycle);
    }
    return best;
}

} // namespace vantage

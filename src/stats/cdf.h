/**
 * @file
 * Empirical distribution capture.
 *
 * The paper's central quantitative object is the *associativity
 * distribution*: the CDF of the eviction (or demotion) priorities of
 * the lines a cache evicts (demotes). EmpiricalCdf collects samples in
 * [0, 1] into fixed-width bins and reports the empirical CDF, which
 * the tests compare against the analytic form FA(x) = x^R.
 */

#ifndef VANTAGE_STATS_CDF_H_
#define VANTAGE_STATS_CDF_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.h"

namespace vantage {

/** Binned empirical CDF over samples in [0, 1]. */
class EmpiricalCdf
{
  public:
    explicit EmpiricalCdf(std::size_t bins = 1000) : counts_(bins, 0) {}

    /** Record one sample; values outside [0,1] are clamped. */
    void
    add(double x)
    {
        if (x < 0.0) x = 0.0;
        if (x > 1.0) x = 1.0;
        auto bin = static_cast<std::size_t>(x * static_cast<double>(
            counts_.size()));
        if (bin == counts_.size()) --bin;
        ++counts_[bin];
        ++total_;
        cumValid_ = false;
    }

    std::uint64_t samples() const { return total_; }
    std::size_t bins() const { return counts_.size(); }

    /** Empirical P(X <= x). Returns 0 when no samples were recorded. */
    double
    at(double x) const
    {
        if (total_ == 0) return 0.0;
        if (x < 0.0) return 0.0;
        if (x >= 1.0) return 1.0;
        const auto upto = static_cast<std::size_t>(
            x * static_cast<double>(counts_.size()));
        const std::uint64_t acc = upto ? cumulative()[upto - 1] : 0;
        return static_cast<double>(acc) / static_cast<double>(total_);
    }

    /** Smallest x with CDF(x) >= q (a quantile). @pre 0 <= q <= 1. */
    double
    quantile(double q) const
    {
        vantage_assert(q >= 0.0 && q <= 1.0, "quantile %f out of range",
                       q);
        if (total_ == 0) return 0.0;
        const double want = q * static_cast<double>(total_);
        const std::vector<std::uint64_t> &cum = cumulative();
        // First bin whose running total reaches `want`; the running
        // totals are nondecreasing, so binary search applies.
        std::size_t lo = 0, hi = cum.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (static_cast<double>(cum[mid]) >= want) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        if (lo == cum.size()) return 1.0;
        return static_cast<double>(lo + 1) /
               static_cast<double>(counts_.size());
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        cumValid_ = false;
    }

  private:
    /** Prefix sums of counts_, rebuilt lazily after add()/reset(). */
    const std::vector<std::uint64_t> &
    cumulative() const
    {
        if (!cumValid_) {
            cum_.resize(counts_.size());
            std::uint64_t acc = 0;
            for (std::size_t i = 0; i < counts_.size(); ++i) {
                acc += counts_[i];
                cum_[i] = acc;
            }
            cumValid_ = true;
        }
        return cum_;
    }

    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    mutable std::vector<std::uint64_t> cum_;
    mutable bool cumValid_ = false;
};

} // namespace vantage

#endif // VANTAGE_STATS_CDF_H_

#include "stats/snapshot.h"

#include <cmath>
#include <limits>

#include "stats/registry.h"

namespace vantage {

StatsSnapshot
takeSnapshot(const StatsRegistry &reg, std::uint64_t epoch,
             double wall_seconds)
{
    StatsSnapshot snap;
    snap.epoch = epoch;
    snap.wallSeconds = wall_seconds;
    reg.forEachScalar([&snap](const std::string &path, bool is_counter,
                              double value) {
        snap.values.emplace_hint(snap.values.end(), path,
                                 ScalarSample{is_counter, value});
    });
    return snap;
}

SnapshotDelta
deltaBetween(const StatsSnapshot &prev, const StatsSnapshot &cur)
{
    SnapshotDelta d;
    d.fromEpoch = prev.epoch;
    d.toEpoch = cur.epoch;
    d.elapsedSeconds = cur.wallSeconds - prev.wallSeconds;
    const bool timed = d.elapsedSeconds > 0.0;

    for (const auto &[path, sample] : cur.values) {
        DeltaEntry e;
        e.isCounter = sample.isCounter;
        e.current = sample.value;
        const auto it = prev.values.find(path);
        if (it == prev.values.end()) {
            e.fresh = true;
            e.delta = sample.isCounter ? sample.value : 0.0;
        } else if (sample.isCounter &&
                   sample.value < it->second.value) {
            e.wrapped = true;
            e.delta = sample.value;
        } else {
            e.delta = sample.value - it->second.value;
        }
        e.rate = timed
                     ? e.delta / d.elapsedSeconds
                     : std::numeric_limits<double>::quiet_NaN();
        d.entries.emplace_hint(d.entries.end(), path, e);
    }
    return d;
}

} // namespace vantage

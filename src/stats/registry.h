/**
 * @file
 * Hierarchical statistics registry.
 *
 * Components register named statistics under dotted paths
 * ("cache.l2.part3.demotions"); the registry snapshots them on demand
 * and exports the whole tree as JSON (nested by path segment) or CSV
 * (flat rows). Registration stores *accessors*, not copies: counters
 * and gauges are read at export time, so a registry built before a
 * run automatically reports end-of-run values.
 *
 * Lifetime: the registry holds raw pointers/closures into the
 * registered objects. Export before tearing down the components, and
 * never export a registry that outlives its registrants.
 */

#ifndef VANTAGE_STATS_REGISTRY_H_
#define VANTAGE_STATS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "stats/counters.h"
#include "stats/histogram.h"
#include "stats/timeseries.h"

namespace vantage {

class JsonWriter;

/** Registry of named statistics, exported as one JSON/CSV document. */
class StatsRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    using EnabledFn = std::function<bool()>;

    /** Monotonic event count, read through `fn` at export time. */
    void addCounter(const std::string &path, CounterFn fn);
    void addCounter(const std::string &path, const Counter *counter);
    void addCounter(const std::string &path, const std::uint64_t *v);

    /** Point-in-time value, read through `fn` at export time. */
    void addGauge(const std::string &path, GaugeFn fn);

    /** Histogram summary: count/mean/min/max/variance. */
    void addStat(const std::string &path, const RunningStat *stat);

    /** Log2-bucketed distribution: summary + bucket arrays. */
    void addHistogram(const std::string &path, const Histogram *hist);

    /** Sampled (time, value) series; exported as parallel arrays. */
    void addSeries(const std::string &path, const TimeSeries *series);

    /** Fixed string annotation (config names, workload labels). */
    void addString(const std::string &path, std::string text);

    /**
     * Gate every entry at or under `prefix` (the path itself plus any
     * `prefix.`-descendants, including ones registered later) behind
     * `fn`: while fn() returns false the entries vanish from every
     * visitor and export, as if never registered. Re-enabling brings
     * them back with their live values — the snapshot layer then sees
     * them as fresh paths, so a reused partition slot restarts its
     * Prometheus series cleanly instead of exporting stale values.
     *
     * `fn` is called from sampler threads; it must be tolerant of
     * concurrent writers (single-word reads in practice). Like entry
     * registration, addGuard() itself is not thread-safe against
     * sampling: install guards before sampling starts.
     */
    void addGuard(const std::string &prefix, EnabledFn fn);

    bool contains(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }

    /**
     * Visit every scalar projection, in sorted path order:
     * counters and gauges directly, RunningStats flattened to
     * `path.count` (counter) plus `path.mean/min/max` (gauges).
     * Histograms, series and strings are skipped — use the dedicated
     * visitors. `is_counter` distinguishes monotonic counts from
     * point-in-time gauges (the snapshot layer's delta semantics
     * differ).
     *
     * Counters registered by raw pointer are read with a relaxed
     * atomic load, so a sampler thread may call this while the
     * owning thread keeps counting; closure-backed entries read
     * whatever the closure reads (single words in practice) and are
     * likewise tolerant of concurrent writers, at the cost of
     * possibly-stale values. Registration itself is NOT thread-safe:
     * finish building the registry before sampling it from another
     * thread.
     */
    void forEachScalar(
        const std::function<void(const std::string &path,
                                 bool is_counter, double value)> &fn)
        const;

    /** Visit every histogram entry, in sorted path order. */
    void forEachHistogram(
        const std::function<void(const std::string &path,
                                 const Histogram &hist)> &fn) const;

    /** Visit every string annotation, in sorted path order. */
    void forEachString(
        const std::function<void(const std::string &path,
                                 const std::string &text)> &fn) const;

    /** All registered paths, sorted. */
    std::vector<std::string> paths() const;

    /**
     * Snapshot a scalar entry (counter or gauge) by path.
     * @return nullopt for missing paths and non-scalar kinds.
     */
    std::optional<double> value(const std::string &path) const;

    /** Export the full tree as nested JSON. */
    void writeJson(std::ostream &out) const;

    /**
     * Export scalar entries as flat CSV rows (`path,kind,value`).
     * RunningStats flatten to one row per summary field; series are
     * omitted (use the JSON export or a ControllerTrace CSV).
     */
    void writeCsv(std::ostream &out) const;

    /** writeJson to `path`; fatal() when the file cannot be written. */
    void writeJsonFile(const std::string &path) const;

    /** writeCsv to `path`; fatal() when the file cannot be written. */
    void writeCsvFile(const std::string &path) const;

  private:
    enum class Kind { Counter, Gauge, Stat, Histogram, Series, String };

    struct Entry
    {
        Kind kind;
        CounterFn counter;
        GaugeFn gauge;
        /** Set for pointer-registered counters: read with a relaxed
         *  atomic load so sampler threads never tear. */
        const std::uint64_t *raw = nullptr;
        const RunningStat *stat = nullptr;
        const Histogram *hist = nullptr;
        const TimeSeries *series = nullptr;
        std::string text;
    };

    /** Counter value; relaxed atomic load for raw-pointer entries. */
    static std::uint64_t readCounter(const Entry &e);

    /** Reject duplicate paths and leaf/subtree collisions. */
    void checkPath(const std::string &path) const;
    void insert(const std::string &path, Entry entry);

    /** True when no guard covering `path` reports disabled. */
    bool enabledAt(const std::string &path) const;

    static void writeEntryJson(JsonWriter &w, const Entry &e);

    /** Sorted, so the dotted paths group into a tree naturally. */
    std::map<std::string, Entry> entries_;

    /** Prefix-scoped enable predicates (see addGuard). */
    std::vector<std::pair<std::string, EnabledFn>> guards_;
};

} // namespace vantage

#endif // VANTAGE_STATS_REGISTRY_H_

/**
 * @file
 * Plain-text table formatting for benchmark/report output.
 *
 * Every bench binary reproduces one paper table or figure; TablePrinter
 * renders the rows in aligned columns so results are easy to eyeball
 * and diff against the paper.
 */

#ifndef VANTAGE_STATS_TABLE_H_
#define VANTAGE_STATS_TABLE_H_

#include <string>
#include <vector>

namespace vantage {

/** Accumulates rows of strings and prints them with aligned columns. */
class TablePrinter
{
  public:
    /** @param header column titles; fixes the column count. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Append one row. @pre row.size() == header.size(). */
    void addRow(std::vector<std::string> row);

    /** Render the table (header, separator, rows) to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 3);

    /** Format a double in scientific notation. */
    static std::string fmtSci(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vantage

#endif // VANTAGE_STATS_TABLE_H_

/**
 * @file
 * Log2-bucketed histogram for per-partition distribution telemetry.
 *
 * 65 power-of-two buckets cover the full uint64 range: bucket 0 holds
 * the value 0 and bucket k (k >= 1) holds [2^(k-1), 2^k - 1]. That
 * resolution matches what the paper reasons about — demotion aperture
 * in basis points, line age at demotion/eviction in timestamp ticks,
 * candidate-walk lengths, accesses between reallocations — where
 * order of magnitude matters and exact counts do not. add() is O(1)
 * (a bit_width plus three updates), cheap enough for opt-in hot-path
 * recording.
 *
 * Empty histograms report NaN means/quantiles; the JSON exporters
 * serialize non-finite doubles as null.
 */

#ifndef VANTAGE_STATS_HISTOGRAM_H_
#define VANTAGE_STATS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace vantage {

/** Power-of-two-bucketed distribution of uint64 samples. */
class Histogram
{
  public:
    static constexpr std::uint32_t kBuckets = 65;

    /** Bucket index for a value: 0 for 0, else floor(log2 v) + 1. */
    static std::uint32_t
    bucketIndex(std::uint64_t v)
    {
        return v == 0 ? 0u : static_cast<std::uint32_t>(
                                 std::bit_width(v));
    }

    /** Smallest value in bucket `i`. */
    static std::uint64_t
    bucketLow(std::uint32_t i)
    {
        return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
    }

    /** Largest value in bucket `i`. */
    static std::uint64_t
    bucketHigh(std::uint32_t i)
    {
        if (i == 0) return 0;
        if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
        return (std::uint64_t{1} << i) - 1;
    }

    void
    add(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (count_ == 1 || v < min_) min_ = v;
        if (count_ == 1 || v > max_) max_ = v;
    }

    void
    merge(const Histogram &other)
    {
        if (other.count_ == 0) return;
        for (std::uint32_t i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        if (count_ == 0 || other.min_ < min_) min_ = other.min_;
        if (count_ == 0 || other.max_ > max_) max_ = other.max_;
        count_ += other.count_;
        sum_ += other.sum_;
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = 0;
        sum_ = 0;
        min_ = 0;
        max_ = 0;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest/largest sample seen; 0 when empty. */
    std::uint64_t min() const { return min_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t
    bucketCount(std::uint32_t i) const
    {
        return buckets_[i];
    }

    /** NaN when empty (exported as JSON null). */
    double
    mean() const
    {
        if (count_ == 0)
            return std::numeric_limits<double>::quiet_NaN();
        return static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /**
     * Approximate quantile (q in [0,1]) by linear interpolation
     * inside the target bucket, clamped to the observed [min, max].
     * NaN when empty.
     */
    double
    quantile(double q) const
    {
        if (count_ == 0)
            return std::numeric_limits<double>::quiet_NaN();
        q = std::clamp(q, 0.0, 1.0);
        const double rank =
            q * static_cast<double>(count_ - 1);
        std::uint64_t cumulative = 0;
        for (std::uint32_t i = 0; i < kBuckets; ++i) {
            const std::uint64_t n = buckets_[i];
            if (n == 0) continue;
            if (rank < static_cast<double>(cumulative + n)) {
                const double lo = static_cast<double>(
                    std::max(bucketLow(i), min_));
                const double hi = static_cast<double>(
                    std::min(bucketHigh(i), max_));
                if (n == 1 || hi <= lo) return lo;
                const double frac =
                    (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(n - 1);
                return lo + frac * (hi - lo);
            }
            cumulative += n;
        }
        return static_cast<double>(max_);
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace vantage

#endif // VANTAGE_STATS_HISTOGRAM_H_

/**
 * @file
 * Scalar statistics: counters and running means.
 */

#ifndef VANTAGE_STATS_COUNTERS_H_
#define VANTAGE_STATS_COUNTERS_H_

#include <cstdint>
#include <string>

namespace vantage {

/** A named monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** Streaming mean / variance (Welford's algorithm). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (n_ == 1 || x < min_) min_ = x;
        if (n_ == 1 || x > max_) max_ = x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    void
    reset()
    {
        n_ = 0;
        mean_ = m2_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace vantage

#endif // VANTAGE_STATS_COUNTERS_H_

#include "stats/registry.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "stats/json.h"

namespace vantage {

namespace {

/** Split a dotted path into segments. */
std::vector<std::string>
segmentsOf(const std::string &path)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(path.substr(start));
            return segs;
        }
        segs.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
}

} // namespace

void
StatsRegistry::checkPath(const std::string &path) const
{
    vantage_assert(!path.empty(), "empty stats path");
    vantage_assert(path.front() != '.' && path.back() != '.' &&
                       path.find("..") == std::string::npos,
                   "malformed stats path '%s'", path.c_str());
    vantage_assert(entries_.find(path) == entries_.end(),
                   "duplicate stats path '%s'", path.c_str());
    // A leaf may not also be an interior node: neither a prefix of an
    // existing entry nor extend one. Sorted-map neighbours suffice.
    const auto after = entries_.lower_bound(path);
    if (after != entries_.end() &&
        after->first.compare(0, path.size() + 1, path + ".") == 0) {
        panic("stats path '%s' collides with '%s'", path.c_str(),
              after->first.c_str());
    }
    if (after != entries_.begin()) {
        const auto &prev = std::prev(after)->first;
        if (path.compare(0, prev.size() + 1, prev + ".") == 0) {
            panic("stats path '%s' collides with '%s'", path.c_str(),
                  prev.c_str());
        }
    }
}

void
StatsRegistry::insert(const std::string &path, Entry entry)
{
    checkPath(path);
    entries_.emplace(path, std::move(entry));
}

void
StatsRegistry::addCounter(const std::string &path, CounterFn fn)
{
    Entry e;
    e.kind = Kind::Counter;
    e.counter = std::move(fn);
    insert(path, std::move(e));
}

void
StatsRegistry::addCounter(const std::string &path,
                          const Counter *counter)
{
    vantage_assert(counter != nullptr, "null counter at '%s'",
                   path.c_str());
    addCounter(path, [counter] { return counter->value(); });
}

void
StatsRegistry::addCounter(const std::string &path,
                          const std::uint64_t *v)
{
    vantage_assert(v != nullptr, "null counter at '%s'", path.c_str());
    Entry e;
    e.kind = Kind::Counter;
    e.raw = v;
    insert(path, std::move(e));
}

std::uint64_t
StatsRegistry::readCounter(const Entry &e)
{
    if (e.raw != nullptr) {
        // The owning thread increments with plain stores; a relaxed
        // load never tears and is all a live sampler needs.
        return __atomic_load_n(e.raw, __ATOMIC_RELAXED);
    }
    return e.counter();
}

void
StatsRegistry::addGauge(const std::string &path, GaugeFn fn)
{
    Entry e;
    e.kind = Kind::Gauge;
    e.gauge = std::move(fn);
    insert(path, std::move(e));
}

void
StatsRegistry::addStat(const std::string &path, const RunningStat *stat)
{
    vantage_assert(stat != nullptr, "null stat at '%s'", path.c_str());
    Entry e;
    e.kind = Kind::Stat;
    e.stat = stat;
    insert(path, std::move(e));
}

void
StatsRegistry::addHistogram(const std::string &path,
                            const Histogram *hist)
{
    vantage_assert(hist != nullptr, "null histogram at '%s'",
                   path.c_str());
    Entry e;
    e.kind = Kind::Histogram;
    e.hist = hist;
    insert(path, std::move(e));
}

void
StatsRegistry::addSeries(const std::string &path,
                         const TimeSeries *series)
{
    vantage_assert(series != nullptr, "null series at '%s'",
                   path.c_str());
    Entry e;
    e.kind = Kind::Series;
    e.series = series;
    insert(path, std::move(e));
}

void
StatsRegistry::addString(const std::string &path, std::string text)
{
    Entry e;
    e.kind = Kind::String;
    e.text = std::move(text);
    insert(path, std::move(e));
}

void
StatsRegistry::addGuard(const std::string &prefix, EnabledFn fn)
{
    vantage_assert(!prefix.empty(), "empty guard prefix");
    vantage_assert(fn != nullptr, "null guard at '%s'",
                   prefix.c_str());
    guards_.emplace_back(prefix, std::move(fn));
}

bool
StatsRegistry::enabledAt(const std::string &path) const
{
    for (const auto &[prefix, fn] : guards_) {
        const bool covers =
            path.size() >= prefix.size() &&
            path.compare(0, prefix.size(), prefix) == 0 &&
            (path.size() == prefix.size() ||
             path[prefix.size()] == '.');
        if (covers && !fn()) {
            return false;
        }
    }
    return true;
}

bool
StatsRegistry::contains(const std::string &path) const
{
    return entries_.find(path) != entries_.end();
}

std::vector<std::string>
StatsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[path, entry] : entries_) {
        out.push_back(path);
    }
    return out;
}

std::optional<double>
StatsRegistry::value(const std::string &path) const
{
    const auto it = entries_.find(path);
    if (it == entries_.end() || !enabledAt(path)) {
        return std::nullopt;
    }
    switch (it->second.kind) {
      case Kind::Counter:
        return static_cast<double>(readCounter(it->second));
      case Kind::Gauge:
        return it->second.gauge();
      default:
        return std::nullopt;
    }
}

void
StatsRegistry::forEachScalar(
    const std::function<void(const std::string &, bool, double)> &fn)
    const
{
    for (const auto &[path, entry] : entries_) {
        if (!enabledAt(path)) {
            continue;
        }
        switch (entry.kind) {
          case Kind::Counter:
            fn(path, true, static_cast<double>(readCounter(entry)));
            break;
          case Kind::Gauge:
            fn(path, false, entry.gauge());
            break;
          case Kind::Stat: {
            const RunningStat &s = *entry.stat;
            fn(path + ".count", true,
               static_cast<double>(s.count()));
            fn(path + ".mean", false, s.mean());
            fn(path + ".min", false, s.min());
            fn(path + ".max", false, s.max());
            break;
          }
          case Kind::Histogram:
          case Kind::Series:
          case Kind::String:
            break;
        }
    }
}

void
StatsRegistry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)>
        &fn) const
{
    for (const auto &[path, entry] : entries_) {
        if (entry.kind == Kind::Histogram && enabledAt(path)) {
            fn(path, *entry.hist);
        }
    }
}

void
StatsRegistry::forEachString(
    const std::function<void(const std::string &,
                             const std::string &)> &fn) const
{
    for (const auto &[path, entry] : entries_) {
        if (entry.kind == Kind::String && enabledAt(path)) {
            fn(path, entry.text);
        }
    }
}

void
StatsRegistry::writeEntryJson(JsonWriter &w, const Entry &e)
{
    switch (e.kind) {
      case Kind::Counter:
        w.value(readCounter(e));
        break;
      case Kind::Gauge:
        w.value(e.gauge());
        break;
      case Kind::String:
        w.value(e.text);
        break;
      case Kind::Stat:
        w.beginObject();
        w.kv("count", e.stat->count());
        w.kv("mean", e.stat->mean());
        w.kv("min", e.stat->min());
        w.kv("max", e.stat->max());
        w.kv("variance", e.stat->variance());
        w.endObject();
        break;
      case Kind::Histogram: {
        // mean/p* are NaN for empty histograms and serialize as null.
        const Histogram &h = *e.hist;
        w.beginObject();
        w.kv("count", h.count());
        w.kv("sum", h.sum());
        w.kv("mean", h.mean());
        w.kv("min", h.min());
        w.kv("max", h.max());
        w.kv("p50", h.quantile(0.50));
        w.kv("p90", h.quantile(0.90));
        w.kv("p99", h.quantile(0.99));
        w.key("bucket_low");
        w.beginArray();
        for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i) {
            if (h.bucketCount(i) != 0) {
                w.value(Histogram::bucketLow(i));
            }
        }
        w.endArray();
        w.key("bucket_count");
        w.beginArray();
        for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i) {
            if (h.bucketCount(i) != 0) {
                w.value(h.bucketCount(i));
            }
        }
        w.endArray();
        w.endObject();
        break;
      }
      case Kind::Series:
        w.beginObject();
        w.key("time");
        w.beginArray();
        for (const auto &p : e.series->points()) {
            w.value(p.time);
        }
        w.endArray();
        w.key("value");
        w.beginArray();
        for (const auto &p : e.series->points()) {
            w.value(p.value);
        }
        w.endArray();
        w.endObject();
        break;
    }
}

void
StatsRegistry::writeJson(std::ostream &out) const
{
    JsonWriter w(out);
    w.beginObject();
    // The map is path-sorted, so entries sharing a prefix are
    // adjacent: track the open segment stack and emit the minimal
    // close/open sequence between consecutive entries.
    std::vector<std::string> open;
    for (const auto &[path, entry] : entries_) {
        if (!enabledAt(path)) {
            continue;
        }
        const std::vector<std::string> segs = segmentsOf(path);
        // Interior segments: segs[0..n-2]; leaf: segs.back().
        std::size_t common = 0;
        while (common < open.size() && common + 1 < segs.size() &&
               open[common] == segs[common]) {
            ++common;
        }
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        for (std::size_t i = common; i + 1 < segs.size(); ++i) {
            w.key(segs[i]);
            w.beginObject();
            open.push_back(segs[i]);
        }
        w.key(segs.back());
        writeEntryJson(w, entry);
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
}

void
StatsRegistry::writeCsv(std::ostream &out) const
{
    out << "path,kind,value\n";
    std::ostringstream num;
    num.precision(17);
    for (const auto &[path, entry] : entries_) {
        if (!enabledAt(path)) {
            continue;
        }
        switch (entry.kind) {
          case Kind::Counter:
            out << path << ",counter," << readCounter(entry) << "\n";
            break;
          case Kind::Gauge:
            num.str("");
            num << entry.gauge();
            out << path << ",gauge," << num.str() << "\n";
            break;
          case Kind::String:
            out << path << ",string," << entry.text << "\n";
            break;
          case Kind::Stat: {
            const RunningStat &s = *entry.stat;
            out << path << ".count,stat," << s.count() << "\n";
            num.str("");
            num << s.mean();
            out << path << ".mean,stat," << num.str() << "\n";
            num.str("");
            num << s.min();
            out << path << ".min,stat," << num.str() << "\n";
            num.str("");
            num << s.max();
            out << path << ".max,stat," << num.str() << "\n";
            num.str("");
            num << s.variance();
            out << path << ".variance,stat," << num.str() << "\n";
            break;
          }
          case Kind::Histogram: {
            const Histogram &h = *entry.hist;
            out << path << ".count,histogram," << h.count() << "\n";
            if (h.count() != 0) {
                out << path << ".sum,histogram," << h.sum() << "\n";
                num.str("");
                num << h.mean();
                out << path << ".mean,histogram," << num.str() << "\n";
                out << path << ".min,histogram," << h.min() << "\n";
                out << path << ".max,histogram," << h.max() << "\n";
            }
            break;
          }
          case Kind::Series:
            break; // Series go to JSON or a trace CSV.
        }
    }
}

void
StatsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        fatal("cannot open stats output '%s'", path.c_str());
    }
    writeJson(out);
    out.flush();
    if (!out) {
        fatal("failed writing stats output '%s'", path.c_str());
    }
}

void
StatsRegistry::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        fatal("cannot open stats output '%s'", path.c_str());
    }
    writeCsv(out);
    out.flush();
    if (!out) {
        fatal("failed writing stats output '%s'", path.c_str());
    }
}

} // namespace vantage

#include "stats/prof.h"

#include "stats/registry.h"

namespace vantage {

namespace {

std::vector<ProfSite *> &
sites()
{
    static std::vector<ProfSite *> list;
    return list;
}

} // namespace

ProfSite::ProfSite(const char *name) : name_(name)
{
    profRegisterSite(this);
}

void
profRegisterSite(ProfSite *site)
{
    sites().push_back(site);
}

const std::vector<ProfSite *> &
profSites()
{
    return sites();
}

void
profExport(StatsRegistry &reg, const std::string &prefix)
{
    for (const ProfSite *site : sites()) {
        const std::string base = prefix + "." + site->name();
        reg.addCounter(base + ".calls",
                       [site] { return site->calls(); });
        reg.addCounter(base + ".total_ns",
                       [site] { return site->totalNs(); });
        reg.addGauge(base + ".avg_ns", [site] {
            return site->calls()
                       ? static_cast<double>(site->totalNs()) /
                             static_cast<double>(site->calls())
                       : 0.0;
        });
    }
}

void
profResetAll()
{
    for (ProfSite *site : sites()) {
        site->reset();
    }
}

} // namespace vantage

#include "stats/prof.h"

#include <mutex>

#include "stats/registry.h"

namespace vantage {

namespace {

std::vector<ProfSite *> &
sites()
{
    static std::vector<ProfSite *> list;
    return list;
}

/**
 * Guards registration: function-local ProfSites are lazily
 * constructed on first execution, which can happen on any suite
 * worker thread.
 */
std::mutex &
sitesMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

ProfSite::ProfSite(const char *name) : name_(name)
{
    profRegisterSite(this);
}

void
profRegisterSite(ProfSite *site)
{
    std::lock_guard<std::mutex> lock(sitesMutex());
    sites().push_back(site);
}

const std::vector<ProfSite *> &
profSites()
{
    return sites();
}

void
profExport(StatsRegistry &reg, const std::string &prefix)
{
    for (const ProfSite *site : sites()) {
        const std::string base = prefix + "." + site->name();
        reg.addCounter(base + ".calls",
                       [site] { return site->calls(); });
        reg.addCounter(base + ".total_ns",
                       [site] { return site->totalNs(); });
        reg.addGauge(base + ".avg_ns", [site] {
            return site->calls()
                       ? static_cast<double>(site->totalNs()) /
                             static_cast<double>(site->calls())
                       : 0.0;
        });
    }
}

void
profResetAll()
{
    for (ProfSite *site : sites()) {
        site->reset();
    }
}

} // namespace vantage

/**
 * @file
 * Periodic sampling of Vantage controller state.
 *
 * A ControllerTrace attached to a VantageController records, every
 * `period` controller accesses, one row per partition with the full
 * Fig. 4 register file plus the derived aperture: ActualSize,
 * TargetSize, aperture, SetpointTS/CurrentTS, CandsSeen/CandsDemoted,
 * and cumulative promotions/demotions. This is the machine-readable
 * successor of the ad-hoc Fig. 8 plumbing: the same samples drive the
 * target-vs-actual size traces, the aperture/setpoint dynamics of
 * Sec. 4, and per-partition churn trajectories.
 */

#ifndef VANTAGE_STATS_TRACE_H_
#define VANTAGE_STATS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vantage {

/** One sampled row of per-partition controller state. */
struct TraceSample
{
    std::uint64_t access = 0; ///< Controller access count at sample.
    std::uint32_t part = 0;
    std::uint64_t targetSize = 0;
    std::uint64_t actualSize = 0;
    double aperture = 0.0; ///< Eq. 7 estimate at sample time.
    std::uint32_t currentTs = 0;
    std::uint32_t setpointTs = 0;
    std::uint32_t candsSeen = 0;
    std::uint32_t candsDemoted = 0;
    std::uint64_t demotions = 0;  ///< Cumulative.
    std::uint64_t promotions = 0; ///< Cumulative.
};

/** Accumulates TraceSamples and renders them as CSV. */
class ControllerTrace
{
  public:
    /** @param period controller accesses between samples (>= 1). */
    explicit ControllerTrace(std::uint64_t period = 10'000);

    std::uint64_t period() const { return period_; }

    /** True when a controller at `access` accesses should sample. */
    bool
    due(std::uint64_t access) const
    {
        return access % period_ == 0;
    }

    void record(const TraceSample &sample);

    const std::vector<TraceSample> &samples() const
    {
        return samples_;
    }

    bool empty() const { return samples_.empty(); }
    void clear() { samples_.clear(); }

    /** The CSV column names, in row order. */
    static const char *csvHeader();

    /** Render header + one CSV row per sample. */
    void writeCsv(std::ostream &out) const;

    /** writeCsv to `path`; fatal() when the file cannot be written. */
    void writeCsvFile(const std::string &path) const;

  private:
    std::uint64_t period_;
    std::vector<TraceSample> samples_;
};

} // namespace vantage

#endif // VANTAGE_STATS_TRACE_H_

/**
 * @file
 * Time-series capture for figure-style outputs (e.g. Fig. 8's
 * target-vs-actual partition size traces).
 */

#ifndef VANTAGE_STATS_TIMESERIES_H_
#define VANTAGE_STATS_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vantage {

/** One sampled point of a time series. */
struct TimePoint
{
    std::uint64_t time;
    double value;
};

/** A named series of (time, value) samples. */
class TimeSeries
{
  public:
    TimeSeries() = default;
    explicit TimeSeries(std::string name) : name_(std::move(name)) {}

    void
    add(std::uint64_t time, double value)
    {
        points_.push_back({time, value});
    }

    const std::string &name() const { return name_; }
    const std::vector<TimePoint> &points() const { return points_; }
    bool empty() const { return points_.empty(); }

    /** Mean of the sampled values (0 if empty). */
    double
    mean() const
    {
        if (points_.empty()) return 0.0;
        double acc = 0.0;
        for (const auto &p : points_) acc += p.value;
        return acc / static_cast<double>(points_.size());
    }

  private:
    std::string name_;
    std::vector<TimePoint> points_;
};

} // namespace vantage

#endif // VANTAGE_STATS_TIMESERIES_H_

#include "stats/trace.h"

#include <cstdio>
#include <fstream>

#include "common/log.h"

namespace vantage {

ControllerTrace::ControllerTrace(std::uint64_t period)
    : period_(period)
{
    if (period_ == 0) {
        warn_once("trace period 0 clamped to 1");
        period_ = 1;
    }
}

void
ControllerTrace::record(const TraceSample &sample)
{
    samples_.push_back(sample);
}

const char *
ControllerTrace::csvHeader()
{
    return "access,part,target,actual,aperture,current_ts,"
           "setpoint_ts,cands_seen,cands_demoted,demotions,"
           "promotions";
}

void
ControllerTrace::writeCsv(std::ostream &out) const
{
    out << csvHeader() << "\n";
    char buf[32];
    for (const auto &s : samples_) {
        std::snprintf(buf, sizeof(buf), "%.6f", s.aperture);
        out << s.access << "," << s.part << "," << s.targetSize << ","
            << s.actualSize << "," << buf << "," << s.currentTs << ","
            << s.setpointTs << "," << s.candsSeen << ","
            << s.candsDemoted << "," << s.demotions << ","
            << s.promotions << "\n";
    }
}

void
ControllerTrace::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        fatal("cannot open trace output '%s'", path.c_str());
    }
    writeCsv(out);
    out.flush();
    if (!out) {
        fatal("failed writing trace output '%s'", path.c_str());
    }
}

} // namespace vantage

/**
 * @file
 * Minimal JSON support for stats export.
 *
 * JsonWriter is a streaming emitter with automatic comma/indent
 * handling, used by the StatsRegistry and bench exporters. JsonValue
 * is a small recursive-descent parser used by the tests (round-trip
 * validation of exported files) and by tools that read BENCH_*.json
 * perf-trajectory baselines. Neither aims for full spec coverage —
 * just the subset this simulator emits (objects, arrays, numbers,
 * strings, booleans, null).
 */

#ifndef VANTAGE_STATS_JSON_H_
#define VANTAGE_STATS_JSON_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace vantage {

/** Streaming JSON emitter with comma/newline/indent management. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by a value or begin*(). */
    void key(const std::string &k);

    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(bool v);
    void value(const std::string &v);
    void value(const char *v);
    void valueNull();

    /** Convenience: key + scalar value. */
    template <typename T>
    void
    kv(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Escape a string per JSON rules (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    /** Called before any value/key; writes commas and indentation. */
    void pad(bool is_key);
    void open(char c);
    void close(char c);

    std::ostream &out_;
    /** One entry per open container: true once it has a member. */
    std::vector<bool> hasMember_;
    bool afterKey_ = false;
};

/** Parsed JSON document (tests and checkers only; not hot-path). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Object, Array };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /**
     * Parse a complete document. On failure returns a Null value and
     * sets `error`; on success `error` is cleared.
     */
    static JsonValue parse(const std::string &text, std::string &error);

    /**
     * Navigate a dotted path ("cache.l2.part3.demotions") through
     * nested objects. @return the node, or nullptr when missing.
     */
    const JsonValue *find(const std::string &dotted) const;
};

} // namespace vantage

#endif // VANTAGE_STATS_JSON_H_

/**
 * @file
 * Epoch snapshots and deltas over a StatsRegistry.
 *
 * A snapshot captures every scalar projection of a registry (see
 * StatsRegistry::forEachScalar) at one instant, tagged with an epoch
 * number and a monotonic capture time. Two snapshots of the same
 * registry yield a SnapshotDelta: per-path change and per-second rate
 * over the epoch, with counter-reset ("wrap") detection and support
 * for paths that appear mid-run (partitions created dynamically).
 *
 * This is the data model behind the live metrics service
 * (src/obs/metrics_service.h): a sampler thread takes snapshots on a
 * fixed cadence and the Prometheus endpoint serves the latest
 * snapshot plus its delta-derived rates. Snapshots only read; they
 * never perturb simulation state or digests.
 */

#ifndef VANTAGE_STATS_SNAPSHOT_H_
#define VANTAGE_STATS_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

namespace vantage {

class StatsRegistry;

/** One scalar sample: counters are monotonic, gauges point-in-time. */
struct ScalarSample
{
    bool isCounter = false;
    double value = 0.0;
};

/** Point-in-time scalar capture of a registry. */
struct StatsSnapshot
{
    std::uint64_t epoch = 0;
    /** Capture time on a monotonic clock (caller-defined origin). */
    double wallSeconds = 0.0;
    /** Sorted by path (map order), one sample per scalar path. */
    std::map<std::string, ScalarSample> values;

    bool empty() const { return values.empty(); }
};

/**
 * Capture every scalar of `reg` now. `epoch` and `wall_seconds` are
 * caller-provided so the sampler controls numbering and the clock
 * origin (tests pass synthetic times).
 */
StatsSnapshot takeSnapshot(const StatsRegistry &reg,
                           std::uint64_t epoch, double wall_seconds);

/** Per-path change between two snapshots. */
struct DeltaEntry
{
    bool isCounter = false;
    /** Path absent from the previous snapshot (e.g. a partition
     *  registered mid-run): delta counts from zero. */
    bool fresh = false;
    /** Counter went backwards (reset/wrap): delta restarts at the
     *  current value, Prometheus-rate style. Never set for gauges. */
    bool wrapped = false;
    double current = 0.0;
    double delta = 0.0;
    /** delta / elapsed; NaN when the epoch elapsed no time. */
    double rate = 0.0;
};

/** All per-path changes from one snapshot to the next. */
struct SnapshotDelta
{
    std::uint64_t fromEpoch = 0;
    std::uint64_t toEpoch = 0;
    double elapsedSeconds = 0.0;
    std::map<std::string, DeltaEntry> entries;
};

/**
 * Compute the change from `prev` to `cur`. Paths present only in
 * `prev` (unregistered entries) are dropped; paths present only in
 * `cur` are marked fresh and deltas count from zero. Counter deltas
 * guard against resets: a counter below its previous value restarts
 * the delta at the current value instead of going negative.
 */
SnapshotDelta deltaBetween(const StatsSnapshot &prev,
                           const StatsSnapshot &cur);

} // namespace vantage

#endif // VANTAGE_STATS_SNAPSHOT_H_

/**
 * @file
 * Scoped-timer profiling hooks for the simulator's hot paths.
 *
 * Instrument a scope with VANTAGE_PROF("zarray.walk"): when the build
 * enables profiling (cmake -DVANTAGE_PROF=ON, which defines
 * VANTAGE_PROF_ENABLED), every pass through the scope accumulates
 * wall-clock nanoseconds and a call count into a process-wide site
 * list that profExport() dumps into a StatsRegistry under
 * "prof.<site>". In default builds the macro expands to nothing, so
 * the hot paths pay zero cost.
 *
 * The ProfSite/ProfScope classes themselves always compile (tests use
 * them directly); only the macro is build-gated.
 *
 * Thread model: each simulation is single-threaded, but the suite
 * runner fans simulations across a thread pool, so sites can be hit
 * (and lazily constructed) from several workers at once. Counters
 * are relaxed atomics and registration is mutex-guarded;
 * profExport()/profResetAll() must run while no workers are active
 * (they read/zero without synchronizing against add()).
 */

#ifndef VANTAGE_STATS_PROF_H_
#define VANTAGE_STATS_PROF_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace vantage {

class StatsRegistry;

/** One instrumented site: name, call count, accumulated time. */
class ProfSite
{
  public:
    /** Registers the site in the global list on construction. */
    explicit ProfSite(const char *name);

    void
    add(std::uint64_t ns)
    {
        calls_.fetch_add(1, std::memory_order_relaxed);
        totalNs_.fetch_add(ns, std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

    std::uint64_t
    calls() const
    {
        return calls_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    totalNs() const
    {
        return totalNs_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        calls_.store(0, std::memory_order_relaxed);
        totalNs_.store(0, std::memory_order_relaxed);
    }

  private:
    std::string name_;
    std::atomic<std::uint64_t> calls_{0};
    std::atomic<std::uint64_t> totalNs_{0};
};

/** RAII timer: adds its lifetime to a ProfSite. */
class ProfScope
{
  public:
    explicit ProfScope(ProfSite &site)
        : site_(site), start_(std::chrono::steady_clock::now())
    {
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

    ~ProfScope()
    {
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        site_.add(static_cast<std::uint64_t>(ns));
    }

  private:
    ProfSite &site_;
    std::chrono::steady_clock::time_point start_;
};

/** All sites constructed so far (registration order). */
const std::vector<ProfSite *> &profSites();

/**
 * Register every site's calls / total_ns / avg_ns under
 * `prefix`.<site> in `reg`. No-op when no sites exist (the default
 * build instruments nothing).
 */
void profExport(StatsRegistry &reg,
                const std::string &prefix = "prof");

/** Zero all site counters (between warmup and measurement). */
void profResetAll();

/** Internal: sites self-register here. */
void profRegisterSite(ProfSite *site);

#define VANTAGE_PROF_CAT2(a, b) a##b
#define VANTAGE_PROF_CAT(a, b) VANTAGE_PROF_CAT2(a, b)

#ifdef VANTAGE_PROF_ENABLED
/** Time the rest of the enclosing scope under `name`. */
#define VANTAGE_PROF(name)                                               \
    static ::vantage::ProfSite VANTAGE_PROF_CAT(vantage_prof_site_,      \
                                                __LINE__){name};         \
    ::vantage::ProfScope VANTAGE_PROF_CAT(vantage_prof_scope_,           \
                                          __LINE__)                      \
    {                                                                    \
        VANTAGE_PROF_CAT(vantage_prof_site_, __LINE__)                   \
    }
#else
/** Profiling disabled: compiles to nothing. */
#define VANTAGE_PROF(name)                                               \
    do {                                                                 \
    } while (0)
#endif

} // namespace vantage

#endif // VANTAGE_STATS_PROF_H_

#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.h"

namespace vantage {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    vantage_assert(!header_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    vantage_assert(row.size() == header_.size(),
                   "row has %zu cells, expected %zu", row.size(),
                   header_.size());
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size()) {
                out << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        out << '\n';
    };

    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_) emit_row(row);
    return out.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtSci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

} // namespace vantage

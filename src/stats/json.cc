#include "stats/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace vantage {

// ---------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------

void
JsonWriter::pad(bool is_key)
{
    if (afterKey_) {
        // Value directly follows its key.
        vantage_assert(!is_key, "two consecutive JSON keys");
        afterKey_ = false;
        return;
    }
    if (hasMember_.empty()) {
        return; // Top-level value.
    }
    if (hasMember_.back()) {
        out_ << ",";
    }
    hasMember_.back() = true;
    out_ << "\n"
         << std::string(2 * hasMember_.size(), ' ');
}

void
JsonWriter::open(char c)
{
    pad(false);
    out_ << c;
    hasMember_.push_back(false);
}

void
JsonWriter::close(char c)
{
    vantage_assert(!hasMember_.empty(), "JSON container underflow");
    vantage_assert(!afterKey_, "JSON key without a value");
    const bool had = hasMember_.back();
    hasMember_.pop_back();
    if (had) {
        out_ << "\n" << std::string(2 * hasMember_.size(), ' ');
    }
    out_ << c;
    if (hasMember_.empty()) {
        out_ << "\n";
    }
}

void
JsonWriter::beginObject()
{
    open('{');
}

void
JsonWriter::endObject()
{
    close('}');
}

void
JsonWriter::beginArray()
{
    open('[');
}

void
JsonWriter::endArray()
{
    close(']');
}

void
JsonWriter::key(const std::string &k)
{
    vantage_assert(!hasMember_.empty(),
                   "JSON key '%s' outside an object", k.c_str());
    pad(true);
    out_ << '"' << escape(k) << "\": ";
    afterKey_ = true;
}

void
JsonWriter::value(double v)
{
    pad(false);
    if (!std::isfinite(v)) {
        out_ << "null"; // JSON has no NaN/Inf.
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    pad(false);
    out_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    pad(false);
    out_ << v;
}

void
JsonWriter::value(bool v)
{
    pad(false);
    out_ << (v ? "true" : "false");
}

void
JsonWriter::value(const std::string &v)
{
    pad(false);
    out_ << '"' << escape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::valueNull()
{
    pad(false);
    out_ << "null";
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------
// JsonValue parser
// ---------------------------------------------------------------

namespace {

/** Recursive-descent parser over a string; sets fail() on error. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    JsonValue
    document()
    {
        JsonValue v = parseValue();
        skipWs();
        if (error_.empty() && pos_ != text_.size()) {
            fail("trailing characters");
        }
        return error_.empty() ? v : JsonValue{};
    }

  private:
    void
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at offset " + std::to_string(pos_);
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return {};
        }
        const char c = text_[pos_];
        if (c == '{') return parseObject();
        if (c == '[') return parseArray();
        if (c == '"') return parseString();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
            return parseNumber();
        }
        JsonValue v;
        if (literal("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
        } else if (literal("false")) {
            v.type = JsonValue::Type::Bool;
        } else if (literal("null")) {
            v.type = JsonValue::Type::Null;
        } else {
            fail("unexpected character");
        }
        return v;
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        consume('{');
        skipWs();
        if (consume('}')) return v;
        do {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return v;
            }
            const JsonValue k = parseString();
            if (!consume(':')) {
                fail("expected ':'");
                return v;
            }
            v.object[k.str] = parseValue();
            if (!error_.empty()) return v;
        } while (consume(','));
        if (!consume('}')) {
            fail("expected '}'");
        }
        return v;
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        consume('[');
        skipWs();
        if (consume(']')) return v;
        do {
            v.array.push_back(parseValue());
            if (!error_.empty()) return v;
        } while (consume(','));
        if (!consume(']')) {
            fail("expected ']'");
        }
        return v;
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.type = JsonValue::Type::String;
        ++pos_; // Opening quote.
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                const char esc = text_[pos_++];
                switch (esc) {
                  case 'n':
                    c = '\n';
                    break;
                  case 't':
                    c = '\t';
                    break;
                  case 'r':
                    c = '\r';
                    break;
                  case 'u': {
                    // Only the \u00xx range this writer emits.
                    if (pos_ + 4 > text_.size()) {
                        fail("bad \\u escape");
                        return v;
                    }
                    c = static_cast<char>(std::strtoul(
                        text_.substr(pos_, 4).c_str(), nullptr, 16));
                    pos_ += 4;
                    break;
                  }
                  default:
                    c = esc; // \" \\ \/ and friends.
                }
            }
            v.str += c;
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return v;
        }
        ++pos_; // Closing quote.
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.type = JsonValue::Type::Number;
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        v.number = std::strtod(start, &end);
        if (end == start) {
            fail("bad number");
            return v;
        }
        pos_ += static_cast<std::size_t>(end - start);
        return v;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string &error)
{
    error.clear();
    return Parser(text, error).document();
}

const JsonValue *
JsonValue::find(const std::string &dotted) const
{
    const JsonValue *node = this;
    std::size_t start = 0;
    while (start <= dotted.size()) {
        const std::size_t dot = dotted.find('.', start);
        const std::string seg =
            dotted.substr(start, dot == std::string::npos
                                     ? std::string::npos
                                     : dot - start);
        if (node->type != Type::Object) {
            return nullptr;
        }
        const auto it = node->object.find(seg);
        if (it == node->object.end()) {
            return nullptr;
        }
        node = &it->second;
        if (dot == std::string::npos) {
            return node;
        }
        start = dot + 1;
    }
    return nullptr;
}

} // namespace vantage

#include "array/zarray.h"

#include <algorithm>

#include "common/bits.h"
#include "stats/prof.h"

namespace vantage {

ZArray::ZArray(std::size_t num_lines, std::uint32_t ways,
               std::uint32_t num_candidates, std::uint64_t seed)
    : CacheArray(num_lines), ways_(ways), numCands_(num_candidates),
      linesPerWay_(num_lines / ways), visitEpoch_(num_lines, 0)
{
    vantage_assert(ways >= 2, "a zcache needs at least 2 ways");
    vantage_assert(num_lines % ways == 0,
                   "%zu lines not divisible by %u ways", num_lines,
                   ways);
    vantage_assert(isPow2(linesPerWay_),
                   "lines per way %llu must be a power of two",
                   static_cast<unsigned long long>(linesPerWay_));
    vantage_assert(num_candidates >= ways,
                   "R = %u below way count %u", num_candidates, ways);
    hashes_.reserve(ways);
    for (std::uint32_t w = 0; w < ways; ++w) {
        hashes_.emplace_back(seed * 0x9e3779b97f4a7c15ULL + w + 1);
    }
}

LineId
ZArray::positionIn(std::uint32_t w, Addr addr) const
{
    return static_cast<LineId>(w * linesPerWay_ +
                               hashes_[w].mod(addr, linesPerWay_));
}

LineId
ZArray::lookup(Addr addr) const
{
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const LineId slot = positionIn(w, addr);
        if (lines_[slot].addr == addr) {
            return slot;
        }
    }
    return kInvalidLine;
}

void
ZArray::candidates(Addr addr, std::vector<Candidate> &out) const
{
    VANTAGE_PROF("zarray.walk");
    out.clear();
    out.reserve(numCands_);

    // Epoch-stamped visited set: O(1) dedup, no per-walk clearing.
    const std::uint32_t epoch = ++walkEpoch_;
    auto visited = [&](LineId slot) {
        if (visitEpoch_[slot] == epoch) {
            return true;
        }
        visitEpoch_[slot] = epoch;
        return false;
    };

    // First level: the incoming address's own positions.
    for (std::uint32_t w = 0; w < ways_ && out.size() < numCands_;
         ++w) {
        const LineId slot = positionIn(w, addr);
        if (!visited(slot)) {
            out.push_back({slot, -1});
        }
    }

    // Breadth-first expansion: each valid candidate line can move to
    // its positions in the other ways; the occupants of those slots
    // are further candidates.
    for (std::size_t head = 0;
         head < out.size() && out.size() < numCands_; ++head) {
        const Line &occupant = lines_[out[head].slot];
        if (!occupant.valid()) {
            continue; // An empty slot is a perfect victim; don't expand.
        }
        const std::uint32_t own_way = wayOf(out[head].slot);
        for (std::uint32_t w = 0;
             w < ways_ && out.size() < numCands_; ++w) {
            if (w == own_way) {
                continue;
            }
            const LineId slot = positionIn(w, occupant.addr);
            if (!visited(slot)) {
                out.push_back({slot,
                               static_cast<std::int32_t>(head)});
            }
        }
    }
}

LineId
ZArray::replace(Addr addr, const std::vector<Candidate> &cands,
                std::int32_t victim_idx)
{
    vantage_assert(victim_idx >= 0 &&
                   static_cast<std::size_t>(victim_idx) < cands.size(),
                   "victim index %d out of range", victim_idx);

    // Relocate lines up the parent chain: the parent's line moves into
    // the victim's (now free) slot, and so on until a first-level slot
    // is free for the incoming line.
    std::int32_t idx = victim_idx;
    lines_[cands[idx].slot].invalidate();
    while (cands[idx].parent >= 0) {
        const std::int32_t parent = cands[idx].parent;
        lines_[cands[idx].slot] = lines_[cands[parent].slot];
        lines_[cands[parent].slot].invalidate();
        idx = parent;
    }

    const LineId root = cands[idx].slot;
    lines_[root].invalidate();
    lines_[root].addr = addr;
    return root;
}

} // namespace vantage

#include "array/zarray.h"

#include "simd/simd.h"

#include <algorithm>
#include <unordered_set>

#include "common/bits.h"
#include "stats/prof.h"
#include "trace/event_trace.h"

// Hint the next BFS level's hot slots into cache while the current
// level is still being hashed; read-only, low temporal locality.
#if defined(__GNUC__) || defined(__clang__)
#define VANTAGE_PREFETCH_R(p) __builtin_prefetch((p), 0, 1)
#else
#define VANTAGE_PREFETCH_R(p) ((void)0)
#endif

namespace vantage {

ZArray::ZArray(std::size_t num_lines, std::uint32_t ways,
               std::uint32_t num_candidates, std::uint64_t seed)
    : CacheArray(num_lines), ways_(ways), numCands_(num_candidates),
      linesPerWay_(num_lines / ways),
      posTables_(static_cast<std::size_t>(ways) * 2048),
      walkTables_(static_cast<std::size_t>(ways) * 2048),
      visitEpoch_(num_lines, 0), memoPos_(ways, 0)
{
    vantage_assert(ways >= 2, "a zcache needs at least 2 ways");
    vantage_assert(num_candidates <= CandidateBuf::kCapacity,
                   "R = %u exceeds the candidate buffer capacity %u",
                   num_candidates, CandidateBuf::kCapacity);
    vantage_assert(num_lines % ways == 0,
                   "%zu lines not divisible by %u ways", num_lines,
                   ways);
    vantage_assert(isPow2(linesPerWay_),
                   "lines per way %llu must be a power of two",
                   static_cast<unsigned long long>(linesPerWay_));
    vantage_assert(linesPerWay_ <= (1ull << 32),
                   "lines per way %llu exceeds 32-bit positions",
                   static_cast<unsigned long long>(linesPerWay_));
    vantage_assert(num_candidates >= ways,
                   "R = %u below way count %u", num_candidates, ways);
    wayShift_ = static_cast<std::uint32_t>(log2i(linesPerWay_));

    // Premask each way's H3 tables into position tables (see
    // wayHash()); the draws are identical to the previous
    // vector<H3Hash> layout, so positions are bit-compatible.
    const std::uint64_t mask = linesPerWay_ - 1;
    for (std::uint32_t w = 0; w < ways; ++w) {
        const H3Hash h(seed * 0x9e3779b97f4a7c15ULL + w + 1);
        std::uint32_t *table = &posTables_[w * 2048];
        for (int byte = 0; byte < 8; ++byte) {
            for (int v = 0; v < 256; ++v) {
                table[byte * 256 + v] = static_cast<std::uint32_t>(
                    h.tableWord(byte, v) & mask);
            }
        }
    }

    // Interleave the same words way-minor for the walk (see
    // wayHashAll): row ((byte << 8) | value) holds all ways' words
    // for that input byte value contiguously.
    for (std::uint32_t w = 0; w < ways; ++w) {
        for (std::uint32_t byte = 0; byte < 8; ++byte) {
            for (std::uint32_t v = 0; v < 256; ++v) {
                walkTables_[(((byte << 8) | v) * ways) + w] =
                    posTables_[w * 2048 + byte * 256 + v];
            }
        }
    }
}

LineId
ZArray::positionIn(std::uint32_t w, Addr addr) const
{
    return static_cast<LineId>(
        (static_cast<std::uint64_t>(w) << wayShift_) +
        wayHash(&posTables_[w * 2048], addr));
}

void
ZArray::wayHashAllWide(Addr addr, std::uint32_t *pos) const
{
    const std::uint32_t *const t = walkTables_.data();
    if (ways_ == 8) {
        // Fully vectorized W = 8 path: one row is 8 contiguous
        // words = exactly one 256-bit vector, so the batched hash
        // is eight row loads XOR-folded by the dispatched kernel
        // (scalar fallback is the same fold unrolled).
        simd::ops().xorRows8(t, addr, pos);
        return;
    }
    const std::uint32_t stride = ways_;
    const std::uint32_t *row = &t[(addr & 0xff) * stride];
    for (std::uint32_t w = 0; w < stride; ++w) {
        pos[w] = row[w];
    }
    for (std::uint32_t byte = 1; byte < 8; ++byte) {
        row = &t[((byte << 8) | ((addr >> (byte * 8)) & 0xff)) *
                 stride];
        for (std::uint32_t w = 0; w < stride; ++w) {
            pos[w] ^= row[w];
        }
    }
}

LineId
ZArray::lookup(Addr addr) const
{
    // Lazy way-0 probe before any batched work: in steady state
    // most resident lines sit in the way they were inserted into,
    // so this single hash (8 L1-hot table loads) plus one
    // predictable compare resolves the common hit for a quarter of
    // the batched cost. Way 0's words are read strided from the
    // interleaved walk tables — the same 8 cache lines the batched
    // pass below touches — so a miss that falls through re-reads
    // them from L1 instead of pulling a second table. Identical
    // positions, so nothing observable changes — way 0 simply
    // resolves early.
    const std::uint32_t *const wt = walkTables_.data();
    const std::uint32_t stride = ways_;
    std::uint32_t p0 = wt[(addr & 0xff) * stride];
    p0 ^= wt[(256 + ((addr >> 8) & 0xff)) * stride];
    p0 ^= wt[(512 + ((addr >> 16) & 0xff)) * stride];
    p0 ^= wt[(768 + ((addr >> 24) & 0xff)) * stride];
    p0 ^= wt[(1024 + ((addr >> 32) & 0xff)) * stride];
    p0 ^= wt[(1280 + ((addr >> 40) & 0xff)) * stride];
    p0 ^= wt[(1536 + ((addr >> 48) & 0xff)) * stride];
    p0 ^= wt[(1792 + (addr >> 56)) * stride];
    const LineId slot0 = static_cast<LineId>(p0);
    if (lines_[slot0].addr == addr) {
        memoAddr_ = kInvalidAddr;
        return slot0;
    }
    // Way-0 miss: hash all ways in one batched pass over the
    // interleaved tables (positions are a pure function of the
    // address, so computing them up front instead of way-by-way
    // changes nothing observable), then probe the W scattered slots
    // with the dispatched compare kernel. Lane 0 is already known
    // not to match, so first-match order is preserved.
    LineId *const memo = memoPos_.data();
    std::uint32_t pos[CandidateBuf::kCapacity];
    wayHashAll(addr, pos);
    std::uint64_t base = 0;
    for (std::uint32_t w = 0; w < ways_; ++w, base += linesPerWay_) {
        memo[w] = static_cast<LineId>(base + pos[w]);
    }
    const std::int32_t w =
        simd::ops().findTagAt(lines_.data(), memo, ways_, addr);
    if (w >= 0) {
        // Hit: don't let candidates() reuse the memo — by the next
        // miss it may describe a different address.
        memoAddr_ = kInvalidAddr;
        return memo[w];
    }
    memoAddr_ = addr;
    return kInvalidLine;
}

void
ZArray::candidates(Addr addr, CandidateBuf &out) const
{
    // Specialize once on the geometry so the W = 4 walk body inlines
    // its hashing with no reachable calls (see wayHashAll()).
    if (ways_ == 4) {
        walkImpl<true>(addr, out);
    } else {
        walkImpl<false>(addr, out);
    }
}

template <bool kW4>
void
ZArray::walkImpl(Addr addr, CandidateBuf &out) const
{
    VANTAGE_PROF("zarray.walk");
    out.clear();

    // Epoch-stamped visited set: O(1) dedup, no per-walk clearing.
    // On the (rare) 32-bit wrap, clear the stamps so stale epochs
    // from 2^32 walks ago cannot alias.
    std::uint32_t epoch = ++walkEpoch_;
    if (epoch == 0) {
        std::fill(visitEpoch_.begin(), visitEpoch_.end(), 0u);
        epoch = walkEpoch_ = 1;
    }
    std::uint32_t *const stamps = visitEpoch_.data();
    const Line *const lines = lines_.data();
    // Only candidates pushed below this index can become BFS heads
    // (each expanded head contributes up to W-1 new candidates);
    // everything later is scanned once by the caller, not re-read.
    const std::uint32_t expandBound =
        numCands_ > ways_
            ? (numCands_ - 2) / (ways_ - 1)
            : 0;
    // Level-position scratch on the stack: the compiler sees it
    // cannot alias the tables or the stamp array.
    std::uint32_t pos[CandidateBuf::kCapacity];

    // First level: the incoming address's own positions — reuse the
    // ones the preceding missing lookup() already computed when we
    // can (the common path: Cache::access misses then walks).
    if (memoAddr_ == addr) {
        const LineId *const memo = memoPos_.data();
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const LineId slot = memo[w];
            if (stamps[slot] != epoch) {
                stamps[slot] = epoch;
                out.push_back({slot, -1});
            }
        }
    } else {
        if constexpr (kW4) {
            hashRows4(walkTables_.data(), addr, pos);
        } else {
            wayHashAllWide(addr, pos);
        }
        std::uint64_t base = 0;
        for (std::uint32_t w = 0; w < ways_;
             ++w, base += linesPerWay_) {
            const LineId slot = static_cast<LineId>(base + pos[w]);
            if (stamps[slot] != epoch) {
                stamps[slot] = epoch;
                out.push_back({slot, -1});
            }
        }
    }

    // Breadth-first expansion: each valid candidate line can move to
    // its positions in the other ways; the occupants of those slots
    // are further candidates. Flat loops, no virtual calls: wayOf is
    // a shift, all W positions of a level come from one batched pass
    // over the interleaved tables (wayHashAll), and each discovered
    // slot's hot line is prefetched so the next level's expansion —
    // and the demotion scan after the walk — find it resident.
    for (std::uint32_t head = 0;
         head < out.size() && out.size() < numCands_; ++head) {
        const LineId head_slot = out[head].slot;
        const Line &occupant = lines[head_slot];
        if (!occupant.valid()) {
            continue; // An empty slot is a perfect victim; don't expand.
        }
        const std::uint32_t own_way =
            static_cast<std::uint32_t>(head_slot >> wayShift_);
        if constexpr (kW4) {
            hashRows4(walkTables_.data(), occupant.addr, pos);
        } else {
            wayHashAllWide(occupant.addr, pos);
        }
        std::uint64_t base = 0;
        for (std::uint32_t w = 0;
             w < ways_ && out.size() < numCands_;
             ++w, base += linesPerWay_) {
            if (w == own_way) {
                continue;
            }
            const LineId slot = static_cast<LineId>(base + pos[w]);
            if (stamps[slot] != epoch) {
                stamps[slot] = epoch;
                // Prefetch only slots that will be re-read as heads
                // of the next level; hinting every candidate costs
                // more than it saves on an L2-resident array.
                if (out.size() < expandBound) {
                    VANTAGE_PREFETCH_R(&lines[slot]);
                }
                out.push_back({slot,
                               static_cast<std::int32_t>(head)});
            }
        }
    }
    VANTAGE_TRACE_INSTANT(kTraceZcache, "zarray.walk", "cands",
                          out.size());
}

void
ZArray::checkInvariants(InvariantReport &rep) const
{
    // Relocations move whole Line structs between hash positions; a
    // line parked anywhere its address does not map to would be
    // unreachable by lookup() (a silent leak), and a duplicated tag
    // would make lookups ambiguous. Recheck both from scratch.
    std::unordered_set<Addr> seen;
    seen.reserve(lines_.size());
    for (LineId slot = 0; slot < lines_.size(); ++slot) {
        const Line &line = lines_[slot];
        if (!line.valid()) {
            continue;
        }
        const std::uint32_t w = wayOf(slot);
        rep.expect(positionIn(w, line.addr) == slot,
                   "zarray: line %#llx at slot %u is not at its way-%u "
                   "position",
                   static_cast<unsigned long long>(line.addr), slot, w);
        rep.expect(seen.insert(line.addr).second,
                   "zarray: address %#llx resident in two slots",
                   static_cast<unsigned long long>(line.addr));
    }
}

LineId
ZArray::replace(Addr addr, const CandidateBuf &cands,
                std::int32_t victim_idx)
{
    vantage_assert(victim_idx >= 0 &&
                   static_cast<std::uint32_t>(victim_idx) <
                       cands.size(),
                   "victim index %d out of range", victim_idx);

    // Relocate lines up the parent chain: the parent's line moves into
    // the victim's (now free) slot, and so on until a first-level slot
    // is free for the incoming line. Cold metadata belongs to the
    // relocated line, so it moves in lockstep with the hot tag.
    std::int32_t idx = victim_idx;
    lines_[cands[idx].slot].invalidate();
    while (cands[idx].parent >= 0) {
        const std::int32_t parent = cands[idx].parent;
        lines_[cands[idx].slot] = lines_[cands[parent].slot];
        cold_[cands[idx].slot] = cold_[cands[parent].slot];
        lines_[cands[parent].slot].invalidate();
        idx = parent;
    }

    const LineId root = cands[idx].slot;
    lines_[root].invalidate();
    cold_[root].reset();
    lines_[root].addr = addr;
    return root;
}

} // namespace vantage

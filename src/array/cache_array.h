/**
 * @file
 * The cache-array abstraction.
 *
 * Following the paper's analytical framework (Sec. 3.2), a cache is
 * split into an *array*, which implements associative lookups and
 * produces a list of replacement candidates on each miss, and a
 * *replacement policy / partitioning scheme*, which ranks those
 * candidates. This header defines the array side.
 *
 * Line metadata is split structure-of-arrays style. The hot array
 * (Line: tag, partition id, rank) is everything lookup(), the zcache
 * walk, and the Vantage demotion check read — 16 bytes per line, four
 * lines per hardware cache line. The cold array (LineCold: dirty bit,
 * exact-LRU timestamp) is only touched on hits, insertions, and
 * writeback accounting, and never during candidate scans, so the scan
 * working set is not diluted by simulator-only bookkeeping.
 */

#ifndef VANTAGE_ARRAY_CACHE_ARRAY_H_
#define VANTAGE_ARRAY_CACHE_ARRAY_H_

#include <cstdint>

#include "array/candidate_buf.h"
#include "common/check.h"
#include "common/hp_alloc.h"
#include "common/log.h"
#include "common/types.h"

namespace vantage {

/**
 * Hot per-line tag state, scanned on every miss.
 *
 * Mirrors the tag fields of the paper's Fig. 4: the partition id
 * (6 bits there) and an 8-bit coarse timestamp. `rank` doubles as the
 * LRU coarse timestamp or the RRIP re-reference prediction value,
 * depending on the active policy.
 */
struct Line
{
    Addr addr = kInvalidAddr;
    PartId part = kInvalidPart;
    std::uint8_t rank = 0;

    bool valid() const { return addr != kInvalidAddr; }

    void
    invalidate()
    {
        addr = kInvalidAddr;
        part = kInvalidPart;
        rank = 0;
    }
};

static_assert(sizeof(Line) == 16,
              "hot line metadata must stay cache-line packed "
              "(4 lines per 64B)");
static_assert(kPlaneAlignment % sizeof(Line) == 0,
              "an aligned hot plane must tile whole hardware cache "
              "lines with Line records");

/**
 * Cold per-line state, off the candidate-scan path.
 *
 * `lastAccess` supports exact-LRU baselines; real hardware would not
 * store it, but the simulator can. `dirty` only matters when a line
 * is finally evicted (writeback accounting). Both travel with the
 * line when an array relocates it.
 */
struct LineCold
{
    // Packed into one 8-byte word (8 entries per 64B cache line): a
    // 63-bit access counter cannot wrap in any feasible run, and the
    // dirty flag rides in the top bit.
    std::uint64_t lastAccess : 63;
    std::uint64_t dirty : 1;

    LineCold() : lastAccess(0), dirty(0) {}

    void
    reset()
    {
        lastAccess = 0;
        dirty = 0;
    }
};

static_assert(sizeof(LineCold) == 8,
              "cold line metadata must stay word-packed");

/** Abstract cache array: lookup + candidate generation + replacement. */
class CacheArray
{
  public:
    explicit CacheArray(std::size_t num_lines)
        : lines_(num_lines), cold_(num_lines)
    {
        // The SIMD scan kernels issue full-width loads from the
        // planes; a base that is not cache-line aligned would split
        // every vector across two hardware lines. HpArray guarantees
        // this — the assert pins the contract.
        vantage_assert(
            num_lines == 0 ||
                (reinterpret_cast<std::uintptr_t>(lines_.data()) %
                     kPlaneAlignment ==
                 0),
            "hot plane base is not %zu-byte aligned", kPlaneAlignment);
    }
    virtual ~CacheArray() = default;

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;

    /** Find the slot holding addr, or kInvalidLine. */
    virtual LineId lookup(Addr addr) const = 0;

    /**
     * Produce the replacement candidates for an incoming address.
     * Candidates may include invalid (empty) slots; callers should
     * prefer those. The buffer is cleared first.
     */
    virtual void candidates(Addr addr, CandidateBuf &out) const = 0;

    /**
     * Install `addr`, evicting the candidate at `victim_idx` of the
     * list previously returned by candidates() for this address.
     * Performs any relocations the array needs (zcache) — relocations
     * move the hot Line and its LineCold entry together, so policy
     * metadata follows the line. @return the slot where the new
     * line's tag now lives; its Line has addr set and all other
     * (hot and cold) fields reset for the caller to initialize.
     */
    virtual LineId replace(Addr addr, const CandidateBuf &cands,
                           std::int32_t victim_idx) = 0;

    /** Nominal number of replacement candidates per eviction. */
    virtual std::uint32_t numCandidates() const = 0;

    /** Number of ways (for way-partitioning / PIPP set geometry). */
    virtual std::uint32_t numWays() const = 0;

    /** The way a given slot belongs to. */
    virtual std::uint32_t wayOf(LineId slot) const = 0;

    /**
     * Verify the array's structural invariants (every valid line sits
     * in a slot its address actually maps to, no duplicate tags) by
     * rescanning the line table, recording violations in `rep`.
     * Must not change observable behavior: a checked run produces the
     * same access outcomes as an unchecked one.
     */
    virtual void
    checkInvariants(InvariantReport &rep) const
    {
        (void)rep;
    }

    std::size_t numLines() const { return lines_.size(); }

    Line &
    line(LineId id)
    {
        vantage_assert(id < lines_.size(), "line id %u out of range", id);
        return lines_[id];
    }

    const Line &
    line(LineId id) const
    {
        vantage_assert(id < lines_.size(), "line id %u out of range", id);
        return lines_[id];
    }

    LineCold &
    cold(LineId id)
    {
        vantage_assert(id < cold_.size(), "line id %u out of range", id);
        return cold_[id];
    }

    const LineCold &
    cold(LineId id) const
    {
        vantage_assert(id < cold_.size(), "line id %u out of range", id);
        return cold_[id];
    }

    /**
     * Raw hot array, for per-candidate scans (the Vantage demotion
     * pass) that have already validated their slots: skips the
     * per-access bounds assert of line().
     */
    Line *linesData() { return lines_.data(); }
    const Line *linesData() const { return lines_.data(); }

    /** Raw cold array, for single-plane policy scans (exact LRU). */
    LineCold *coldData() { return cold_.data(); }
    const LineCold *coldData() const { return cold_.data(); }

  protected:
    // 64-byte-aligned, huge-page-advised planes (see hp_alloc.h):
    // the hot plane is the SIMD scan target, and at giant-cache
    // sizes both planes burn TLB entries without huge pages.
    HpArray<Line> lines_;
    HpArray<LineCold> cold_;
};

} // namespace vantage

#endif // VANTAGE_ARRAY_CACHE_ARRAY_H_

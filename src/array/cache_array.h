/**
 * @file
 * The cache-array abstraction.
 *
 * Following the paper's analytical framework (Sec. 3.2), a cache is
 * split into an *array*, which implements associative lookups and
 * produces a list of replacement candidates on each miss, and a
 * *replacement policy / partitioning scheme*, which ranks those
 * candidates. This header defines the array side.
 *
 * The array owns the per-line tag state (the Line struct: address,
 * partition id, replacement metadata) so that arrays which physically
 * relocate lines — the zcache — can move the whole tag in one place.
 */

#ifndef VANTAGE_ARRAY_CACHE_ARRAY_H_
#define VANTAGE_ARRAY_CACHE_ARRAY_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/types.h"

namespace vantage {

/**
 * Per-line tag state.
 *
 * Mirrors the tag fields of the paper's Fig. 4: the partition id
 * (6 bits there) and an 8-bit coarse timestamp. `rank` doubles as the
 * LRU coarse timestamp or the RRIP re-reference prediction value,
 * depending on the active policy. `lastAccess` supports exact-LRU
 * baselines; real hardware would not store it, but the simulator can.
 */
struct Line
{
    Addr addr = kInvalidAddr;
    PartId part = kInvalidPart;
    std::uint8_t rank = 0;
    bool dirty = false;
    std::uint64_t lastAccess = 0;

    bool valid() const { return addr != kInvalidAddr; }

    void
    invalidate()
    {
        addr = kInvalidAddr;
        part = kInvalidPart;
        rank = 0;
        dirty = false;
        lastAccess = 0;
    }
};

/**
 * One replacement candidate produced by an array.
 *
 * `slot` identifies the line; `parent` is the index (within the same
 * candidate list) of the candidate whose line would move into `slot`
 * if this candidate is evicted, or -1 when the incoming line itself
 * lands in `slot`. Set-associative arrays always use parent == -1;
 * zcache walks build multi-level relocation chains.
 */
struct Candidate
{
    LineId slot;
    std::int32_t parent;
};

/** Abstract cache array: lookup + candidate generation + replacement. */
class CacheArray
{
  public:
    explicit CacheArray(std::size_t num_lines) : lines_(num_lines) {}
    virtual ~CacheArray() = default;

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;

    /** Find the slot holding addr, or kInvalidLine. */
    virtual LineId lookup(Addr addr) const = 0;

    /**
     * Produce the replacement candidates for an incoming address.
     * Candidates may include invalid (empty) slots; callers should
     * prefer those. The list is cleared first.
     */
    virtual void candidates(Addr addr,
                            std::vector<Candidate> &out) const = 0;

    /**
     * Install `addr`, evicting the candidate at `victim_idx` of the
     * list previously returned by candidates() for this address.
     * Performs any relocations the array needs (zcache) — relocations
     * move the entire Line struct, so policy metadata follows the
     * line. @return the slot where the new line's tag now lives; its
     * Line has addr set and all other fields reset for the caller to
     * initialize.
     */
    virtual LineId replace(Addr addr,
                           const std::vector<Candidate> &cands,
                           std::int32_t victim_idx) = 0;

    /** Nominal number of replacement candidates per eviction. */
    virtual std::uint32_t numCandidates() const = 0;

    /** Number of ways (for way-partitioning / PIPP set geometry). */
    virtual std::uint32_t numWays() const = 0;

    /** The way a given slot belongs to. */
    virtual std::uint32_t wayOf(LineId slot) const = 0;

    /**
     * Verify the array's structural invariants (every valid line sits
     * in a slot its address actually maps to, no duplicate tags) by
     * rescanning the line table, recording violations in `rep`.
     * Must not change observable behavior: a checked run produces the
     * same access outcomes as an unchecked one.
     */
    virtual void
    checkInvariants(InvariantReport &rep) const
    {
        (void)rep;
    }

    std::size_t numLines() const { return lines_.size(); }

    Line &
    line(LineId id)
    {
        vantage_assert(id < lines_.size(), "line id %u out of range", id);
        return lines_[id];
    }

    const Line &
    line(LineId id) const
    {
        vantage_assert(id < lines_.size(), "line id %u out of range", id);
        return lines_[id];
    }

  protected:
    std::vector<Line> lines_;
};

} // namespace vantage

#endif // VANTAGE_ARRAY_CACHE_ARRAY_H_

/**
 * @file
 * Set-associative cache array, with optional H3-hashed indexing.
 *
 * The baseline array of the paper's evaluation (SA16 / SA64). With
 * hashing enabled the set index is an H3 hash of the line address,
 * which is how modern last-level caches index and what the paper's
 * "hashed set-associative" configurations use.
 */

#ifndef VANTAGE_ARRAY_SET_ASSOC_H_
#define VANTAGE_ARRAY_SET_ASSOC_H_

#include <vector>

#include "array/cache_array.h"
#include "hash/h3.h"

namespace vantage {

/** Standard sets x ways array; candidates are the ways of one set. */
class SetAssocArray : public CacheArray
{
  public:
    /**
     * @param num_lines total line slots; must be sets * ways with
     *        power-of-two sets.
     * @param ways associativity.
     * @param hash_index index with an H3 hash instead of low bits.
     * @param seed hash-function seed.
     */
    SetAssocArray(std::size_t num_lines, std::uint32_t ways,
                  bool hash_index = true, std::uint64_t seed = 0xcafe);

    LineId lookup(Addr addr) const override;
    void candidates(Addr addr, CandidateBuf &out) const override;
    LineId replace(Addr addr, const CandidateBuf &cands,
                   std::int32_t victim_idx) override;

    std::uint32_t numCandidates() const override { return ways_; }
    std::uint32_t numWays() const override { return ways_; }

    std::uint32_t
    wayOf(LineId slot) const override
    {
        return slot % ways_;
    }

    std::uint64_t numSets() const { return sets_; }

    /** The set an address maps to (exposed for UMON-style sampling). */
    std::uint64_t setOf(Addr addr) const;

    /**
     * Every valid line must reside in the set its address indexes,
     * with no duplicate tags within a set.
     */
    void checkInvariants(InvariantReport &rep) const override;

  private:
    LineId slotOf(std::uint64_t set, std::uint32_t way) const;

    std::uint32_t ways_;
    std::uint64_t sets_;
    bool hashIndex_;
    H3Hash hash_;
    /**
     * Set index memoized by the last lookup(); candidates() reuses
     * it instead of rehashing. The index is a pure function of the
     * address, so a stale memo is never wrong — the address check
     * alone decides reuse.
     */
    mutable Addr memoAddr_ = kInvalidAddr;
    mutable std::uint64_t memoSet_ = 0;
};

} // namespace vantage

#endif // VANTAGE_ARRAY_SET_ASSOC_H_

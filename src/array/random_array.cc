#include "array/random_array.h"

#include <algorithm>

namespace vantage {

RandomArray::RandomArray(std::size_t num_lines,
                         std::uint32_t num_candidates,
                         std::uint64_t seed)
    : CacheArray(num_lines), numCands_(num_candidates), rng_(seed)
{
    vantage_assert(num_candidates >= 1, "need at least one candidate");
    vantage_assert(num_candidates <= num_lines,
                   "R = %u exceeds %zu lines", num_candidates,
                   num_lines);
    vantage_assert(num_candidates <= CandidateBuf::kCapacity,
                   "R = %u exceeds the candidate buffer capacity %u",
                   num_candidates, CandidateBuf::kCapacity);
    map_.reserve(num_lines * 2);
}

LineId
RandomArray::lookup(Addr addr) const
{
    const auto it = map_.find(addr);
    return it == map_.end() ? kInvalidLine : it->second;
}

void
RandomArray::candidates(Addr addr, CandidateBuf &out) const
{
    (void)addr;
    out.clear();

    // While the array still has free slots, the next free slot leads
    // the list (so fills complete deterministically), followed by
    // random draws — schemes still see a full candidate list, as a
    // real array's replacement walk would.
    if (nextFree_ < lines_.size()) {
        out.push_back({static_cast<LineId>(nextFree_), -1});
    }

    while (out.size() < numCands_) {
        const auto slot =
            static_cast<LineId>(rng_.range(lines_.size()));
        const bool seen = std::any_of(
            out.begin(), out.end(),
            [slot](const Candidate &c) { return c.slot == slot; });
        if (!seen) {
            out.push_back({slot, -1});
        }
    }
}

LineId
RandomArray::replace(Addr addr, const CandidateBuf &cands,
                     std::int32_t victim_idx)
{
    vantage_assert(victim_idx >= 0 &&
                   static_cast<std::uint32_t>(victim_idx) <
                       cands.size(),
                   "victim index %d out of range", victim_idx);
    const LineId slot = cands[victim_idx].slot;
    Line &victim = lines_[slot];
    if (victim.valid()) {
        map_.erase(victim.addr);
    }
    victim.invalidate();
    cold_[slot].reset();
    victim.addr = addr;
    map_[addr] = slot;
    if (slot == nextFree_ && nextFree_ < lines_.size()) {
        ++nextFree_;
    }
    return slot;
}

} // namespace vantage

/**
 * @file
 * Fixed-capacity candidate buffer for the miss path.
 *
 * Every miss produces a bounded candidate list — at most the array's
 * associativity (zcache: the R-candidate walk, set-associative: the
 * ways of one set). The bound is small and known at build time, so
 * the buffer lives inline in the Cache object and on test stacks:
 * the miss path performs no heap allocation, and the candidate slots
 * occupy a handful of consecutive cache lines that the walk and the
 * demotion pass stream through.
 *
 * The API is the subset of std::vector the arrays and schemes use,
 * so call sites read identically to the previous vector-based code.
 */

#ifndef VANTAGE_ARRAY_CANDIDATE_BUF_H_
#define VANTAGE_ARRAY_CANDIDATE_BUF_H_

#include <cstdint>

#include "common/log.h"
#include "common/types.h"

namespace vantage {

/**
 * One replacement candidate produced by an array.
 *
 * `slot` identifies the line; `parent` is the index (within the same
 * candidate list) of the candidate whose line would move into `slot`
 * if this candidate is evicted, or -1 when the incoming line itself
 * lands in `slot`. Set-associative arrays always use parent == -1;
 * zcache walks build multi-level relocation chains.
 */
struct Candidate
{
    LineId slot;
    std::int32_t parent;
};

/**
 * Inline, fixed-capacity list of replacement candidates.
 *
 * Capacity covers the largest candidate list any array emits: the
 * Z4/52 walk (52) and the 64-way set-associative baseline (64).
 * Arrays assert their numCandidates() fits at construction, so
 * push_back can never overflow on a well-formed configuration; the
 * assert here catches misuse in new code.
 */
class CandidateBuf
{
  public:
    static constexpr std::uint32_t kCapacity = 64;

    void clear() { size_ = 0; }

    void
    push_back(const Candidate &c)
    {
        vantage_assert(size_ < kCapacity,
                       "candidate buffer overflow (%u)", size_);
        items_[size_++] = c;
    }

    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    static constexpr std::uint32_t capacity() { return kCapacity; }

    Candidate &operator[](std::uint32_t i) { return items_[i]; }
    const Candidate &
    operator[](std::uint32_t i) const
    {
        return items_[i];
    }

    Candidate *data() { return items_; }
    const Candidate *data() const { return items_; }

    Candidate *begin() { return items_; }
    Candidate *end() { return items_ + size_; }
    const Candidate *begin() const { return items_; }
    const Candidate *end() const { return items_ + size_; }

  private:
    Candidate items_[kCapacity];
    std::uint32_t size_ = 0;
};

} // namespace vantage

#endif // VANTAGE_ARRAY_CANDIDATE_BUF_H_

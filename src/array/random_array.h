/**
 * @file
 * Idealized "random candidates" array.
 *
 * On each miss this array offers R independent, uniformly distributed
 * slots as replacement candidates — the exact assumption behind the
 * paper's analytical models (Sec. 3.2). It is not a buildable cache
 * (lookups need a full map), but it is the reference point the paper
 * itself uses in Sec. 6.2 to check that zcaches are close enough to
 * uniform for the models to hold.
 */

#ifndef VANTAGE_ARRAY_RANDOM_ARRAY_H_
#define VANTAGE_ARRAY_RANDOM_ARRAY_H_

#include <unordered_map>
#include <vector>

#include "array/cache_array.h"
#include "common/rng.h"

namespace vantage {

/** Fully associative array with uniform-random candidate draws. */
class RandomArray : public CacheArray
{
  public:
    RandomArray(std::size_t num_lines, std::uint32_t num_candidates,
                std::uint64_t seed = 0xa11d0);

    LineId lookup(Addr addr) const override;
    void candidates(Addr addr, CandidateBuf &out) const override;
    LineId replace(Addr addr, const CandidateBuf &cands,
                   std::int32_t victim_idx) override;

    std::uint32_t numCandidates() const override { return numCands_; }

    /** Treated as one "way" per candidate for interface purposes. */
    std::uint32_t numWays() const override { return numCands_; }

    std::uint32_t
    wayOf(LineId slot) const override
    {
        return slot % numCands_;
    }

  private:
    std::uint32_t numCands_;
    mutable Rng rng_;
    std::unordered_map<Addr, LineId> map_;
    std::size_t nextFree_ = 0;
};

} // namespace vantage

#endif // VANTAGE_ARRAY_RANDOM_ARRAY_H_

#include "array/set_assoc.h"

#include "common/bits.h"
#include "simd/simd.h"

namespace vantage {

SetAssocArray::SetAssocArray(std::size_t num_lines, std::uint32_t ways,
                             bool hash_index, std::uint64_t seed)
    : CacheArray(num_lines), ways_(ways), sets_(num_lines / ways),
      hashIndex_(hash_index), hash_(seed)
{
    vantage_assert(ways > 0, "need at least one way");
    vantage_assert(num_lines % ways == 0,
                   "%zu lines not divisible by %u ways", num_lines,
                   ways);
    vantage_assert(isPow2(sets_), "set count %llu not a power of two",
                   static_cast<unsigned long long>(sets_));
    vantage_assert(ways <= CandidateBuf::kCapacity,
                   "%u ways exceed the candidate buffer capacity %u",
                   ways, CandidateBuf::kCapacity);
}

std::uint64_t
SetAssocArray::setOf(Addr addr) const
{
    if (hashIndex_) {
        return hash_.mod(addr, sets_);
    }
    return addr & (sets_ - 1);
}

LineId
SetAssocArray::slotOf(std::uint64_t set, std::uint32_t way) const
{
    return static_cast<LineId>(set * ways_ + way);
}

LineId
SetAssocArray::lookup(Addr addr) const
{
    const std::uint64_t set = setOf(addr);
    memoAddr_ = addr;
    memoSet_ = set;
    // One set is ways_ consecutive 16-byte hot lines: exactly the
    // contiguous tag-compare the dispatched kernel vectorizes (first
    // match wins, same as the scalar walk).
    const LineId base = slotOf(set, 0);
    const std::int32_t w =
        simd::ops().findTag(lines_.data() + base, ways_, addr);
    return w < 0 ? kInvalidLine : base + static_cast<LineId>(w);
}

void
SetAssocArray::candidates(Addr addr, CandidateBuf &out) const
{
    out.clear();
    // Reuse the set index the preceding lookup() hashed for the same
    // address (the common path: Cache::access misses then asks for
    // candidates).
    const std::uint64_t set =
        memoAddr_ == addr ? memoSet_ : setOf(addr);
    const LineId base = slotOf(set, 0);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        out.push_back({base + w, -1});
    }
}

void
SetAssocArray::checkInvariants(InvariantReport &rep) const
{
    for (std::uint64_t set = 0; set < sets_; ++set) {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const LineId slot = slotOf(set, w);
            const Line &line = lines_[slot];
            if (!line.valid()) {
                continue;
            }
            rep.expect(setOf(line.addr) == set,
                       "set-assoc: line %#llx in set %llu indexes set "
                       "%llu",
                       static_cast<unsigned long long>(line.addr),
                       static_cast<unsigned long long>(set),
                       static_cast<unsigned long long>(
                           setOf(line.addr)));
            for (std::uint32_t w2 = w + 1; w2 < ways_; ++w2) {
                const Line &other = lines_[slotOf(set, w2)];
                rep.expect(!other.valid() ||
                               other.addr != line.addr,
                           "set-assoc: address %#llx duplicated in "
                           "set %llu",
                           static_cast<unsigned long long>(line.addr),
                           static_cast<unsigned long long>(set));
            }
        }
    }
}

LineId
SetAssocArray::replace(Addr addr, const CandidateBuf &cands,
                       std::int32_t victim_idx)
{
    vantage_assert(victim_idx >= 0 &&
                   static_cast<std::uint32_t>(victim_idx) <
                       cands.size(),
                   "victim index %d out of range", victim_idx);
    const LineId slot = cands[victim_idx].slot;
    Line &victim = lines_[slot];
    victim.invalidate();
    cold_[slot].reset();
    victim.addr = addr;
    return slot;
}

} // namespace vantage

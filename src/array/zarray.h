/**
 * @file
 * ZCache array (Sanchez & Kozyrakis, MICRO 2010).
 *
 * A zcache has W ways, each indexed by an independent H3 hash
 * function (as in a skew-associative cache), plus a *replacement
 * walk*: on a miss, the W first-level positions of the incoming
 * address are expanded breadth-first — each resident line can be
 * relocated to its positions in the other ways, whose occupants
 * become further candidates — until R candidates are gathered.
 * Evicting a level-k candidate frees its slot by relocating the
 * k lines along its parent chain, and the incoming line lands in a
 * first-level slot.
 *
 * With W = 4 ways the walk yields 4, 4+12 = 16 or 4+12+36 = 52
 * candidates after 1-3 levels — the paper's Z4/16 and Z4/52 designs.
 * A skew-associative cache is the degenerate R = W case.
 */

#ifndef VANTAGE_ARRAY_ZARRAY_H_
#define VANTAGE_ARRAY_ZARRAY_H_

#include <memory>
#include <vector>

#include "array/cache_array.h"
#include "hash/h3.h"

namespace vantage {

/** ZCache / skew-associative array with relocation-based replacement. */
class ZArray : public CacheArray
{
  public:
    /**
     * @param num_lines total slots; must be divisible by `ways`.
     * @param ways number of hashed ways (banks).
     * @param num_candidates walk size R (>= ways).
     * @param seed base seed; each way's hash derives from it.
     */
    ZArray(std::size_t num_lines, std::uint32_t ways,
           std::uint32_t num_candidates, std::uint64_t seed = 0x2ca);

    LineId lookup(Addr addr) const override;
    void candidates(Addr addr, CandidateBuf &out) const override;
    LineId replace(Addr addr, const CandidateBuf &cands,
                   std::int32_t victim_idx) override;

    std::uint32_t numCandidates() const override { return numCands_; }
    std::uint32_t numWays() const override { return ways_; }

    std::uint32_t
    wayOf(LineId slot) const override
    {
        return static_cast<std::uint32_t>(slot >> wayShift_);
    }

    /**
     * Every valid line must sit at its own way-hash position, and no
     * address may be resident twice (a relocation bug would violate
     * either).
     */
    void checkInvariants(InvariantReport &rep) const override;

    /** Make a skew-associative cache: a zcache with R = W. */
    static std::unique_ptr<ZArray>
    makeSkewAssociative(std::size_t num_lines, std::uint32_t ways,
                        std::uint64_t seed = 0x5eed)
    {
        return std::make_unique<ZArray>(num_lines, ways, ways, seed);
    }

  private:
    /** Slot of `addr` in way `w`. */
    LineId positionIn(std::uint32_t w, Addr addr) const;

    /**
     * Hash `addr` into [0, linesPerWay_) with way `w`'s function:
     * 8 byte-indexed lookups in that way's premasked table, XORed.
     * Bit-identical to H3Hash::mod (masking distributes over XOR);
     * the tables are a quarter the size of full H3Hash state, so the
     * four ways' tables stay hot in L1/L2 during walks.
     */
    std::uint64_t
    wayHash(const std::uint32_t *table, Addr addr) const
    {
        std::uint32_t out = table[addr & 0xff];
        out ^= table[256 + ((addr >> 8) & 0xff)];
        out ^= table[512 + ((addr >> 16) & 0xff)];
        out ^= table[768 + ((addr >> 24) & 0xff)];
        out ^= table[1024 + ((addr >> 32) & 0xff)];
        out ^= table[1280 + ((addr >> 40) & 0xff)];
        out ^= table[1536 + ((addr >> 48) & 0xff)];
        out ^= table[1792 + (addr >> 56)];
        return out;
    }

    /**
     * Batched way hashing for the walk: compute the in-way position
     * of `addr` for ALL ways in one pass over the interleaved tables
     * (walkTables_), writing ways_ masked positions to `pos`. For
     * W = 4 each of the 8 byte rows is 16 contiguous bytes, so the
     * whole level's hashing is 8 dense row loads XORed — identical
     * results to calling wayHash() per way, in one streaming pass.
     *
     * The W = 4 body must stay straight-line code with no reachable
     * calls wherever the walk loop inlines it: a call on any path —
     * even a never-taken branch to the dispatched W = 8 kernel —
     * poisons register allocation in the surrounding BFS loop, which
     * measured as a ~50% regression on the whole candidates() walk
     * for Z4 geometries that never took the branch. The walk
     * therefore specializes on the geometry once per call
     * (walkImpl<kW4>) and the W = 4 instantiation uses hashRows4()
     * directly, keeping its loop body call-free.
     */
    void
    wayHashAll(Addr addr, std::uint32_t *pos) const
    {
        if (ways_ == 4) {
            hashRows4(walkTables_.data(), addr, pos);
            return;
        }
        wayHashAllWide(addr, pos);
    }

    /**
     * Fully unrolled W = 4 batched hash (the paper's Z4 designs):
     * four accumulators stay in registers across the eight 16-byte
     * row loads — the compiler turns this into a straight-line SIMD
     * XOR chain.
     */
    static void
    hashRows4(const std::uint32_t *t, Addr addr, std::uint32_t *pos)
    {
        const std::uint32_t *r = t + (addr & 0xff) * 4;
        std::uint32_t p0 = r[0], p1 = r[1], p2 = r[2], p3 = r[3];
        r = t + (256 + ((addr >> 8) & 0xff)) * 4;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        r = t + (512 + ((addr >> 16) & 0xff)) * 4;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        r = t + (768 + ((addr >> 24) & 0xff)) * 4;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        r = t + (1024 + ((addr >> 32) & 0xff)) * 4;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        r = t + (1280 + ((addr >> 40) & 0xff)) * 4;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        r = t + (1536 + ((addr >> 48) & 0xff)) * 4;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        r = t + (1792 + (addr >> 56)) * 4;
        pos[0] = p0 ^ r[0];
        pos[1] = p1 ^ r[1];
        pos[2] = p2 ^ r[2];
        pos[3] = p3 ^ r[3];
    }

    /** Out-of-line W != 4 batched hash: vectorized W = 8, generic
     *  strided fold otherwise. See wayHashAll() for why this must
     *  not live in an inline body. */
    void wayHashAllWide(Addr addr, std::uint32_t *pos) const;

    /** Geometry-specialized walk body (see wayHashAll()). */
    template <bool kW4>
    void walkImpl(Addr addr, CandidateBuf &out) const;

    std::uint32_t ways_;
    std::uint32_t numCands_;
    std::uint64_t linesPerWay_;
    std::uint32_t wayShift_; ///< log2(linesPerWay_); wayOf is a shift.
    /**
     * Per-way position tables: ways_ x 8 x 256 premasked H3 words
     * (way w's table starts at posTables_[w * 2048]). Derived from
     * the same seeds as before; positions are unchanged. lookup()
     * walks these way-major so it can early-exit on a hit.
     */
    HpArray<std::uint32_t> posTables_;
    /**
     * The same premasked words interleaved way-minor for the walk:
     * entry [((byte << 8) | value) * ways_ + w]. One BFS level's W
     * hashes read 8 contiguous rows instead of W scattered tables.
     */
    HpArray<std::uint32_t> walkTables_;
    // Per-slot visit stamps for O(1) dedup during walks.
    mutable HpArray<std::uint32_t> visitEpoch_;
    mutable std::uint32_t walkEpoch_ = 0;
    /**
     * First-level positions memoized by the last missing lookup();
     * candidates() reuses them instead of rehashing. Positions are a
     * pure function of the address, so a stale memo is never wrong —
     * the address check alone decides reuse. Invalid (kInvalidAddr)
     * after a hit, which fills the memo only partially.
     */
    mutable Addr memoAddr_ = kInvalidAddr;
    mutable std::vector<LineId> memoPos_;
};

} // namespace vantage

#endif // VANTAGE_ARRAY_ZARRAY_H_

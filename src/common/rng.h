/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator draws from an Rng seeded
 * explicitly by its owner, so whole experiments are reproducible
 * bit-for-bit. The generator is xoshiro256**, which is fast, passes
 * BigCrush, and has a 2^256-1 period — more than enough for the
 * billions of draws a large sweep makes.
 */

#ifndef VANTAGE_COMMON_RNG_H_
#define VANTAGE_COMMON_RNG_H_

#include <cstdint>

#include "common/log.h"

namespace vantage {

/** Deterministic xoshiro256** PRNG with convenience draw helpers. */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 1)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    range(std::uint64_t bound)
    {
        vantage_assert(bound > 0, "range() with zero bound");
        // Lemire's unbiased multiply-shift rejection method.
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (-bound) % bound;
            while (lo < threshold) {
                m = static_cast<__uint128_t>(next()) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace vantage

#endif // VANTAGE_COMMON_RNG_H_

/**
 * @file
 * Per-access outcome digest for golden-trace regression testing.
 *
 * AccessDigest folds a stream of 64-bit words into a single FNV-1a
 * hash. The Cache folds one packed word per access — hit/miss/bypass,
 * the evicted line's partition, and the demotion-count delta — so two
 * runs produce the same digest iff they made the same per-access
 * decisions in the same order. `vsim --digest` prints the final value;
 * tests/golden/ pins values for a matrix of (scheme x array x mix)
 * points so behavior drift is caught at PR time (see scripts/golden.py
 * and the "Correctness harness" section of the README).
 *
 * The digest deliberately covers replacement *decisions*, not derived
 * statistics: IPC and MPKI follow from the decision stream, while
 * stats-only refactors (new counters, report formatting) must not
 * disturb it. See DESIGN.md for the scope discussion.
 */

#ifndef VANTAGE_COMMON_DIGEST_H_
#define VANTAGE_COMMON_DIGEST_H_

#include <cstdint>

namespace vantage {

/** FNV-1a accumulator over 64-bit words. */
class AccessDigest
{
  public:
    /** Fold one word, byte by byte (FNV-1a, little-endian order). */
    void
    fold(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= kPrime;
        }
    }

    std::uint64_t value() const { return h_; }

    void reset() { h_ = kOffset; }

  private:
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    std::uint64_t h_ = kOffset;
};

} // namespace vantage

#endif // VANTAGE_COMMON_DIGEST_H_

#include "common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vantage {

namespace {

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
warnOnceImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn(once)", fmt, args);
    va_end(args);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ",
                 cond, file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
}

} // namespace vantage

/**
 * @file
 * Fundamental types used throughout the Vantage library.
 *
 * The simulator models caches at line granularity. Addresses are
 * already line addresses (i.e. byte address >> log2(lineSize)); no
 * module in this library ever deals with byte offsets.
 */

#ifndef VANTAGE_COMMON_TYPES_H_
#define VANTAGE_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace vantage {

/** A cache-line address (byte address with the line offset stripped). */
using Addr = std::uint64_t;

/** Simulation time, in core cycles. */
using Cycle = std::uint64_t;

/** Index of a physical line slot within a cache array. */
using LineId = std::uint32_t;

/** Partition identifier. */
using PartId = std::uint32_t;

/** Sentinel for "no address" (invalid / empty line). */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "no line slot". */
constexpr LineId kInvalidLine = std::numeric_limits<LineId>::max();

/** Sentinel partition id. */
constexpr PartId kInvalidPart = std::numeric_limits<PartId>::max();

/**
 * Partition id reserved for the Vantage unmanaged region. Schemes that
 * do not use a region split never emit this id. It is deliberately the
 * largest representable id so that ordinary partitions can be densely
 * numbered from zero.
 */
constexpr PartId kUnmanagedPart = kInvalidPart - 1;

/** Kinds of cache accesses the simulator distinguishes. */
enum class AccessType : std::uint8_t {
    Load,
    Store,
};

/** Result of a cache access, as reported to callers and statistics. */
enum class AccessResult : std::uint8_t {
    Hit,
    Miss,
};

} // namespace vantage

#endif // VANTAGE_COMMON_TYPES_H_

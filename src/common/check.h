/**
 * @file
 * In-run invariant checking (the correctness harness).
 *
 * Vantage's guarantees are stated as invariants — partition sizes
 * track targets, demotions only move lines managed -> unmanaged, the
 * Fig. 4 register file stays self-consistent — but asserts alone only
 * catch violations at the site that trips them. This layer lets every
 * module expose a checkInvariants() method that *recomputes* its
 * redundant state (size counters, histograms, chain positions) from
 * ground truth (the line array) and reports every mismatch.
 *
 * Two consumers:
 *
 *  - Tests and the fuzz driver call checkInvariants() explicitly with
 *    an InvariantReport and inspect the failures as data (so a
 *    minimizing reducer can keep running after a violation). These
 *    methods are compiled in every build.
 *  - With -DVANTAGE_CHECK=ON, Cache::access() additionally runs the
 *    checks every kCheckPeriod accesses and panics on the first
 *    failure. The hook is wrapped in VANTAGE_IFCHECK, which compiles
 *    to nothing in default builds — the hot path pays zero cost when
 *    the option is off.
 *
 * Checks must be side-effect free on simulation state: a VANTAGE_CHECK
 * build must produce bit-identical digests to a default build.
 */

#ifndef VANTAGE_COMMON_CHECK_H_
#define VANTAGE_COMMON_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace vantage {

/** Collects invariant violations as data instead of aborting. */
class InvariantReport
{
  public:
    /** Record one violation (printf-style message). */
    void fail(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));

    /**
     * Check one invariant: when `cond` is false, record the formatted
     * message. @return cond, so callers can skip dependent checks.
     */
    bool expect(bool cond, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    bool ok() const { return failures_.empty(); }

    const std::vector<std::string> &failures() const
    {
        return failures_;
    }

    /** Invariants evaluated so far (passes + failures). */
    std::uint64_t checksRun() const { return checksRun_; }

    /** All failures joined with "; " (empty when ok()). */
    std::string summary() const;

    void
    clear()
    {
        failures_.clear();
        checksRun_ = 0;
    }

  private:
    std::vector<std::string> failures_;
    std::uint64_t checksRun_ = 0;
};

} // namespace vantage

/**
 * Compile `stmt` only in -DVANTAGE_CHECK=ON builds. Used to wire
 * periodic checkInvariants() sweeps into hot paths at zero cost to
 * default builds.
 */
#ifdef VANTAGE_CHECK_ENABLED
#define VANTAGE_IFCHECK(stmt)                                            \
    do {                                                                 \
        stmt;                                                            \
    } while (0)
#else
#define VANTAGE_IFCHECK(stmt)                                            \
    do {                                                                 \
    } while (0)
#endif

#endif // VANTAGE_COMMON_CHECK_H_

#include "common/check.h"

#include <cstdarg>
#include <cstdio>

namespace vantage {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0) {
        return std::string(fmt);
    }
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // namespace

void
InvariantReport::fail(const char *fmt, ...)
{
    ++checksRun_;
    va_list args;
    va_start(args, fmt);
    failures_.push_back(vformat(fmt, args));
    va_end(args);
}

bool
InvariantReport::expect(bool cond, const char *fmt, ...)
{
    ++checksRun_;
    if (!cond) {
        va_list args;
        va_start(args, fmt);
        failures_.push_back(vformat(fmt, args));
        va_end(args);
    }
    return cond;
}

std::string
InvariantReport::summary() const
{
    std::string out;
    for (const auto &f : failures_) {
        if (!out.empty()) {
            out += "; ";
        }
        out += f;
    }
    return out;
}

} // namespace vantage

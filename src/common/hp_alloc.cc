#include "common/hp_alloc.h"

#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace vantage {

bool
hugePagesEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("VANTAGE_HUGEPAGES");
        return env == nullptr || std::strcmp(env, "0") != 0;
    }();
    return enabled;
}

void *
hpAllocBytes(std::size_t bytes)
{
    if (bytes == 0) {
        return nullptr;
    }
    std::size_t align = kPlaneAlignment;
    if (bytes >= kHugePageBytes && hugePagesEnabled()) {
        align = kHugePageBytes;
    }
    // aligned_alloc requires the size to be a multiple of the
    // alignment; the padding is dead weight only on the last page.
    std::size_t padded = (bytes + align - 1) / align * align;
    void *p = std::aligned_alloc(align, padded);
    if (p == nullptr && align > kPlaneAlignment) {
        // Huge-page-aligned reservation failed (fragmented or
        // overcommit-limited heap): fall back to plain cache-line
        // alignment rather than dying.
        align = kPlaneAlignment;
        padded = (bytes + align - 1) / align * align;
        p = std::aligned_alloc(align, padded);
    }
    if (p == nullptr) {
        throw std::bad_alloc{};
    }
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    if (align >= kHugePageBytes) {
        // Advisory only: a kernel with THP disabled simply ignores
        // it, and the plane still works on 4 KB pages.
        (void)madvise(p, padded, MADV_HUGEPAGE);
    }
#endif
    return p;
}

void
hpFreeBytes(void *p)
{
    std::free(p);
}

} // namespace vantage

/**
 * @file
 * Aligned, huge-page-advised plane allocation.
 *
 * The hot and cold line planes are scanned with SIMD kernels that
 * issue full-width loads; a plane whose base is not 64-byte aligned
 * silently splits those loads across hardware cache lines. At
 * giant-cache sizes (256 MB+ of metadata) the planes additionally
 * thrash the TLB with 4 KB pages, so allocations large enough to hold
 * at least one huge page are 2 MB-aligned and advised with
 * madvise(MADV_HUGEPAGE). Everything degrades gracefully: if the
 * kernel declines the advice (or the platform lacks madvise), the
 * allocation is still a perfectly valid 64-byte-aligned plane.
 *
 * VANTAGE_HUGEPAGES=0 disables the huge-page path (alignment stays at
 * 64 bytes) so the huge-page on/off delta can be measured on the same
 * binary.
 */

#ifndef VANTAGE_COMMON_HP_ALLOC_H_
#define VANTAGE_COMMON_HP_ALLOC_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vantage {

/** Minimum alignment of every plane: one hardware cache line. */
constexpr std::size_t kPlaneAlignment = 64;

/** Transparent-huge-page granule on the platforms we care about. */
constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

/** False iff VANTAGE_HUGEPAGES=0 was set (checked once). */
bool hugePagesEnabled();

/**
 * Allocate `bytes` with at least kPlaneAlignment alignment; blocks of
 * kHugePageBytes or more are huge-page aligned and advised when
 * enabled. Throws std::bad_alloc on exhaustion; returns nullptr only
 * for bytes == 0.
 */
void *hpAllocBytes(std::size_t bytes);

/** Release a block obtained from hpAllocBytes(). */
void hpFreeBytes(void *p);

/**
 * Fixed-size array backed by hpAllocBytes(): the plane container for
 * line metadata and walk tables. Size is set at construction (cache
 * geometries never grow), elements are value-initialized, and the
 * subset of the std::vector interface the arrays use is provided so
 * call sites read unchanged.
 */
template <typename T> class HpArray
{
    static_assert(std::is_trivially_destructible_v<T>,
                  "plane elements must not need destruction");

  public:
    HpArray() = default;

    explicit HpArray(std::size_t n) : size_(n)
    {
        if (n == 0) {
            return;
        }
        data_ = static_cast<T *>(hpAllocBytes(n * sizeof(T)));
        for (std::size_t i = 0; i < n; ++i) {
            new (data_ + i) T();
        }
    }

    HpArray(std::size_t n, const T &fill) : size_(n)
    {
        if (n == 0) {
            return;
        }
        data_ = static_cast<T *>(hpAllocBytes(n * sizeof(T)));
        for (std::size_t i = 0; i < n; ++i) {
            new (data_ + i) T(fill);
        }
    }

    HpArray(HpArray &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    HpArray &
    operator=(HpArray &&other) noexcept
    {
        if (this != &other) {
            hpFreeBytes(data_);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    HpArray(const HpArray &) = delete;
    HpArray &operator=(const HpArray &) = delete;

    ~HpArray() { hpFreeBytes(data_); }

    T *data() { return data_; }
    const T *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace vantage

#endif // VANTAGE_COMMON_HP_ALLOC_H_

/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic():  an internal invariant was violated — a library bug. Aborts.
 * fatal():  the user asked for something impossible (bad config).
 *           Exits with status 1.
 * warn():   something is suspicious but the simulation can continue.
 */

#ifndef VANTAGE_COMMON_LOG_H_
#define VANTAGE_COMMON_LOG_H_

#include <atomic>
#include <cstdarg>
#include <string>

namespace vantage {

/** Print a formatted bug message and abort. Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted user-error message and exit(1). Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Implementation hook for warn_once; use the macro instead. */
void warnOnceImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Like warn(), but each call site reports at most once per process —
 * for hot-path complaints (config clamps, saturation) that would
 * otherwise flood stderr during long runs. The latch is atomic so
 * call sites reached from parallel suite jobs stay race-free.
 */
#define warn_once(...)                                                   \
    do {                                                                 \
        static std::atomic<bool> vantage_warned_once_{false};            \
        if (!vantage_warned_once_.exchange(                              \
                true, std::memory_order_relaxed)) {                      \
            ::vantage::warnOnceImpl(__VA_ARGS__);                        \
        }                                                                \
    } while (0)

/** Implementation hook for vantage_assert; use the macro instead. */
[[noreturn]] void panicAssert(const char *cond, const char *file,
                              int line, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert an invariant with a formatted message. Compiled in all build
 * types: simulator correctness bugs must not hide in release builds.
 */
#define vantage_assert(cond, ...)                                        \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::vantage::panicAssert(#cond, __FILE__, __LINE__,            \
                                   __VA_ARGS__);                         \
        }                                                                \
    } while (0)

} // namespace vantage

#endif // VANTAGE_COMMON_LOG_H_

/**
 * @file
 * A small fixed-size thread pool for fanning independent simulations
 * across cores.
 *
 * Design constraints, in order:
 *   1. Determinism. The pool never influences results — callers
 *      submit self-contained jobs (own RNG, own caches, own stats)
 *      and collect outputs by index, so a run with N workers is
 *      bit-identical to a serial run. There is no work stealing and
 *      no shared scratch state.
 *   2. Simplicity. One mutex-guarded FIFO queue, condition-variable
 *      wakeups, futures for results and exception propagation. The
 *      jobs the simulator runs are seconds long; queue overhead is
 *      irrelevant.
 *   3. Graceful degradation. A pool with zero or one workers runs
 *      jobs inline on the calling thread (zero) or on a single
 *      worker (one); parallelFor() is then plain serial execution.
 *
 * Parallelism is normally across simulations — each CmpSim's main
 * loop stays single-threaded, like the hardware it models. The one
 * exception is the sharded-execution runtime (cache/banked_cache.h,
 * DESIGN.md §12): BankedCache::shardStart() parks one long-running
 * submit() per bank worker on a private pool, with the same
 * bit-identical-at-any-worker-count contract.
 */

#ifndef VANTAGE_COMMON_THREAD_POOL_H_
#define VANTAGE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "trace/event_trace.h"

namespace vantage {

/** Fixed worker count, futures-based task pool. */
class ThreadPool
{
  public:
    /**
     * @param workers worker-thread count. 0 => no threads are
     *        spawned and submit()/parallelFor() run inline on the
     *        calling thread.
     */
    explicit ThreadPool(unsigned workers)
    {
        threads_.reserve(workers);
        for (unsigned i = 0; i < workers; ++i) {
            threads_.emplace_back([this, i] { workerLoop(i); });
        }
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &t : threads_) {
            t.join();
        }
    }

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Queue a job; its result (or exception) arrives via the future.
     * With zero workers the job runs inline before submit() returns.
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F &&job)
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(job));
        std::future<R> result = task->get_future();
        if (threads_.empty()) {
            TraceSpan span(kTracePool, "pool.job");
            (*task)();
            return result;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        wake_.notify_one();
        return result;
    }

    /**
     * Run fn(0) .. fn(n-1), blocking until all complete. Iterations
     * must be independent; they may run in any order on any worker.
     * If any iteration throws, the first exception (in index order)
     * is rethrown after every iteration has finished.
     */
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        if (threads_.empty()) {
            std::exception_ptr first_inline;
            for (std::size_t i = 0; i < n; ++i) {
                try {
                    fn(i);
                } catch (...) {
                    if (!first_inline) {
                        first_inline = std::current_exception();
                    }
                }
            }
            if (first_inline) {
                std::rethrow_exception(first_inline);
            }
            return;
        }
        std::vector<std::future<void>> pending;
        pending.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            pending.push_back(submit([&fn, i] { fn(i); }));
        }
        std::exception_ptr first;
        for (auto &f : pending) {
            try {
                f.get();
            } catch (...) {
                if (!first) {
                    first = std::current_exception();
                }
            }
        }
        if (first) {
            std::rethrow_exception(first);
        }
    }

    /**
     * Resolve a worker count: `requested` if nonzero, else
     * $VANTAGE_JOBS if set, else hardware concurrency. Always >= 1.
     */
    static unsigned
    resolveJobs(unsigned requested = 0)
    {
        if (requested > 0) {
            return requested;
        }
        if (const char *s = std::getenv("VANTAGE_JOBS")) {
            const unsigned long v = std::strtoul(s, nullptr, 10);
            if (v > 0) {
                return static_cast<unsigned>(v);
            }
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? hw : 1;
    }

  private:
    void
    workerLoop(unsigned index)
    {
        // Tracing is observational: the name registration and the
        // per-job spans never touch job state or ordering.
        traceSetThreadName("pool-worker-" + std::to_string(index));
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] {
                    return stop_ || !queue_.empty();
                });
                if (queue_.empty()) {
                    return; // stop_ and drained.
                }
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            TraceSpan span(kTracePool, "pool.job", "worker",
                           static_cast<double>(index));
            job();
        }
    }

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace vantage

#endif // VANTAGE_COMMON_THREAD_POOL_H_

/**
 * @file
 * Small bit-manipulation and integer-math helpers.
 */

#ifndef VANTAGE_COMMON_BITS_H_
#define VANTAGE_COMMON_BITS_H_

#include <bit>
#include <cstdint>

#include "common/log.h"

namespace vantage {

/** True iff x is a power of two (x > 0). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. @pre isPow2(x). */
inline std::uint32_t
log2i(std::uint64_t x)
{
    vantage_assert(isPow2(x), "log2i of non-power-of-two %llu",
                   static_cast<unsigned long long>(x));
    return static_cast<std::uint32_t>(std::countr_zero(x));
}

/** Integer ceiling division. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * Distance from 'from' up to 'to' in modulo-2^bits arithmetic.
 *
 * Used by coarse-timestamp replacement policies: with 8-bit wrapping
 * timestamps, the age of a line is modDist(lineTs, currentTs, 8).
 */
constexpr std::uint32_t
modDist(std::uint32_t from, std::uint32_t to, std::uint32_t bits)
{
    const std::uint32_t mask = (1u << bits) - 1;
    return (to - from) & mask;
}

/**
 * True iff x lies in the half-open modular interval [lo, hi) of width
 * 2^bits. Degenerate intervals (lo == hi) are empty.
 */
constexpr bool
inModRange(std::uint32_t x, std::uint32_t lo, std::uint32_t hi,
           std::uint32_t bits)
{
    const std::uint32_t mask = (1u << bits) - 1;
    return ((x - lo) & mask) < ((hi - lo) & mask);
}

} // namespace vantage

#endif // VANTAGE_COMMON_BITS_H_

/**
 * @file
 * Lock-free bounded single-producer/single-consumer ring.
 *
 * The in-sim sharding runtime (cache/banked_cache.h) moves one
 * ShardRequest and one ShardResult per shared-L2 access between the
 * coordinator thread and a bank worker, so the queue is on the
 * simulator's critical path. The design is the classic Lamport ring
 * with cached indices:
 *
 *  - head_ (pop cursor) is written only by the consumer, tail_ (push
 *    cursor) only by the producer; each side keeps a cached copy of
 *    the other's cursor and re-reads it only when the cached value
 *    says the ring looks full/empty. In steady state a push or pop is
 *    one relaxed load, one store-release, and no shared-line
 *    ping-pong beyond the slot itself.
 *
 *  - Blocking waits use C++20 atomic wait/notify (futex-backed on
 *    Linux) instead of spinning. That matters beyond politeness: the
 *    shard scheduler must make progress even when the host has fewer
 *    CPUs than workers (CI runners, laptops), where a spin-wait
 *    coordinator would starve the very worker it is waiting on for a
 *    whole timeslice. Notifies are elided unless the other side
 *    announced it sleeps (waiters_ flag), keeping the futex syscall
 *    off the fast path.
 *
 * Determinism: the ring is FIFO, so the consumer observes items in
 * exactly the order the producer pushed them — the property the
 * per-bank access sequencing argument (DESIGN.md §12) rests on.
 * Capacity is rounded up to a power of two; index arithmetic wraps
 * through uint64, which never overflows in practice (2^64 pushes).
 */

#ifndef VANTAGE_COMMON_SPSC_RING_H_
#define VANTAGE_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/log.h"

namespace vantage {

/** Bounded SPSC FIFO; one producer thread, one consumer thread. */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity minimum slot count (rounded up to 2^k). */
    explicit SpscRing(std::size_t capacity)
    {
        vantage_assert(capacity > 0, "ring needs capacity");
        std::size_t cap = 1;
        while (cap < capacity) {
            cap <<= 1;
        }
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return slots_.size(); }

    /**
     * Items currently queued. Exact from either owning thread;
     * a sampler thread sees a possibly-stale but tear-free value.
     */
    std::size_t
    size() const
    {
        const std::uint64_t t = tail_.load(std::memory_order_acquire);
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(t - h);
    }

    /** Producer: push without blocking. @return false when full. */
    bool
    tryPush(const T &item)
    {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - headCache_ > mask_) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (t - headCache_ > mask_) {
                return false;
            }
        }
        slots_[t & mask_] = item;
        // seq_cst (not just release): the store must be ordered
        // before the waiter-flag load below, or a consumer that
        // announces itself and re-checks between the two could sleep
        // through an elided notify (classic Dekker store/load).
        tail_.store(t + 1, std::memory_order_seq_cst);
        if (popWaiters_.load(std::memory_order_seq_cst) != 0) {
            tail_.notify_one();
        }
        return true;
    }

    /** Producer: push, sleeping while the ring is full. */
    void
    push(const T &item)
    {
        while (!tryPush(item)) {
            const std::uint64_t h =
                head_.load(std::memory_order_acquire);
            pushWaiters_.store(1, std::memory_order_seq_cst);
            // Re-check after announcing: the consumer may have
            // popped between tryPush and the store.
            if (tail_.load(std::memory_order_relaxed) - h > mask_ &&
                head_.load(std::memory_order_seq_cst) == h) {
                head_.wait(h, std::memory_order_acquire);
            }
            pushWaiters_.store(0, std::memory_order_relaxed);
        }
    }

    /** Consumer: pop without blocking. @return false when empty. */
    bool
    tryPop(T &out)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (h == tailCache_) {
                return false;
            }
        }
        out = slots_[h & mask_];
        // seq_cst for the same Dekker reason as tryPush.
        head_.store(h + 1, std::memory_order_seq_cst);
        if (pushWaiters_.load(std::memory_order_seq_cst) != 0) {
            head_.notify_one();
        }
        return true;
    }

    /** Consumer: pop, sleeping while the ring is empty. */
    void
    pop(T &out)
    {
        while (!tryPop(out)) {
            const std::uint64_t t =
                tail_.load(std::memory_order_acquire);
            popWaiters_.store(1, std::memory_order_seq_cst);
            if (head_.load(std::memory_order_relaxed) == t &&
                tail_.load(std::memory_order_seq_cst) == t) {
                tail_.wait(t, std::memory_order_acquire);
            }
            popWaiters_.store(0, std::memory_order_relaxed);
        }
    }

  private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;

    // Producer-owned line: tail cursor + cached head.
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    std::uint64_t headCache_ = 0;

    // Consumer-owned line: head cursor + cached tail.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    std::uint64_t tailCache_ = 0;

    // Sleep announcements, so the fast path skips futex wakes.
    alignas(64) std::atomic<std::uint32_t> pushWaiters_{0};
    std::atomic<std::uint32_t> popWaiters_{0};
};

} // namespace vantage

#endif // VANTAGE_COMMON_SPSC_RING_H_

/**
 * @file
 * RRIP family of replacement policies (Jaleel et al., ISCA 2010).
 *
 * All variants keep an M-bit re-reference prediction value (RRPV) per
 * line in Line::rank; 2^M - 1 predicts a distant re-reference.
 *
 *  - SRRIP (hit priority): insert at 2^M - 2, promote to 0 on hit.
 *  - BRRIP: insert at 2^M - 1 most of the time, 2^M - 2 rarely.
 *  - DRRIP: set dueling between SRRIP and BRRIP via a PSEL counter.
 *  - TA-DRRIP: thread-aware dueling — one PSEL per partition.
 *
 * Victim selection searches for RRPV == 2^M - 1; if no candidate has
 * it, all candidates age by the deficit. Aging by candidate
 * neighborhood (instead of by set) is the natural adaptation to
 * zcaches, which have no sets; the paper notes RRIP is "trivially
 * applicable" to them (Sec. 6.2). DRRIP's set dueling likewise uses
 * auxiliary monitors (rrip_monitor.h) instead of leader sets, which
 * works on sets-free arrays.
 */

#ifndef VANTAGE_REPLACEMENT_RRIP_H_
#define VANTAGE_REPLACEMENT_RRIP_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "hash/h3.h"
#include "replacement/repl_policy.h"
#include "replacement/rrip_monitor.h"

namespace vantage {

/** Shared machinery for the RRIP variants. */
class RripBase : public ReplPolicy
{
  public:
    static constexpr std::uint32_t kBits = 3;
    static constexpr std::uint8_t kDistant = (1u << kBits) - 1; // 7
    static constexpr std::uint8_t kLong = kDistant - 1;         // 6

    void
    onHit(CacheArray &array, LineId slot) override
    {
        // Hit priority: predict near-immediate reuse.
        array.line(slot).rank = 0;
    }

    bool
    prefer(const CacheArray &array, LineId a, LineId b) const override
    {
        return array.line(a).rank > array.line(b).rank;
    }

    std::int32_t
    selectVictim(CacheArray &array, const CandidateBuf &cands) override
    {
        std::int32_t best = 0;
        for (std::uint32_t i = 1; i < cands.size(); ++i) {
            if (array.line(cands[i].slot).rank >
                array.line(cands[best].slot).rank) {
                best = static_cast<std::int32_t>(i);
            }
        }
        // Age the candidate neighborhood so that the victim reaches
        // the distant-RRPV, as per-set RRIP aging would.
        const std::uint8_t max_rrpv = array.line(cands[best].slot).rank;
        if (max_rrpv < kDistant) {
            const std::uint8_t delta = kDistant - max_rrpv;
            for (const auto &cand : cands) {
                Line &line = array.line(cand.slot);
                line.rank = static_cast<std::uint8_t>(
                    std::min<std::uint32_t>(line.rank + delta,
                                            kDistant));
            }
        }
        return best;
    }

    double
    priority(const CacheArray &array, LineId slot) const override
    {
        return static_cast<double>(array.line(slot).rank) /
               static_cast<double>(kDistant);
    }
};

/** Scan-resistant SRRIP. */
class Srrip : public RripBase
{
  public:
    void
    onInsert(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank = kLong;
    }
};

/** Thrash-resistant BRRIP: mostly-distant insertions. */
class Brrip : public RripBase
{
  public:
    explicit Brrip(std::uint64_t seed = 0xb441) : rng_(seed) {}

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank =
            rng_.chance(1.0 / 32.0) ? kLong : kDistant;
    }

  private:
    Rng rng_;
};

/**
 * DRRIP: duel SRRIP against BRRIP using auxiliary monitors (see
 * rrip_monitor.h) and a 10-bit PSEL. Monitor-based dueling works on
 * any array, including zcaches.
 */
class Drrip : public RripBase
{
  public:
    /**
     * @param cache_lines capacity of the cache this policy manages.
     * @param monitor_ways associativity the monitors model (the real
     *        ways for set-associative arrays; 16 is a reasonable
     *        stand-in for zcaches).
     */
    Drrip(std::uint64_t cache_lines, std::uint32_t monitor_ways,
          std::uint64_t seed = 0xd441)
        : rng_(seed),
          srripMon_(false, cache_lines / monitor_ways, monitor_ways,
                    32, seed),
          brripMon_(true, cache_lines / monitor_ways, monitor_ways,
                    32, seed)
    {}

    void
    onHit(CacheArray &array, LineId slot) override
    {
        observe(array.line(slot).addr);
        RripBase::onHit(array, slot);
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        Line &line = array.line(slot);
        observe(line.addr);
        if (followersUseBrrip()) {
            line.rank = rng_.chance(1.0 / 32.0) ? kLong : kDistant;
        } else {
            line.rank = kLong;
        }
    }

    /** True when the cache currently inserts with BRRIP. */
    bool followersUseBrrip() const { return psel_ > kPselMax / 2; }

  protected:
    static constexpr std::uint32_t kPselMax = 1023;

    void
    observe(Addr addr)
    {
        // A miss in the SRRIP monitor is evidence for BRRIP, and
        // vice versa. Both monitors sample the same addresses, so
        // the comparison is like-for-like.
        if (srripMon_.access(addr) ==
            RripDuelMonitor::Outcome::Miss &&
            psel_ < kPselMax) {
            ++psel_;
        }
        if (brripMon_.access(addr) ==
            RripDuelMonitor::Outcome::Miss &&
            psel_ > 0) {
            --psel_;
        }
    }

    Rng rng_;
    RripDuelMonitor srripMon_;
    RripDuelMonitor brripMon_;
    std::uint32_t psel_ = kPselMax / 2;
};

/**
 * Thread-aware DRRIP (TADIP-style): one PSEL and one monitor pair per
 * partition, dueling over that partition's own accesses.
 */
class TaDrrip : public RripBase
{
  public:
    TaDrrip(std::uint32_t num_parts, std::uint64_t cache_lines,
            std::uint32_t monitor_ways, std::uint64_t seed = 0x7a441)
        : rng_(seed), psel_(num_parts, kPselMax / 2)
    {
        for (std::uint32_t p = 0; p < num_parts; ++p) {
            srripMons_.emplace_back(false, cache_lines / monitor_ways,
                                    monitor_ways, 32, seed + p);
            brripMons_.emplace_back(true, cache_lines / monitor_ways,
                                    monitor_ways, 32, seed + p);
        }
    }

    void
    onHit(CacheArray &array, LineId slot) override
    {
        const Line &line = array.line(slot);
        observe(line.part, line.addr);
        RripBase::onHit(array, slot);
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        Line &line = array.line(slot);
        vantage_assert(line.part < psel_.size(),
                       "partition %u out of range", line.part);
        observe(line.part, line.addr);
        if (psel_[line.part] > kPselMax / 2) {
            line.rank = rng_.chance(1.0 / 32.0) ? kLong : kDistant;
        } else {
            line.rank = kLong;
        }
    }

    bool
    partitionUsesBrrip(PartId part) const
    {
        return psel_[part] > kPselMax / 2;
    }

  private:
    static constexpr std::uint32_t kPselMax = 1023;

    void
    observe(PartId part, Addr addr)
    {
        vantage_assert(part < psel_.size(),
                       "partition %u out of range", part);
        if (srripMons_[part].access(addr) ==
            RripDuelMonitor::Outcome::Miss &&
            psel_[part] < kPselMax) {
            ++psel_[part];
        }
        if (brripMons_[part].access(addr) ==
            RripDuelMonitor::Outcome::Miss &&
            psel_[part] > 0) {
            --psel_[part];
        }
    }

    Rng rng_;
    std::vector<RripDuelMonitor> srripMons_;
    std::vector<RripDuelMonitor> brripMons_;
    std::vector<std::uint32_t> psel_;
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_RRIP_H_

/**
 * @file
 * Replacement-policy interface.
 *
 * Policies own the interpretation of the per-line `rank` /
 * `lastAccess` metadata and rank replacement candidates. They are
 * deliberately independent of partitioning (paper Table 1: Vantage,
 * unlike PIPP, composes with any replacement policy); partitioning
 * schemes that need a base policy hold one of these.
 */

#ifndef VANTAGE_REPLACEMENT_REPL_POLICY_H_
#define VANTAGE_REPLACEMENT_REPL_POLICY_H_

#include <vector>

#include "array/cache_array.h"

namespace vantage {

/** Abstract replacement policy over Line metadata. */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /** Update metadata on a cache hit. */
    virtual void onHit(Line &line) = 0;

    /** Initialize metadata for a newly inserted line. */
    virtual void onInsert(Line &line) = 0;

    /** Notification that a line was evicted. */
    virtual void onEvict(const Line &line) { (void)line; }

    /**
     * True when `a` should be evicted in preference to `b`
     * (i.e. `a` has the higher eviction priority).
     */
    virtual bool prefer(const Line &a, const Line &b) const = 0;

    /**
     * Pick a victim among the candidates and perform any policy
     * side effects (e.g. RRIP aging). Invalid lines are the caller's
     * responsibility — by the time this runs, all candidates are
     * valid. @return index into `cands`.
     */
    virtual std::int32_t
    selectVictim(CacheArray &array, const std::vector<Candidate> &cands)
    {
        std::int32_t best = 0;
        for (std::size_t i = 1; i < cands.size(); ++i) {
            if (prefer(array.line(cands[i].slot),
                       array.line(cands[best].slot))) {
                best = static_cast<std::int32_t>(i);
            }
        }
        return best;
    }

    /**
     * Eviction priority of a line in [0, 1] for statistics capture;
     * 1.0 means "the line the policy most wants gone". The default
     * returns 0.5 (unknown); policies with a natural normalized rank
     * override this.
     */
    virtual double
    priority(const Line &line) const
    {
        (void)line;
        return 0.5;
    }
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_REPL_POLICY_H_

/**
 * @file
 * Replacement-policy interface.
 *
 * Policies own the interpretation of the per-line `rank` /
 * `lastAccess` metadata and rank replacement candidates. They are
 * deliberately independent of partitioning (paper Table 1: Vantage,
 * unlike PIPP, composes with any replacement policy); partitioning
 * schemes that need a base policy hold one of these.
 *
 * The interface is slot-based: hooks receive the array and a LineId
 * so each policy decides which metadata plane it touches — rank-based
 * policies (RRIP, coarse LRU, NRU) read only the hot Line array,
 * while ExactLru's 64-bit timestamps live in the cold plane and stay
 * off the candidate-scan path.
 */

#ifndef VANTAGE_REPLACEMENT_REPL_POLICY_H_
#define VANTAGE_REPLACEMENT_REPL_POLICY_H_

#include "array/cache_array.h"

namespace vantage {

/** Abstract replacement policy over per-line metadata. */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /** Update metadata on a cache hit. */
    virtual void onHit(CacheArray &array, LineId slot) = 0;

    /** Initialize metadata for a newly inserted line. */
    virtual void onInsert(CacheArray &array, LineId slot) = 0;

    /**
     * Notification that the line in `slot` is about to be evicted
     * (it is still resident when this runs).
     */
    virtual void
    onEvict(const CacheArray &array, LineId slot)
    {
        (void)array;
        (void)slot;
    }

    /**
     * True when the line in `a` should be evicted in preference to
     * the line in `b` (i.e. `a` has the higher eviction priority).
     */
    virtual bool prefer(const CacheArray &array, LineId a,
                        LineId b) const = 0;

    /**
     * Pick a victim among the candidates and perform any policy
     * side effects (e.g. RRIP aging). Invalid lines are the caller's
     * responsibility — by the time this runs, all candidates are
     * valid. @return index into `cands`.
     */
    virtual std::int32_t
    selectVictim(CacheArray &array, const CandidateBuf &cands)
    {
        std::int32_t best = 0;
        for (std::uint32_t i = 1; i < cands.size(); ++i) {
            if (prefer(array, cands[i].slot, cands[best].slot)) {
                best = static_cast<std::int32_t>(i);
            }
        }
        return best;
    }

    /**
     * Eviction priority of the line in `slot` in [0, 1] for
     * statistics capture; 1.0 means "the line the policy most wants
     * gone". The default returns 0.5 (unknown); policies with a
     * natural normalized rank override this.
     */
    virtual double
    priority(const CacheArray &array, LineId slot) const
    {
        (void)array;
        (void)slot;
        return 0.5;
    }
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_REPL_POLICY_H_

/**
 * @file
 * LRU replacement policies.
 *
 * ExactLru stamps each line with a monotonically increasing access
 * count — the simulator's luxury version of LRU, used for the paper's
 * set-associative baselines.
 *
 * CoarseLru is the paper's implementable variant [21]: an 8-bit
 * timestamp counter incremented every cacheLines/16 accesses, with
 * ages computed in modulo-256 arithmetic. It is also the base policy
 * Vantage builds its setpoint mechanism on (Sec. 4.2), though the
 * Vantage controller keeps its own *per-partition* timestamps; this
 * class is the single-stream flavor for unpartitioned caches.
 */

#ifndef VANTAGE_REPLACEMENT_LRU_H_
#define VANTAGE_REPLACEMENT_LRU_H_

#include "common/bits.h"
#include "replacement/repl_policy.h"

namespace vantage {

/** Exact LRU via 64-bit access counters. */
class ExactLru : public ReplPolicy
{
  public:
    void
    onHit(Line &line) override
    {
        line.lastAccess = ++clock_;
    }

    void
    onInsert(Line &line) override
    {
        line.lastAccess = ++clock_;
    }

    bool
    prefer(const Line &a, const Line &b) const override
    {
        return a.lastAccess < b.lastAccess;
    }

    double
    priority(const Line &line) const override
    {
        if (clock_ == 0) return 0.0;
        const double age = static_cast<double>(clock_ -
                                               line.lastAccess);
        return age / static_cast<double>(clock_);
    }

  private:
    std::uint64_t clock_ = 0;
};

/** Coarse-grain 8-bit timestamp LRU [21]. */
class CoarseLru : public ReplPolicy
{
  public:
    /**
     * @param cache_lines total lines the policy manages; the
     *        timestamp advances every cache_lines/16 accesses.
     */
    explicit CoarseLru(std::uint64_t cache_lines)
        : tickPeriod_(cache_lines / 16 ? cache_lines / 16 : 1)
    {}

    void
    onHit(Line &line) override
    {
        line.rank = currentTs_;
        tick();
    }

    void
    onInsert(Line &line) override
    {
        line.rank = currentTs_;
        tick();
    }

    bool
    prefer(const Line &a, const Line &b) const override
    {
        return age(a) > age(b);
    }

    double
    priority(const Line &line) const override
    {
        return static_cast<double>(age(line)) / 255.0;
    }

    std::uint8_t currentTimestamp() const { return currentTs_; }

  private:
    std::uint32_t
    age(const Line &line) const
    {
        return modDist(line.rank, currentTs_, 8);
    }

    void
    tick()
    {
        if (++accesses_ >= tickPeriod_) {
            accesses_ = 0;
            ++currentTs_;
        }
    }

    std::uint64_t tickPeriod_;
    std::uint64_t accesses_ = 0;
    std::uint8_t currentTs_ = 0;
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_LRU_H_

/**
 * @file
 * LRU replacement policies.
 *
 * ExactLru stamps each line with a monotonically increasing access
 * count — the simulator's luxury version of LRU, used for the paper's
 * set-associative baselines. The 64-bit stamp lives in the cold
 * metadata plane (LineCold::lastAccess): real hardware would not
 * store it, and it must not dilute the hot candidate-scan arrays.
 *
 * CoarseLru is the paper's implementable variant [21]: an 8-bit
 * timestamp counter incremented every cacheLines/16 accesses, with
 * ages computed in modulo-256 arithmetic over the hot `rank` field.
 * It is also the base policy Vantage builds its setpoint mechanism on
 * (Sec. 4.2), though the Vantage controller keeps its own
 * *per-partition* timestamps; this class is the single-stream flavor
 * for unpartitioned caches.
 */

#ifndef VANTAGE_REPLACEMENT_LRU_H_
#define VANTAGE_REPLACEMENT_LRU_H_

#include "common/bits.h"
#include "replacement/repl_policy.h"
#include "simd/simd.h"

namespace vantage {

/** Exact LRU via 64-bit access counters (cold plane). */
class ExactLru : public ReplPolicy
{
  public:
    void
    onHit(CacheArray &array, LineId slot) override
    {
        array.cold(slot).lastAccess = ++clock_;
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        array.cold(slot).lastAccess = ++clock_;
    }

    bool
    prefer(const CacheArray &array, LineId a, LineId b) const override
    {
        return array.cold(a).lastAccess < array.cold(b).lastAccess;
    }

    /**
     * Same earliest-wins min fold as the generic prefer() loop, as a
     * dispatched vector min-reduction over the cold plane (first
     * index wins ties in every backend) — no per-candidate virtual
     * calls on the miss path.
     */
    std::int32_t
    selectVictim(CacheArray &array,
                 const CandidateBuf &cands) override
    {
        return simd::ops().minLastAccess(array.coldData(),
                                         cands.data(), cands.size());
    }

    double
    priority(const CacheArray &array, LineId slot) const override
    {
        if (clock_ == 0) return 0.0;
        const double age = static_cast<double>(
            clock_ - array.cold(slot).lastAccess);
        return age / static_cast<double>(clock_);
    }

  private:
    std::uint64_t clock_ = 0;
};

/** Coarse-grain 8-bit timestamp LRU [21]. */
class CoarseLru : public ReplPolicy
{
  public:
    /**
     * @param cache_lines total lines the policy manages; the
     *        timestamp advances every cache_lines/16 accesses.
     */
    explicit CoarseLru(std::uint64_t cache_lines)
        : tickPeriod_(cache_lines / 16 ? cache_lines / 16 : 1)
    {}

    void
    onHit(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank = currentTs_;
        tick();
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank = currentTs_;
        tick();
    }

    bool
    prefer(const CacheArray &array, LineId a, LineId b) const override
    {
        return age(array.line(a)) > age(array.line(b));
    }

    /**
     * Oldest-age max fold (first wins ties), identical to the
     * generic prefer() loop, as a dispatched vector reduction over
     * the hot plane's rank bytes.
     */
    std::int32_t
    selectVictim(CacheArray &array,
                 const CandidateBuf &cands) override
    {
        return simd::ops().oldestRank(array.linesData(), cands.data(),
                                      cands.size(), currentTs_);
    }

    double
    priority(const CacheArray &array, LineId slot) const override
    {
        return static_cast<double>(age(array.line(slot))) / 255.0;
    }

    std::uint8_t currentTimestamp() const { return currentTs_; }

  private:
    std::uint32_t
    age(const Line &line) const
    {
        return modDist(line.rank, currentTs_, 8);
    }

    void
    tick()
    {
        if (++accesses_ >= tickPeriod_) {
            accesses_ = 0;
            ++currentTs_;
        }
    }

    std::uint64_t tickPeriod_;
    std::uint64_t accesses_ = 0;
    std::uint8_t currentTs_ = 0;
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_LRU_H_

/**
 * @file
 * Least-frequently-used replacement with a saturating 8-bit counter.
 *
 * Included because the paper notes (Sec. 4.2) that setpoint-based
 * demotions generalize beyond timestamps — "in LFU we would choose a
 * setpoint access frequency". The tests exercise that generality.
 */

#ifndef VANTAGE_REPLACEMENT_LFU_H_
#define VANTAGE_REPLACEMENT_LFU_H_

#include "replacement/repl_policy.h"

namespace vantage {

/** LFU over Line::rank as a saturating access-frequency counter. */
class Lfu : public ReplPolicy
{
  public:
    void
    onHit(Line &line) override
    {
        if (line.rank < 255) {
            ++line.rank;
        }
    }

    void
    onInsert(Line &line) override
    {
        line.rank = 0;
    }

    bool
    prefer(const Line &a, const Line &b) const override
    {
        if (a.rank != b.rank) {
            return a.rank < b.rank;
        }
        return a.lastAccess < b.lastAccess; // Tie-break toward older.
    }

    double
    priority(const Line &line) const override
    {
        return 1.0 - static_cast<double>(line.rank) / 255.0;
    }
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_LFU_H_

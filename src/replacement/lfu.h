/**
 * @file
 * Least-frequently-used replacement with a saturating 8-bit counter.
 *
 * Included because the paper notes (Sec. 4.2) that setpoint-based
 * demotions generalize beyond timestamps — "in LFU we would choose a
 * setpoint access frequency". The tests exercise that generality.
 */

#ifndef VANTAGE_REPLACEMENT_LFU_H_
#define VANTAGE_REPLACEMENT_LFU_H_

#include "replacement/repl_policy.h"

namespace vantage {

/** LFU over Line::rank as a saturating access-frequency counter. */
class Lfu : public ReplPolicy
{
  public:
    void
    onHit(CacheArray &array, LineId slot) override
    {
        Line &line = array.line(slot);
        if (line.rank < 255) {
            ++line.rank;
        }
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank = 0;
    }

    bool
    prefer(const CacheArray &array, LineId a, LineId b) const override
    {
        const std::uint8_t ra = array.line(a).rank;
        const std::uint8_t rb = array.line(b).rank;
        if (ra != rb) {
            return ra < rb;
        }
        // Tie-break toward older (cold-plane stamp; zero unless a
        // composed policy maintains it).
        return array.cold(a).lastAccess < array.cold(b).lastAccess;
    }

    double
    priority(const CacheArray &array, LineId slot) const override
    {
        return 1.0 - static_cast<double>(array.line(slot).rank) / 255.0;
    }
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_LFU_H_

/**
 * @file
 * NRU and random replacement.
 *
 * Not-recently-used is the classic 1-bit approximation of LRU that
 * many real LLCs ship (and the degenerate M = 1 case of RRIP);
 * random replacement is the natural baseline for the paper's
 * uniform-candidates analysis — under it, the associativity
 * distribution of *any* array is exactly uniform, which the tests
 * exploit as a control.
 */

#ifndef VANTAGE_REPLACEMENT_NRU_H_
#define VANTAGE_REPLACEMENT_NRU_H_

#include <vector>

#include "common/rng.h"
#include "replacement/repl_policy.h"

namespace vantage {

/** 1-bit not-recently-used (rank: 1 = recently used). */
class Nru : public ReplPolicy
{
  public:
    void
    onHit(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank = 1;
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        array.line(slot).rank = 1;
    }

    bool
    prefer(const CacheArray &array, LineId a, LineId b) const override
    {
        return array.line(a).rank < array.line(b).rank;
    }

    std::int32_t
    selectVictim(CacheArray &array, const CandidateBuf &cands) override
    {
        for (std::uint32_t i = 0; i < cands.size(); ++i) {
            if (array.line(cands[i].slot).rank == 0) {
                return static_cast<std::int32_t>(i);
            }
        }
        // Everything recently used: clear the neighborhood (the
        // candidate-based analogue of clearing the set) and evict
        // the first candidate.
        for (const auto &cand : cands) {
            array.line(cand.slot).rank = 0;
        }
        return 0;
    }

    double
    priority(const CacheArray &array, LineId slot) const override
    {
        return array.line(slot).rank ? 0.25 : 0.75;
    }
};

/** Uniform-random victim selection. */
class RandomRepl : public ReplPolicy
{
  public:
    explicit RandomRepl(std::uint64_t seed = 0x4a4d) : rng_(seed) {}

    void
    onHit(CacheArray &array, LineId slot) override
    {
        (void)array;
        (void)slot;
    }

    void
    onInsert(CacheArray &array, LineId slot) override
    {
        (void)array;
        (void)slot;
    }

    bool
    prefer(const CacheArray &array, LineId a, LineId b) const override
    {
        (void)array;
        (void)a;
        (void)b;
        return false; // No ordering; selectVictim draws uniformly.
    }

    std::int32_t
    selectVictim(CacheArray &array, const CandidateBuf &cands) override
    {
        (void)array;
        return static_cast<std::int32_t>(rng_.range(cands.size()));
    }

  private:
    Rng rng_;
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_NRU_H_

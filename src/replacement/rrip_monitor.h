/**
 * @file
 * Set-dueling monitor for RRIP flavors.
 *
 * DIP/DRRIP choose between two insertion policies by dedicating a few
 * *leader sets* to each and steering the rest with a PSEL counter.
 * Leader sets do not exist in zcaches (no sets at all), so we use the
 * equivalent auxiliary-tag-directory formulation from the DIP paper:
 * each flavor gets a small monitor that simulates that flavor over a
 * sampled slice of the access stream, sized to model the real cache's
 * capacity. The PSEL counter then compares monitor misses.
 */

#ifndef VANTAGE_REPLACEMENT_RRIP_MONITOR_H_
#define VANTAGE_REPLACEMENT_RRIP_MONITOR_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hash/h3.h"

namespace vantage {

/** Simulates one RRIP flavor (SRRIP or BRRIP) on sampled sets. */
class RripDuelMonitor
{
  public:
    enum class Outcome { NotSampled, Hit, Miss };

    static constexpr std::uint8_t kDistantRrpv = 7;
    static constexpr std::uint8_t kLongRrpv = 6;

    /**
     * @param brrip simulate BRRIP (true) or SRRIP (false).
     * @param modeled_sets set count of the cache being modeled.
     * @param ways monitored associativity.
     * @param sampled_sets monitor sets (sampling factor =
     *        sampled_sets / modeled_sets).
     */
    RripDuelMonitor(bool brrip, std::uint64_t modeled_sets,
                    std::uint32_t ways, std::uint32_t sampled_sets,
                    std::uint64_t seed)
        : brrip_(brrip), ways_(ways),
          modeledSets_(std::max<std::uint64_t>(modeled_sets, 1)),
          hash_(seed ^ 0x5d31), rng_(seed ^ 0xb0b)
    {
        sets_.resize(std::min<std::uint64_t>(sampled_sets,
                                             modeledSets_));
        for (auto &set : sets_) {
            set.reserve(ways);
        }
    }

    /** Observe one access of the stream this monitor duels over. */
    Outcome
    access(Addr addr)
    {
        const std::uint64_t bucket = hash_.mod(addr, modeledSets_);
        if (bucket >= sets_.size()) {
            return Outcome::NotSampled;
        }
        auto &chain = sets_[bucket];
        const auto it = std::find_if(
            chain.begin(), chain.end(),
            [addr](const Entry &e) { return e.addr == addr; });
        if (it != chain.end()) {
            Entry e = *it;
            e.rrpv = 0;
            chain.erase(it);
            chain.insert(chain.begin(), e);
            return Outcome::Hit;
        }
        if (chain.size() >= ways_) {
            const std::uint8_t deficit =
                kDistantRrpv - chain.back().rrpv;
            if (deficit > 0) {
                for (auto &e : chain) {
                    e.rrpv = static_cast<std::uint8_t>(
                        std::min<std::uint32_t>(e.rrpv + deficit,
                                                kDistantRrpv));
                }
            }
            chain.pop_back();
        }
        Entry e{addr, kLongRrpv};
        if (brrip_ && !rng_.chance(1.0 / 32.0)) {
            e.rrpv = kDistantRrpv;
        }
        const auto at = std::upper_bound(
            chain.begin(), chain.end(), e,
            [](const Entry &a, const Entry &b) {
                return a.rrpv < b.rrpv;
            });
        chain.insert(at, e);
        return Outcome::Miss;
    }

  private:
    struct Entry
    {
        Addr addr;
        std::uint8_t rrpv;
    };

    bool brrip_;
    std::uint32_t ways_;
    std::uint64_t modeledSets_;
    H3Hash hash_;
    Rng rng_;
    std::vector<std::vector<Entry>> sets_; ///< Ascending-RRPV chains.
};

} // namespace vantage

#endif // VANTAGE_REPLACEMENT_RRIP_MONITOR_H_

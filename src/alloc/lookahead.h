/**
 * @file
 * The Lookahead allocation algorithm from UCP [19].
 *
 * Greedy marginal-utility allocation that, unlike plain hill
 * climbing, looks past plateaus in non-convex utility curves: at each
 * step it finds, over all partitions, the allocation jump with the
 * best utility gained *per unit*, and grants it. Runs in
 * O(units^2 * partitions) worst case — cheap at repartitioning
 * frequency.
 */

#ifndef VANTAGE_ALLOC_LOOKAHEAD_H_
#define VANTAGE_ALLOC_LOOKAHEAD_H_

#include <cstdint>
#include <vector>

namespace vantage {

/**
 * Distribute `total_units` among partitions.
 *
 * @param curves one utility curve per partition; curves[p][u] is the
 *        utility (hits) of giving partition p exactly u units. Each
 *        curve must have at least total_units + 1 entries or its own
 *        maximum is used as a cap.
 * @param total_units units to hand out.
 * @param min_units lower bound per partition (e.g. 1 way).
 * @return per-partition allocation summing to total_units.
 */
std::vector<std::uint32_t> lookaheadAllocate(
    const std::vector<std::vector<double>> &curves,
    std::uint32_t total_units, std::uint32_t min_units);

} // namespace vantage

#endif // VANTAGE_ALLOC_LOOKAHEAD_H_

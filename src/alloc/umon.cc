#include "alloc/umon.h"

#include <algorithm>

#include "common/bits.h"
#include "common/log.h"
#include "stats/prof.h"

namespace vantage {

Umon::Umon(std::uint32_t ways, std::uint32_t sampled_sets,
           std::uint64_t modeled_sets, std::uint64_t seed)
    : ways_(ways), sampledSets_(sampled_sets),
      modeledSets_(modeled_sets), hash_(seed),
      sets_(sampled_sets), hits_(ways, 0)
{
    vantage_assert(ways >= 1, "need at least one way");
    vantage_assert(sampled_sets >= 1, "need at least one sampled set");
    vantage_assert(isPow2(modeled_sets),
                   "modeled sets %llu must be a power of two",
                   static_cast<unsigned long long>(modeled_sets));
    vantage_assert(sampled_sets <= modeled_sets,
                   "cannot sample %u of %llu sets", sampled_sets,
                   static_cast<unsigned long long>(modeled_sets));
    for (auto &set : sets_) {
        set.stack.reserve(ways);
    }
}

void
Umon::access(Addr addr)
{
    VANTAGE_PROF("umon.access");
    const std::uint64_t bucket = hash_.mod(addr, modeledSets_);
    if (bucket >= sampledSets_) {
        return;
    }
    ++accesses_;
    MonitorSet &set = sets_[bucket];
    auto &stack = set.stack;
    const auto it = std::find(stack.begin(), stack.end(), addr);
    if (it != stack.end()) {
        const auto pos =
            static_cast<std::uint32_t>(it - stack.begin());
        ++hits_[pos];
        stack.erase(it);
        stack.insert(stack.begin(), addr);
        return;
    }
    ++misses_;
    if (stack.size() >= ways_) {
        stack.pop_back();
    }
    stack.insert(stack.begin(), addr);
}

std::uint64_t
Umon::hitsUpTo(std::uint32_t w) const
{
    vantage_assert(w <= ways_, "allocation %u beyond %u ways", w,
                   ways_);
    std::uint64_t acc = 0;
    for (std::uint32_t i = 0; i < w; ++i) {
        acc += hits_[i];
    }
    return acc;
}

std::vector<double>
Umon::utilityCurve() const
{
    const double scale = static_cast<double>(modeledSets_) /
                         static_cast<double>(sampledSets_);
    std::vector<double> curve(ways_ + 1);
    for (std::uint32_t w = 0; w <= ways_; ++w) {
        curve[w] = scale * static_cast<double>(hitsUpTo(w));
    }
    return curve;
}

std::vector<double>
Umon::interpolatedCurve(std::uint32_t points) const
{
    vantage_assert(points >= 1, "need at least one point");
    const std::vector<double> base = utilityCurve();
    std::vector<double> curve(points + 1);
    for (std::uint32_t i = 0; i <= points; ++i) {
        const double x = static_cast<double>(i) *
                         static_cast<double>(ways_) /
                         static_cast<double>(points);
        const auto lo = static_cast<std::uint32_t>(x);
        const std::uint32_t hi = std::min(lo + 1, ways_);
        const double frac = x - static_cast<double>(lo);
        curve[i] = base[lo] + frac * (base[hi] - base[lo]);
    }
    return curve;
}

void
Umon::ageCounters()
{
    for (auto &h : hits_) {
        h /= 2;
    }
    misses_ /= 2;
    accesses_ /= 2;
}

} // namespace vantage

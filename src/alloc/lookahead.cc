#include "alloc/lookahead.h"

#include <algorithm>

#include "common/log.h"

namespace vantage {

std::vector<std::uint32_t>
lookaheadAllocate(const std::vector<std::vector<double>> &curves,
                  std::uint32_t total_units, std::uint32_t min_units)
{
    const auto num_parts = static_cast<std::uint32_t>(curves.size());
    vantage_assert(num_parts >= 1, "need at least one partition");
    vantage_assert(static_cast<std::uint64_t>(min_units) * num_parts <=
                       total_units,
                   "minimum %u x %u exceeds %u units", min_units,
                   num_parts, total_units);

    std::vector<std::uint32_t> alloc(num_parts, min_units);
    std::uint32_t remaining =
        total_units - min_units * num_parts;

    auto cap = [&](std::uint32_t p) {
        return static_cast<std::uint32_t>(
            std::min<std::size_t>(curves[p].size() - 1, total_units));
    };

    while (remaining > 0) {
        double best_mu = -1.0;
        std::uint32_t best_part = 0;
        std::uint32_t best_jump = 0;

        for (std::uint32_t p = 0; p < num_parts; ++p) {
            const std::uint32_t cur = alloc[p];
            if (cur > cap(p)) {
                // Curve exhausted (shorter than the floor): no
                // marginal utility left to read.
                continue;
            }
            const std::uint32_t limit =
                std::min(cap(p), cur + remaining);
            const double base = curves[p][cur];
            for (std::uint32_t next = cur + 1; next <= limit;
                 ++next) {
                const double mu =
                    (curves[p][next] - base) /
                    static_cast<double>(next - cur);
                if (mu > best_mu) {
                    best_mu = mu;
                    best_part = p;
                    best_jump = next - cur;
                }
            }
        }

        if (best_jump == 0 || best_mu <= 0.0) {
            // No partition benefits from more space: spread leftovers
            // round-robin so the full budget is assigned.
            for (std::uint32_t p = 0; remaining > 0;
                 p = (p + 1) % num_parts) {
                if (alloc[p] < cap(p)) {
                    ++alloc[p];
                    --remaining;
                } else {
                    // All capped: dump the rest on partition 0.
                    bool all_capped = true;
                    for (std::uint32_t q = 0; q < num_parts; ++q) {
                        if (alloc[q] < cap(q)) {
                            all_capped = false;
                        }
                    }
                    if (all_capped) {
                        alloc[0] += remaining;
                        remaining = 0;
                    }
                }
            }
            break;
        }

        alloc[best_part] += best_jump;
        remaining -= best_jump;
    }

    // Post-conditions (cold path, so always on): the budget is fully
    // assigned and every partition keeps its floor.
    std::uint64_t sum = 0;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
        vantage_assert(alloc[p] >= min_units,
                       "lookahead gave partition %u only %u units, "
                       "floor is %u",
                       p, alloc[p], min_units);
        sum += alloc[p];
    }
    vantage_assert(sum == total_units,
                   "lookahead assigned %llu of %u units",
                   static_cast<unsigned long long>(sum), total_units);
    return alloc;
}

} // namespace vantage

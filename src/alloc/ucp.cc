#include "alloc/ucp.h"

#include <string>

#include "common/log.h"
#include "stats/registry.h"
#include "trace/event_trace.h"

namespace vantage {

Ucp::Ucp(std::uint32_t num_cores, const UcpConfig &cfg)
    : numCores_(num_cores), cfg_(cfg)
{
    vantage_assert(num_cores >= 1, "need at least one core");
    if (cfg.rripMonitors) {
        rripUmons_.resize(num_cores);
    } else {
        umons_.resize(num_cores);
    }
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        buildMonitor(c);
    }
}

void
Ucp::buildMonitor(PartId core)
{
    // The seed is a pure function of the core id, so a monitor
    // rebuilt for a joining tenant — in a live serve session or its
    // replay — always starts from the same state.
    const std::uint64_t period =
        cfg_.samplePeriod ? cfg_.samplePeriod : cfg_.modeledSets;
    if (cfg_.rripMonitors) {
        rripUmons_[core] = std::make_unique<UmonRrip>(
            cfg_.umonWays, cfg_.umonSets, period, 0xa30 + core);
    } else {
        umons_[core] = std::make_unique<Umon>(
            cfg_.umonWays, cfg_.umonSets, period, 0xa30 + core);
    }
}

void
Ucp::attachMonitor(PartId core)
{
    vantage_assert(core < numCores_, "core %u out of range", core);
    if (active_.empty()) {
        active_.assign(numCores_, 1);
    }
    vantage_assert(active_[core] == 0,
                   "attachMonitor(%u): already attached", core);
    // Rebuild before publishing the flag: the introspection guards
    // read active_ and the series read through the monitor slot, so
    // a sampler must never see the flag up while the old monitor is
    // being replaced.
    buildMonitor(core);
    active_[core] = 1;
    ++attaches_;
}

void
Ucp::detachMonitor(PartId core)
{
    vantage_assert(core < numCores_, "core %u out of range", core);
    if (active_.empty()) {
        active_.assign(numCores_, 1);
    }
    vantage_assert(active_[core] != 0,
                   "detachMonitor(%u): already detached", core);
    active_[core] = 0;
    ++detaches_;
}

std::uint32_t
Ucp::activeMonitors() const
{
    if (active_.empty()) {
        return numCores_;
    }
    std::uint32_t n = 0;
    for (const std::uint8_t a : active_) {
        n += a;
    }
    return n;
}

void
Ucp::checkInvariants(InvariantReport &rep) const
{
    rep.expect(attaches_ <= detaches_,
               "ucp: %llu attaches but only %llu detaches (monitors "
               "start attached; every attach needs a prior detach)",
               static_cast<unsigned long long>(attaches_),
               static_cast<unsigned long long>(detaches_));
    const std::uint64_t expected =
        numCores_ + attaches_ - detaches_;
    rep.expect(activeMonitors() == expected,
               "ucp: %u active monitors, lifecycle counters imply "
               "%llu",
               activeMonitors(),
               static_cast<unsigned long long>(expected));
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        const bool built = cfg_.rripMonitors
                               ? rripUmons_[c] != nullptr
                               : umons_[c] != nullptr;
        rep.expect(built, "ucp: core %u has no monitor", c);
    }
}

void
Ucp::observe(PartId core, Addr addr)
{
    vantage_assert(core < numCores_, "core %u out of range", core);
    vantage_assert(monitorActive(core),
                   "observe() on detached monitor %u", core);
    if (cfg_.rripMonitors) {
        rripUmons_[core]->access(addr);
    } else {
        umons_[core]->access(addr);
    }
}

std::vector<std::uint32_t>
Ucp::computeAllocations(std::uint32_t quantum,
                        std::uint32_t min_units) const
{
    // Detached monitors (empty tenant slots) are excluded from the
    // Lookahead competition and pinned at zero units; the whole
    // quantum is divided among the attached population. With every
    // monitor attached this is the historical fixed-population path,
    // bit for bit.
    std::vector<PartId> attached;
    attached.reserve(numCores_);
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        if (monitorActive(c)) {
            attached.push_back(c);
        }
    }
    std::vector<std::uint32_t> alloc(numCores_, 0);
    if (attached.empty()) {
        return alloc;
    }

    std::vector<std::vector<double>> curves(attached.size());
    for (std::size_t i = 0; i < attached.size(); ++i) {
        const PartId c = attached[i];
        if (cfg_.rripMonitors) {
            curves[i] = quantum == cfg_.umonWays
                            ? rripUmons_[c]->utilityCurve()
                            : rripUmons_[c]->interpolatedCurve(quantum);
        } else {
            curves[i] = quantum == cfg_.umonWays
                            ? umons_[c]->utilityCurve()
                            : umons_[c]->interpolatedCurve(quantum);
        }
    }
    const std::vector<std::uint32_t> packed =
        lookaheadAllocate(curves, quantum, min_units);
    for (std::size_t i = 0; i < attached.size(); ++i) {
        alloc[attached[i]] = packed[i];
    }
    if (TraceSession::instance().enabled(kTraceAlloc)) {
        // One instant per reallocation decision (cold: runs once per
        // repartitioning interval).
        traceInstant(kTraceAlloc, "ucp.compute_allocations", "quantum",
                     static_cast<double>(quantum));
        for (std::uint32_t c = 0; c < numCores_; ++c) {
            traceCounter(kTraceAlloc,
                         TraceSession::instance().intern(
                             "ucp.allocation.core" +
                             std::to_string(c)),
                         "units", static_cast<double>(alloc[c]));
        }
    }
    return alloc;
}

std::vector<bool>
Ucp::brripChoices() const
{
    vantage_assert(cfg_.rripMonitors,
                   "dueling requires RRIP monitors");
    std::vector<bool> out(numCores_);
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        out[c] = rripUmons_[c]->brripWins();
    }
    return out;
}

void
Ucp::nextInterval()
{
    for (auto &u : umons_) {
        u->ageCounters();
    }
    for (auto &u : rripUmons_) {
        u->ageCounters();
    }
}

const Umon &
Ucp::umon(PartId core) const
{
    vantage_assert(core < numCores_, "core %u out of range", core);
    vantage_assert(!cfg_.rripMonitors, "LRU monitors not in use");
    return *umons_[core];
}

void
Ucp::registerIntrospection(StatsRegistry &reg,
                           const std::string &prefix) const
{
    // Size the attach flags now: the guards below read them from the
    // sampler thread, and a lazy first allocation mid-run would race.
    if (active_.empty()) {
        active_.assign(numCores_, 1);
    }
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        const std::string base =
            prefix + ".core" + std::to_string(c);
        // Detached monitors (empty tenant slots) drop their series.
        // Resolve the monitor through its slot on every read:
        // attachMonitor REBUILDS the object, so a pointer captured
        // here would dangle after the first tenant-slot reuse.
        reg.addGuard(base, [this, c] { return monitorActive(c); });
        if (cfg_.rripMonitors) {
            reg.addCounter(base + ".misses", [this, c] {
                return rripUmons_[c]->misses();
            });
            reg.addCounter(base + ".srrip_hits", [this, c] {
                return rripUmons_[c]->srripHits();
            });
            reg.addCounter(base + ".brrip_hits", [this, c] {
                return rripUmons_[c]->brripHits();
            });
            reg.addGauge(base + ".brrip_wins", [this, c] {
                return rripUmons_[c]->brripWins() ? 1.0 : 0.0;
            });
            continue;
        }
        reg.addCounter(base + ".sampled_accesses", [this, c] {
            return umons_[c]->sampledAccesses();
        });
        reg.addCounter(base + ".misses",
                       [this, c] { return umons_[c]->misses(); });
        // Cumulative utility-curve hit counts per allocated way;
        // ageCounters() halves them each interval, which the
        // snapshot layer's wrap guard absorbs.
        for (std::uint32_t w = 0; w < cfg_.umonWays; ++w) {
            reg.addCounter(
                base + ".way" + std::to_string(w) + ".cum_hits",
                [this, c, w] { return umons_[c]->hitsUpTo(w + 1); });
        }
    }
}

} // namespace vantage

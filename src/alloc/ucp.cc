#include "alloc/ucp.h"

#include <string>

#include "common/log.h"
#include "stats/registry.h"
#include "trace/event_trace.h"

namespace vantage {

Ucp::Ucp(std::uint32_t num_cores, const UcpConfig &cfg)
    : numCores_(num_cores), cfg_(cfg)
{
    vantage_assert(num_cores >= 1, "need at least one core");
    const std::uint64_t period =
        cfg.samplePeriod ? cfg.samplePeriod : cfg.modeledSets;
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        if (cfg.rripMonitors) {
            rripUmons_.push_back(std::make_unique<UmonRrip>(
                cfg.umonWays, cfg.umonSets, period, 0xa30 + c));
        } else {
            umons_.push_back(std::make_unique<Umon>(
                cfg.umonWays, cfg.umonSets, period, 0xa30 + c));
        }
    }
}

void
Ucp::observe(PartId core, Addr addr)
{
    vantage_assert(core < numCores_, "core %u out of range", core);
    if (cfg_.rripMonitors) {
        rripUmons_[core]->access(addr);
    } else {
        umons_[core]->access(addr);
    }
}

std::vector<std::uint32_t>
Ucp::computeAllocations(std::uint32_t quantum,
                        std::uint32_t min_units) const
{
    std::vector<std::vector<double>> curves(numCores_);
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        if (cfg_.rripMonitors) {
            curves[c] = quantum == cfg_.umonWays
                            ? rripUmons_[c]->utilityCurve()
                            : rripUmons_[c]->interpolatedCurve(quantum);
        } else {
            curves[c] = quantum == cfg_.umonWays
                            ? umons_[c]->utilityCurve()
                            : umons_[c]->interpolatedCurve(quantum);
        }
    }
    std::vector<std::uint32_t> alloc =
        lookaheadAllocate(curves, quantum, min_units);
    if (TraceSession::instance().enabled(kTraceAlloc)) {
        // One instant per reallocation decision (cold: runs once per
        // repartitioning interval).
        traceInstant(kTraceAlloc, "ucp.compute_allocations", "quantum",
                     static_cast<double>(quantum));
        for (std::uint32_t c = 0; c < numCores_; ++c) {
            traceCounter(kTraceAlloc,
                         TraceSession::instance().intern(
                             "ucp.allocation.core" +
                             std::to_string(c)),
                         "units", static_cast<double>(alloc[c]));
        }
    }
    return alloc;
}

std::vector<bool>
Ucp::brripChoices() const
{
    vantage_assert(cfg_.rripMonitors,
                   "dueling requires RRIP monitors");
    std::vector<bool> out(numCores_);
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        out[c] = rripUmons_[c]->brripWins();
    }
    return out;
}

void
Ucp::nextInterval()
{
    for (auto &u : umons_) {
        u->ageCounters();
    }
    for (auto &u : rripUmons_) {
        u->ageCounters();
    }
}

const Umon &
Ucp::umon(PartId core) const
{
    vantage_assert(core < numCores_, "core %u out of range", core);
    vantage_assert(!cfg_.rripMonitors, "LRU monitors not in use");
    return *umons_[core];
}

void
Ucp::registerIntrospection(StatsRegistry &reg,
                           const std::string &prefix) const
{
    for (std::uint32_t c = 0; c < numCores_; ++c) {
        const std::string base =
            prefix + ".core" + std::to_string(c);
        if (cfg_.rripMonitors) {
            const UmonRrip *u = rripUmons_[c].get();
            reg.addCounter(base + ".misses",
                           [u] { return u->misses(); });
            reg.addCounter(base + ".srrip_hits",
                           [u] { return u->srripHits(); });
            reg.addCounter(base + ".brrip_hits",
                           [u] { return u->brripHits(); });
            reg.addGauge(base + ".brrip_wins", [u] {
                return u->brripWins() ? 1.0 : 0.0;
            });
            continue;
        }
        const Umon *u = umons_[c].get();
        reg.addCounter(base + ".sampled_accesses",
                       [u] { return u->sampledAccesses(); });
        reg.addCounter(base + ".misses",
                       [u] { return u->misses(); });
        // Cumulative utility-curve hit counts per allocated way;
        // ageCounters() halves them each interval, which the
        // snapshot layer's wrap guard absorbs.
        for (std::uint32_t w = 0; w < u->ways(); ++w) {
            reg.addCounter(
                base + ".way" + std::to_string(w) + ".cum_hits",
                [u, w] { return u->hitsUpTo(w + 1); });
        }
    }
}

} // namespace vantage

/**
 * @file
 * UMON-DSS: utility monitor with dynamic set sampling (UCP [19]).
 *
 * Each core gets a small auxiliary tag directory that observes that
 * core's L2 access stream. Sampled sets maintain a true-LRU stack of
 * `ways` tags and count hits per stack position; the cumulative hit
 * counts form the miss-rate curve (utility curve) the Lookahead
 * allocation algorithm consumes.
 *
 * The monitor samples `sampledSets` out of a nominal `modeledSets`
 * (the shared cache's set count), exactly as UCP's DSS does. Between
 * repartitioning intervals the counters are halved, giving an
 * exponential moving average over program phases.
 */

#ifndef VANTAGE_ALLOC_UMON_H_
#define VANTAGE_ALLOC_UMON_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hash/h3.h"

namespace vantage {

/** LRU utility monitor for one access stream. */
class Umon
{
  public:
    /**
     * @param ways monitored associativity (granularity of the curve).
     * @param sampled_sets number of monitor sets (64 in the paper).
     * @param modeled_sets set count of the cache being modeled; must
     *        be >= sampled_sets and a power of two.
     */
    Umon(std::uint32_t ways, std::uint32_t sampled_sets,
         std::uint64_t modeled_sets, std::uint64_t seed = 0xa30);

    /** Observe one access; updates counters if the address samples. */
    void access(Addr addr);

    /**
     * Hits this interval with an allocation of `w` ways
     * (cumulative over stack positions 0..w-1). hitsUpTo(0) == 0.
     */
    std::uint64_t hitsUpTo(std::uint32_t w) const;

    /**
     * Utility curve: hits for each allocation 0..ways, scaled to the
     * full cache (by the sampling factor).
     */
    std::vector<double> utilityCurve() const;

    /**
     * Utility curve linearly interpolated to `points` allocation
     * units spanning [0, ways] — the paper's 256-point curves that
     * let Vantage allocate at line granularity.
     */
    std::vector<double> interpolatedCurve(std::uint32_t points) const;

    std::uint64_t misses() const { return misses_; }
    std::uint64_t sampledAccesses() const { return accesses_; }
    std::uint32_t ways() const { return ways_; }

    /** Halve all counters (called at each repartition interval). */
    void ageCounters();

  private:
    struct MonitorSet
    {
        std::vector<Addr> stack; // MRU first.
    };

    std::uint32_t ways_;
    std::uint32_t sampledSets_;
    std::uint64_t modeledSets_;
    H3Hash hash_;
    std::vector<MonitorSet> sets_;
    std::vector<std::uint64_t> hits_; // Per stack position.
    std::uint64_t misses_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace vantage

#endif // VANTAGE_ALLOC_UMON_H_

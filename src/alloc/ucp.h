/**
 * @file
 * UCP: utility-based cache partitioning (Qureshi & Patt, MICRO'06),
 * as configured in the paper's evaluation (Sec. 5): one UMON-DSS per
 * core (64 sampled sets), Lookahead allocation, repartitioning every
 * interval, and — when driving Vantage — 256-point interpolated
 * miss-rate curves. The RRIP mode swaps in UMON-RRIP monitors and
 * additionally reports the per-partition SRRIP/BRRIP dueling winner
 * (for Vantage-DRRIP, Sec. 6.2).
 */

#ifndef VANTAGE_ALLOC_UCP_H_
#define VANTAGE_ALLOC_UCP_H_

#include <memory>
#include <string>
#include <vector>

#include "alloc/lookahead.h"
#include "alloc/umon.h"
#include "alloc/umon_rrip.h"
#include "common/check.h"
#include "obs/introspect.h"

namespace vantage {

class StatsRegistry;

/** UCP configuration. */
struct UcpConfig
{
    /** Monitored ways (the partitioning granularity of the cache). */
    std::uint32_t umonWays = 16;
    /** Sampled monitor sets per core. */
    std::uint32_t umonSets = 64;
    /** Nominal set count of the monitored cache (power of two). */
    std::uint64_t modeledSets = 2048;
    /**
     * DSS sampling period: one in (samplePeriod / umonSets) accesses
     * is monitored. 0 means "use modeledSets", the paper's setting;
     * scaled-down simulations use a denser period so the monitors
     * converge within shortened runs.
     */
    std::uint64_t samplePeriod = 0;
    /** Use UMON-RRIP monitors (for Vantage-DRRIP). */
    bool rripMonitors = false;
};

/** Utility-based allocation policy over per-core monitors. */
class Ucp : public Introspectable
{
  public:
    Ucp(std::uint32_t num_cores, const UcpConfig &cfg);

    /** Observe one L2 access by `core`. */
    void observe(PartId core, Addr addr);

    /**
     * Compute allocations for a scheme with the given quantum:
     * way-granular when quantum == umonWays, interpolated otherwise.
     * @param quantum total allocation units of the target scheme.
     * @param min_units floor per partition (1 way for way schemes).
     */
    std::vector<std::uint32_t> computeAllocations(
        std::uint32_t quantum, std::uint32_t min_units) const;

    /**
     * For RRIP monitors: whether BRRIP won the duel for each core
     * this interval.
     */
    std::vector<bool> brripChoices() const;

    /** Age counters at the end of a repartitioning interval. */
    void nextInterval();

    const Umon &umon(PartId core) const;
    std::uint32_t numCores() const { return numCores_; }

    // ------------------------------------------------------------------
    // Dynamic tenant lifecycle. Every monitor starts attached (the
    // fixed-population behavior); serve mode detaches the monitors of
    // empty slots and re-attaches one when a tenant joins. A
    // re-attach rebuilds the monitor from scratch with its original
    // seed, so a joining tenant starts from clean utility curves and
    // a replayed session reconstructs identical monitor state.
    // Detached monitors get zero units from computeAllocations() and
    // must not be observe()d.
    //
    // NOTE: registerIntrospection() captures raw monitor pointers;
    // do not re-register across an attach (the serve loop keeps its
    // own registries per epoch snapshot instead).

    /** Re-attach a detached core's monitor. @pre !monitorActive. */
    void attachMonitor(PartId core);

    /** Detach an attached core's monitor. @pre monitorActive. */
    void detachMonitor(PartId core);

    bool
    monitorActive(PartId core) const
    {
        return active_.empty() || active_[core] != 0;
    }

    /** Number of attached monitors. */
    std::uint32_t activeMonitors() const;

    /**
     * Lifecycle bookkeeping self-check: the active-flag recount must
     * equal the initial population plus attaches minus detaches.
     */
    void checkInvariants(InvariantReport &rep) const;

    /**
     * Live-introspection export: per-core monitor activity
     * (sampled accesses, misses) and the utility-curve cumulative
     * hit counts per way (`coreN.wayW.cum_hits`, LRU monitors), or
     * the SRRIP/BRRIP duel counters for RRIP monitors. Lets an
     * operator watch the curves the Lookahead allocator is acting
     * on while a run converges.
     */
    void registerIntrospection(
        StatsRegistry &reg, const std::string &prefix) const override;

  private:
    /** (Re)build one core's monitor with its canonical seed. */
    void buildMonitor(PartId core);

    std::uint32_t numCores_;
    UcpConfig cfg_;
    std::vector<std::unique_ptr<Umon>> umons_;
    std::vector<std::unique_ptr<UmonRrip>> rripUmons_;

    /** Per-core attached flag; empty until the first lifecycle call
     *  (all monitors implicitly attached). Mutable so introspection
     *  can size it eagerly before sampler-thread guards read it. */
    mutable std::vector<std::uint8_t> active_;
    std::uint64_t attaches_ = 0;
    std::uint64_t detaches_ = 0;
};

} // namespace vantage

#endif // VANTAGE_ALLOC_UCP_H_

#include "alloc/umon_rrip.h"

#include <algorithm>

#include "common/bits.h"
#include "common/log.h"

namespace vantage {

UmonRrip::UmonRrip(std::uint32_t ways, std::uint32_t sampled_sets,
                   std::uint64_t modeled_sets, std::uint64_t seed)
    : ways_(ways), sampledSets_(sampled_sets),
      modeledSets_(modeled_sets), hash_(seed), rng_(seed ^ 0xbb),
      sets_(sampled_sets), hits_(ways, 0)
{
    vantage_assert(ways >= 1, "need at least one way");
    vantage_assert(sampled_sets >= 2,
                   "need >= 2 sampled sets for dueling");
    vantage_assert(isPow2(modeled_sets),
                   "modeled sets %llu must be a power of two",
                   static_cast<unsigned long long>(modeled_sets));
    for (auto &set : sets_) {
        set.chain.reserve(ways);
    }
}

void
UmonRrip::access(Addr addr)
{
    const std::uint64_t bucket = hash_.mod(addr, modeledSets_);
    if (bucket >= sampledSets_) {
        return;
    }
    const auto set_idx = static_cast<std::uint32_t>(bucket);
    auto &chain = sets_[set_idx].chain;
    const bool brrip = setUsesBrrip(set_idx);

    const auto it = std::find_if(chain.begin(), chain.end(),
                                 [addr](const Entry &e) {
                                     return e.addr == addr;
                                 });
    if (it != chain.end()) {
        const auto pos = static_cast<std::uint32_t>(it - chain.begin());
        ++hits_[pos];
        if (brrip) {
            ++brripHits_;
        } else {
            ++srripHits_;
        }
        // Promote to RRPV 0: move to the front of the chain.
        Entry e = *it;
        e.rrpv = 0;
        chain.erase(it);
        chain.insert(chain.begin(), e);
        return;
    }

    ++misses_;
    if (chain.size() >= ways_) {
        // Victim: highest RRPV (chain back); age everyone by the
        // deficit so the back reaches the distant value, as RRIP does.
        const std::uint8_t deficit =
            RripBase::kDistant - chain.back().rrpv;
        if (deficit > 0) {
            for (auto &e : chain) {
                e.rrpv = static_cast<std::uint8_t>(
                    std::min<std::uint32_t>(e.rrpv + deficit,
                                            RripBase::kDistant));
            }
        }
        chain.pop_back();
    }
    Entry e{addr, RripBase::kLong};
    if (brrip && !rng_.chance(1.0 / 32.0)) {
        e.rrpv = RripBase::kDistant;
    }
    // Insert keeping ascending-RRPV order (stable: after equals).
    const auto insert_at = std::upper_bound(
        chain.begin(), chain.end(), e,
        [](const Entry &a, const Entry &b) { return a.rrpv < b.rrpv; });
    chain.insert(insert_at, e);
}

std::vector<double>
UmonRrip::utilityCurve() const
{
    const double scale = static_cast<double>(modeledSets_) /
                         static_cast<double>(sampledSets_);
    std::vector<double> curve(ways_ + 1, 0.0);
    double acc = 0.0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        acc += static_cast<double>(hits_[w]);
        curve[w + 1] = scale * acc;
    }
    return curve;
}

std::vector<double>
UmonRrip::interpolatedCurve(std::uint32_t points) const
{
    vantage_assert(points >= 1, "need at least one point");
    const std::vector<double> base = utilityCurve();
    std::vector<double> curve(points + 1);
    for (std::uint32_t i = 0; i <= points; ++i) {
        const double x = static_cast<double>(i) *
                         static_cast<double>(ways_) /
                         static_cast<double>(points);
        const auto lo = static_cast<std::uint32_t>(x);
        const std::uint32_t hi = std::min(lo + 1, ways_);
        const double frac = x - static_cast<double>(lo);
        curve[i] = base[lo] + frac * (base[hi] - base[lo]);
    }
    return curve;
}

void
UmonRrip::ageCounters()
{
    for (auto &h : hits_) {
        h /= 2;
    }
    misses_ /= 2;
    srripHits_ /= 2;
    brripHits_ /= 2;
}

} // namespace vantage

/**
 * @file
 * UMON-RRIP: the modified utility monitor of the paper's Sec. 6.2.
 *
 * For Vantage-DRRIP, UCP's UMON-DSS is adapted to RRIP: monitor sets
 * maintain *RRIP chains* (tags ordered by RRPV) instead of LRU
 * stacks, and hit counters index positions in that order. Half of
 * the sampled sets insert with SRRIP and half with BRRIP; at each
 * repartitioning the flavor with more interval hits is selected for
 * the partition, making Vantage-DRRIP thread-aware by construction.
 */

#ifndef VANTAGE_ALLOC_UMON_RRIP_H_
#define VANTAGE_ALLOC_UMON_RRIP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hash/h3.h"
#include "replacement/rrip.h"

namespace vantage {

/** RRIP-chain utility monitor for one access stream. */
class UmonRrip
{
  public:
    UmonRrip(std::uint32_t ways, std::uint32_t sampled_sets,
             std::uint64_t modeled_sets, std::uint64_t seed = 0xa31);

    void access(Addr addr);

    /** Cumulative hits for positions 0..w-1, scaled to full cache. */
    std::vector<double> utilityCurve() const;

    /** Interpolated curve, as Umon::interpolatedCurve. */
    std::vector<double> interpolatedCurve(std::uint32_t points) const;

    /** True when BRRIP outperformed SRRIP this interval. */
    bool brripWins() const { return brripHits_ > srripHits_; }

    std::uint64_t srripHits() const { return srripHits_; }
    std::uint64_t brripHits() const { return brripHits_; }
    std::uint64_t misses() const { return misses_; }

    void ageCounters();

  private:
    struct Entry
    {
        Addr addr;
        std::uint8_t rrpv;
    };

    /** One monitor set: entries kept sorted by ascending RRPV. */
    struct MonitorSet
    {
        std::vector<Entry> chain;
    };

    bool setUsesBrrip(std::uint32_t set_idx) const
    {
        return (set_idx & 1) != 0;
    }

    std::uint32_t ways_;
    std::uint32_t sampledSets_;
    std::uint64_t modeledSets_;
    H3Hash hash_;
    Rng rng_;
    std::vector<MonitorSet> sets_;
    std::vector<std::uint64_t> hits_;
    std::uint64_t misses_ = 0;
    std::uint64_t srripHits_ = 0;
    std::uint64_t brripHits_ = 0;
};

} // namespace vantage

#endif // VANTAGE_ALLOC_UMON_RRIP_H_

/**
 * @file
 * The vsim --serve daemon: a long-running simulation accepting
 * batched access streams from concurrent tenant clients over a local
 * TCP socket, speaking the length-prefixed frame protocol in
 * serve/frame.h.
 *
 * The loop is deliberately single-threaded, multiplexing clients
 * with poll(): the order in which events are pulled off the sockets
 * IS the order they are applied to the TenantSim and appended to the
 * journal, so the journal is a faithful serialization of the session
 * by construction and `vsim --replay` reproduces its digest bit for
 * bit. Client interleaving across connections is whatever the kernel
 * delivered — two live runs may differ from each other, but each
 * run's journal always replays to that run's digest.
 *
 * Protocol per client: HELLO joins a tenant (reply: OK + slot),
 * ACCESS_BATCH runs its accesses (reply: OK + hit count), STATS
 * reports the tenant's counters, BYE retires the tenant and closes
 * the connection. A client that disconnects without BYE is retired
 * the same way (the implicit leave is journaled too). SHUTDOWN stops
 * the daemon. Malformed frames get an ERR reply and the connection
 * is dropped; a joined tenant on a dropped connection is retired.
 *
 * QoS: the server times every ACCESS_BATCH into a per-slot latency
 * histogram and, when the sim has a QoS engine attached, feeds the
 * running p99 to it and forwards HELLO-carried latency SLOs. STATS
 * replies carry the extended TenantStats QoS block (batch latency
 * percentiles, SLO violation counts, audit-trail decision count).
 * All of it is observational: journals and digests are unaffected.
 */

#ifndef VANTAGE_SERVE_SERVER_H_
#define VANTAGE_SERVE_SERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/frame.h"
#include "serve/journal.h"
#include "serve/tenant_sim.h"
#include "stats/histogram.h"

namespace vantage {

/** The --serve daemon. Owns the sockets; borrows sim and journal. */
class ServeServer
{
  public:
    /**
     * @param sim      the simulation to drive.
     * @param journal  event journal, or nullptr to skip recording.
     */
    ServeServer(TenantSim &sim, JournalWriter *journal);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Bind and listen on 127.0.0.1:port (port 0 picks an ephemeral
     * port). @return false with `error` set on failure.
     */
    bool start(std::uint16_t port, std::string &error);

    /** The bound port (after start). */
    std::uint16_t port() const { return port_; }

    /**
     * Serve until a SHUTDOWN frame arrives. Remaining clients are
     * closed (and their tenants retired, journaled as leaves) before
     * returning.
     */
    void run();

    /** Sessions served and frames processed (for the smoke test). */
    std::uint64_t framesProcessed() const { return frames_; }

  private:
    struct Client
    {
        int fd = -1;
        std::int32_t slot = -1; ///< -1 until HELLO admits the tenant.
        FrameDecoder decoder;
    };

    void acceptClient();

    /** @return false when the connection must be dropped. */
    bool handleFrame(Client &client, const Frame &frame);

    /** Retires the client's tenant (journaled) and closes its fd. */
    void dropClient(Client &client);

    void sendFrame(int fd, FrameType type,
                   const std::vector<std::uint8_t> &payload);

    TenantSim &sim_;
    JournalWriter *journal_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    bool shutdown_ = false;
    std::uint64_t frames_ = 0;
    std::vector<Client> clients_;
    /** Per-slot ACCESS_BATCH wall latency (ns); reset on slot reuse. */
    std::vector<Histogram> slotLatency_;
};

} // namespace vantage

#endif // VANTAGE_SERVE_SERVER_H_

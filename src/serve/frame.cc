#include "serve/frame.h"

#include <cstring>

namespace vantage {

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(v & 0xff);
    out.push_back((v >> 8) & 0xff);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back((v >> (8 * i)) & 0xff);
    }
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back((v >> (8 * i)) & 0xff);
    }
}

bool
ByteReader::readBytes(void *dst, std::size_t n)
{
    if (remaining() < n) {
        return false;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
}

bool
ByteReader::readU8(std::uint8_t &v)
{
    return readBytes(&v, 1);
}

bool
ByteReader::readU16(std::uint16_t &v)
{
    std::uint8_t b[2];
    if (!readBytes(b, 2)) {
        return false;
    }
    v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return true;
}

bool
ByteReader::readU32(std::uint32_t &v)
{
    std::uint8_t b[4];
    if (!readBytes(b, 4)) {
        return false;
    }
    v = 0;
    for (int i = 3; i >= 0; --i) {
        v = (v << 8) | b[i];
    }
    return true;
}

bool
ByteReader::readU64(std::uint64_t &v)
{
    std::uint8_t b[8];
    if (!readBytes(b, 8)) {
        return false;
    }
    v = 0;
    for (int i = 7; i >= 0; --i) {
        v = (v << 8) | b[i];
    }
    return true;
}

std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> out;
    out.reserve(5 + payload.size());
    putU32(out, static_cast<std::uint32_t>(1 + payload.size()));
    putU8(out, static_cast<std::uint8_t>(type));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void
FrameDecoder::feed(const std::uint8_t *data, std::size_t size)
{
    if (poisoned_) {
        return;
    }
    // Compact once the consumed prefix dominates, so long sessions
    // don't grow the buffer without bound.
    if (start_ > 0 && start_ >= buf_.size() / 2) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(start_));
        start_ = 0;
    }
    buf_.insert(buf_.end(), data, data + size);
}

bool
FrameDecoder::next(Frame &frame, std::string &error)
{
    error.clear();
    if (poisoned_) {
        error = poisonError_;
        return false;
    }
    if (buffered() < 4) {
        return false;
    }
    ByteReader hdr(buf_.data() + start_, 4);
    std::uint32_t length = 0;
    hdr.readU32(length);
    if (length == 0 || length > kMaxFrameBytes) {
        poisoned_ = true;
        poisonError_ = "bad frame length " + std::to_string(length);
        error = poisonError_;
        return false;
    }
    if (buffered() < 4 + static_cast<std::size_t>(length)) {
        return false;
    }
    const std::uint8_t *body = buf_.data() + start_ + 4;
    frame.type = static_cast<FrameType>(body[0]);
    frame.payload.assign(body + 1, body + length);
    start_ += 4 + length;
    return true;
}

std::vector<std::uint8_t>
buildHello(const std::string &name)
{
    std::vector<std::uint8_t> out;
    putU16(out, static_cast<std::uint16_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    return out;
}

std::vector<std::uint8_t>
buildHello(const std::string &name, std::uint32_t latency_slo_us)
{
    std::vector<std::uint8_t> out = buildHello(name);
    putU32(out, latency_slo_us);
    return out;
}

bool
parseHello(const std::vector<std::uint8_t> &payload, std::string &name)
{
    std::uint32_t slo = 0;
    return parseHello(payload, name, slo);
}

bool
parseHello(const std::vector<std::uint8_t> &payload, std::string &name,
           std::uint32_t &latency_slo_us)
{
    ByteReader r(payload.data(), payload.size());
    std::uint16_t len = 0;
    if (!r.readU16(len) || r.remaining() < len) {
        return false;
    }
    name.resize(len);
    if (len != 0 && !r.readBytes(name.data(), len)) {
        return false;
    }
    // Optional trailing QoS block: exactly one u32, or nothing.
    latency_slo_us = 0;
    if (r.remaining() == 0) {
        return true;
    }
    return r.remaining() == 4 && r.readU32(latency_slo_us);
}

std::vector<std::uint8_t>
buildAccessBatch(const std::vector<BatchAccess> &accesses)
{
    std::vector<std::uint8_t> out;
    putU32(out, static_cast<std::uint32_t>(accesses.size()));
    for (const BatchAccess &a : accesses) {
        putU64(out, a.addr);
        putU8(out, static_cast<std::uint8_t>(a.type));
    }
    return out;
}

bool
parseAccessBatch(const std::vector<std::uint8_t> &payload,
                 std::vector<BatchAccess> &accesses)
{
    ByteReader r(payload.data(), payload.size());
    std::uint32_t count = 0;
    if (!r.readU32(count) || r.remaining() != count * 9ull) {
        return false;
    }
    accesses.clear();
    accesses.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        BatchAccess a;
        std::uint8_t type = 0;
        if (!r.readU64(a.addr) || !r.readU8(type) || type > 1) {
            return false;
        }
        a.type = static_cast<AccessType>(type);
        accesses.push_back(a);
    }
    return true;
}

std::vector<std::uint8_t>
buildOkSlot(std::uint16_t slot)
{
    std::vector<std::uint8_t> out;
    putU16(out, slot);
    return out;
}

bool
parseOkSlot(const std::vector<std::uint8_t> &payload,
            std::uint16_t &slot)
{
    ByteReader r(payload.data(), payload.size());
    return r.readU16(slot) && r.remaining() == 0;
}

std::vector<std::uint8_t>
buildOkHits(std::uint32_t hits)
{
    std::vector<std::uint8_t> out;
    putU32(out, hits);
    return out;
}

bool
parseOkHits(const std::vector<std::uint8_t> &payload,
            std::uint32_t &hits)
{
    ByteReader r(payload.data(), payload.size());
    return r.readU32(hits) && r.remaining() == 0;
}

std::vector<std::uint8_t>
buildErr(const std::string &message)
{
    return std::vector<std::uint8_t>(message.begin(), message.end());
}

bool
parseErr(const std::vector<std::uint8_t> &payload, std::string &message)
{
    message.assign(payload.begin(), payload.end());
    return true;
}

std::vector<std::uint8_t>
buildStatsReply(const TenantStats &stats)
{
    std::vector<std::uint8_t> out;
    putU64(out, stats.hits);
    putU64(out, stats.misses);
    putU64(out, stats.targetLines);
    putU64(out, stats.actualLines);
    putU64(out, stats.batches);
    putU64(out, stats.latencyP50Ns);
    putU64(out, stats.latencyP99Ns);
    putU64(out, stats.sloViolations);
    putU64(out, stats.sloActive);
    putU64(out, stats.decisions);
    return out;
}

bool
parseStatsReply(const std::vector<std::uint8_t> &payload,
                TenantStats &stats)
{
    ByteReader r(payload.data(), payload.size());
    if (!r.readU64(stats.hits) || !r.readU64(stats.misses) ||
        !r.readU64(stats.targetLines) ||
        !r.readU64(stats.actualLines)) {
        return false;
    }
    // Optional QoS block: all six fields, or none (legacy replies).
    if (r.remaining() == 0) {
        stats.batches = 0;
        stats.latencyP50Ns = 0;
        stats.latencyP99Ns = 0;
        stats.sloViolations = 0;
        stats.sloActive = 0;
        stats.decisions = 0;
        return true;
    }
    return r.readU64(stats.batches) && r.readU64(stats.latencyP50Ns) &&
           r.readU64(stats.latencyP99Ns) &&
           r.readU64(stats.sloViolations) &&
           r.readU64(stats.sloActive) && r.readU64(stats.decisions) &&
           r.remaining() == 0;
}

} // namespace vantage

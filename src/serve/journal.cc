#include "serve/journal.h"

#include <cstring>

#include "common/log.h"
#include "serve/frame.h"

namespace vantage {

namespace {

constexpr char kMagic[4] = {'V', 'S', 'R', 'J'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t
doubleBits(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::vector<std::uint8_t>
encodeHeader(const JournalHeader &hdr)
{
    std::vector<std::uint8_t> out;
    out.insert(out.end(), kMagic, kMagic + 4);
    putU32(out, kVersion);
    putU8(out, static_cast<std::uint8_t>(hdr.spec.scheme));
    putU8(out, static_cast<std::uint8_t>(hdr.spec.array));
    putU64(out, hdr.spec.lines);
    putU32(out, hdr.maxTenants);
    putU64(out, hdr.spec.seed);
    putU64(out, hdr.epochAccesses);
    putU8(out, hdr.useUcp ? 1 : 0);
    putU64(out, doubleBits(hdr.spec.vantage.unmanagedFraction));
    putU64(out, doubleBits(hdr.spec.vantage.maxAperture));
    putU64(out, doubleBits(hdr.spec.vantage.slack));
    putU32(out, hdr.spec.vantage.candsPerAdjust);
    putU32(out, hdr.spec.vantage.thresholdEntries);
    putU8(out, hdr.spec.vantage.throttleHighChurn ? 1 : 0);
    return out;
}

bool
decodeHeader(ByteReader &r, JournalHeader &hdr, std::string &error)
{
    char magic[4];
    std::uint32_t version = 0;
    if (!r.readBytes(magic, 4) ||
        std::memcmp(magic, kMagic, 4) != 0) {
        error = "not a vsim serve journal (bad magic)";
        return false;
    }
    if (!r.readU32(version) || version != kVersion) {
        error = "unsupported journal version";
        return false;
    }
    std::uint8_t scheme = 0;
    std::uint8_t array = 0;
    std::uint8_t use_ucp = 0;
    std::uint8_t throttle = 0;
    std::uint64_t unmanaged = 0;
    std::uint64_t amax = 0;
    std::uint64_t slack = 0;
    if (!r.readU8(scheme) || !r.readU8(array) ||
        !r.readU64(hdr.spec.lines) || !r.readU32(hdr.maxTenants) ||
        !r.readU64(hdr.spec.seed) || !r.readU64(hdr.epochAccesses) ||
        !r.readU8(use_ucp) || !r.readU64(unmanaged) ||
        !r.readU64(amax) || !r.readU64(slack) ||
        !r.readU32(hdr.spec.vantage.candsPerAdjust) ||
        !r.readU32(hdr.spec.vantage.thresholdEntries) ||
        !r.readU8(throttle)) {
        error = "truncated journal header";
        return false;
    }
    hdr.spec.scheme = static_cast<SchemeKind>(scheme);
    hdr.spec.array = static_cast<ArrayKind>(array);
    hdr.spec.numPartitions = hdr.maxTenants;
    hdr.spec.vantage.numPartitions = hdr.maxTenants;
    hdr.useUcp = use_ucp != 0;
    hdr.spec.vantage.unmanagedFraction = bitsDouble(unmanaged);
    hdr.spec.vantage.maxAperture = bitsDouble(amax);
    hdr.spec.vantage.slack = bitsDouble(slack);
    hdr.spec.vantage.throttleHighChurn = throttle != 0;
    if (hdr.maxTenants == 0 || hdr.maxTenants > 0xffff) {
        error = "journal header: bad tenant capacity";
        return false;
    }
    return true;
}

} // namespace

JournalWriter::JournalWriter(const std::string &path,
                             const JournalHeader &hdr)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) {
        fatal("cannot open journal '%s' for writing", path.c_str());
    }
    const std::vector<std::uint8_t> header = encodeHeader(hdr);
    writeBytes(header.data(), header.size());
}

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::writeBytes(const void *data, std::size_t n)
{
    if (std::fwrite(data, 1, n, file_) != n) {
        fatal("short write to journal '%s'", path_.c_str());
    }
}

void
JournalWriter::recordJoin(std::uint16_t slot, const std::string &name)
{
    std::vector<std::uint8_t> rec;
    putU8(rec, static_cast<std::uint8_t>(JournalEvent::Join));
    putU16(rec, slot);
    putU16(rec, static_cast<std::uint16_t>(name.size()));
    rec.insert(rec.end(), name.begin(), name.end());
    writeBytes(rec.data(), rec.size());
}

void
JournalWriter::recordLeave(std::uint16_t slot)
{
    std::vector<std::uint8_t> rec;
    putU8(rec, static_cast<std::uint8_t>(JournalEvent::Leave));
    putU16(rec, slot);
    writeBytes(rec.data(), rec.size());
}

void
JournalWriter::recordAccess(std::uint16_t slot, AccessType type,
                            Addr addr)
{
    std::uint8_t rec[1 + 2 + 1 + 8];
    rec[0] = static_cast<std::uint8_t>(JournalEvent::Access);
    rec[1] = slot & 0xff;
    rec[2] = (slot >> 8) & 0xff;
    rec[3] = static_cast<std::uint8_t>(type);
    for (int i = 0; i < 8; ++i) {
        rec[4 + i] = (addr >> (8 * i)) & 0xff;
    }
    writeBytes(rec, sizeof(rec));
}

void
JournalWriter::close()
{
    if (file_ != nullptr) {
        if (std::fclose(file_) != 0) {
            warn("error closing journal '%s'", path_.c_str());
        }
        file_ = nullptr;
    }
}

bool
JournalReader::load(const std::string &path, std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        error = "cannot open journal '" + path + "'";
        return false;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[64 * 1024];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
        bytes.insert(bytes.end(), chunk, chunk + n);
    }
    std::fclose(f);

    ByteReader r(bytes.data(), bytes.size());
    if (!decodeHeader(r, header_, error)) {
        return false;
    }
    records_.clear();
    while (r.remaining() > 0) {
        std::uint8_t type = 0;
        r.readU8(type);
        JournalRecord rec;
        switch (static_cast<JournalEvent>(type)) {
          case JournalEvent::Join: {
            rec.event = JournalEvent::Join;
            std::uint16_t len = 0;
            if (!r.readU16(rec.slot) || !r.readU16(len)) {
                error = "truncated JOIN record";
                return false;
            }
            rec.name.resize(len);
            if (len > 0 && !r.readBytes(&rec.name[0], len)) {
                error = "truncated JOIN name";
                return false;
            }
            break;
          }
          case JournalEvent::Leave:
            rec.event = JournalEvent::Leave;
            if (!r.readU16(rec.slot)) {
                error = "truncated LEAVE record";
                return false;
            }
            break;
          case JournalEvent::Access: {
            rec.event = JournalEvent::Access;
            std::uint8_t at = 0;
            if (!r.readU16(rec.slot) || !r.readU8(at) ||
                !r.readU64(rec.addr) || at > 1) {
                error = "truncated ACCESS record";
                return false;
            }
            rec.type = static_cast<AccessType>(at);
            break;
          }
          default:
            error = "unknown journal record type " +
                    std::to_string(type);
            return false;
        }
        if (rec.slot >= header_.maxTenants) {
            error = "journal record slot out of range";
            return false;
        }
        records_.push_back(std::move(rec));
    }
    return true;
}

} // namespace vantage

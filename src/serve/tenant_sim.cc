#include "serve/tenant_sim.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "obs/audit.h"
#include "obs/qos.h"
#include "stats/registry.h"
#include "stats/snapshot.h"

namespace vantage {

TenantSim::TenantSim(const JournalHeader &cfg)
    : maxTenants_(cfg.maxTenants), epochAccesses_(cfg.epochAccesses)
{
    vantage_assert(maxTenants_ >= 1, "need at least one tenant slot");
    L2Spec spec = cfg.spec;
    spec.numPartitions = maxTenants_;
    spec.vantage.numPartitions = maxTenants_;
    l2_ = std::make_unique<MonoL2>(buildL2(spec));

    if (cfg.useUcp) {
        UcpConfig ucfg;
        ucfg.rripMonitors = l2_->wantsBrrip();
        ucp_ = std::make_unique<Ucp>(maxTenants_, ucfg);
    }

    // Empty daemon: every slot retired, every monitor detached. The
    // digest attaches afterwards, so it covers exactly the journaled
    // event stream — live session and replay start from this same
    // state.
    names_.resize(maxTenants_);
    for (std::uint32_t s = 0; s < maxTenants_; ++s) {
        l2_->destroyPartition(static_cast<PartId>(s));
        if (ucp_) {
            ucp_->detachMonitor(static_cast<PartId>(s));
        }
    }
    l2_->attachDigest(&digest_);
}

TenantSim::~TenantSim() = default;

std::int32_t
TenantSim::join(const std::string &name)
{
    // Prefer a slot whose previous occupant has fully drained, so
    // tenants rarely inherit residue; fall back to the least-recently
    // numbered retired slot otherwise. Deterministic either way.
    std::int32_t fallback = -1;
    for (std::uint32_t s = 0; s < maxTenants_; ++s) {
        if (l2_->partitionActive(static_cast<PartId>(s))) {
            continue;
        }
        if (l2_->actualSize(static_cast<PartId>(s)) == 0) {
            activate(static_cast<std::uint16_t>(s), name);
            return static_cast<std::int32_t>(s);
        }
        if (fallback < 0) {
            fallback = static_cast<std::int32_t>(s);
        }
    }
    if (fallback >= 0) {
        activate(static_cast<std::uint16_t>(fallback), name);
    }
    return fallback;
}

void
TenantSim::joinAt(std::uint16_t slot, const std::string &name)
{
    vantage_assert(slot < maxTenants_, "slot %u out of range", slot);
    vantage_assert(!l2_->partitionActive(slot),
                   "replay JOIN into occupied slot %u", slot);
    activate(slot, name);
}

void
TenantSim::activate(std::uint16_t slot, const std::string &name)
{
    l2_->createPartition(slot);
    if (ucp_) {
        ucp_->attachMonitor(slot);
    }
    names_[slot] = name;
    ++activeCount_;
    rebalance();
}

void
TenantSim::leave(std::uint16_t slot)
{
    vantage_assert(slot < maxTenants_, "slot %u out of range", slot);
    vantage_assert(l2_->partitionActive(slot),
                   "LEAVE from inactive slot %u", slot);
    l2_->destroyPartition(slot);
    if (ucp_) {
        ucp_->detachMonitor(slot);
    }
    names_[slot].clear();
    --activeCount_;
    rebalance();
}

bool
TenantSim::slotActive(std::uint16_t slot) const
{
    return slot < maxTenants_ && l2_->partitionActive(slot);
}

void
TenantSim::rebalance()
{
    // Equal split of the quantum over the active slots, remainder to
    // the lowest active slot; retired slots get zero so their lines
    // drain. UCP refines this at the next epoch boundary.
    std::vector<std::uint32_t> units(maxTenants_, 0);
    if (activeCount_ == 0) {
        l2_->setAllocations(units);
        return;
    }
    const std::uint32_t quantum = l2_->allocationQuantum();
    const std::uint32_t share = quantum / activeCount_;
    std::uint32_t remainder = quantum % activeCount_;
    for (std::uint32_t s = 0; s < maxTenants_; ++s) {
        if (!l2_->partitionActive(static_cast<PartId>(s))) {
            continue;
        }
        units[s] = share + (remainder > 0 ? 1 : 0);
        if (remainder > 0) {
            --remainder;
        }
    }
    l2_->setAllocations(units);
}

AccessResult
TenantSim::access(std::uint16_t slot, Addr addr, AccessType type)
{
    vantage_assert(slotActive(slot),
                   "access for inactive tenant slot %u", slot);
    const AccessResult result = l2_->access(addr, slot, type);
    if (ucp_) {
        ucp_->observe(slot, addr);
    }
    ++accesses_;
    if (epochAccesses_ != 0 && accesses_ % epochAccesses_ == 0) {
        repartition();
        stepQos();
    }
    return result;
}

void
TenantSim::attachAudit(DecisionAudit *audit)
{
    audit_ = audit;
    Cache *const mono = l2_->monoCache();
    if (mono != nullptr) {
        mono->scheme().attachAudit(audit);
    }
}

void
TenantSim::attachQos(QosEngine *qos, StatsRegistry *reg)
{
    qos_ = (reg != nullptr) ? qos : nullptr;
    qosReg_ = reg;
}

void
TenantSim::stepQos()
{
    if (qos_ == nullptr) {
        return;
    }
    // The epoch index and clock are both derived from the access
    // count, so live serve sessions and journal replays evaluate the
    // exact same sequence of QoS epochs.
    ++qosEpoch_;
    qos_->step(takeSnapshot(*qosReg_, qosEpoch_,
                            static_cast<double>(accesses_)));
}

void
TenantSim::registerLiveStats(StatsRegistry &reg) const
{
    l2_->registerLiveIntrospection(reg);
    if (ucp_) {
        ucp_->registerIntrospection(reg, "umon");
    }
    reg.addCounter("serve.accesses", &accesses_);
    reg.addGauge("serve.active_tenants", [this] {
        return static_cast<double>(activeCount_);
    });
    reg.addGauge("serve.max_tenants", [this] {
        return static_cast<double>(maxTenants_);
    });
}

void
TenantSim::repartition()
{
    if (!ucp_ || activeCount_ == 0) {
        return;
    }
    const std::uint32_t quantum = l2_->allocationQuantum();
    if (quantum < maxTenants_) {
        // Unpartitioned baselines: nothing to allocate.
        ucp_->nextInterval();
        return;
    }
    l2_->setAllocations(ucp_->computeAllocations(quantum, 1));
    if (l2_->wantsBrrip()) {
        l2_->applyBrrip(ucp_->brripChoices());
    }
    ucp_->nextInterval();
}

TenantSlotInfo
TenantSim::slotInfo(std::uint16_t slot) const
{
    vantage_assert(slot < maxTenants_, "slot %u out of range", slot);
    TenantSlotInfo info;
    info.active = l2_->partitionActive(slot);
    info.name = names_[slot];
    const CacheAccessStats stats = l2_->partAccessStats(slot);
    info.hits = stats.hits;
    info.misses = stats.misses;
    info.targetLines = l2_->targetSize(slot);
    info.actualLines = l2_->actualSize(slot);
    return info;
}

std::uint64_t
TenantSim::finishDigest()
{
    if (!digestDone_) {
        l2_->finalizeDigest();
        digestDone_ = true;
    }
    return digest_.value();
}

void
TenantSim::checkInvariants(InvariantReport &rep) const
{
    l2_->checkInvariants(rep);
    if (ucp_) {
        ucp_->checkInvariants(rep);
    }
    // The L2's active flags and our tenant registry must agree.
    std::uint32_t active = 0;
    for (std::uint32_t s = 0; s < maxTenants_; ++s) {
        if (l2_->partitionActive(static_cast<PartId>(s))) {
            ++active;
            if (ucp_) {
                rep.expect(ucp_->monitorActive(s),
                           "tenant_sim: slot %u active but monitor "
                           "detached",
                           s);
            }
        } else {
            rep.expect(names_[s].empty(),
                       "tenant_sim: retired slot %u still has tenant "
                       "'%s'",
                       s, names_[s].c_str());
            if (ucp_) {
                rep.expect(!ucp_->monitorActive(s),
                           "tenant_sim: slot %u retired but monitor "
                           "attached",
                           s);
            }
        }
    }
    rep.expect(active == activeCount_,
               "tenant_sim: %u active slots, registry says %u", active,
               activeCount_);
}

std::uint64_t
replayJournal(const JournalReader &reader)
{
    TenantSim sim(reader.header());
    for (const JournalRecord &rec : reader.records()) {
        switch (rec.event) {
          case JournalEvent::Join:
            sim.joinAt(rec.slot, rec.name);
            break;
          case JournalEvent::Leave:
            sim.leave(rec.slot);
            break;
          case JournalEvent::Access:
            sim.access(rec.slot, rec.addr, rec.type);
            break;
        }
    }
    return sim.finishDigest();
}

std::uint64_t
runLifecycleScenario(const JournalHeader &cfg, std::uint64_t accesses,
                     JournalWriter *journal)
{
    TenantSim sim(cfg);
    return runLifecycleScenario(sim, cfg, accesses, journal);
}

std::uint64_t
runLifecycleScenario(TenantSim &sim, const JournalHeader &cfg,
                     std::uint64_t accesses, JournalWriter *journal)
{
    Rng rng(cfg.spec.seed ^ 0x11f3c7c1ull);

    std::uint32_t tenant_counter = 0;
    const auto join_one = [&] {
        const std::string name =
            "tenant" + std::to_string(tenant_counter++);
        const std::int32_t slot = sim.join(name);
        if (slot >= 0 && journal != nullptr) {
            journal->recordJoin(static_cast<std::uint16_t>(slot),
                                name);
        }
        return slot;
    };

    // Two tenants up front — the scenario always exercises
    // concurrent occupancy — then seeded join/leave churn mid-run.
    join_one();
    if (cfg.maxTenants > 1) {
        join_one();
    }

    const std::uint64_t event_every =
        std::max<std::uint64_t>(500, accesses / 24);
    std::uint64_t cold_counter = 0;

    for (std::uint64_t i = 0; i < accesses; ++i) {
        if (i > 0 && i % event_every == 0) {
            const std::uint64_t r = rng.range(4);
            if (r == 0 && sim.activeTenants() < sim.maxTenants()) {
                join_one();
            } else if (r != 0 && sim.activeTenants() > 1) {
                // Leave a seeded choice among the active slots.
                std::vector<std::uint16_t> active;
                for (std::uint32_t s = 0; s < sim.maxTenants(); ++s) {
                    const auto slot =
                        static_cast<std::uint16_t>(s);
                    if (sim.slotActive(slot)) {
                        active.push_back(slot);
                    }
                }
                const std::uint16_t victim =
                    active[rng.range(active.size())];
                if (journal != nullptr) {
                    journal->recordLeave(victim);
                }
                sim.leave(victim);
            }
        }

        // Pick an accessor among the active slots, then an address
        // from its private hot set, a shared region, or a cold scan.
        std::vector<std::uint16_t> active;
        for (std::uint32_t s = 0; s < sim.maxTenants(); ++s) {
            const auto slot = static_cast<std::uint16_t>(s);
            if (sim.slotActive(slot)) {
                active.push_back(slot);
            }
        }
        const std::uint16_t slot = active[rng.range(active.size())];
        const std::uint64_t kind = rng.range(10);
        Addr addr;
        if (kind < 7) {
            addr = (static_cast<Addr>(slot) + 1) * 0x10000000ull +
                   rng.range(4096);
        } else if (kind < 9) {
            addr = 0x900000000ull + rng.range(2048);
        } else {
            addr = 0xdead0000000ull + cold_counter++;
        }
        const AccessType type = rng.range(4) == 0 ? AccessType::Store
                                                  : AccessType::Load;
        if (journal != nullptr) {
            journal->recordAccess(slot, type, addr);
        }
        sim.access(slot, addr, type);
    }

    InvariantReport rep;
    sim.checkInvariants(rep);
    if (!rep.ok()) {
        panic("lifecycle scenario failed invariants:\n%s",
              rep.summary().c_str());
    }
    return sim.finishDigest();
}

} // namespace vantage

/**
 * @file
 * Serve-session journal: the record/replay half of the differential
 * harness.
 *
 * The serve loop appends every event it processes — tenant joins and
 * leaves as well as each access — in processing order, preceded by a
 * self-contained header carrying the full simulation configuration.
 * `vsim --replay <file>` rebuilds the simulation from the header
 * alone (no other flags needed) and re-executes the event stream;
 * because the simulation is a deterministic function of that stream,
 * the replay reproduces the live session's outcome digest bit for
 * bit. Lifecycle events fold their own digest marker words (see
 * Cache::createPartition), so the digest covers the whole stream,
 * not just the accesses.
 *
 * Binary format (all integers little-endian):
 *
 *   "VSRJ" | u32 version | config fields (see JournalHeader)
 *   then records until EOF:
 *     u8 1 (JOIN)   | u16 slot | u16 nameLen | name bytes
 *     u8 2 (LEAVE)  | u16 slot
 *     u8 3 (ACCESS) | u16 slot | u8 access type | u64 addr
 */

#ifndef VANTAGE_SERVE_JOURNAL_H_
#define VANTAGE_SERVE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"

namespace vantage {

/** Journal record kinds. */
enum class JournalEvent : std::uint8_t {
    Join = 1,
    Leave = 2,
    Access = 3,
};

/** The configuration a journal carries; enough to rebuild the sim. */
struct JournalHeader
{
    L2Spec spec;
    std::uint32_t maxTenants = 0;
    std::uint64_t epochAccesses = 0;
    bool useUcp = true;
};

/** Streaming journal writer (stdio-buffered). */
class JournalWriter
{
  public:
    /** Opens `path` and writes the header; fatal() on I/O error. */
    JournalWriter(const std::string &path, const JournalHeader &hdr);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    void recordJoin(std::uint16_t slot, const std::string &name);
    void recordLeave(std::uint16_t slot);
    void recordAccess(std::uint16_t slot, AccessType type, Addr addr);

    /** Flush and close; implicit in the destructor. */
    void close();

  private:
    void writeBytes(const void *data, std::size_t n);

    std::FILE *file_ = nullptr;
    std::string path_;
};

/** One parsed journal record. */
struct JournalRecord
{
    JournalEvent event = JournalEvent::Access;
    std::uint16_t slot = 0;
    std::string name;              ///< JOIN only.
    AccessType type = AccessType::Load; ///< ACCESS only.
    Addr addr = 0;                 ///< ACCESS only.
};

/**
 * Whole-file journal reader. load() parses the header and validates
 * the record stream up front, so replay never starts on a journal it
 * cannot finish.
 */
class JournalReader
{
  public:
    /** @return false with `error` set on any I/O or format problem. */
    bool load(const std::string &path, std::string &error);

    const JournalHeader &header() const { return header_; }
    const std::vector<JournalRecord> &records() const
    {
        return records_;
    }

  private:
    JournalHeader header_;
    std::vector<JournalRecord> records_;
};

} // namespace vantage

#endif // VANTAGE_SERVE_JOURNAL_H_

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/log.h"
#include "obs/audit.h"
#include "obs/qos.h"

namespace vantage {

ServeServer::ServeServer(TenantSim &sim, JournalWriter *journal)
    : sim_(sim), journal_(journal)
{
    slotLatency_.resize(sim.maxTenants());
}

ServeServer::~ServeServer()
{
    for (Client &client : clients_) {
        if (client.fd >= 0) {
            ::close(client.fd);
        }
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
    }
}

bool
ServeServer::start(std::uint16_t port, std::string &error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 16) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }

    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0) {
        port_ = ntohs(bound.sin_port);
    }
    listenFd_ = fd;
    return true;
}

void
ServeServer::sendFrame(int fd, FrameType type,
                       const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> wire = encodeFrame(type, payload);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            return; // Client gone; its read side will clean up.
        }
        sent += static_cast<std::size_t>(n);
    }
}

void
ServeServer::acceptClient()
{
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
        return;
    }
    Client client;
    client.fd = fd;
    clients_.push_back(std::move(client));
}

void
ServeServer::dropClient(Client &client)
{
    if (client.slot >= 0) {
        const auto slot = static_cast<std::uint16_t>(client.slot);
        if (journal_ != nullptr) {
            journal_->recordLeave(slot);
        }
        sim_.leave(slot);
        if (sim_.qos() != nullptr) {
            // Stop evaluating the departed tenant's latency sample
            // against whatever SLO the slot's next occupant sets.
            sim_.qos()->recordLatency(slot, -1.0);
        }
        client.slot = -1;
    }
    if (client.fd >= 0) {
        ::close(client.fd);
        client.fd = -1;
    }
}

bool
ServeServer::handleFrame(Client &client, const Frame &frame)
{
    ++frames_;
    switch (frame.type) {
      case FrameType::Hello: {
        std::string name;
        std::uint32_t latency_slo_us = 0;
        if (!parseHello(frame.payload, name, latency_slo_us)) {
            sendFrame(client.fd, FrameType::Err,
                      buildErr("malformed HELLO"));
            return false;
        }
        if (client.slot >= 0) {
            sendFrame(client.fd, FrameType::Err,
                      buildErr("tenant already joined"));
            return false;
        }
        const std::int32_t slot = sim_.join(name);
        if (slot < 0) {
            sendFrame(client.fd, FrameType::Err,
                      buildErr("server full"));
            return false;
        }
        if (journal_ != nullptr) {
            // The SLO is serve-side config, deliberately not
            // journaled: replay digests stay independent of it.
            journal_->recordJoin(static_cast<std::uint16_t>(slot),
                                 name);
        }
        client.slot = slot;
        slotLatency_[static_cast<std::size_t>(slot)].reset();
        if (sim_.qos() != nullptr) {
            // 0 clears any SLO left by the slot's previous occupant.
            sim_.qos()->setLatencySlo(
                static_cast<std::uint32_t>(slot),
                static_cast<double>(latency_slo_us));
        }
        sendFrame(client.fd, FrameType::Ok,
                  buildOkSlot(static_cast<std::uint16_t>(slot)));
        return true;
      }
      case FrameType::AccessBatch: {
        if (client.slot < 0) {
            sendFrame(client.fd, FrameType::Err,
                      buildErr("ACCESS_BATCH before HELLO"));
            return false;
        }
        std::vector<BatchAccess> batch;
        if (!parseAccessBatch(frame.payload, batch)) {
            sendFrame(client.fd, FrameType::Err,
                      buildErr("malformed ACCESS_BATCH"));
            return false;
        }
        const auto slot = static_cast<std::uint16_t>(client.slot);
        const auto t0 = std::chrono::steady_clock::now();
        std::uint32_t hits = 0;
        for (const BatchAccess &a : batch) {
            if (journal_ != nullptr) {
                journal_->recordAccess(slot, a.type, a.addr);
            }
            if (sim_.access(slot, a.addr, a.type) ==
                AccessResult::Hit) {
                ++hits;
            }
        }
        const auto dt = std::chrono::steady_clock::now() - t0;
        Histogram &hist = slotLatency_[slot];
        hist.add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()));
        if (sim_.qos() != nullptr) {
            sim_.qos()->recordLatency(slot,
                                      hist.quantile(0.99) / 1000.0);
        }
        sendFrame(client.fd, FrameType::Ok, buildOkHits(hits));
        return true;
      }
      case FrameType::Stats: {
        if (client.slot < 0) {
            sendFrame(client.fd, FrameType::Err,
                      buildErr("STATS before HELLO"));
            return false;
        }
        const auto slot = static_cast<std::uint16_t>(client.slot);
        const TenantSlotInfo info = sim_.slotInfo(slot);
        TenantStats stats;
        stats.hits = info.hits;
        stats.misses = info.misses;
        stats.targetLines = info.targetLines;
        stats.actualLines = info.actualLines;
        const Histogram &hist = slotLatency_[slot];
        stats.batches = hist.count();
        if (hist.count() > 0) {
            stats.latencyP50Ns = static_cast<std::uint64_t>(
                std::llround(hist.quantile(0.50)));
            stats.latencyP99Ns = static_cast<std::uint64_t>(
                std::llround(hist.quantile(0.99)));
        }
        if (sim_.qos() != nullptr) {
            stats.sloViolations = sim_.qos()->totalForPart(slot);
            stats.sloActive = sim_.qos()->activeForPart(slot);
        }
        if (sim_.audit() != nullptr) {
            stats.decisions = sim_.audit()->totalForPart(slot);
        }
        sendFrame(client.fd, FrameType::StatsReply,
                  buildStatsReply(stats));
        return true;
      }
      case FrameType::Bye:
        sendFrame(client.fd, FrameType::Ok, {});
        return false; // dropClient journals the leave.
      case FrameType::Shutdown:
        sendFrame(client.fd, FrameType::Ok, {});
        shutdown_ = true;
        return true;
      default:
        sendFrame(client.fd, FrameType::Err,
                  buildErr("unknown frame type"));
        return false;
    }
}

void
ServeServer::run()
{
    std::uint8_t buf[64 * 1024];
    while (!shutdown_) {
        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        for (const Client &client : clients_) {
            fds.push_back({client.fd, POLLIN, 0});
        }
        const int ready = ::poll(fds.data(), fds.size(), -1);
        if (ready < 0) {
            if (errno == EINTR) {
                continue;
            }
            warn("serve: poll failed: %s", std::strerror(errno));
            break;
        }

        if ((fds[0].revents & POLLIN) != 0) {
            acceptClient();
        }

        // fds[i + 1] corresponds to clients_[i] as polled; clients
        // are only removed after the scan, so indices stay aligned.
        for (std::size_t i = 0; i < clients_.size() && !shutdown_;
             ++i) {
            if (i + 1 >= fds.size() ||
                (fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) ==
                    0) {
                continue;
            }
            Client &client = clients_[i];
            const ssize_t n = ::recv(client.fd, buf, sizeof(buf), 0);
            if (n <= 0) {
                dropClient(client);
                continue;
            }
            client.decoder.feed(buf, static_cast<std::size_t>(n));
            Frame frame;
            std::string error;
            bool keep = true;
            while (keep && !shutdown_ &&
                   client.decoder.next(frame, error)) {
                keep = handleFrame(client, frame);
            }
            if (!error.empty()) {
                sendFrame(client.fd, FrameType::Err, buildErr(error));
                keep = false;
            }
            if (!keep) {
                dropClient(client);
            }
        }

        // Compact closed connections.
        std::vector<Client> live;
        live.reserve(clients_.size());
        for (Client &client : clients_) {
            if (client.fd >= 0) {
                live.push_back(std::move(client));
            }
        }
        clients_ = std::move(live);
    }

    // Retire whatever is still connected so the session ends with
    // every leave journaled.
    for (Client &client : clients_) {
        dropClient(client);
    }
    clients_.clear();
}

} // namespace vantage

/**
 * @file
 * Wire protocol for vsim --serve: length-prefixed binary frames over
 * a local TCP socket.
 *
 * Every frame is
 *
 *     u32 length (LE, covers type + payload) | u8 type | payload
 *
 * Client -> server types: HELLO (tenant name), ACCESS_BATCH (u32
 * count, then count x {u64 addr, u8 access type}), STATS, BYE and
 * SHUTDOWN (stop the daemon). Server -> client: OK (payload depends
 * on the request), ERR (human-readable message) and STATS_REPLY.
 *
 * Encode/decode are pure functions over byte buffers — no sockets —
 * so the framing layer is unit-testable byte for byte, and the
 * incremental FrameDecoder handles arbitrary TCP segmentation.
 * Frames above kMaxFrameBytes or with a zero length are rejected as
 * malformed rather than trusted as allocation sizes.
 */

#ifndef VANTAGE_SERVE_FRAME_H_
#define VANTAGE_SERVE_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace vantage {

/** Frame type ids (u8 on the wire). */
enum class FrameType : std::uint8_t {
    Hello = 1,
    AccessBatch = 2,
    Stats = 3,
    Bye = 4,
    Shutdown = 5,
    Ok = 0x80,
    Err = 0x81,
    StatsReply = 0x82,
};

/** Upper bound on one frame's (type + payload) size. */
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Err;
    std::vector<std::uint8_t> payload;
};

/** One access inside an ACCESS_BATCH. */
struct BatchAccess
{
    Addr addr = 0;
    AccessType type = AccessType::Load;
};

// ----------------------------------------------------------------------
// Little-endian payload primitives (shared with the journal codec).

void putU8(std::vector<std::uint8_t> &out, std::uint8_t v);
void putU16(std::vector<std::uint8_t> &out, std::uint16_t v);
void putU32(std::vector<std::uint8_t> &out, std::uint32_t v);
void putU64(std::vector<std::uint8_t> &out, std::uint64_t v);

/** Bounds-checked little-endian reader over a byte range. */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool readU8(std::uint8_t &v);
    bool readU16(std::uint16_t &v);
    bool readU32(std::uint32_t &v);
    bool readU64(std::uint64_t &v);
    bool readBytes(void *dst, std::size_t n);

    std::size_t remaining() const { return size_ - pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ----------------------------------------------------------------------
// Frame encode/decode.

/** Wire bytes for one frame: length prefix + type + payload. */
std::vector<std::uint8_t>
encodeFrame(FrameType type, const std::vector<std::uint8_t> &payload);

/**
 * Incremental frame decoder: feed() raw socket bytes in any
 * segmentation; next() yields complete frames in order. A malformed
 * length (zero, or above kMaxFrameBytes) poisons the stream: next()
 * reports the error and the connection must be dropped.
 */
class FrameDecoder
{
  public:
    void feed(const std::uint8_t *data, std::size_t size);

    /**
     * @return true when a complete frame was extracted into `frame`.
     * false with empty `error` means "need more bytes"; false with a
     * non-empty `error` means the stream is malformed.
     */
    bool next(Frame &frame, std::string &error);

    /** Buffered, not-yet-consumed byte count (for tests). */
    std::size_t buffered() const { return buf_.size() - start_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t start_ = 0;
    bool poisoned_ = false;
    std::string poisonError_;
};

// ----------------------------------------------------------------------
// Typed payload builders / parsers. Parsers return false on any
// truncation or trailing garbage.

std::vector<std::uint8_t> buildHello(const std::string &name);

/**
 * HELLO with a per-tenant QoS target appended: a trailing u32 p99
 * frame-latency SLO in microseconds (0 = none). Legacy HELLOs (no
 * trailing block) parse with an SLO of 0. The QoS block is serve-side
 * configuration, never journaled — replay digests are independent of
 * tenants' SLOs.
 */
std::vector<std::uint8_t> buildHello(const std::string &name,
                                     std::uint32_t latency_slo_us);
bool parseHello(const std::vector<std::uint8_t> &payload,
                std::string &name);
bool parseHello(const std::vector<std::uint8_t> &payload,
                std::string &name, std::uint32_t &latency_slo_us);

std::vector<std::uint8_t>
buildAccessBatch(const std::vector<BatchAccess> &accesses);
bool parseAccessBatch(const std::vector<std::uint8_t> &payload,
                      std::vector<BatchAccess> &accesses);

/** OK reply to HELLO: the assigned partition slot. */
std::vector<std::uint8_t> buildOkSlot(std::uint16_t slot);
bool parseOkSlot(const std::vector<std::uint8_t> &payload,
                 std::uint16_t &slot);

/** OK reply to ACCESS_BATCH: hits observed in the batch. */
std::vector<std::uint8_t> buildOkHits(std::uint32_t hits);
bool parseOkHits(const std::vector<std::uint8_t> &payload,
                 std::uint32_t &hits);

std::vector<std::uint8_t> buildErr(const std::string &message);
bool parseErr(const std::vector<std::uint8_t> &payload,
              std::string &message);

/**
 * STATS_REPLY: the requesting tenant's counters and sizes, plus the
 * QoS block (frame latency percentiles, SLO violation counts, and
 * the number of controller decisions recorded about the tenant's
 * partition). Legacy replies without the QoS block parse with those
 * fields zero.
 */
struct TenantStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t targetLines = 0;
    std::uint64_t actualLines = 0;
    // QoS block.
    std::uint64_t batches = 0;        ///< ACCESS_BATCH frames served.
    std::uint64_t latencyP50Ns = 0;   ///< Median batch latency.
    std::uint64_t latencyP99Ns = 0;   ///< p99 batch latency.
    std::uint64_t sloViolations = 0;  ///< Raise events, this slot.
    std::uint64_t sloActive = 0;      ///< Currently-active violations.
    std::uint64_t decisions = 0;      ///< Audit records, this slot.
};

std::vector<std::uint8_t> buildStatsReply(const TenantStats &stats);
bool parseStatsReply(const std::vector<std::uint8_t> &payload,
                     TenantStats &stats);

} // namespace vantage

#endif // VANTAGE_SERVE_FRAME_H_

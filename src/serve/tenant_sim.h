/**
 * @file
 * TenantSim: the deterministic multi-tenant simulation core behind
 * `vsim --serve`, `--replay` and `--lifecycle`.
 *
 * A TenantSim owns a shared L2 whose scheme is built with a fixed
 * slot capacity (maxTenants partitions) and a UCP instance with one
 * monitor per slot. All slots start retired and all monitors
 * detached; a tenant join activates the lowest suitable slot
 * (preferring fully drained ones) and attaches its monitor, a leave
 * retires it so its lines drain through the scheme's churn
 * mechanism (Vantage: Sec. 3.4 deletion at full aperture).
 *
 * Epochs are counted in accesses — a pure function of the event
 * stream — and each epoch boundary runs the UCP control loop over
 * the attached monitors. Joins and leaves rebalance immediately to
 * an equal split so a new tenant has capacity before its first
 * epoch. Because every state transition is driven only by the
 * ordered event stream (join/leave/access), feeding the same stream
 * — live from sockets or replayed from a journal — reproduces the
 * same outcome digest bit for bit. See DESIGN.md §13.
 */

#ifndef VANTAGE_SERVE_TENANT_SIM_H_
#define VANTAGE_SERVE_TENANT_SIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "alloc/ucp.h"
#include "cache/shared_l2.h"
#include "common/digest.h"
#include "serve/journal.h"

namespace vantage {

class DecisionAudit;
class QosEngine;
class StatsRegistry;

/** Tenant-facing view of one slot's counters. */
struct TenantSlotInfo
{
    bool active = false;
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t targetLines = 0;
    std::uint64_t actualLines = 0;
};

/** The deterministic serve/replay simulation core. */
class TenantSim
{
  public:
    /** Builds the L2 and UCP from a journal-equivalent config. */
    explicit TenantSim(const JournalHeader &cfg);
    ~TenantSim();

    TenantSim(const TenantSim &) = delete;
    TenantSim &operator=(const TenantSim &) = delete;

    std::uint32_t maxTenants() const { return maxTenants_; }
    std::uint32_t activeTenants() const { return activeCount_; }

    /**
     * Admit a tenant: activates the lowest fully-drained retired
     * slot (falling back to the lowest retired slot, whose residue
     * the tenant inherits). @return the slot, or -1 when every slot
     * is occupied.
     */
    std::int32_t join(const std::string &name);

    /** Replay path: admit a tenant at the journaled slot. */
    void joinAt(std::uint16_t slot, const std::string &name);

    /** Retire a tenant's slot; its lines drain lazily. */
    void leave(std::uint16_t slot);

    bool slotActive(std::uint16_t slot) const;

    /**
     * One access by the tenant in `slot`; feeds the monitors and
     * runs the epoch control loop when one completes.
     */
    AccessResult access(std::uint16_t slot, Addr addr,
                        AccessType type);

    TenantSlotInfo slotInfo(std::uint16_t slot) const;

    /** Total accesses processed (epoch clock). */
    std::uint64_t accesses() const { return accesses_; }

    /** Merge/finish the digest and return its value. */
    std::uint64_t finishDigest();

    /** L2 + UCP lifecycle invariants into `rep`. */
    void checkInvariants(InvariantReport &rep) const;

    SharedL2 &l2() { return *l2_; }
    Ucp *ucp() { return ucp_.get(); }

    /**
     * Attach a decision audit ring to the L2's scheme: every
     * repartition, lifecycle transition and Vantage setpoint move is
     * recorded. Observational only (digest-neutral); the ring must
     * outlive this sim. The serve loop is the ring's single writer.
     */
    void attachAudit(DecisionAudit *audit);

    /**
     * Attach the QoS engine: at every epoch boundary (after the UCP
     * step) the engine evaluates one snapshot of `reg`, with the
     * access count as the snapshot clock — a pure function of the
     * event stream, so serve and replay evaluate identical epochs.
     * Both must outlive this sim; digest-neutral.
     */
    void attachQos(QosEngine *qos, StatsRegistry *reg);

    QosEngine *qos() { return qos_; }
    DecisionAudit *audit() { return audit_; }

    /**
     * Live-introspection export for the metrics service: the L2's
     * subtree ("cache", and "vantage" or "scheme"), UCP monitors
     * under "umon", and serve-level gauges under "serve". Build the
     * registry fully before any sampler thread reads it.
     */
    void registerLiveStats(StatsRegistry &reg) const;

  private:
    /** One QoS epoch at an access-count boundary. */
    void stepQos();

    void activate(std::uint16_t slot, const std::string &name);

    /** Equal split of the quantum over the active slots. */
    void rebalance();

    /** UCP control-loop step at an epoch boundary. */
    void repartition();

    std::uint32_t maxTenants_;
    std::uint64_t epochAccesses_;
    std::unique_ptr<SharedL2> l2_;
    std::unique_ptr<Ucp> ucp_;

    std::vector<std::string> names_;
    std::uint32_t activeCount_ = 0;
    std::uint64_t accesses_ = 0;
    AccessDigest digest_;
    bool digestDone_ = false;

    // Observational attachments (digest-neutral).
    DecisionAudit *audit_ = nullptr;
    QosEngine *qos_ = nullptr;
    StatsRegistry *qosReg_ = nullptr;
    std::uint64_t qosEpoch_ = 0;
};

/**
 * Re-execute a loaded journal; prints nothing. @return the final
 * outcome digest — bit-identical to the recording session's.
 */
std::uint64_t replayJournal(const JournalReader &reader);

/**
 * The `--lifecycle N` synthetic scenario: a seeded scripted session
 * with tenants joining and leaving mid-run across `accesses` total
 * accesses. Used to pin lifecycle golden digests without sockets;
 * when `journal` is non-null every event is also recorded, so
 * golden.py --lifecycle can assert record/replay parity on top.
 * @return the outcome digest.
 */
std::uint64_t runLifecycleScenario(const JournalHeader &cfg,
                                   std::uint64_t accesses,
                                   JournalWriter *journal);

/**
 * Same scenario over a caller-owned TenantSim, so observers (QoS
 * engine, decision audit, metrics registry) can be attached first.
 * `cfg` must be the header the sim was built from (it seeds the
 * event script).
 */
std::uint64_t runLifecycleScenario(TenantSim &sim,
                                   const JournalHeader &cfg,
                                   std::uint64_t accesses,
                                   JournalWriter *journal);

} // namespace vantage

#endif // VANTAGE_SERVE_TENANT_SIM_H_

/**
 * @file
 * Trace replay: run the simulator on recorded address streams.
 *
 * Format (plain text, one record per line):
 *
 *     # instr_per_mem 3.5        <- optional header directives
 *     1a2b3c L                   <- hex line address, L(oad)/S(tore)
 *     1a2b3d S
 *     400                        <- type defaults to Load
 *
 * Lines starting with '#' are directives or comments. The trace loops
 * when exhausted (the simulator's runs are fixed-length); a trace
 * must contain at least one record.
 */

#ifndef VANTAGE_WORKLOAD_TRACE_STREAM_H_
#define VANTAGE_WORKLOAD_TRACE_STREAM_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/access_stream.h"

namespace vantage {

/** Replays a recorded reference trace, looping at the end. */
class TraceStream : public AccessStream
{
  public:
    /** Parse from a file on disk. fatal() on missing/empty traces. */
    static TraceStream fromFile(const std::string &path);

    /** Parse from any istream (testing, embedded traces). */
    static TraceStream fromStream(std::istream &in,
                                  const std::string &name);

    MemRef next() override;
    double instrPerMem() const override { return instrPerMem_; }
    const std::string &name() const override { return name_; }

    std::size_t records() const { return refs_.size(); }

  private:
    TraceStream(std::string name, std::vector<MemRef> refs,
                double instr_per_mem);

    std::string name_;
    std::vector<MemRef> refs_;
    double instrPerMem_;
    std::size_t cursor_ = 0;
};

} // namespace vantage

#endif // VANTAGE_WORKLOAD_TRACE_STREAM_H_

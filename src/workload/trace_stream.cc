#include "workload/trace_stream.h"

#include <fstream>
#include <sstream>

#include "common/log.h"

namespace vantage {

TraceStream::TraceStream(std::string name, std::vector<MemRef> refs,
                         double instr_per_mem)
    : name_(std::move(name)), refs_(std::move(refs)),
      instrPerMem_(instr_per_mem)
{
    if (refs_.empty()) {
        fatal("trace '%s' contains no references", name_.c_str());
    }
}

TraceStream
TraceStream::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        fatal("cannot open trace file '%s'", path.c_str());
    }
    return fromStream(in, path);
}

TraceStream
TraceStream::fromStream(std::istream &in, const std::string &name)
{
    std::vector<MemRef> refs;
    double instr_per_mem = 4.0;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            std::istringstream hdr(line.substr(1));
            std::string key;
            hdr >> key;
            if (key == "instr_per_mem") {
                hdr >> instr_per_mem;
                if (!hdr || instr_per_mem < 0.0) {
                    fatal("%s:%zu: bad instr_per_mem directive",
                          name.c_str(), lineno);
                }
            }
            continue; // Other '#' lines are comments.
        }
        std::istringstream rec(line);
        std::string addr_str, type_str;
        rec >> addr_str >> type_str;
        MemRef ref{};
        try {
            ref.addr = std::stoull(addr_str, nullptr, 16);
        } catch (const std::exception &) {
            fatal("%s:%zu: bad address '%s'", name.c_str(), lineno,
                  addr_str.c_str());
        }
        if (type_str.empty() || type_str == "L" || type_str == "l") {
            ref.type = AccessType::Load;
        } else if (type_str == "S" || type_str == "s") {
            ref.type = AccessType::Store;
        } else {
            fatal("%s:%zu: bad access type '%s'", name.c_str(),
                  lineno, type_str.c_str());
        }
        refs.push_back(ref);
    }
    return TraceStream(name, std::move(refs), instr_per_mem);
}

MemRef
TraceStream::next()
{
    const MemRef ref = refs_[cursor_];
    cursor_ = (cursor_ + 1) % refs_.size();
    return ref;
}

} // namespace vantage

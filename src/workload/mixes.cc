#include "workload/mixes.h"

#include "common/log.h"
#include "common/rng.h"
#include "workload/profiles.h"

namespace vantage {

const std::vector<MixClass> &
allMixClasses()
{
    static const std::vector<MixClass> classes = [] {
        const std::array<Category, 4> cats = {
            Category::Streaming, Category::CacheFitting,
            Category::CacheFriendly, Category::Insensitive};
        std::vector<MixClass> out;
        // Combinations with repetition: indices a <= b <= c <= d.
        for (std::size_t a = 0; a < 4; ++a) {
            for (std::size_t b = a; b < 4; ++b) {
                for (std::size_t c = b; c < 4; ++c) {
                    for (std::size_t d = c; d < 4; ++d) {
                        out.push_back({cats[a], cats[b], cats[c],
                                       cats[d]});
                    }
                }
            }
        }
        vantage_assert(out.size() == 35, "expected 35 classes");
        return out;
    }();
    return classes;
}

std::vector<AppSpec>
makeMix(std::uint32_t cls_idx, std::uint32_t cores_per_slot,
        std::uint64_t seed)
{
    const auto &classes = allMixClasses();
    vantage_assert(cls_idx < classes.size(),
                   "class index %u out of range", cls_idx);
    vantage_assert(cores_per_slot >= 1, "need at least 1 core/slot");

    Rng rng(0xd15c0 + cls_idx * 1000003 + seed);
    std::vector<AppSpec> apps;
    for (const Category cat : classes[cls_idx]) {
        const std::vector<AppSpec> pool = appsInCategory(cat);
        vantage_assert(!pool.empty(), "empty category pool");
        for (std::uint32_t k = 0; k < cores_per_slot; ++k) {
            apps.push_back(pool[rng.range(pool.size())]);
        }
    }
    return apps;
}

std::string
mixName(std::uint32_t cls_idx, std::uint64_t seed)
{
    const auto &classes = allMixClasses();
    vantage_assert(cls_idx < classes.size(),
                   "class index %u out of range", cls_idx);
    std::string name;
    for (const Category cat : classes[cls_idx]) {
        name.push_back(categoryCode(cat));
    }
    name += std::to_string(seed);
    return name;
}

} // namespace vantage

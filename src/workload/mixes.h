/**
 * @file
 * Multiprogrammed mix generation (paper Sec. 5).
 *
 * The 29 profiles fall into 4 categories; the 35 possible
 * combinations-with-repetition of 4 categories form the mix
 * *classes*. A 4-core mix draws one random app per class slot; a
 * 32-core mix draws 8 random apps per slot. With 10 seeds per class
 * this reproduces the paper's 350-workload suites for both machine
 * sizes.
 */

#ifndef VANTAGE_WORKLOAD_MIXES_H_
#define VANTAGE_WORKLOAD_MIXES_H_

#include <array>
#include <string>
#include <vector>

#include "workload/app_model.h"

namespace vantage {

/** A mix class: a sorted multiset of 4 categories. */
using MixClass = std::array<Category, 4>;

/** All 35 classes, in a fixed canonical order. */
const std::vector<MixClass> &allMixClasses();

/**
 * Build one mix: `cores_per_slot` apps per class slot (1 for 4-core,
 * 8 for 32-core), drawn uniformly from the slot's category.
 *
 * @param cls_idx class index in allMixClasses().
 * @param cores_per_slot apps per category slot.
 * @param seed deterministic draw seed (the paper's "10 mixes per
 *        class" are seeds 0..9).
 */
std::vector<AppSpec> makeMix(std::uint32_t cls_idx,
                             std::uint32_t cores_per_slot,
                             std::uint64_t seed);

/** Mix name in the paper's style, e.g. "ffnn3". */
std::string mixName(std::uint32_t cls_idx, std::uint64_t seed);

} // namespace vantage

#endif // VANTAGE_WORKLOAD_MIXES_H_

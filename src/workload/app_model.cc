#include "workload/app_model.h"

#include "common/log.h"

namespace vantage {

char
categoryCode(Category c)
{
    switch (c) {
      case Category::Insensitive:
        return 'n';
      case Category::CacheFriendly:
        return 'f';
      case Category::CacheFitting:
        return 't';
      case Category::Streaming:
        return 's';
    }
    panic("bad category %d", static_cast<int>(c));
}

AppModel::AppModel(AppSpec spec, std::uint32_t app_id,
                   std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed),
      nameSpace_(static_cast<Addr>(app_id + 1) << 44)
{
    vantage_assert(!spec_.phases.empty(), "app %s has no phases",
                   spec_.name.c_str());
    vantage_assert(spec_.instrPerMem >= 0.0,
                   "negative instruction gap");
    for (const auto &phase : spec_.phases) {
        vantage_assert(!phase.segments.empty(),
                       "phase with no segments in %s",
                       spec_.name.c_str());
        vantage_assert(phase.accesses > 0,
                       "zero-length phase in %s", spec_.name.c_str());
        for (const auto &seg : phase.segments) {
            vantage_assert(seg.lines > 0, "empty segment in %s",
                           spec_.name.c_str());
            vantage_assert(seg.weight > 0.0,
                           "non-positive segment weight in %s",
                           spec_.name.c_str());
        }
    }
    enterPhase(0);
}

void
AppModel::enterPhase(std::size_t idx)
{
    phaseIdx_ = idx;
    const PhaseSpec &phase = spec_.phases[idx];
    phaseAccessesLeft_ = phase.accesses;

    segStates_.clear();
    cumWeights_.clear();
    double total = 0.0;
    for (const auto &seg : phase.segments) {
        total += seg.weight;
    }
    double acc = 0.0;
    for (std::size_t s = 0; s < phase.segments.size(); ++s) {
        SegmentState state;
        state.base = nameSpace_ |
                     (static_cast<Addr>(idx) << 36) |
                     (static_cast<Addr>(s) << 28);
        segStates_.push_back(state);
        acc += phase.segments[s].weight / total;
        cumWeights_.push_back(acc);
    }
    cumWeights_.back() = 1.0; // Guard against rounding.
}

Addr
AppModel::nextAddr()
{
    if (phaseAccessesLeft_ == 0) {
        enterPhase((phaseIdx_ + 1) % spec_.phases.size());
    }
    --phaseAccessesLeft_;

    const PhaseSpec &phase = spec_.phases[phaseIdx_];
    std::size_t pick = 0;
    if (segStates_.size() > 1) {
        const double x = rng_.uniform();
        while (pick + 1 < cumWeights_.size() && x > cumWeights_[pick]) {
            ++pick;
        }
    }

    const SegmentSpec &seg = phase.segments[pick];
    SegmentState &state = segStates_[pick];
    std::uint64_t offset;
    if (seg.pattern == AccessPattern::Sequential) {
        offset = state.cursor;
        state.cursor = (state.cursor + 1) % seg.lines;
    } else {
        offset = rng_.range(seg.lines);
    }
    return state.base + offset;
}

} // namespace vantage

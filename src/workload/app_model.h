/**
 * @file
 * Synthetic application models.
 *
 * The paper drives its evaluation with SPEC CPU2006 mixes, classified
 * into four categories by their miss-rate-vs-capacity behavior
 * (Table 3). We substitute parametric generators whose *measured*
 * LRU miss curves have the same shapes:
 *
 *  - insensitive: small working set, low L2 MPKI at any size.
 *  - cache-friendly: a mixture of differently sized reuse segments,
 *    giving a gradually decreasing miss curve.
 *  - cache-fitting: one dominant segment slightly under the cache
 *    size, giving a sharp knee once the partition fits it.
 *  - thrashing/streaming: reuse distances beyond any realistic
 *    allocation; extra capacity never helps.
 *
 * An application is a looping sequence of phases; each phase is a
 * weighted mixture of segments. A segment is a contiguous range of
 * line addresses accessed either sequentially (cyclically — a sharp
 * LRU step at its size) or uniformly at random (a smooth curve).
 * Phase changes exercise UCP's transient behavior (paper Fig. 8).
 *
 * All addresses are namespaced per application instance, so mixes
 * never share lines (as with SPEC multiprogrammed mixes).
 */

#ifndef VANTAGE_WORKLOAD_APP_MODEL_H_
#define VANTAGE_WORKLOAD_APP_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/access_stream.h"

namespace vantage {

/** Table 3 categories. */
enum class Category : std::uint8_t {
    Insensitive,   // 'n'
    CacheFriendly, // 'f'
    CacheFitting,  // 't'
    Streaming,     // 's'
};

/** One-letter code used in mix names (paper Sec. 6.1 figures). */
char categoryCode(Category c);

/** How a segment's lines are visited. */
enum class AccessPattern : std::uint8_t {
    Sequential, ///< Cyclic walk: LRU step function at segment size.
    Random,     ///< Uniform draws: smooth miss curve.
};

/** A contiguous region of reuse. */
struct SegmentSpec
{
    std::uint64_t lines;   ///< Segment size in cache lines.
    double weight;         ///< Probability mass within the phase.
    AccessPattern pattern;
};

/** A stable program phase. */
struct PhaseSpec
{
    std::uint64_t accesses; ///< Memory accesses before switching.
    std::vector<SegmentSpec> segments;
};

/** A full application: name, category, intensity, phases. */
struct AppSpec
{
    std::string name;
    Category category;
    /** Non-memory instructions between memory accesses. */
    double instrPerMem;
    std::vector<PhaseSpec> phases; ///< Looped forever.
    /** Fraction of memory references that are stores. */
    double storeFraction = 0.3;
};

/** Instantiated generator producing this app's reference stream. */
class AppModel : public AccessStream
{
  public:
    /**
     * @param spec the application shape.
     * @param app_id namespaces this instance's addresses.
     * @param seed RNG seed (distinct seeds give distinct but
     *        statistically identical instances).
     */
    AppModel(AppSpec spec, std::uint32_t app_id, std::uint64_t seed);

    /** Next memory reference (a line address). */
    Addr nextAddr();

    /** AccessStream: next reference with its load/store type. */
    MemRef
    next() override
    {
        const Addr addr = nextAddr();
        const AccessType type = rng_.chance(spec_.storeFraction)
                                    ? AccessType::Store
                                    : AccessType::Load;
        return {addr, type};
    }

    /** Mean non-memory instructions between memory accesses. */
    double instrPerMem() const override { return spec_.instrPerMem; }

    const AppSpec &spec() const { return spec_; }
    const std::string &name() const override { return spec_.name; }
    Category category() const { return spec_.category; }

  private:
    struct SegmentState
    {
        Addr base;
        std::uint64_t cursor = 0;
    };

    void enterPhase(std::size_t idx);

    AppSpec spec_;
    Rng rng_;
    Addr nameSpace_;

    std::size_t phaseIdx_ = 0;
    std::uint64_t phaseAccessesLeft_ = 0;
    std::vector<SegmentState> segStates_; ///< For the current phase.
    std::vector<double> cumWeights_;      ///< Segment selection CDF.
};

} // namespace vantage

#endif // VANTAGE_WORKLOAD_APP_MODEL_H_

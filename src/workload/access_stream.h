/**
 * @file
 * The access-stream abstraction the simulator's cores consume.
 *
 * A stream yields one memory reference at a time plus the mean number
 * of non-memory instructions between references. The synthetic
 * AppModel implements it; TraceStream (trace_stream.h) replays
 * user-supplied traces, so the simulator runs real workloads too.
 */

#ifndef VANTAGE_WORKLOAD_ACCESS_STREAM_H_
#define VANTAGE_WORKLOAD_ACCESS_STREAM_H_

#include <string>

#include "common/types.h"

namespace vantage {

/** One memory reference. */
struct MemRef
{
    Addr addr;
    AccessType type;
};

/** Abstract per-core reference generator. */
class AccessStream
{
  public:
    virtual ~AccessStream() = default;

    /** Produce the next reference; streams never end (they loop). */
    virtual MemRef next() = 0;

    /** Mean non-memory instructions between references. */
    virtual double instrPerMem() const = 0;

    /** For reports. */
    virtual const std::string &name() const = 0;
};

} // namespace vantage

#endif // VANTAGE_WORKLOAD_ACCESS_STREAM_H_

#include "workload/profiles.h"

#include "common/log.h"

namespace vantage {

namespace {

constexpr std::uint64_t kKb = 16; ///< Lines per KB (64 B lines).
constexpr std::uint64_t kMb = kLinesPerMb;

/** Single-phase app with one segment. */
AppSpec
mono(const char *name, Category cat, double ipm, std::uint64_t lines,
     AccessPattern pat)
{
    return AppSpec{name, cat, ipm,
                   {PhaseSpec{1u << 20, {{lines, 1.0, pat}}}}};
}

/** Single-phase app with an explicit segment mixture. */
AppSpec
mix(const char *name, Category cat, double ipm,
    std::vector<SegmentSpec> segs)
{
    return AppSpec{name, cat, ipm,
                   {PhaseSpec{1u << 20, std::move(segs)}}};
}

std::vector<AppSpec>
buildLibrary()
{
    std::vector<AppSpec> lib;
    const auto seq = AccessPattern::Sequential;
    const auto rnd = AccessPattern::Random;

    // ------------------------------------------------------------
    // Insensitive ('n'): < 5 L2 MPKI at every cache size. Small
    // working sets — many fit mostly in the L1 — and mild intensity.
    // ------------------------------------------------------------
    lib.push_back(mono("perlbench", Category::Insensitive, 6.0,
                       24 * kKb, rnd));
    lib.push_back(mono("bwaves", Category::Insensitive, 5.0,
                       32 * kKb, seq));
    lib.push_back(mono("gamess", Category::Insensitive, 8.0,
                       12 * kKb, rnd));
    lib.push_back(mono("gromacs", Category::Insensitive, 7.0,
                       20 * kKb, rnd));
    lib.push_back(mono("namd", Category::Insensitive, 6.5,
                       28 * kKb, seq));
    lib.push_back(mix("gobmk", Category::Insensitive, 7.5,
                      {{8 * kKb, 0.7, rnd}, {40 * kKb, 0.3, rnd}}));
    lib.push_back(mono("dealII", Category::Insensitive, 6.0,
                       48 * kKb, rnd));
    lib.push_back(mono("povray", Category::Insensitive, 9.0,
                       10 * kKb, rnd));
    lib.push_back(mono("calculix", Category::Insensitive, 7.0,
                       36 * kKb, seq));
    lib.push_back(mix("hmmer", Category::Insensitive, 5.5,
                      {{16 * kKb, 0.8, seq}, {48 * kKb, 0.2, rnd}}));
    lib.push_back(mono("sjeng", Category::Insensitive, 8.0,
                       44 * kKb, rnd));
    lib.push_back(mono("h264ref", Category::Insensitive, 6.0,
                       30 * kKb, rnd));
    lib.push_back(mono("tonto", Category::Insensitive, 7.0,
                       26 * kKb, rnd));
    lib.push_back(mono("wrf", Category::Insensitive, 5.0,
                       52 * kKb, seq));

    // ------------------------------------------------------------
    // Cache-friendly ('f'): gradually benefit from 64 KB up to
    // ~4 MB. Mixtures of random segments spread across sizes make a
    // smooth, steadily decreasing miss curve.
    // ------------------------------------------------------------
    lib.push_back(mix("bzip2", Category::CacheFriendly, 4.0,
                      {{8 * kKb, 1.00, rnd},
                       {kMb / 8, 0.40, rnd},
                       {kMb / 2, 0.30, rnd},
                       {2 * kMb, 0.20, rnd},
                       {4 * kMb, 0.10, rnd}}));
    lib.push_back(mix("gcc", Category::CacheFriendly, 4.5,
                      {{6 * kKb, 1.00, rnd},
                       {kMb / 4, 0.35, rnd},
                       {1 * kMb, 0.35, rnd},
                       {3 * kMb, 0.30, rnd}}));
    lib.push_back(mix("zeusmp", Category::CacheFriendly, 3.5,
                      {{10 * kKb, 1.00, rnd},
                       {kMb / 8, 0.30, rnd},
                       {kMb, 0.40, rnd},
                       {4 * kMb, 0.30, rnd}}));
    lib.push_back(mix("cactusADM", Category::CacheFriendly, 4.0,
                      {{8 * kKb, 1.00, rnd},
                       {kMb / 4, 0.45, rnd},
                       {2 * kMb, 0.35, rnd},
                       {6 * kMb, 0.20, rnd}}));
    lib.push_back(mix("leslie3d", Category::CacheFriendly, 3.0,
                      {{12 * kKb, 1.00, rnd},
                       {kMb / 2, 0.50, rnd},
                       {2 * kMb, 0.30, rnd},
                       {5 * kMb, 0.20, rnd}}));
    lib.push_back(mix("astar", Category::CacheFriendly, 5.0,
                      {{8 * kKb, 1.00, rnd},
                       {kMb / 8, 0.35, rnd},
                       {kMb / 2, 0.25, rnd},
                       {kMb, 0.20, rnd},
                       {3 * kMb, 0.20, rnd}}));

    // ------------------------------------------------------------
    // Cache-fitting ('t'): sharp miss drop once the dominant working
    // set (> 1 MB) fits. One big sequential (cyclic) segment plus a
    // small hot region.
    // ------------------------------------------------------------
    lib.push_back(mix("soplex", Category::CacheFitting, 3.5,
                      {{5 * kMb / 4, 0.6, seq}, {4 * kKb, 0.4, rnd}}));
    lib.push_back(mix("lbm", Category::CacheFitting, 3.0,
                      {{3 * kMb / 2, 0.65, seq}, {8 * kKb, 0.35, rnd}}));
    lib.push_back(mix("omnetpp", Category::CacheFitting, 4.0,
                      {{11 * kMb / 8, 0.6, seq}, {16 * kKb, 0.4, rnd}}));
    lib.push_back(mix("sphinx3", Category::CacheFitting, 3.5,
                      {{7 * kMb / 4, 0.65, seq}, {8 * kKb, 0.35, rnd}}));
    lib.push_back(mix("xalancbmk", Category::CacheFitting, 4.5,
                      {{9 * kMb / 8, 0.6, seq}, {12 * kKb, 0.4, rnd}}));

    // ------------------------------------------------------------
    // Thrashing/streaming ('s'): reuse distances beyond any realistic
    // allocation; extra capacity never helps. High intensity.
    // ------------------------------------------------------------
    lib.push_back(mix("mcf", Category::Streaming, 2.0,
                      {{64 * kMb, 0.6, rnd}, {4 * kKb, 0.4, rnd}}));
    lib.push_back(mix("milc", Category::Streaming, 2.5,
                      {{16 * kMb, 0.6, seq}, {4 * kKb, 0.4, rnd}}));
    lib.push_back(mix("GemsFDTD", Category::Streaming, 3.0,
                      {{20 * kMb, 0.65, seq}, {6 * kKb, 0.35, rnd}}));
    lib.push_back(mix("libquantum", Category::Streaming, 2.0,
                      {{32 * kMb, 0.7, seq}, {4 * kKb, 0.3, rnd}}));

    return lib;
}

} // namespace

const std::vector<AppSpec> &
appLibrary()
{
    static const std::vector<AppSpec> lib = buildLibrary();
    return lib;
}

std::vector<AppSpec>
appsInCategory(Category c)
{
    std::vector<AppSpec> out;
    for (const auto &app : appLibrary()) {
        if (app.category == c) {
            out.push_back(app);
        }
    }
    return out;
}

const AppSpec &
appByName(const std::string &name)
{
    for (const auto &app : appLibrary()) {
        if (app.name == name) {
            return app;
        }
    }
    fatal("unknown application profile '%s'", name.c_str());
}

} // namespace vantage

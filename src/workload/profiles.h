/**
 * @file
 * The application library: 29 synthetic profiles named after the
 * SPEC CPU2006 programs of the paper's Table 3, one per program,
 * with the category's characteristic miss-curve shape.
 *
 * Working-set sizes assume 64-byte lines (1 MB = 16384 lines) and are
 * chosen so the knees/gradients land where Table 3's classification
 * puts them: insensitive apps stay under 5 L2 misses per
 * kilo-instruction at any cache size, cache-friendly apps improve
 * gradually up to ~4 MB, cache-fitting apps have a sharp drop between
 * 1 and 2 MB, and streaming apps never benefit.
 */

#ifndef VANTAGE_WORKLOAD_PROFILES_H_
#define VANTAGE_WORKLOAD_PROFILES_H_

#include <vector>

#include "workload/app_model.h"

namespace vantage {

/** All 29 application profiles (Table 3). */
const std::vector<AppSpec> &appLibrary();

/** Profiles belonging to one category. */
std::vector<AppSpec> appsInCategory(Category c);

/** Look up a profile by name; fatal() if unknown. */
const AppSpec &appByName(const std::string &name);

/** Lines per megabyte with 64-byte lines. */
constexpr std::uint64_t kLinesPerMb = 16384;

} // namespace vantage

#endif // VANTAGE_WORKLOAD_PROFILES_H_

#include "simd/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "simd/kernels.h"

namespace vantage::simd {

namespace detail {
// Constant-initialized to the scalar table so a call from any other
// translation unit's dynamic initializer is already safe (all
// backends are bit-identical, so an early caller merely runs scalar
// until the resolver below upgrades the dispatch).
const Ops *g_active = &kScalarOps;
Level g_level = Level::Scalar;
} // namespace detail

namespace {

bool
avx2Supported()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

bool
neonSupported()
{
#if defined(__aarch64__)
    return true; // NEON is architecturally baseline on AArch64.
#else
    return false;
#endif
}

Level
bestLevel()
{
    if (avx2Supported()) {
        return Level::Avx2;
    }
    if (neonSupported()) {
        return Level::Neon;
    }
    return Level::Scalar;
}

void
resolve()
{
    Level lvl = bestLevel();
    if (const char *env = std::getenv("VANTAGE_SIMD")) {
        if (std::strcmp(env, "scalar") == 0) {
            lvl = Level::Scalar;
        } else if (std::strcmp(env, "avx2") == 0) {
            if (avx2Supported()) {
                lvl = Level::Avx2;
            } else {
                warn("VANTAGE_SIMD=avx2 requested but this CPU lacks "
                     "AVX2; falling back to scalar kernels");
                lvl = Level::Scalar;
            }
        } else if (std::strcmp(env, "neon") == 0) {
            if (neonSupported()) {
                lvl = Level::Neon;
            } else {
                warn("VANTAGE_SIMD=neon requested but this is not an "
                     "AArch64 host; falling back to scalar kernels");
                lvl = Level::Scalar;
            }
        } else if (*env != '\0') {
            warn("unknown VANTAGE_SIMD level '%s' (want "
                 "avx2|neon|scalar); auto-detecting",
                 env);
        }
    }
    detail::g_level = lvl;
    detail::g_active = opsFor(lvl);
}

// Resolve before main(): the env override and CPUID check happen
// exactly once, and every later ops() call is one pointer load.
struct Resolver
{
    Resolver() { resolve(); }
} g_resolver;

} // namespace

const Ops *
opsFor(Level level)
{
    switch (level) {
    case Level::Scalar:
        return &kScalarOps;
    case Level::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return avx2Supported() ? &kAvx2Ops : nullptr;
#else
        return nullptr;
#endif
    case Level::Neon:
#if defined(__aarch64__)
        return &kNeonOps;
#else
        return nullptr;
#endif
    }
    return nullptr;
}

bool
setLevelForTest(Level level)
{
    const Ops *ops = opsFor(level);
    if (ops == nullptr) {
        return false;
    }
    detail::g_level = level;
    detail::g_active = ops;
    return true;
}

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Avx2:
        return "avx2";
    case Level::Neon:
        return "neon";
    }
    return "unknown";
}

const char *
levelName()
{
    return levelName(detail::g_level);
}

} // namespace vantage::simd

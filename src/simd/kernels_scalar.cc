#include "simd/kernels.h"

namespace vantage::simd {

const Ops kScalarOps = {
    &scalar::findTag,   &scalar::findTagAt,     &scalar::classify,
    &scalar::oldestRank, &scalar::minLastAccess, &scalar::xorRows8,
};

} // namespace vantage::simd

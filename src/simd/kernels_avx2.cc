/**
 * @file
 * AVX2 kernels for the hot plane scans.
 *
 * Deliberately built WITHOUT -mavx2 on the whole translation unit:
 * each kernel carries a function-level target("avx2") attribute
 * instead. Compiling any TU with -mavx2 would let the compiler emit
 * AVX2 code for inline functions from shared headers, and the linker
 * is free to pick those definitions for the whole program — an
 * illegal-instruction time bomb on pre-AVX2 hosts. Function-level
 * targets confine the vector code to these kernels, which are only
 * reachable through the dispatch table after a CPUID check.
 *
 * No vpgather anywhere: on the Xeon generations this targets a
 * 4-lane qword gather is microcoded (~30 uops) and loses to plain
 * loads whenever the lines are cache-resident — measured 2x worse on
 * the in-LLC lookup benches. Scattered lines are instead touched
 * with individual 128-bit loads (a hot line is exactly 16 bytes, so
 * one load fetches tag + metadata together) composed into vectors,
 * preceded by a full prefetch sweep so out-of-order execution can
 * overlap the misses.
 *
 * Parity contract: every kernel returns exactly what the scalar
 * reference in kernels.h returns, including first-match / first-wins
 * tie-breaking. Vector blocks scan lanes in index order, lane folds
 * break value ties toward the smaller candidate index, and tail
 * iterations fall back to the scalar code, so "first" is preserved.
 */

#include "simd/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace vantage::simd {
namespace {

__attribute__((target("avx2"))) std::int32_t
findTagAvx2(const Line *lines, std::uint32_t n, Addr addr)
{
    const __m256i want =
        _mm256_set1_epi64x(static_cast<long long>(addr));
    const char *const base = reinterpret_cast<const char *>(lines);
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Four consecutive lines = 64 bytes = two vectors, lanes
        // interleaved {tag, meta, tag, meta}; the 0b0101 mask keeps
        // only the tag lanes (meta qwords include padding bytes and
        // must not match).
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base +
                                              std::size_t{i} * 16));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base +
                                              std::size_t{i} * 16 + 32));
        const std::uint32_t ma = static_cast<std::uint32_t>(
            _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(a, want))));
        const std::uint32_t mb = static_cast<std::uint32_t>(
            _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(b, want))));
        const std::uint32_t m = (ma & 0x5u) | ((mb & 0x5u) << 4);
        if (m != 0) {
            // Tag lanes sit at bits 0, 2, 4, 6 -> lines i .. i+3.
            return static_cast<std::int32_t>(
                i + (static_cast<std::uint32_t>(__builtin_ctz(m)) >>
                     1));
        }
    }
    for (; i < n; ++i) {
        if (lines[i].addr == addr) {
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

__attribute__((target("avx2"))) std::int32_t
findTagAtAvx2(const Line *lines, const LineId *slots, std::uint32_t n,
              Addr addr)
{
    // Scalar probe of the first way before the vector scan: in a
    // steady-state cache most hits sit in the way the line was
    // inserted into (slot order is way order), so this branch
    // predicts almost perfectly and a hit costs one load. When the
    // hit way is unpredictable the branchless vector path below
    // still wins — measured ~12 ns vs ~29 ns for W = 4 random-way
    // hits, where the scalar early-exit loop eats a mispredict per
    // probe. First-match order is preserved: if lane 0 reaches the
    // vector compare it is already known not to match.
    if (n > 0 && lines[slots[0]].addr == addr) {
        return 0;
    }
    const __m256i want =
        _mm256_set1_epi64x(static_cast<long long>(addr));
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // Four scalar tag loads composed into one vector compare
        // (vmovq + 3x vpinsrq); the four loads issue independently,
        // which is all the memory parallelism a gather would buy,
        // minus its microcode.
        const __m256i tags = _mm256_set_epi64x(
            static_cast<long long>(lines[slots[i + 3]].addr),
            static_cast<long long>(lines[slots[i + 2]].addr),
            static_cast<long long>(lines[slots[i + 1]].addr),
            static_cast<long long>(lines[slots[i]].addr));
        const std::uint32_t m = static_cast<std::uint32_t>(
            _mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(tags, want))));
        if (m != 0) {
            return static_cast<std::int32_t>(
                i + static_cast<std::uint32_t>(__builtin_ctz(m)));
        }
    }
    for (; i < n; ++i) {
        if (lines[slots[i]].addr == addr) {
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

__attribute__((target("avx2"))) void
classifyAvx2(const Line *lines, const Candidate *cands, std::uint32_t n,
             std::uint32_t *parts, std::uint8_t *ranks,
             std::uint64_t *valid_mask, std::uint64_t *unmanaged_mask)
{
    std::uint64_t valid = 0;
    std::uint64_t unmanaged = 0;
    scalar::prefetchLines(lines, cands, n);
    const __m256i invalid = _mm256_set1_epi64x(-1); // kInvalidAddr
    const __m128i unmanaged_part =
        _mm_set1_epi32(static_cast<int>(kUnmanagedPart));
    // Dword selector pulling each 16-byte line's part field (dword 2
    // of the line, dwords 2 and 6 of a two-line vector) to the front.
    const __m256i part_idx = _mm256_setr_epi32(2, 6, 0, 0, 0, 0, 0, 0);
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // One 128-bit load per line fetches {tag, part|rank} whole;
        // two lines stack into a 256-bit vector with the same
        // interleaved-lane layout the contiguous kernel scans.
        const Line *const l0 = lines + cands[i].slot;
        const Line *const l1 = lines + cands[i + 1].slot;
        const Line *const l2 = lines + cands[i + 2].slot;
        const Line *const l3 = lines + cands[i + 3].slot;
        const __m256i ab = _mm256_set_m128i(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(l1)),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(l0)));
        const __m256i cd = _mm256_set_m128i(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(l3)),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(l2)));

        // Tag lanes are qwords 0 and 2 -> movemask bits 0 and 2.
        const std::uint32_t ea = static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpeq_epi64(ab, invalid))));
        const std::uint32_t eb = static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpeq_epi64(cd, invalid))));
        const std::uint32_t inv4 = (ea & 1u) | ((ea >> 1) & 2u) |
                                   ((eb & 1u) << 2) | ((eb & 4u) << 1);
        valid |= static_cast<std::uint64_t>(~inv4 & 0xfu) << i;

        const __m128i p01 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(ab, part_idx));
        const __m128i p23 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(cd, part_idx));
        const __m128i p32 = _mm_unpacklo_epi64(p01, p23);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(parts + i), p32);
        const std::uint32_t u = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(
                _mm_cmpeq_epi32(p32, unmanaged_part))));
        unmanaged |= static_cast<std::uint64_t>(u) << i;

        // Rank bytes ride along scalar: the lines are already in L1
        // from the vector loads above.
        ranks[i] = l0->rank;
        ranks[i + 1] = l1->rank;
        ranks[i + 2] = l2->rank;
        ranks[i + 3] = l3->rank;
    }
    for (; i < n; ++i) {
        const Line &line = lines[cands[i].slot];
        parts[i] = line.part;
        ranks[i] = line.rank;
        if (line.addr != kInvalidAddr) {
            valid |= std::uint64_t{1} << i;
        }
        if (line.part == kUnmanagedPart) {
            unmanaged |= std::uint64_t{1} << i;
        }
    }
    *valid_mask = valid;
    *unmanaged_mask = unmanaged;
}

/** True when the candidate slots are s0, s0+1, ..., s0+n-1. */
inline bool
contiguousSlots(const Candidate *cands, std::uint32_t n)
{
    const LineId s0 = cands[0].slot;
    for (std::uint32_t i = 1; i < n; ++i) {
        if (cands[i].slot != s0 + i) {
            return false;
        }
    }
    return true;
}

__attribute__((target("avx2"))) std::int32_t
oldestRankAvx2(const Line *lines, const Candidate *cands,
               std::uint32_t n, std::uint8_t current_ts)
{
    // Only long dense slot runs fold as a vector max-reduction over
    // the hot plane. Zcache walks scatter, where the fold is
    // load-bound anyway — prefetch the sweep and fold scalar. Short
    // dense runs (a 16-way set) also fold scalar: the policy stamped
    // one of those very ranks moments ago, and a 256-bit load over a
    // byte still in the store buffer cannot forward — measured ~20 ns
    // slower per set-associative miss than the scalar fold.
    if (n < 32 || !contiguousSlots(cands, n)) {
        return scalar::oldestRank(lines, cands, n, current_ts);
    }
    const char *const base =
        reinterpret_cast<const char *>(lines + cands[0].slot);
    const __m256i rank_idx =
        _mm256_setr_epi32(3, 7, 0, 0, 0, 0, 0, 0);
    const __m256i ff = _mm256_set1_epi32(0xff);
    const __m256i ts = _mm256_set1_epi32(current_ts);
    const __m256i lane_step = _mm256_set1_epi32(4);
    __m256i best_age = _mm256_set1_epi32(-1); // below any real age
    __m256i best_idx = _mm256_setzero_si256();
    __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 0, 0, 0, 0);
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base +
                                              std::size_t{i} * 16));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(base +
                                              std::size_t{i} * 16 + 32));
        // Rank lives in byte 0 of each line's dword 3 (the padding
        // bytes are masked off).
        const __m128i r01 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(a, rank_idx));
        const __m128i r23 = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(b, rank_idx));
        const __m256i rank = _mm256_and_si256(
            _mm256_castsi128_si256(_mm_unpacklo_epi64(r01, r23)), ff);
        const __m256i age =
            _mm256_and_si256(_mm256_sub_epi32(ts, rank), ff);
        // Strictly-greater blend: within a lane the earliest index
        // keeps ties, matching the scalar first-wins fold.
        const __m256i gt = _mm256_cmpgt_epi32(age, best_age);
        best_age = _mm256_blendv_epi8(best_age, age, gt);
        best_idx = _mm256_blendv_epi8(best_idx, idx, gt);
        idx = _mm256_add_epi32(idx, lane_step);
    }
    std::uint32_t ages[8];
    std::uint32_t idxs[8];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(ages), best_age);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(idxs), best_idx);
    // Cross-lane: highest age, ties to the smaller candidate index.
    std::int32_t best = static_cast<std::int32_t>(idxs[0]);
    std::uint32_t age = ages[0];
    for (int k = 1; k < 4; ++k) {
        if (ages[k] > age ||
            (ages[k] == age &&
             idxs[k] < static_cast<std::uint32_t>(best))) {
            best = static_cast<std::int32_t>(idxs[k]);
            age = ages[k];
        }
    }
    // Scalar tail: indices beyond the vector part are all larger, so
    // strict-greater keeps first-wins.
    for (; i < n; ++i) {
        const std::uint32_t a = static_cast<std::uint8_t>(
            current_ts - lines[cands[i].slot].rank);
        if (a > age) {
            best = static_cast<std::int32_t>(i);
            age = a;
        }
    }
    return best;
}

__attribute__((target("avx2"))) std::int32_t
minLastAccessAvx2(const LineCold *cold, const Candidate *cands,
                  std::uint32_t n)
{
    // Long dense runs min-reduce the cold plane directly; scattered
    // zcache lists fall back to the prefetching scalar fold, and so
    // do short dense runs (a 16-way set): ExactLru stamped one of
    // those very 8-byte entries on the preceding access, and a
    // 256-bit load overlapping a store still in flight cannot
    // forward — measured ~20 ns slower per set-associative miss than
    // the scalar fold.
    if (n < 32 || !contiguousSlots(cands, n)) {
        return scalar::minLastAccess(cold, cands, n);
    }
    const long long *const base =
        reinterpret_cast<const long long *>(cold + cands[0].slot);
    // lastAccess is bits 0..62; bit 63 is the dirty flag. Masking it
    // off also keeps every stamp non-negative, so signed 64-bit
    // compares order them correctly.
    const __m256i la_mask = _mm256_set1_epi64x(0x7fffffffffffffffLL);
    const __m256i lane_step = _mm256_set1_epi64x(4);
    __m256i best_la = _mm256_set1_epi64x(0x7fffffffffffffffLL);
    __m256i best_idx = _mm256_setzero_si256();
    __m256i idx = _mm256_setr_epi64x(0, 1, 2, 3);
    std::uint32_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i la = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(base + i)),
            la_mask);
        const __m256i gt = _mm256_cmpgt_epi64(best_la, la);
        best_la = _mm256_blendv_epi8(best_la, la, gt);
        best_idx = _mm256_blendv_epi8(best_idx, idx, gt);
        idx = _mm256_add_epi64(idx, lane_step);
    }
    std::uint64_t las[4];
    std::uint64_t idxs[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(las), best_la);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(idxs), best_idx);
    std::int32_t best = static_cast<std::int32_t>(idxs[0]);
    std::uint64_t la = las[0];
    for (int k = 1; k < 4; ++k) {
        if (las[k] < la ||
            (las[k] == la &&
             idxs[k] < static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(best)))) {
            best = static_cast<std::int32_t>(idxs[k]);
            la = las[k];
        }
    }
    for (; i < n; ++i) {
        const std::uint64_t v = cold[cands[i].slot].lastAccess;
        if (v < la) {
            best = static_cast<std::int32_t>(i);
            la = v;
        }
    }
    return best;
}

__attribute__((target("avx2"))) void
xorRows8Avx2(const std::uint32_t *walk_tables, Addr addr,
             std::uint32_t *pos)
{
    // One W == 8 row of the interleaved walk tables is 8 contiguous
    // dwords = exactly one vector; the whole batched hash is eight
    // row loads folded with XOR.
    const std::uint32_t *const t = walk_tables;
    // (A lambda would not inherit the target attribute, so the row
    // loads are spelled out.)
#define VANTAGE_XR8_ROW(r)                                            \
    _mm256_loadu_si256(                                               \
        reinterpret_cast<const __m256i *>(t + std::uint64_t{r} * 8))
    __m256i acc = VANTAGE_XR8_ROW(addr & 0xff);
    acc = _mm256_xor_si256(acc,
                           VANTAGE_XR8_ROW(256 + ((addr >> 8) & 0xff)));
    acc = _mm256_xor_si256(
        acc, VANTAGE_XR8_ROW(512 + ((addr >> 16) & 0xff)));
    acc = _mm256_xor_si256(
        acc, VANTAGE_XR8_ROW(768 + ((addr >> 24) & 0xff)));
    acc = _mm256_xor_si256(
        acc, VANTAGE_XR8_ROW(1024 + ((addr >> 32) & 0xff)));
    acc = _mm256_xor_si256(
        acc, VANTAGE_XR8_ROW(1280 + ((addr >> 40) & 0xff)));
    acc = _mm256_xor_si256(
        acc, VANTAGE_XR8_ROW(1536 + ((addr >> 48) & 0xff)));
    acc = _mm256_xor_si256(acc, VANTAGE_XR8_ROW(1792 + (addr >> 56)));
#undef VANTAGE_XR8_ROW
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(pos), acc);
}

} // namespace

const Ops kAvx2Ops = {
    &findTagAvx2,    &findTagAtAvx2,     &classifyAvx2,
    &oldestRankAvx2, &minLastAccessAvx2, &xorRows8Avx2,
};

} // namespace vantage::simd

#endif // x86

/**
 * @file
 * Internal kernel tables and shared scalar reference implementations.
 *
 * The scalar kernels are the semantic specification: every vector
 * backend must return exactly what they return. They live here as
 * inline functions so the NEON backend (no gather instructions) can
 * reuse them verbatim for the scatter-heavy kernels, guaranteeing
 * parity by construction instead of by reimplementation.
 */

#ifndef VANTAGE_SIMD_KERNELS_H_
#define VANTAGE_SIMD_KERNELS_H_

#include "simd/simd.h"

namespace vantage::simd {

extern const Ops kScalarOps;
#if defined(__x86_64__) || defined(__i386__)
extern const Ops kAvx2Ops;
#endif
#if defined(__aarch64__)
extern const Ops kNeonOps;
#endif

namespace scalar {

inline std::int32_t
findTag(const Line *lines, std::uint32_t n, Addr addr)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        if (lines[i].addr == addr) {
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

inline std::int32_t
findTagAt(const Line *lines, const LineId *slots, std::uint32_t n,
          Addr addr)
{
    for (std::uint32_t i = 0; i < n; ++i) {
        if (lines[slots[i]].addr == addr) {
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

/**
 * Fire a prefetch for every candidate's hot line before a scan.
 * Issuing the whole sweep up front exposes all the misses at once
 * (a zcache candidate list touches up to 52 scattered cache lines),
 * which buys more memory-level parallelism than the old
 * fixed-distance scan-ahead prefetch ever could. Pure hint: no
 * effect on results.
 */
inline void
prefetchLines(const Line *lines, const Candidate *cands,
              std::uint32_t n)
{
    // Dense slot runs (set-associative sets) span a handful of
    // cache lines that the hardware prefetcher handles; sweeping
    // them costs measurable load-port pressure for nothing. Only
    // scattered lists (zcache walks) are worth the sweep.
    if (n < 2 || cands[n - 1].slot == cands[0].slot + (n - 1)) {
        return;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        __builtin_prefetch(lines + cands[i].slot, 0, 3);
    }
}

inline void
classify(const Line *lines, const Candidate *cands, std::uint32_t n,
         std::uint32_t *parts, std::uint8_t *ranks,
         std::uint64_t *valid_mask, std::uint64_t *unmanaged_mask)
{
    std::uint64_t valid = 0;
    std::uint64_t unmanaged = 0;
    prefetchLines(lines, cands, n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const Line &line = lines[cands[i].slot];
        parts[i] = line.part;
        ranks[i] = line.rank;
        if (line.addr != kInvalidAddr) {
            valid |= std::uint64_t{1} << i;
        }
        if (line.part == kUnmanagedPart) {
            unmanaged |= std::uint64_t{1} << i;
        }
    }
    *valid_mask = valid;
    *unmanaged_mask = unmanaged;
}

inline std::int32_t
oldestRank(const Line *lines, const Candidate *cands, std::uint32_t n,
           std::uint8_t current_ts)
{
    prefetchLines(lines, cands, n);
    std::int32_t best = 0;
    std::uint32_t best_age = static_cast<std::uint8_t>(
        current_ts - lines[cands[0].slot].rank);
    for (std::uint32_t i = 1; i < n; ++i) {
        const std::uint32_t age = static_cast<std::uint8_t>(
            current_ts - lines[cands[i].slot].rank);
        if (age > best_age) {
            best = static_cast<std::int32_t>(i);
            best_age = age;
        }
    }
    return best;
}

inline std::int32_t
minLastAccess(const LineCold *cold, const Candidate *cands,
              std::uint32_t n)
{
    if (n >= 2 && cands[n - 1].slot != cands[0].slot + (n - 1)) {
        for (std::uint32_t i = 0; i < n; ++i) {
            __builtin_prefetch(cold + cands[i].slot, 0, 3);
        }
    }
    std::int32_t best = 0;
    std::uint64_t best_la = cold[cands[0].slot].lastAccess;
    for (std::uint32_t i = 1; i < n; ++i) {
        const std::uint64_t la = cold[cands[i].slot].lastAccess;
        if (la < best_la) {
            best = static_cast<std::int32_t>(i);
            best_la = la;
        }
    }
    return best;
}

inline void
xorRows8(const std::uint32_t *walk_tables, Addr addr,
         std::uint32_t *pos)
{
    const std::uint32_t *t = walk_tables;
    const std::uint32_t *r = t + (addr & 0xff) * 8;
    std::uint32_t p0 = r[0], p1 = r[1], p2 = r[2], p3 = r[3];
    std::uint32_t p4 = r[4], p5 = r[5], p6 = r[6], p7 = r[7];
    for (std::uint32_t byte = 1; byte < 8; ++byte) {
        r = t + ((byte << 8) | ((addr >> (byte * 8)) & 0xff)) * 8;
        p0 ^= r[0]; p1 ^= r[1]; p2 ^= r[2]; p3 ^= r[3];
        p4 ^= r[4]; p5 ^= r[5]; p6 ^= r[6]; p7 ^= r[7];
    }
    pos[0] = p0; pos[1] = p1; pos[2] = p2; pos[3] = p3;
    pos[4] = p4; pos[5] = p5; pos[6] = p6; pos[7] = p7;
}

} // namespace scalar
} // namespace vantage::simd

#endif // VANTAGE_SIMD_KERNELS_H_

/**
 * @file
 * Runtime-dispatched SIMD kernels for the hot plane scans.
 *
 * The three scans that dominate the miss path — the lookup
 * tag-compare, the Vantage demotion pass over a candidate list, and
 * the LRU victim folds — all stream over the 16-byte SoA hot plane
 * (and the 8-byte cold plane), which was laid out to be scanned with
 * vectors. This module provides AVX2 and NEON implementations of
 * those scans plus a scalar reference, selected once at startup by
 * CPU detection so one binary runs everywhere. The choice can be
 * forced with VANTAGE_SIMD=avx2|neon|scalar for parity testing.
 *
 * Every kernel is digest-neutral: for any input, every backend
 * returns exactly what the scalar reference returns (first-match /
 * first-wins tie semantics included), so victim choices — and hence
 * the pinned golden digests — are bit-identical across backends.
 */

#ifndef VANTAGE_SIMD_SIMD_H_
#define VANTAGE_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "array/cache_array.h"
#include "array/candidate_buf.h"
#include "common/types.h"

namespace vantage::simd {

// The kernels address the planes with raw offset arithmetic; pin the
// layout they assume.
static_assert(offsetof(Line, addr) == 0 && offsetof(Line, part) == 8 &&
                  offsetof(Line, rank) == 12 && sizeof(Line) == 16,
              "SIMD kernels assume the {addr, part, rank} hot-line "
              "layout");
static_assert(sizeof(LineCold) == 8,
              "SIMD kernels assume one qword per cold line");
static_assert(offsetof(Candidate, slot) == 0 && sizeof(Candidate) == 8,
              "SIMD kernels assume {slot, parent} candidate layout");

/** Dispatch levels, ordered roughly by preference. */
enum class Level : std::uint8_t { Scalar = 0, Avx2 = 1, Neon = 2 };

/**
 * The dispatched kernel table. All kernels share scalar-identical
 * semantics:
 *
 * - findTag: index of the first of `n` consecutive hot lines whose
 *   tag equals `addr`, or -1 (set-associative lookup within a set).
 * - findTagAt: same, but over `n` precomputed slots into the hot
 *   plane (zcache lookup over the way positions).
 * - classify: one pass over a candidate list gathering
 *   parts[i] / ranks[i] from the hot plane and building bitmask i ->
 *   valid and i -> (part == kUnmanagedPart) summaries (the Vantage
 *   demotion pre-scan). n <= 64 so the masks fit one word.
 * - oldestRank: first index maximizing the coarse-timestamp age
 *   (ts - rank) mod 256 over a candidate list (CoarseLru fold).
 * - minLastAccess: first index minimizing the cold-plane lastAccess
 *   stamp over a candidate list (ExactLru fold).
 * - xorRows8: the W == 8 batched way hash — XOR eight 8-word rows of
 *   the interleaved walk tables into pos[0..7].
 */
struct Ops
{
    std::int32_t (*findTag)(const Line *lines, std::uint32_t n,
                            Addr addr);
    std::int32_t (*findTagAt)(const Line *lines, const LineId *slots,
                              std::uint32_t n, Addr addr);
    void (*classify)(const Line *lines, const Candidate *cands,
                     std::uint32_t n, std::uint32_t *parts,
                     std::uint8_t *ranks, std::uint64_t *valid_mask,
                     std::uint64_t *unmanaged_mask);
    std::int32_t (*oldestRank)(const Line *lines,
                               const Candidate *cands, std::uint32_t n,
                               std::uint8_t current_ts);
    std::int32_t (*minLastAccess)(const LineCold *cold,
                                  const Candidate *cands,
                                  std::uint32_t n);
    void (*xorRows8)(const std::uint32_t *walk_tables, Addr addr,
                     std::uint32_t *pos);
};

namespace detail {
extern const Ops *g_active;
extern Level g_level;
} // namespace detail

/** The active kernel table (resolved once before main()). */
inline const Ops &
ops()
{
    return *detail::g_active;
}

/** The active dispatch level. */
inline Level
level()
{
    return detail::g_level;
}

/** Printable name of a level ("scalar", "avx2", "neon"). */
const char *levelName(Level level);

/** Printable name of the active level. */
const char *levelName();

/**
 * The kernel table for `level`, or nullptr when this host cannot run
 * it. Lets parity tests drive every available backend directly
 * without touching the global dispatch.
 */
const Ops *opsFor(Level level);

/**
 * Force the active dispatch level (parity tests, fuzz sweeps).
 * Returns false — leaving the dispatch untouched — when the host
 * cannot run `level`. Not thread-safe: switch only while no
 * simulation threads are running.
 */
bool setLevelForTest(Level level);

} // namespace vantage::simd

#endif // VANTAGE_SIMD_SIMD_H_

/**
 * @file
 * NEON kernels for the hot plane scans (AArch64).
 *
 * NEON is baseline on AArch64, so no function-level target attributes
 * are needed. NEON has no gather instructions: the scatter-indexed
 * kernels (zcache lookup, candidate classification, the LRU folds
 * over scattered slots) reuse the scalar references from kernels.h —
 * their loads are pointer-chases either way, and sharing the code
 * guarantees parity by construction. The kernels that stream
 * contiguous memory (the set-associative tag compare and the W == 8
 * batched way hash) are genuinely vectorized.
 */

#include "simd/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace vantage::simd {
namespace {

std::int32_t
findTagNeon(const Line *lines, std::uint32_t n, Addr addr)
{
    const uint64x2_t want = vdupq_n_u64(addr);
    const std::uint64_t *const base =
        reinterpret_cast<const std::uint64_t *>(lines);
    std::uint32_t i = 0;
    for (; i + 2 <= n; i += 2) {
        // vld2q deinterleaves two 16-byte lines into {tags, metas}.
        const uint64x2x2_t v = vld2q_u64(base + std::size_t{i} * 2);
        const uint64x2_t eq = vceqq_u64(v.val[0], want);
        if (vgetq_lane_u64(eq, 0) != 0) {
            return static_cast<std::int32_t>(i);
        }
        if (vgetq_lane_u64(eq, 1) != 0) {
            return static_cast<std::int32_t>(i + 1);
        }
    }
    for (; i < n; ++i) {
        if (lines[i].addr == addr) {
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

void
xorRows8Neon(const std::uint32_t *walk_tables, Addr addr,
             std::uint32_t *pos)
{
    const std::uint32_t *const t = walk_tables;
    const std::uint32_t *r = t + (addr & 0xff) * 8;
    uint32x4_t lo = vld1q_u32(r);
    uint32x4_t hi = vld1q_u32(r + 4);
    for (std::uint32_t byte = 1; byte < 8; ++byte) {
        r = t + ((std::uint64_t{byte} << 8) |
                 ((addr >> (byte * 8)) & 0xff)) *
                    8;
        lo = veorq_u32(lo, vld1q_u32(r));
        hi = veorq_u32(hi, vld1q_u32(r + 4));
    }
    vst1q_u32(pos, lo);
    vst1q_u32(pos + 4, hi);
}

} // namespace

const Ops kNeonOps = {
    &findTagNeon,        &scalar::findTagAt,
    &scalar::classify,   &scalar::oldestRank,
    &scalar::minLastAccess, &xorRows8Neon,
};

} // namespace vantage::simd

#endif // __aarch64__

/**
 * @file
 * Partition QoS engine: per-partition SLO evaluation over epoch
 * snapshots, with raise/escalate/clear violation tracking.
 *
 * The engine is a pure consumer of the snapshot layer
 * (stats/snapshot.h): each step() takes the latest StatsSnapshot,
 * derives the epoch delta against the previous one, discovers
 * per-partition metric buckets by path shape (`<base>.partN.<leaf>`),
 * and evaluates each bucket against its SLO:
 *
 *  - Slack: occupancy above the paper's R_max bound — ActualSize
 *    exceeds TargetSize * (1 + slackFrac) (Sec. 4.1; a partition that
 *    the controller cannot bring back inside its slack band).
 *  - ApertureSaturation: aperture at/above a basis-point ceiling,
 *    i.e. the Eq. 7 transfer function pinned at A_max — demotions are
 *    maxed out and the partition is still over target.
 *  - MissRate: per-epoch miss rate degraded beyond a fraction of the
 *    recorded baseline (the first baselineEpochs epochs with traffic).
 *  - Latency: serve-path p99 frame latency above a microsecond bound
 *    (fed by the serve layer via recordLatency(); snapshots carry no
 *    percentiles).
 *
 * Violations are stateful: raised on the first offending epoch
 * (Warning), escalated to Critical after critEpochs consecutive
 * offending epochs, cleared on the first clean one; every transition
 * is handed to the sink callback and kept in a bounded history. Like
 * the decision audit ring the engine only reads — attached to a run
 * it leaves access digests bit-identical (DESIGN.md §14).
 *
 * Threading: step()/recordLatency() are single-writer (the thread
 * driving the simulation or serve loop). The violation totals are
 * plain u64 counters registered by raw pointer, so a metrics sampler
 * may read them concurrently with relaxed loads; active()/history()
 * are writer-thread-only.
 */

#ifndef VANTAGE_OBS_QOS_H_
#define VANTAGE_OBS_QOS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/snapshot.h"

namespace vantage {

class StatsRegistry;

/** Which SLO a violation is against. */
enum class QosKind : std::uint8_t {
    Slack = 0,
    ApertureSaturation = 1,
    MissRate = 2,
    Latency = 3,
};

constexpr std::size_t kQosKinds = 4;

/** Stable lower_snake name ("slack", "aperture_saturation", ...). */
const char *qosKindName(QosKind kind);

enum class QosSeverity : std::uint8_t { Warning = 0, Critical = 1 };

const char *qosSeverityName(QosSeverity sev);

/**
 * Per-partition SLO. Negative fields are disabled; parse/merge only
 * overwrite fields a spec clause actually set.
 */
struct QosSlo
{
    /** Max occupancy overshoot: violated when actual > target *
     *  (1 + slackFrac) with target > 0. */
    double slackFrac = -1.0;
    /** Aperture ceiling in basis points of the Eq. 7 transfer
     *  function: violated when aperture_bp >= this. */
    double apertureCritBp = -1.0;
    /** Max miss-rate degradation vs the recorded baseline: violated
     *  when epoch miss rate > baseline * (1 + missRateDegrade). */
    double missRateDegrade = -1.0;
    /** Serve-path p99 frame latency bound, microseconds. */
    double maxLatencyUs = -1.0;

    /** Overlay `other`'s set (>= 0) fields onto this one. */
    void merge(const QosSlo &other);
};

struct QosConfig
{
    /** Default SLO for every partition. */
    QosSlo def;
    /** Per-partition overrides (merged over the default). */
    std::map<std::uint32_t, QosSlo> perPart;
    /** Epochs (with traffic) averaged into the miss-rate baseline. */
    std::uint32_t baselineEpochs = 3;
    /** Consecutive offending epochs before Warning -> Critical. */
    std::uint32_t critEpochs = 3;
    /** Partition slots pre-sized for per-part violation counters. */
    std::uint32_t maxParts = 64;
    /** Bounded event history retained for queries/output. */
    std::size_t historyCapacity = 256;
};

/**
 * Parse an SLO spec string into `cfg`:
 *
 *   spec    := clause (';' clause)*
 *   clause  := [part ':'] kv (',' kv)*
 *   kv      := key '=' value
 *   key     := slack | aperture_bp | missrate | latency_us
 *
 * Clauses without a partition prefix set the default SLO; `N:`
 * clauses override partition N. Example:
 *   "slack=0.2,missrate=0.5;0:slack=0.1;3:latency_us=500"
 * @return false (with `err` set) on malformed input.
 */
bool parseSloSpec(const std::string &spec, QosConfig &cfg,
                  std::string &err);

/** One active or historical violation. */
struct QosViolation
{
    /** Metric bucket the violation is about ("vantage.part2"). */
    std::string bucket;
    std::uint32_t part = 0;
    QosKind kind = QosKind::Slack;
    QosSeverity severity = QosSeverity::Warning;
    /** Observed value and the SLO bound it broke, in the kind's
     *  native unit (lines-over-bound fraction, bp, rate, us). */
    double value = 0.0;
    double threshold = 0.0;
    /** Snapshot epoch the violation was raised in. */
    std::uint64_t sinceEpoch = 0;
    /** Snapshot epoch of the latest evaluation (clear epoch once
     *  cleared). */
    std::uint64_t epoch = 0;
    /** Consecutive offending epochs so far. */
    std::uint64_t durationEpochs = 0;
    bool active = false;
};

enum class QosEventType : std::uint8_t {
    Raise = 0,
    Escalate = 1,
    Clear = 2,
};

const char *qosEventTypeName(QosEventType type);

/** A violation state transition, as handed to the sink. */
struct QosEvent
{
    QosEventType type = QosEventType::Raise;
    QosViolation violation;
};

/** One-line JSON rendering of an event (JSONL output, heartbeats). */
std::string qosEventJson(const QosEvent &event);

struct DecisionRecord;

/** One-line JSON rendering of an audit record (--qos-out tail). */
std::string decisionJson(const DecisionRecord &rec);

/** Snapshot-driven SLO rule engine. */
class QosEngine
{
  public:
    using Sink = std::function<void(const QosEvent &)>;

    explicit QosEngine(QosConfig cfg = QosConfig{});

    /** Violation-transition callback; invoked from within step(). */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    /**
     * Feed the latest serve-path p99 frame latency for a partition
     * (microseconds); evaluated against maxLatencyUs at the next
     * step(). Negative clears the sample.
     */
    void recordLatency(std::uint32_t part, double p99_us);

    /**
     * Evaluate one epoch: delta `cur` against the previous snapshot,
     * discover `<base>.partN.<leaf>` buckets, update violation state,
     * emit transitions. The first call only arms the baseline.
     */
    void step(const StatsSnapshot &cur);

    /** Currently-active violations (writer thread only). */
    std::vector<QosViolation> active() const;

    /** Recent transitions, oldest first (writer thread only). */
    const std::deque<QosEvent> &history() const { return history_; }

    /** Raise events ever emitted (monotonic). */
    std::uint64_t violationsTotal() const { return raiseTotal_; }

    std::uint64_t totalOf(QosKind kind) const
    {
        return kindTotals_[static_cast<std::size_t>(kind)];
    }

    /** Raise events ever emitted about `part` (0 beyond maxParts). */
    std::uint64_t totalForPart(std::uint32_t part) const
    {
        return part < partTotals_.size() ? partTotals_[part] : 0;
    }

    /** Currently-active violations about `part` (writer thread). */
    std::uint64_t activeForPart(std::uint32_t part) const;

    /**
     * Set (or with `us` <= 0 clear) partition `part`'s p99 latency SLO
     * at runtime — the serve layer calls this when a HELLO carries a
     * QoS block. Writer thread only.
     */
    void setLatencySlo(std::uint32_t part, double us);

    /** step() calls so far. */
    std::uint64_t epochsSeen() const { return epochsSeen_; }

    /**
     * Register violation counters under `prefix` (e.g. "vantage.slo"):
     * `<prefix>.violations_total`, per-kind totals, an active-count
     * gauge, and guarded `<prefix>.partN.violations_total` series
     * that appear once partition N is observed. Call before sampling
     * starts; the engine must outlive the registry's use.
     */
    void registerMetrics(StatsRegistry &reg, const std::string &prefix);

  private:
    /** Per-bucket, per-kind violation state machine. */
    struct RuleState
    {
        std::uint64_t consecutive = 0;
        QosViolation viol;
    };

    struct Bucket
    {
        std::uint32_t part = 0;
        /** Baseline miss-rate accumulation. */
        double baselineMisses = 0.0;
        double baselineAccesses = 0.0;
        std::uint32_t baselineEpochs = 0;
        bool baselineFrozen = false;
        double baselineMissRate = -1.0;
        RuleState rules[kQosKinds];
    };

    const QosSlo &sloFor(std::uint32_t part) const;
    void evaluate(const std::string &bucket_path, Bucket &bucket,
                  QosKind kind, bool offending, double value,
                  double threshold, std::uint64_t epoch);
    void emit(QosEventType type, const QosViolation &viol);

    QosConfig cfg_;
    Sink sink_;
    StatsSnapshot prev_;
    bool havePrev_ = false;
    std::uint64_t epochsSeen_ = 0;
    std::map<std::string, Bucket> buckets_;
    std::map<std::uint32_t, double> latencyP99Us_;
    std::deque<QosEvent> history_;

    // Metrics (sampler-readable raw u64s / single words).
    std::uint64_t raiseTotal_ = 0;
    std::uint64_t kindTotals_[kQosKinds] = {0, 0, 0, 0};
    std::vector<std::uint64_t> partTotals_;
    std::vector<std::uint8_t> partSeen_;
    std::uint64_t activeCount_ = 0;
};

} // namespace vantage

#endif // VANTAGE_OBS_QOS_H_

#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "common/log.h"
#include "stats/histogram.h"

namespace vantage {

namespace {

/** Split a dotted path into segments (no empty segments expected;
 *  registry paths are validated at registration). */
std::vector<std::string>
segmentsOf(const std::string &path)
{
    std::vector<std::string> segs;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            segs.push_back(path.substr(start));
            return segs;
        }
        segs.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
}

bool
allDigits(const std::string &s)
{
    if (s.empty()) return false;
    for (const char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
            return false;
        }
    }
    return true;
}

/**
 * `part3` / `bank0` / `core12` / `way4` → {key, index}. These are
 * the index-bearing segment shapes the simulator's registries emit.
 */
bool
indexedSegment(const std::string &seg, std::string &key,
               std::string &index)
{
    static const char *const kKeys[] = {"part", "bank", "core", "way"};
    for (const char *k : kKeys) {
        const std::size_t n = std::string(k).size();
        if (seg.size() > n && seg.compare(0, n, k) == 0 &&
            allDigits(seg.substr(n))) {
            key = k;
            index = seg.substr(n);
            return true;
        }
    }
    return false;
}

} // namespace

std::string
promSanitizeName(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty()) {
        out.push_back('_');
    }
    if (std::isdigit(static_cast<unsigned char>(out.front()))) {
        out.insert(out.begin(), '_');
    }
    return out;
}

std::string
promEscapeLabel(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

PromName
promName(const std::string &dotted_path)
{
    PromName out;
    std::string name;
    const std::vector<std::string> segs = segmentsOf(dotted_path);
    for (std::size_t i = 0; i < segs.size(); ++i) {
        const std::string &seg = segs[i];
        std::string key, index;
        if (indexedSegment(seg, key, index)) {
            out.labels.push_back({key, index});
            continue;
        }
        if (allDigits(seg) && !name.empty()) {
            // `core.0.ipc` style: the parent segment names the label
            // and stays in the metric name.
            std::string parent = segs[i - 1];
            out.labels.push_back({promSanitizeName(parent), seg});
            continue;
        }
        if (!name.empty()) {
            name.push_back('_');
        }
        name += seg;
    }
    out.name = promSanitizeName(name);
    return out;
}

PromDoc::Metric &
PromDoc::metricFor(const std::string &name, Type type)
{
    Metric &m = metrics_[name];
    if (m.samples.empty() && m.type == Type::Untyped) {
        m.type = type;
    }
    return m;
}

void
PromDoc::add(const std::string &name, std::vector<PromLabel> labels,
             Type type, double value)
{
    Metric &m = metricFor(name, type);
    m.samples.push_back({"", std::move(labels), value});
}

void
PromDoc::addSummary(const std::string &name,
                    std::vector<PromLabel> labels,
                    const Histogram &hist)
{
    // Snapshot count/sum first: the histogram may be concurrently
    // updated, and a count of 0 must suppress the quantile samples
    // (their NaNs would otherwise render as NaN quantiles, which is
    // legal but useless).
    const std::uint64_t count = hist.count();
    const std::uint64_t sum = hist.sum();
    Metric &m = metricFor(name, Type::Summary);
    if (count != 0) {
        static constexpr double kQuantiles[] = {0.5, 0.9, 0.99};
        static const char *const kQuantileText[] = {"0.5", "0.9",
                                                    "0.99"};
        for (std::size_t i = 0; i < 3; ++i) {
            const double q = hist.quantile(kQuantiles[i]);
            if (std::isnan(q)) {
                continue;
            }
            std::vector<PromLabel> ql = labels;
            ql.push_back({"quantile", kQuantileText[i]});
            m.samples.push_back({"", std::move(ql), q});
        }
    }
    // _sum/_count live inside the summary family: same TYPE line,
    // suffixed sample names, no quantile label.
    m.samples.push_back({"_sum", labels, static_cast<double>(sum)});
    m.samples.push_back(
        {"_count", std::move(labels), static_cast<double>(count)});
}

std::string
PromDoc::formatValue(double v)
{
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
PromDoc::writeSample(std::ostream &out, const std::string &name,
                     const Sample &sample)
{
    out << name << sample.suffix;
    if (!sample.labels.empty()) {
        out << '{';
        for (std::size_t i = 0; i < sample.labels.size(); ++i) {
            if (i != 0) out << ',';
            out << sample.labels[i].key << "=\""
                << promEscapeLabel(sample.labels[i].value) << '"';
        }
        out << '}';
    }
    out << ' ' << formatValue(sample.value) << '\n';
}

void
PromDoc::write(std::ostream &out) const
{
    for (const auto &[name, metric] : metrics_) {
        const char *type = nullptr;
        switch (metric.type) {
          case Type::Counter:
            type = "counter";
            break;
          case Type::Gauge:
            type = "gauge";
            break;
          case Type::Summary:
            type = "summary";
            break;
          case Type::Untyped:
            type = "untyped";
            break;
        }
        out << "# TYPE " << name << ' ' << type << '\n';
        for (const Sample &sample : metric.samples) {
            writeSample(out, name, sample);
        }
    }
}

} // namespace vantage

#include "obs/metrics_service.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/hp_alloc.h"
#include "common/log.h"
#include "obs/prometheus.h"
#include "simd/simd.h"
#include "stats/registry.h"

namespace vantage {

MetricsService::MetricsService(MetricsServiceConfig cfg)
    : cfg_(std::move(cfg)), startTime_(std::chrono::steady_clock::now())
{
    if (cfg_.epochMillis == 0) {
        cfg_.epochMillis = 1;
    }
}

MetricsService::~MetricsService()
{
    stop();
}

double
MetricsService::nowSeconds() const
{
    const auto dt = std::chrono::steady_clock::now() - startTime_;
    return std::chrono::duration<double>(dt).count();
}

bool
MetricsService::start(std::string &error)
{
    if (running_.load()) {
        error = "metrics service already running";
        return false;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        error = "bad bind address: " + cfg_.bindAddress;
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        error = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }
    if (::listen(fd, 8) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }

    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &blen) == 0) {
        port_ = ntohs(bound.sin_port);
    }

    listenFd_ = fd;
    running_.store(true);
    sampler_ = std::thread([this] { samplerLoop(); });
    server_ = std::thread([this] { serverLoop(); });
    return true;
}

void
MetricsService::stop()
{
    if (!running_.exchange(false)) {
        return;
    }
    samplerCv_.notify_all();
    if (listenFd_ >= 0) {
        // Unblock the accept loop; close happens after the join so a
        // racing accept never sees a recycled descriptor.
        ::shutdown(listenFd_, SHUT_RDWR);
    }
    if (sampler_.joinable()) {
        sampler_.join();
    }
    if (server_.joinable()) {
        server_.join();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
MetricsService::addSource(const std::string &job,
                          const StatsRegistry *reg)
{
    if (reg == nullptr) {
        return;
    }
    Source src;
    src.job = job;
    src.reg = reg;
    src.prev = takeSnapshot(*reg, 0, nowSeconds());
    std::lock_guard<std::mutex> lock(mutex_);
    sources_.push_back(std::move(src));
}

void
MetricsService::removeSource(const StatsRegistry *reg)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        if (sources_[i].reg == reg) {
            sources_.erase(sources_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

void
MetricsService::sampleAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Source &src : sources_) {
        StatsSnapshot cur = takeSnapshot(
            *src.reg, src.prev.epoch + 1, nowSeconds());
        src.delta = deltaBetween(src.prev, cur);
        src.prev = std::move(cur);
        src.epochsSampled++;
    }
    epochs_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsService::samplerLoop()
{
    const auto period = std::chrono::milliseconds(cfg_.epochMillis);
    std::unique_lock<std::mutex> lock(samplerMutex_);
    while (running_.load()) {
        samplerCv_.wait_for(lock, period,
                            [this] { return !running_.load(); });
        if (!running_.load()) {
            return;
        }
        sampleAll();
    }
}

std::string
MetricsService::render()
{
    PromDoc doc;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Source &src : sources_) {
            const std::vector<PromLabel> jobLabel = {
                {"job", src.job}};

            // Scalars: latest sampled value, plus a *_per_second
            // gauge for counters once a delta window exists.
            for (const auto &[path, sample] : src.prev.values) {
                PromName pn = promName(path);
                std::vector<PromLabel> labels = jobLabel;
                labels.insert(labels.end(), pn.labels.begin(),
                              pn.labels.end());
                doc.add(pn.name, labels,
                        sample.isCounter ? PromDoc::Type::Counter
                                         : PromDoc::Type::Gauge,
                        sample.value);
                if (!sample.isCounter) {
                    continue;
                }
                const auto it = src.delta.entries.find(path);
                if (it == src.delta.entries.end()) {
                    continue;
                }
                const double rate = it->second.rate;
                if (std::isfinite(rate)) {
                    doc.add(pn.name + "_per_second",
                            std::move(labels), PromDoc::Type::Gauge,
                            rate);
                }
            }

            // Histograms render live (they are not part of the
            // scalar snapshot): quantiles plus _sum/_count.
            src.reg->forEachHistogram(
                [&doc, &jobLabel](const std::string &path,
                                  const Histogram &hist) {
                    PromName pn = promName(path);
                    std::vector<PromLabel> labels = jobLabel;
                    labels.insert(labels.end(), pn.labels.begin(),
                                  pn.labels.end());
                    doc.addSummary(pn.name, std::move(labels), hist);
                });

            // Strings become *_info{value="..."} 1 marker gauges.
            src.reg->forEachString(
                [&doc, &jobLabel](const std::string &path,
                                  const std::string &text) {
                    PromName pn = promName(path);
                    std::vector<PromLabel> labels = jobLabel;
                    labels.insert(labels.end(), pn.labels.begin(),
                                  pn.labels.end());
                    labels.push_back({"value", text});
                    doc.add(pn.name + "_info", std::move(labels),
                            PromDoc::Type::Gauge, 1.0);
                });

            doc.add("vsim_exporter_source_epochs",
                    {{"job", src.job}}, PromDoc::Type::Counter,
                    static_cast<double>(src.epochsSampled));
        }
    }

    doc.add("vsim_exporter_epochs_total", {}, PromDoc::Type::Counter,
            static_cast<double>(epochs()));
    doc.add("vsim_exporter_scrapes_total", {}, PromDoc::Type::Counter,
            static_cast<double>(scrapes()));
    doc.add("vsim_exporter_epoch_seconds", {}, PromDoc::Type::Gauge,
            static_cast<double>(cfg_.epochMillis) / 1000.0);
    // Which hot-path kernels this process is actually running: lets
    // dashboards split fleets by dispatch level when comparing
    // throughput.
    doc.add("vantage_build_info",
            {{"simd", simd::levelName()},
             {"hugepages", hugePagesEnabled() ? "on" : "off"}},
            PromDoc::Type::Gauge, 1.0);

    std::ostringstream out;
    doc.write(out);
    return out.str();
}

void
MetricsService::handleClient(int fd)
{
    // Read until the end of the request headers (or a small cap —
    // scrape requests are tiny).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16384) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            break;
        }
        req.append(buf, static_cast<std::size_t>(n));
        if (req.find("\n\n") != std::string::npos) {
            break;
        }
    }

    std::string method, path;
    {
        std::istringstream line(req.substr(0, req.find('\n')));
        line >> method >> path;
    }
    const std::size_t q = path.find('?');
    if (q != std::string::npos) {
        path.resize(q);
    }

    std::string body, status;
    if (method == "GET" && (path == "/metrics" || path == "/")) {
        scrapes_.fetch_add(1, std::memory_order_relaxed);
        body = render();
        status = "200 OK";
    } else {
        body = "not found; try /metrics\n";
        status = "404 Not Found";
    }

    std::ostringstream resp;
    resp << "HTTP/1.1 " << status << "\r\n"
         << "Content-Type: text/plain; version=0.0.4; "
            "charset=utf-8\r\n"
         << "Content-Length: " << body.size() << "\r\n"
         << "Connection: close\r\n\r\n"
         << body;
    const std::string out = resp.str();

    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            break;
        }
        sent += static_cast<std::size_t>(n);
    }
    ::close(fd);
}

void
MetricsService::serverLoop()
{
    while (running_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (!running_.load()) {
                return;
            }
            if (errno == EINTR || errno == ECONNABORTED) {
                continue;
            }
            warn("metrics: accept failed: %s",
                 std::strerror(errno));
            return;
        }
        handleClient(fd);
    }
}

} // namespace vantage

/**
 * @file
 * Controller-introspection hook.
 *
 * A component that implements Introspectable publishes its live
 * internal state — the quantities an operator watches while a
 * long-running simulation converges — into a StatsRegistry under a
 * caller-chosen prefix. The live metrics service
 * (obs/metrics_service.h) samples that registry on a fixed cadence
 * and serves it over HTTP in Prometheus text format.
 *
 * The contract differs from the post-mortem registerStats() exports:
 * introspection entries use exporter-facing names (aperture_bp,
 * target_lines, actual_lines, ...) chosen so the dotted paths map to
 * the documented Prometheus metric names, and every registered
 * accessor must tolerate being read from a sampler thread while the
 * owner keeps simulating — register plain counters by raw pointer
 * (relaxed loads) and keep gauge closures to single-word reads.
 *
 * This header is dependency-free on purpose: low layers (partition
 * schemes, allocators) implement the interface without linking
 * against the obs library.
 */

#ifndef VANTAGE_OBS_INTROSPECT_H_
#define VANTAGE_OBS_INTROSPECT_H_

#include <string>

namespace vantage {

class StatsRegistry;

/** Publishes live internal state for the metrics service. */
class Introspectable
{
  public:
    virtual ~Introspectable() = default;

    /**
     * Register live-readable entries under `prefix`. Called at most
     * once per registry, before any sampler thread starts reading.
     */
    virtual void registerIntrospection(
        StatsRegistry &reg, const std::string &prefix) const = 0;
};

} // namespace vantage

#endif // VANTAGE_OBS_INTROSPECT_H_

/**
 * @file
 * Prometheus text-exposition rendering (format version 0.0.4).
 *
 * Two layers:
 *
 *  - promName() maps a dotted stats path to a metric name plus
 *    labels: segments like `part3`, `bank1`, `core2`, `way4` (and
 *    bare numeric segments, labeled by their parent segment) become
 *    labels, the remaining segments join with '_', and illegal
 *    characters sanitize to '_'. So
 *    `cache.l2.vantage.part0.demotions` renders as
 *    `cache_l2_vantage_demotions{part="0"}` and
 *    `vantage.part3.aperture_bp` as `vantage_aperture_bp{part="3"}`.
 *
 *  - PromDoc accumulates samples and writes one well-formed
 *    exposition document: all samples of a metric grouped under a
 *    single `# TYPE` line, label values escaped, non-finite values
 *    spelled NaN/+Inf/-Inf. Histograms export as summaries
 *    (quantile-labeled samples plus `_sum`/`_count`).
 *
 * Rendering is presentation only; it never touches simulation state.
 */

#ifndef VANTAGE_OBS_PROMETHEUS_H_
#define VANTAGE_OBS_PROMETHEUS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vantage {

class Histogram;

/** One metric label. */
struct PromLabel
{
    std::string key;
    std::string value;
};

/** A mapped metric name: base name plus path-derived labels. */
struct PromName
{
    std::string name;
    std::vector<PromLabel> labels;
};

/** Map a dotted stats path to a metric name and labels. */
PromName promName(const std::string &dotted_path);

/** Sanitize into a legal metric name ([a-zA-Z_:][a-zA-Z0-9_:]*). */
std::string promSanitizeName(const std::string &raw);

/** Escape a label value (backslash, double quote, newline). */
std::string promEscapeLabel(const std::string &raw);

/** Accumulates samples; writes one grouped exposition document. */
class PromDoc
{
  public:
    enum class Type { Counter, Gauge, Summary, Untyped };

    /**
     * Add one scalar sample. Samples of the same metric name are
     * grouped on output regardless of insertion order; the first
     * type registered for a name wins (mixed registrations keep
     * their samples but a single TYPE line).
     */
    void add(const std::string &name, std::vector<PromLabel> labels,
             Type type, double value);

    /**
     * Add a histogram as a summary: p50/p90/p99 quantile samples
     * (skipped while the histogram is empty and its quantiles are
     * NaN) plus `_sum` and `_count`. The histogram is read live;
     * concurrent updates may skew quantiles by a sample, which the
     * live endpoint tolerates.
     */
    void addSummary(const std::string &name,
                    std::vector<PromLabel> labels,
                    const Histogram &hist);

    /** Number of distinct metric names so far. */
    std::size_t metricCount() const { return metrics_.size(); }

    /** Write the full exposition document. */
    void write(std::ostream &out) const;

    /** Format one sample value (17 significant digits; NaN/+Inf). */
    static std::string formatValue(double v);

  private:
    struct Sample
    {
        /** "_sum" / "_count" for summary component samples. */
        std::string suffix;
        std::vector<PromLabel> labels;
        double value;
    };

    struct Metric
    {
        Type type = Type::Untyped;
        std::vector<Sample> samples;
    };

    static void writeSample(std::ostream &out,
                            const std::string &name,
                            const Sample &sample);

    Metric &metricFor(const std::string &name, Type type);

    /** Sorted by name, so related metrics render adjacently. */
    std::map<std::string, Metric> metrics_;
};

} // namespace vantage

#endif // VANTAGE_OBS_PROMETHEUS_H_

/**
 * @file
 * Live metrics service: epoch snapshots plus an embedded HTTP
 * endpoint serving Prometheus text exposition.
 *
 * A MetricsService owns two background threads:
 *
 *  - a sampler that, every epoch (default 250 ms), snapshots each
 *    registered StatsRegistry via takeSnapshot() and computes the
 *    delta/rate against the previous epoch. Snapshots read counters
 *    through relaxed atomic loads (see StatsRegistry::readCounter),
 *    so the simulation hot path is untouched and digests stay
 *    bit-identical with the service enabled;
 *
 *  - an HTTP server with a blocking accept loop serving
 *    `GET /metrics` (and `/`) as `text/plain; version=0.0.4`. One
 *    request per connection, no keep-alive, no third-party deps.
 *
 * Multiple sources may be registered, each under a `job` label, so a
 * suite run can expose every in-flight mix from one port. Sources
 * must outlive the service or be removed before destruction; the
 * registries must be fully built before addSource() (registration is
 * not thread-safe against sampling).
 */

#ifndef VANTAGE_OBS_METRICS_SERVICE_H_
#define VANTAGE_OBS_METRICS_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stats/snapshot.h"

namespace vantage {

class StatsRegistry;

struct MetricsServiceConfig
{
    /** TCP port; 0 binds an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** Bind address; loopback by default. */
    std::string bindAddress = "127.0.0.1";
    /** Sampling epoch length. */
    std::uint64_t epochMillis = 250;
};

/** Samples stats registries and serves them over HTTP. */
class MetricsService
{
  public:
    explicit MetricsService(MetricsServiceConfig cfg);
    ~MetricsService();

    MetricsService(const MetricsService &) = delete;
    MetricsService &operator=(const MetricsService &) = delete;

    /**
     * Bind the listen socket and start the sampler and server
     * threads. Returns false (with `error` set) if the socket could
     * not be bound; the service is then inert and stop() is a no-op.
     */
    bool start(std::string &error);

    /** Stop both threads and close the socket. Idempotent. */
    void stop();

    /** Actual bound port (resolves port 0); 0 before start(). */
    int port() const { return port_; }

    /**
     * Register a registry to be sampled, labeled job=`job`. Takes an
     * immediate first snapshot so rates are defined from the second
     * epoch on. The registry must be fully built and must stay alive
     * until removeSource() or stop().
     */
    void addSource(const std::string &job, const StatsRegistry *reg);

    /** Unregister a registry; safe to call for unknown pointers. */
    void removeSource(const StatsRegistry *reg);

    /** Completed sampling epochs across all sources. */
    std::uint64_t epochs() const
    {
        return epochs_.load(std::memory_order_relaxed);
    }

    /** Served /metrics requests. */
    std::uint64_t scrapes() const
    {
        return scrapes_.load(std::memory_order_relaxed);
    }

    /**
     * Render the current exposition document (what /metrics serves).
     * Public so tests can validate output without a socket.
     */
    std::string render();

  private:
    struct Source
    {
        std::string job;
        const StatsRegistry *reg = nullptr;
        StatsSnapshot prev;
        SnapshotDelta delta;
        std::uint64_t epochsSampled = 0;
    };

    void samplerLoop();
    void serverLoop();
    void sampleAll();
    void handleClient(int fd);

    double nowSeconds() const;

    MetricsServiceConfig cfg_;
    std::chrono::steady_clock::time_point startTime_;

    std::mutex mutex_; ///< guards sources_
    std::vector<Source> sources_;

    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> epochs_{0};
    std::atomic<std::uint64_t> scrapes_{0};

    std::condition_variable samplerCv_;
    std::mutex samplerMutex_;

    int listenFd_ = -1;
    int port_ = 0;
    std::thread sampler_;
    std::thread server_;
};

} // namespace vantage

#endif // VANTAGE_OBS_METRICS_SERVICE_H_

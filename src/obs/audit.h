/**
 * @file
 * Controller decision audit trail: a bounded ring of the concrete
 * decisions a partitioning scheme took — repartitions, setpoint
 * moves, forced evictions, throttled inserts, partition lifecycle —
 * each stamped with the controller-register state (the paper's
 * Fig. 4 registers) that caused it.
 *
 * The ring is purely observational: recording reads controller state
 * but never feeds back into a decision, so an attached audit leaves
 * access digests bit-identical (DESIGN.md §14). Like ControllerTrace
 * it attaches via a nullable pointer checked at each decision site;
 * detached (the default) the sites pay one branch.
 *
 * Threading: record() is single-writer — the simulation thread that
 * drives the scheme. The per-kind totals are plain u64 counters
 * registered by raw pointer (see DecisionAudit::registerMetrics in
 * obs/qos.h), so a metrics sampler may read them concurrently with
 * relaxed loads; the ring *contents* (forEach/tail) must only be
 * read from the writer thread, e.g. the serve poll loop answering a
 * STATS frame, or after the run.
 *
 * Header-only (std + the cold traceInstant hook) so the partition
 * and core layers can record without depending on the obs library.
 */

#ifndef VANTAGE_OBS_AUDIT_H_
#define VANTAGE_OBS_AUDIT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/event_trace.h"

namespace vantage {

class StatsRegistry;

/** What the controller decided. */
enum class DecisionKind : std::uint8_t {
    /** A partition's target size changed (UCP step, rebalance,
     *  Sec. 3.4 deletion, CLI --repartition). */
    Repartition = 0,
    /** Setpoint moved away from CurrentTS: fewer demotions wanted. */
    SetpointWiden = 1,
    /** Setpoint moved toward CurrentTS: more demotions wanted. */
    SetpointShrink = 2,
    /** Eviction from the managed region — no unmanaged candidate
     *  (the interference the unmanaged region exists to prevent). */
    ForcedEviction = 3,
    /** Fill diverted to the unmanaged region (Sec. 3.4 option 2). */
    ThrottledInsert = 4,
    /** Tenant lifecycle: slot activated. */
    PartitionCreate = 5,
    /** Tenant lifecycle: slot retired, lines draining. */
    PartitionDestroy = 6,
};

constexpr std::size_t kDecisionKinds = 7;

/** Stable lower_snake name ("repartition", "setpoint_widen", ...). */
inline const char *
decisionKindName(DecisionKind kind)
{
    switch (kind) {
      case DecisionKind::Repartition: return "repartition";
      case DecisionKind::SetpointWiden: return "setpoint_widen";
      case DecisionKind::SetpointShrink: return "setpoint_shrink";
      case DecisionKind::ForcedEviction: return "forced_eviction";
      case DecisionKind::ThrottledInsert: return "throttled_insert";
      case DecisionKind::PartitionCreate: return "partition_create";
      case DecisionKind::PartitionDestroy: return "partition_destroy";
    }
    return "unknown";
}

/**
 * One recorded decision. Register fields the deciding scheme has no
 * equivalent for (way-partitioning has no setpoint) stay zero.
 */
struct DecisionRecord
{
    /** 1-based monotonic sequence number, assigned by record(). */
    std::uint64_t seq = 0;
    /** Controller access clock at the decision (0 when untracked). */
    std::uint64_t accessesSeen = 0;
    DecisionKind kind = DecisionKind::Repartition;
    std::uint32_t part = 0;
    // Register state at the decision (Fig. 4 file for Vantage).
    std::uint64_t targetLines = 0;
    std::uint64_t actualLines = 0;
    std::uint32_t apertureBp = 0; ///< Eq. 7 aperture, basis points.
    std::uint8_t setpointTs = 0;
    std::uint8_t currentTs = 0;
    std::uint32_t candsSeen = 0;
    std::uint32_t candsDemoted = 0;
};

/** Bounded decision ring; oldest records overwritten when full. */
class DecisionAudit
{
  public:
    explicit DecisionAudit(std::size_t capacity = 1024)
        : ring_(capacity ? capacity : 1)
    {
    }

    /** Append one decision; stamps rec.seq. Single-writer. */
    void
    record(DecisionRecord rec)
    {
        rec.seq = ++totalRecords_;
        ++kindTotals_[static_cast<std::size_t>(rec.kind)];
        if (rec.part >= partTotals_.size()) {
            partTotals_.resize(rec.part + 1, 0);
        }
        ++partTotals_[rec.part];
        ring_[head_] = rec;
        head_ = (head_ + 1) % ring_.size();
        if (count_ < ring_.size()) {
            ++count_;
        }
        // Cold site: one relaxed load when tracing is disabled.
        traceInstant(kTraceVantage, decisionKindName(rec.kind),
                     "part", static_cast<double>(rec.part));
    }

    /** Records ever appended (monotonic; == last assigned seq). */
    std::uint64_t total() const { return totalRecords_; }

    std::uint64_t
    totalOf(DecisionKind kind) const
    {
        return kindTotals_[static_cast<std::size_t>(kind)];
    }

    /** Decisions recorded about `part` (0 for never-seen parts). */
    std::uint64_t
    totalForPart(std::uint32_t part) const
    {
        return part < partTotals_.size() ? partTotals_[part] : 0;
    }

    /** Records currently retained, <= capacity. */
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }

    /** Visit retained records, oldest to newest. Writer thread only. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t start =
            (head_ + ring_.size() - count_) % ring_.size();
        for (std::size_t i = 0; i < count_; ++i) {
            fn(ring_[(start + i) % ring_.size()]);
        }
    }

    /** The newest `n` records, oldest first. Writer thread only. */
    std::vector<DecisionRecord>
    tail(std::size_t n) const
    {
        std::vector<DecisionRecord> out;
        const std::size_t take = n < count_ ? n : count_;
        out.reserve(take);
        const std::size_t start =
            (head_ + ring_.size() - take) % ring_.size();
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(ring_[(start + i) % ring_.size()]);
        }
        return out;
    }

    /**
     * Register the decision totals under `prefix` (e.g. "vantage.
     * decision"), yielding vantage_decision_repartition etc. on the
     * Prometheus endpoint. Defined in obs/qos.cc so only callers
     * (drivers) need the obs library; recording layers don't.
     */
    void registerMetrics(StatsRegistry &reg,
                         const std::string &prefix) const;

  private:
    std::vector<DecisionRecord> ring_;
    std::size_t head_ = 0;  ///< Next write position.
    std::size_t count_ = 0; ///< Valid records.
    std::uint64_t totalRecords_ = 0;
    std::array<std::uint64_t, kDecisionKinds> kindTotals_{};
    std::vector<std::uint64_t> partTotals_;
};

} // namespace vantage

#endif // VANTAGE_OBS_AUDIT_H_

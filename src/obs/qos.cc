#include "obs/qos.h"

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>

#include "obs/audit.h"
#include "stats/registry.h"

namespace vantage {

const char *
qosKindName(QosKind kind)
{
    switch (kind) {
      case QosKind::Slack: return "slack";
      case QosKind::ApertureSaturation: return "aperture_saturation";
      case QosKind::MissRate: return "miss_rate";
      case QosKind::Latency: return "latency";
    }
    return "unknown";
}

const char *
qosSeverityName(QosSeverity sev)
{
    return sev == QosSeverity::Critical ? "critical" : "warning";
}

const char *
qosEventTypeName(QosEventType type)
{
    switch (type) {
      case QosEventType::Raise: return "raise";
      case QosEventType::Escalate: return "escalate";
      case QosEventType::Clear: return "clear";
    }
    return "unknown";
}

void
QosSlo::merge(const QosSlo &other)
{
    if (other.slackFrac >= 0.0) slackFrac = other.slackFrac;
    if (other.apertureCritBp >= 0.0) {
        apertureCritBp = other.apertureCritBp;
    }
    if (other.missRateDegrade >= 0.0) {
        missRateDegrade = other.missRateDegrade;
    }
    if (other.maxLatencyUs >= 0.0) maxLatencyUs = other.maxLatencyUs;
}

namespace {

bool
parseClause(const std::string &clause, QosSlo &slo, std::string &err)
{
    std::size_t start = 0;
    while (start <= clause.size()) {
        std::size_t end = clause.find(',', start);
        if (end == std::string::npos) end = clause.size();
        const std::string kv = clause.substr(start, end - start);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= kv.size()) {
            err = "expected key=value, got '" + kv + "'";
            return false;
        }
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        char *valend = nullptr;
        const double v = std::strtod(val.c_str(), &valend);
        if (valend == nullptr || *valend != '\0' || v < 0.0) {
            err = "bad value '" + val + "' for '" + key + "'";
            return false;
        }
        if (key == "slack") {
            slo.slackFrac = v;
        } else if (key == "aperture_bp") {
            slo.apertureCritBp = v;
        } else if (key == "missrate") {
            slo.missRateDegrade = v;
        } else if (key == "latency_us") {
            slo.maxLatencyUs = v;
        } else {
            err = "unknown SLO key '" + key + "'";
            return false;
        }
        if (end == clause.size()) break;
        start = end + 1;
    }
    return true;
}

/**
 * Split `<base>.part<digits>.<leaf>` at the first index-bearing
 * `partN` segment; false for paths without one.
 */
bool
splitPartPath(const std::string &path, std::string &bucket,
              std::uint32_t &part, std::string &leaf)
{
    std::size_t pos = 0;
    while ((pos = path.find(".part", pos)) != std::string::npos) {
        const std::size_t digits = pos + 5;
        std::size_t end = digits;
        while (end < path.size() &&
               std::isdigit(static_cast<unsigned char>(path[end]))) {
            ++end;
        }
        if (end > digits && end < path.size() && path[end] == '.') {
            bucket = path.substr(0, end);
            part = static_cast<std::uint32_t>(
                std::strtoul(path.substr(digits, end - digits).c_str(),
                             nullptr, 10));
            leaf = path.substr(end + 1);
            return true;
        }
        pos = digits;
    }
    return false;
}

/** Per-bucket inputs gathered from one snapshot + its delta. */
struct BucketScan
{
    std::uint32_t part = 0;
    double target = -1.0;
    double actual = -1.0;
    double apertureBp = -1.0;
    double dHits = 0.0;
    double dMisses = 0.0;
    double dInsertions = 0.0;
    bool haveHits = false;
    bool haveMisses = false;
    bool haveInsertions = false;
};

} // namespace

bool
parseSloSpec(const std::string &spec, QosConfig &cfg, std::string &err)
{
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(';', start);
        if (end == std::string::npos) end = spec.size();
        const std::string clause = spec.substr(start, end - start);
        if (clause.empty()) {
            err = "empty SLO clause";
            return false;
        }
        // Optional `N:` partition scope.
        std::size_t body = 0;
        const std::size_t colon = clause.find(':');
        bool scoped = false;
        std::uint32_t part = 0;
        if (colon != std::string::npos && colon > 0) {
            bool digits = true;
            for (std::size_t i = 0; i < colon; ++i) {
                if (!std::isdigit(
                        static_cast<unsigned char>(clause[i]))) {
                    digits = false;
                    break;
                }
            }
            if (digits) {
                scoped = true;
                part = static_cast<std::uint32_t>(std::strtoul(
                    clause.substr(0, colon).c_str(), nullptr, 10));
                body = colon + 1;
            }
        }
        QosSlo slo;
        if (!parseClause(clause.substr(body), slo, err)) {
            return false;
        }
        if (scoped) {
            cfg.perPart[part].merge(slo);
        } else {
            cfg.def.merge(slo);
        }
        if (end == spec.size()) break;
        start = end + 1;
    }
    return true;
}

std::string
qosEventJson(const QosEvent &event)
{
    const QosViolation &v = event.violation;
    std::ostringstream out;
    out << "{\"type\":\"" << qosEventTypeName(event.type)
        << "\",\"kind\":\"" << qosKindName(v.kind)
        << "\",\"severity\":\"" << qosSeverityName(v.severity)
        << "\",\"bucket\":\"" << v.bucket << "\",\"part\":" << v.part
        << ",\"value\":" << v.value << ",\"threshold\":" << v.threshold
        << ",\"since_epoch\":" << v.sinceEpoch
        << ",\"epoch\":" << v.epoch
        << ",\"duration_epochs\":" << v.durationEpochs
        << ",\"active\":" << (v.active ? "true" : "false") << "}";
    return out.str();
}

std::string
decisionJson(const DecisionRecord &rec)
{
    std::ostringstream out;
    out << "{\"type\":\"decision\",\"seq\":" << rec.seq
        << ",\"accesses\":" << rec.accessesSeen << ",\"kind\":\""
        << decisionKindName(rec.kind) << "\",\"part\":" << rec.part
        << ",\"target_lines\":" << rec.targetLines
        << ",\"actual_lines\":" << rec.actualLines
        << ",\"aperture_bp\":" << rec.apertureBp
        << ",\"setpoint_ts\":"
        << static_cast<unsigned>(rec.setpointTs)
        << ",\"current_ts\":" << static_cast<unsigned>(rec.currentTs)
        << ",\"cands_seen\":" << rec.candsSeen
        << ",\"cands_demoted\":" << rec.candsDemoted << "}";
    return out.str();
}

QosEngine::QosEngine(QosConfig cfg)
    : cfg_(std::move(cfg)),
      partTotals_(cfg_.maxParts, 0),
      partSeen_(cfg_.maxParts, 0)
{
}

void
QosEngine::recordLatency(std::uint32_t part, double p99_us)
{
    if (p99_us < 0.0) {
        latencyP99Us_.erase(part);
    } else {
        latencyP99Us_[part] = p99_us;
    }
}

std::uint64_t
QosEngine::activeForPart(std::uint32_t part) const
{
    std::uint64_t n = 0;
    for (const auto &[bucket_path, bucket] : buckets_) {
        if (bucket.part != part) {
            continue;
        }
        for (const RuleState &rs : bucket.rules) {
            if (rs.viol.active) {
                ++n;
            }
        }
    }
    return n;
}

void
QosEngine::setLatencySlo(std::uint32_t part, double us)
{
    if (us <= 0.0) {
        const auto it = cfg_.perPart.find(part);
        if (it != cfg_.perPart.end()) {
            it->second.maxLatencyUs = -1.0;
        }
        return;
    }
    cfg_.perPart[part].maxLatencyUs = us;
}

const QosSlo &
QosEngine::sloFor(std::uint32_t part) const
{
    const auto it = cfg_.perPart.find(part);
    if (it != cfg_.perPart.end()) {
        // perPart entries are merged over the default at parse time
        // only field-wise; resolve lazily here instead.
        static thread_local QosSlo resolved;
        resolved = cfg_.def;
        resolved.merge(it->second);
        return resolved;
    }
    return cfg_.def;
}

void
QosEngine::emit(QosEventType type, const QosViolation &viol)
{
    QosEvent ev;
    ev.type = type;
    ev.violation = viol;
    history_.push_back(ev);
    while (history_.size() > cfg_.historyCapacity) {
        history_.pop_front();
    }
    if (sink_) {
        sink_(ev);
    }
}

void
QosEngine::evaluate(const std::string &bucket_path, Bucket &bucket,
                    QosKind kind, bool offending, double value,
                    double threshold, std::uint64_t epoch)
{
    RuleState &rs = bucket.rules[static_cast<std::size_t>(kind)];
    if (offending) {
        ++rs.consecutive;
        if (!rs.viol.active) {
            rs.viol = QosViolation{};
            rs.viol.bucket = bucket_path;
            rs.viol.part = bucket.part;
            rs.viol.kind = kind;
            rs.viol.severity = QosSeverity::Warning;
            rs.viol.value = value;
            rs.viol.threshold = threshold;
            rs.viol.sinceEpoch = epoch;
            rs.viol.epoch = epoch;
            rs.viol.durationEpochs = rs.consecutive;
            rs.viol.active = true;
            ++raiseTotal_;
            ++kindTotals_[static_cast<std::size_t>(kind)];
            if (bucket.part < partTotals_.size()) {
                ++partTotals_[bucket.part];
            }
            emit(QosEventType::Raise, rs.viol);
        } else {
            rs.viol.value = value;
            rs.viol.threshold = threshold;
            rs.viol.epoch = epoch;
            rs.viol.durationEpochs = rs.consecutive;
            if (rs.viol.severity == QosSeverity::Warning &&
                rs.consecutive >= cfg_.critEpochs) {
                rs.viol.severity = QosSeverity::Critical;
                emit(QosEventType::Escalate, rs.viol);
            }
        }
    } else {
        if (rs.viol.active) {
            rs.viol.active = false;
            rs.viol.epoch = epoch;
            rs.viol.durationEpochs = rs.consecutive;
            emit(QosEventType::Clear, rs.viol);
        }
        rs.consecutive = 0;
    }
}

void
QosEngine::step(const StatsSnapshot &cur)
{
    ++epochsSeen_;
    SnapshotDelta delta;
    if (havePrev_) {
        delta = deltaBetween(prev_, cur);
    }

    // Discover per-partition buckets from the snapshot's path shapes.
    std::map<std::string, BucketScan> scans;
    for (const auto &[path, sample] : cur.values) {
        std::string bucket_path;
        std::uint32_t part = 0;
        std::string leaf;
        if (!splitPartPath(path, bucket_path, part, leaf)) {
            continue;
        }
        BucketScan &scan = scans[bucket_path];
        scan.part = part;
        if (leaf == "target_lines" || leaf == "target") {
            scan.target = sample.value;
        } else if (leaf == "actual_lines" || leaf == "actual") {
            scan.actual = sample.value;
        } else if (leaf == "aperture_bp") {
            scan.apertureBp = sample.value;
        } else if (leaf == "hits" || leaf == "misses" ||
                   leaf == "insertions") {
            double d = 0.0;
            if (havePrev_) {
                const auto it = delta.entries.find(path);
                if (it != delta.entries.end()) {
                    d = it->second.delta;
                }
            }
            if (leaf == "hits") {
                scan.dHits = d;
                scan.haveHits = true;
            } else if (leaf == "misses") {
                scan.dMisses = d;
                scan.haveMisses = true;
            } else {
                scan.dInsertions = d;
                scan.haveInsertions = true;
            }
        }
    }

    const std::uint64_t epoch = cur.epoch;
    std::set<std::string> seen;
    for (auto &[bucket_path, scan] : scans) {
        seen.insert(bucket_path);
        Bucket &bucket = buckets_[bucket_path];
        bucket.part = scan.part;
        if (scan.part < partSeen_.size()) {
            partSeen_[scan.part] = 1;
        }
        const QosSlo &slo = sloFor(scan.part);

        // Slack: occupancy above target * (1 + slackFrac). Retired
        // slots (target 0) drain by design and are never offending.
        if (slo.slackFrac >= 0.0 && scan.target >= 0.0 &&
            scan.actual >= 0.0) {
            const bool off =
                scan.target > 0.0 &&
                scan.actual > scan.target * (1.0 + slo.slackFrac);
            const double overshoot =
                scan.target > 0.0
                    ? scan.actual / scan.target - 1.0
                    : 0.0;
            evaluate(bucket_path, bucket, QosKind::Slack, off,
                     overshoot, slo.slackFrac, epoch);
        }

        // Aperture pinned at/above the configured ceiling.
        if (slo.apertureCritBp >= 0.0 && scan.apertureBp >= 0.0) {
            evaluate(bucket_path, bucket, QosKind::ApertureSaturation,
                     scan.apertureBp >= slo.apertureCritBp,
                     scan.apertureBp, slo.apertureCritBp, epoch);
        }

        // Miss rate vs the recorded baseline. `insertions` stands in
        // for misses on buckets (Vantage introspection) that count
        // fills rather than misses.
        const bool have_miss = scan.haveMisses || scan.haveInsertions;
        if (slo.missRateDegrade >= 0.0 && havePrev_ &&
            scan.haveHits && have_miss) {
            const double misses = scan.haveMisses ? scan.dMisses
                                                  : scan.dInsertions;
            const double accesses = scan.dHits + misses;
            if (accesses > 0.0) {
                const double miss_rate = misses / accesses;
                if (!bucket.baselineFrozen) {
                    bucket.baselineMisses += misses;
                    bucket.baselineAccesses += accesses;
                    if (++bucket.baselineEpochs >=
                        cfg_.baselineEpochs) {
                        bucket.baselineFrozen = true;
                        bucket.baselineMissRate =
                            bucket.baselineMisses /
                            bucket.baselineAccesses;
                    }
                } else {
                    const double bound =
                        bucket.baselineMissRate *
                        (1.0 + slo.missRateDegrade);
                    evaluate(bucket_path, bucket, QosKind::MissRate,
                             miss_rate > bound, miss_rate, bound,
                             epoch);
                }
            }
        }
    }

    // Serve-path latency, fed out-of-band by the server.
    for (const auto &[part, p99] : latencyP99Us_) {
        const QosSlo &slo = sloFor(part);
        if (slo.maxLatencyUs < 0.0) {
            continue;
        }
        const std::string bucket_path =
            "serve.part" + std::to_string(part);
        seen.insert(bucket_path);
        Bucket &bucket = buckets_[bucket_path];
        bucket.part = part;
        if (part < partSeen_.size()) {
            partSeen_[part] = 1;
        }
        evaluate(bucket_path, bucket, QosKind::Latency,
                 p99 > slo.maxLatencyUs, p99, slo.maxLatencyUs, epoch);
    }

    // Buckets that vanished (partition retired, its guarded series
    // dropped): clear whatever was still raised.
    for (auto &[bucket_path, bucket] : buckets_) {
        if (seen.count(bucket_path) != 0) {
            continue;
        }
        for (std::size_t k = 0; k < kQosKinds; ++k) {
            evaluate(bucket_path, bucket, static_cast<QosKind>(k),
                     false, 0.0, 0.0, epoch);
        }
    }

    std::uint64_t active = 0;
    for (const auto &[bucket_path, bucket] : buckets_) {
        for (const RuleState &rs : bucket.rules) {
            if (rs.viol.active) {
                ++active;
            }
        }
    }
    activeCount_ = active;

    prev_ = cur;
    havePrev_ = true;
}

std::vector<QosViolation>
QosEngine::active() const
{
    std::vector<QosViolation> out;
    for (const auto &[bucket_path, bucket] : buckets_) {
        for (const RuleState &rs : bucket.rules) {
            if (rs.viol.active) {
                out.push_back(rs.viol);
            }
        }
    }
    return out;
}

void
QosEngine::registerMetrics(StatsRegistry &reg,
                           const std::string &prefix)
{
    reg.addCounter(prefix + ".violations_total", &raiseTotal_);
    reg.addCounter(prefix + ".epochs", &epochsSeen_);
    for (std::size_t k = 0; k < kQosKinds; ++k) {
        reg.addCounter(prefix + "." +
                           qosKindName(static_cast<QosKind>(k)) +
                           "_total",
                       &kindTotals_[k]);
    }
    reg.addGauge(prefix + ".active", [this] {
        return static_cast<double>(activeCount_);
    });
    for (std::uint32_t p = 0; p < cfg_.maxParts; ++p) {
        const std::string base =
            prefix + ".part" + std::to_string(p);
        reg.addCounter(base + ".violations_total", &partTotals_[p]);
        // Series appear once the partition is first observed.
        reg.addGuard(base, [this, p] { return partSeen_[p] != 0; });
    }
}

void
DecisionAudit::registerMetrics(StatsRegistry &reg,
                               const std::string &prefix) const
{
    reg.addCounter(prefix + ".records_total", &totalRecords_);
    for (std::size_t k = 0; k < kDecisionKinds; ++k) {
        reg.addCounter(
            prefix + "." +
                decisionKindName(static_cast<DecisionKind>(k)) +
                "_total",
            &kindTotals_[k]);
    }
    reg.addGauge(prefix + ".retained", [this] {
        return static_cast<double>(count_);
    });
}

} // namespace vantage

/**
 * @file
 * H3 universal hash family (Carter & Wegman, 1977).
 *
 * An H3 function maps a 64-bit key to a 64-bit value by XORing one
 * random word per set input bit. The family is 2-universal, which is
 * what gives skew-associative caches and zcaches their analytic
 * uniformity properties: candidates drawn through independent H3
 * functions behave like uniform random lines (paper Sec. 3.2).
 *
 * The paper's caches, and modern hashed-index set-associative caches,
 * all use hashing of this style [1, 21].
 */

#ifndef VANTAGE_HASH_H3_H_
#define VANTAGE_HASH_H3_H_

#include <array>
#include <cstdint>

#include "common/rng.h"

namespace vantage {

/**
 * One member of the H3 family, drawn deterministically from a seed.
 *
 * Implemented by tabulation: the 64 random per-bit words are folded
 * into eight 256-entry tables indexed by each input byte, so a hash
 * is 8 table lookups XORed together instead of a loop over set bits.
 * This is exactly the same function, evaluated faster.
 */
class H3Hash
{
  public:
    /** Draw a function; different seeds give independent functions. */
    explicit H3Hash(std::uint64_t seed)
    {
        Rng rng(seed ^ 0x5bd1e995u);
        std::array<std::uint64_t, 64> words;
        for (auto &word : words) {
            word = rng.next();
        }
        for (int byte = 0; byte < 8; ++byte) {
            for (int v = 0; v < 256; ++v) {
                std::uint64_t acc = 0;
                for (int bit = 0; bit < 8; ++bit) {
                    if (v & (1 << bit)) {
                        acc ^= words[byte * 8 + bit];
                    }
                }
                tables_[byte][v] = acc;
            }
        }
    }

    /** Hash a 64-bit key to a 64-bit value. */
    std::uint64_t
    operator()(std::uint64_t key) const
    {
        std::uint64_t out = 0;
        for (int byte = 0; byte < 8; ++byte) {
            out ^= tables_[byte][(key >> (byte * 8)) & 0xff];
        }
        return out;
    }

    /** Hash a key into [0, bound) for a power-of-two bound. */
    std::uint64_t
    mod(std::uint64_t key, std::uint64_t pow2_bound) const
    {
        return (*this)(key) & (pow2_bound - 1);
    }

    /**
     * Raw tabulation word for input byte `byte` holding value `v` —
     * lets callers derive reduced (e.g. premasked) tables that
     * evaluate the identical function. @pre byte < 8, v < 256.
     */
    std::uint64_t
    tableWord(int byte, int v) const
    {
        return tables_[byte][v];
    }

  private:
    std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

} // namespace vantage

#endif // VANTAGE_HASH_H3_H_

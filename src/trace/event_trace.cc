#include "trace/event_trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "stats/json.h"
#include "stats/registry.h"

namespace vantage {

namespace {

/** Default per-thread buffer: 2^18 events (~12 MiB per thread). */
constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

constexpr const char *kCategoryNames[kTraceCategoryCount] = {
    "access", "vantage", "zcache", "alloc", "pool", "suite", "sim",
};

std::size_t envCapacity() {
    const char *env = std::getenv("VANTAGE_TRACE_BUFFER");
    if (env == nullptr || *env == '\0') return kDefaultCapacity;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v == 0) return kDefaultCapacity;
    return static_cast<std::size_t>(v);
}

} // namespace

void TraceSession::enable(std::uint32_t mask,
                          std::size_t per_thread_capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    mask &= kTraceAllCategories;
    if (mask == 0) return;
    if (mask_.load(std::memory_order_relaxed) != 0) {
        // Already armed: widen the mask, keep clock and buffers.
        mask_.fetch_or(mask, std::memory_order_relaxed);
        return;
    }
    capacity_ =
        per_thread_capacity != 0 ? per_thread_capacity : envCapacity();
    epoch_ = std::chrono::steady_clock::now();
    generation_.fetch_add(1, std::memory_order_release);
    mask_.store(mask, std::memory_order_relaxed);
}

void TraceSession::disable() {
    std::lock_guard<std::mutex> lock(mutex_);
    mask_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
    buffers_.clear();
    internStorage_.clear();
    interned_.clear();
}

TraceBuffer *TraceSession::threadBuffer() {
    thread_local TraceBuffer *buffer = nullptr;
    thread_local std::uint64_t generation = 0;
    const std::uint64_t current =
        generation_.load(std::memory_order_acquire);
    if (buffer == nullptr || generation != current) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (mask_.load(std::memory_order_relaxed) == 0) return nullptr;
        const std::uint32_t tid =
            static_cast<std::uint32_t>(buffers_.size()) + 1;
        buffers_.push_back(
            std::make_unique<TraceBuffer>(tid, capacity_));
        buffer = buffers_.back().get();
        generation = current;
    }
    return buffer;
}

const char *TraceSession::intern(const std::string &s) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = interned_.find(s);
    if (it != interned_.end()) return it->second;
    internStorage_.push_back(s);
    const char *ptr = internStorage_.back().c_str();
    interned_.emplace(s, ptr);
    return ptr;
}

void TraceSession::setProcessName(std::string name) {
    std::lock_guard<std::mutex> lock(mutex_);
    processName_ = std::move(name);
}

void TraceSession::setThreadName(const std::string &name) {
    if (TraceBuffer *buf = threadBuffer()) buf->setName(name);
}

std::uint64_t TraceSession::recorded() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &buf : buffers_) total += buf->recorded();
    return total;
}

std::uint64_t TraceSession::dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &buf : buffers_) total += buf->dropped();
    return total;
}

std::size_t TraceSession::threads() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buffers_.size();
}

void TraceSession::writeJson(std::ostream &out) const {
    std::lock_guard<std::mutex> lock(mutex_);

    std::uint64_t total_recorded = 0;
    std::uint64_t total_dropped = 0;
    std::vector<std::pair<const TraceEvent *, std::uint32_t>> events;
    for (const auto &buf : buffers_) {
        const std::uint64_t n = buf->recorded();
        total_recorded += n;
        total_dropped += buf->dropped();
        for (std::uint64_t i = 0; i < n; ++i)
            events.emplace_back(&buf->event(i), buf->tid());
    }
    // Per-buffer order is already chronological; a stable sort merges
    // the threads without reordering equal timestamps within one tid.
    std::stable_sort(events.begin(), events.end(),
                     [](const auto &a, const auto &b) {
                         return a.first->ts < b.first->ts;
                     });

    JsonWriter w(out);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData");
    w.beginObject();
    w.kv("tool", "vantage-sim");
    w.kv("recorded", total_recorded);
    w.kv("dropped", total_dropped);
    w.endObject();
    w.key("traceEvents");
    w.beginArray();

    w.beginObject();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{1});
    w.kv("tid", std::uint64_t{0});
    w.key("args");
    w.beginObject();
    w.kv("name", processName_);
    w.endObject();
    w.endObject();
    for (const auto &buf : buffers_) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", std::uint64_t{1});
        w.kv("tid", std::uint64_t{buf->tid()});
        w.key("args");
        w.beginObject();
        w.kv("name", buf->name().empty()
                         ? "thread-" + std::to_string(buf->tid())
                         : buf->name());
        w.endObject();
        w.endObject();
    }

    for (const auto &[ev, tid] : events) {
        const char phase[2] = {ev->phase, '\0'};
        w.beginObject();
        w.kv("name", ev->name);
        w.kv("cat", categoryName(ev->cat));
        w.kv("ph", static_cast<const char *>(phase));
        // Chrome's ts unit is microseconds; fractional values keep
        // nanosecond resolution.
        w.kv("ts", static_cast<double>(ev->ts) / 1000.0);
        w.kv("pid", std::uint64_t{1});
        w.kv("tid", std::uint64_t{tid});
        if (ev->phase == 'i') w.kv("s", "t");
        if (ev->arg != nullptr || ev->phase == 'C') {
            w.key("args");
            w.beginObject();
            w.kv(ev->arg != nullptr ? ev->arg : "value", ev->value);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << '\n';
}

bool TraceSession::writeJsonFile(const std::string &path) const {
    std::ofstream out(path);
    if (!out) return false;
    writeJson(out);
    return static_cast<bool>(out);
}

void TraceSession::registerStats(StatsRegistry &reg,
                                 const std::string &prefix) const {
    const TraceSession *self = this;
    reg.addCounter(prefix + ".events_recorded",
                   [self] { return self->recorded(); });
    reg.addCounter(prefix + ".events_dropped",
                   [self] { return self->dropped(); });
    reg.addCounter(prefix + ".threads", [self] {
        return static_cast<std::uint64_t>(self->threads());
    });
}

std::uint32_t TraceSession::parseCategories(const std::string &spec,
                                            std::string &error) {
    error.clear();
    std::uint32_t mask = 0;
    std::size_t start = 0;
    bool any = false;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos) end = spec.size();
        const std::string name = spec.substr(start, end - start);
        start = end + 1;
        if (name.empty()) continue;
        any = true;
        if (name == "all") {
            mask = kTraceAllCategories;
            continue;
        }
        bool found = false;
        for (std::uint8_t bit = 0; bit < kTraceCategoryCount; ++bit) {
            if (name == kCategoryNames[bit]) {
                mask |= 1u << bit;
                found = true;
                break;
            }
        }
        if (!found) {
            error = "unknown trace category '" + name +
                    "' (valid: access,vantage,zcache,alloc,pool,"
                    "suite,sim,all)";
            return 0;
        }
    }
    if (!any) {
        error = "empty trace category list";
        return 0;
    }
    return mask;
}

const char *TraceSession::categoryName(std::uint8_t bit) {
    return bit < kTraceCategoryCount ? kCategoryNames[bit] : "?";
}

} // namespace vantage

/**
 * @file
 * End-to-end event tracing: Chrome trace_event / Perfetto export.
 *
 * Every layer of the simulator can emit typed events — span begin/end
 * ('B'/'E'), instants ('i') and counters ('C') — into per-thread
 * ring buffers owned by a process-wide TraceSession. Buffers are
 * single-writer and lock-free on the hot path: recording is a bounds
 * check plus a store; when a buffer fills, further events are dropped
 * and counted (bounded memory, surfaced via trace.events_dropped in
 * the stats registry). The session merges all buffers into a Chrome
 * `trace_event` JSON document (load it at https://ui.perfetto.dev or
 * chrome://tracing) with pid/tid metadata and per-category filtering.
 *
 * Two gating levels, mirroring VANTAGE_PROF:
 *
 *  - Hot-path sites (cache access spans, Vantage demotion/promotion
 *    instants, zcache walk depth) use the VANTAGE_TRACE_* macros,
 *    which compile to nothing unless the build sets
 *    -DVANTAGE_TRACE=ON (VANTAGE_TRACE_ENABLED). The default build
 *    pays zero cost — verified by the micro_overheads baseline
 *    comparison.
 *  - Cold/driver sites (sim phases, pool jobs, allocator decisions,
 *    suite mixes) call TraceSpan/traceInstant directly; when no
 *    session is enabled these cost one relaxed atomic load.
 *
 * Tracing is observational only: it never touches simulator state, so
 * outcome digests are bit-identical with tracing enabled or disabled.
 */

#ifndef VANTAGE_TRACE_EVENT_TRACE_H_
#define VANTAGE_TRACE_EVENT_TRACE_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vantage {

class StatsRegistry;

/** Event categories; a session enables a bitmask of them. */
enum TraceCategory : std::uint32_t {
    kTraceAccess = 1u << 0,  ///< cache access spans (per array)
    kTraceVantage = 1u << 1, ///< demotions, promotions, aperture/setpoint
    kTraceZcache = 1u << 2,  ///< candidate-walk depth instants
    kTraceAlloc = 1u << 3,   ///< UCP/Lookahead reallocation decisions
    kTracePool = 1u << 4,    ///< thread-pool job spans
    kTraceSuite = 1u << 5,   ///< bench-suite mix spans
    kTraceSim = 1u << 6,     ///< warmup/run experiment phases
};

inline constexpr std::uint32_t kTraceAllCategories = (1u << 7) - 1;
inline constexpr std::uint32_t kTraceCategoryCount = 7;

/** Bit index of a single-category mask (for the name table). */
inline std::uint8_t traceCategoryBit(TraceCategory cat) {
    return static_cast<std::uint8_t>(
        std::countr_zero(static_cast<std::uint32_t>(cat)));
}

/**
 * One recorded event. `name` and `arg` must point at storage that
 * outlives the session (string literals, or TraceSession::intern()).
 */
struct TraceEvent {
    const char *name;  ///< event name (span/instant/counter name)
    const char *arg;   ///< argument key, or nullptr for no args
    std::uint64_t ts;  ///< nanoseconds since session enable
    double value;      ///< argument / counter value
    char phase;        ///< 'B', 'E', 'i' or 'C'
    std::uint8_t cat;  ///< category bit index (traceCategoryBit)
};

/**
 * Fixed-capacity single-writer event buffer for one thread. Appends
 * are lock-free; once full, events are dropped and counted. The
 * size/drop counters are atomics only so heartbeats and stats can
 * read them from other threads; full export (TraceSession::writeJson)
 * requires writer quiescence.
 */
class TraceBuffer {
  public:
    TraceBuffer(std::uint32_t tid, std::size_t capacity)
        : tid_(tid), ring_(capacity) {}

    /** Append one event; returns false (and counts a drop) if full. */
    bool push(const TraceEvent &ev) {
        const std::size_t n = size_.load(std::memory_order_relaxed);
        if (n >= ring_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        ring_[n] = ev;
        size_.store(n + 1, std::memory_order_release);
        return true;
    }

    std::uint32_t tid() const { return tid_; }
    std::uint64_t recorded() const {
        return size_.load(std::memory_order_acquire);
    }
    std::uint64_t dropped() const {
        return dropped_.load(std::memory_order_relaxed);
    }
    const TraceEvent &event(std::size_t i) const { return ring_[i]; }

    /** Display name for the owning thread (export metadata). */
    void setName(std::string name) { name_ = std::move(name); }
    const std::string &name() const { return name_; }

  private:
    std::uint32_t tid_;
    std::string name_;
    std::vector<TraceEvent> ring_;
    std::atomic<std::size_t> size_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/**
 * Process-wide tracing session. Disabled by default; enable() arms a
 * category mask and starts the clock. Threads lazily register a
 * TraceBuffer on first event; the session owns the buffers so they
 * survive thread exit (pool workers) until export.
 *
 * enable()/disable()/writeJson() must run while no other thread is
 * recording (the simulator enables before spawning workers and
 * exports after joining them).
 */
class TraceSession {
  public:
    static TraceSession &instance();

    /**
     * Arm tracing for the categories in `mask`. `per_thread_capacity`
     * of 0 means $VANTAGE_TRACE_BUFFER events per thread (default
     * 1<<18). Re-enabling an active session just widens the mask.
     */
    void enable(std::uint32_t mask, std::size_t per_thread_capacity = 0);

    /** Stop recording and discard all buffers. */
    void disable();

    bool enabledAny() const {
        return mask_.load(std::memory_order_relaxed) != 0;
    }
    bool enabled(TraceCategory cat) const {
        return (mask_.load(std::memory_order_relaxed) & cat) != 0;
    }
    std::uint32_t mask() const {
        return mask_.load(std::memory_order_relaxed);
    }

    /** Nanoseconds since enable() (steady clock). */
    std::uint64_t nowNs() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /**
     * The calling thread's buffer, registering one on first use.
     * Returns nullptr when the session is disabled.
     */
    TraceBuffer *threadBuffer();

    /** Copy `s` into session-lifetime storage (for event names). */
    const char *intern(const std::string &s);

    void setProcessName(std::string name);
    /** Name the calling thread in the exported metadata. */
    void setThreadName(const std::string &name);

    std::uint64_t recorded() const;
    std::uint64_t dropped() const;
    std::size_t threads() const;

    /** Chrome trace_event JSON (object form, with metadata). */
    void writeJson(std::ostream &out) const;
    bool writeJsonFile(const std::string &path) const;

    /** trace.events_recorded / events_dropped / threads gauges. */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "trace") const;

    /**
     * Parse a comma-separated category list ("vantage,pool" or
     * "all"). On failure sets `error` and returns 0.
     */
    static std::uint32_t parseCategories(const std::string &spec,
                                         std::string &error);
    /** Name for a category bit index (traceCategoryBit). */
    static const char *categoryName(std::uint8_t bit);

  private:
    TraceSession() = default;

    std::atomic<std::uint32_t> mask_{0};
    std::atomic<std::uint64_t> generation_{0};
    std::chrono::steady_clock::time_point epoch_{};
    std::size_t capacity_ = 0;
    mutable std::mutex mutex_; // buffers_, interned_, processName_
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    std::deque<std::string> internStorage_;
    std::unordered_map<std::string, const char *> interned_;
    std::string processName_ = "vantage";
};

inline TraceSession &TraceSession::instance() {
    static TraceSession session;
    return session;
}

/** Record one event if `cat` is enabled (cold-site helper). */
inline void traceEmit(TraceCategory cat, const char *name, char phase,
                      const char *arg = nullptr, double value = 0.0) {
    TraceSession &s = TraceSession::instance();
    if (!s.enabled(cat)) return;
    if (TraceBuffer *buf = s.threadBuffer())
        buf->push({name, arg, s.nowNs(), value, phase,
                   traceCategoryBit(cat)});
}

inline void traceInstant(TraceCategory cat, const char *name,
                         const char *arg = nullptr, double value = 0.0) {
    traceEmit(cat, name, 'i', arg, value);
}

inline void traceCounter(TraceCategory cat, const char *name,
                         const char *arg, double value) {
    traceEmit(cat, name, 'C', arg, value);
}

/** Name the calling thread if a session is active. */
inline void traceSetThreadName(const std::string &name) {
    TraceSession &s = TraceSession::instance();
    if (s.enabledAny()) s.setThreadName(name);
}

/**
 * RAII 'B'/'E' span. If the begin event is dropped (buffer full) the
 * end event is suppressed too, so surviving pairs stay matched; only
 * spans open across the drop point are left unclosed, which
 * check_trace.py tolerates when drops are reported.
 */
class TraceSpan {
  public:
    TraceSpan(TraceCategory cat, const char *name,
              const char *arg = nullptr, double value = 0.0) {
        TraceSession &s = TraceSession::instance();
        if (!s.enabled(cat)) return;
        buf_ = s.threadBuffer();
        if (buf_ == nullptr) return;
        name_ = name;
        cat_ = traceCategoryBit(cat);
        open_ = buf_->push({name, arg, s.nowNs(), value, 'B', cat_});
    }
    ~TraceSpan() {
        if (open_)
            buf_->push({name_, nullptr, TraceSession::instance().nowNs(),
                        0.0, 'E', cat_});
    }
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceBuffer *buf_ = nullptr;
    const char *name_ = nullptr;
    std::uint8_t cat_ = 0;
    bool open_ = false;
};

// Hot-path hooks: compiled to nothing unless -DVANTAGE_TRACE=ON.
// (Cold sites call TraceSpan / traceInstant directly instead.)
#ifdef VANTAGE_TRACE_ENABLED
#define VANTAGE_TRACE_PASTE2(a, b) a##b
#define VANTAGE_TRACE_PASTE(a, b) VANTAGE_TRACE_PASTE2(a, b)
#define VANTAGE_TRACE_SPAN(cat, name)                                  \
    ::vantage::TraceSpan VANTAGE_TRACE_PASTE(vantage_trace_span_,      \
                                             __LINE__)(cat, name)
#define VANTAGE_TRACE_INSTANT(cat, name, arg, value)                   \
    ::vantage::traceInstant(cat, name, arg,                            \
                            static_cast<double>(value))
#define VANTAGE_TRACE_COUNTER(cat, name, arg, value)                   \
    ::vantage::traceCounter(cat, name, arg,                            \
                            static_cast<double>(value))
#else
#define VANTAGE_TRACE_SPAN(cat, name)                                  \
    do {                                                               \
    } while (0)
#define VANTAGE_TRACE_INSTANT(cat, name, arg, value)                   \
    do {                                                               \
    } while (0)
#define VANTAGE_TRACE_COUNTER(cat, name, arg, value)                   \
    do {                                                               \
    } while (0)
#endif

} // namespace vantage

#endif // VANTAGE_TRACE_EVENT_TRACE_H_

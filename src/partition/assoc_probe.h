/**
 * @file
 * Eviction-priority probe: measures empirical associativity CDFs.
 *
 * The paper's associativity metric is the *eviction priority* of each
 * evicted line — the fraction of eligible lines the policy would
 * rather keep (Sec. 3.2). Tracking exact global ranks is costly, so
 * the probe estimates the quantile by comparing the victim against a
 * random sample of slots using the policy's preference order.
 */

#ifndef VANTAGE_PARTITION_ASSOC_PROBE_H_
#define VANTAGE_PARTITION_ASSOC_PROBE_H_

#include <functional>

#include "array/cache_array.h"
#include "common/rng.h"
#include "replacement/repl_policy.h"
#include "stats/cdf.h"

namespace vantage {

/** Samples eviction priorities into an EmpiricalCdf. */
class AssocProbe
{
  public:
    /**
     * @param samples slots compared per probed eviction.
     * @param seed RNG seed for slot sampling.
     */
    explicit AssocProbe(std::uint32_t samples = 64,
                        std::uint64_t seed = 0x9be)
        : samples_(samples), rng_(seed)
    {}

    /**
     * Record the eviction of the (still-resident) line in
     * `victim_slot`. The estimated priority is the fraction of
     * sampled valid lines (optionally filtered) that the policy
     * prefers to keep over the victim.
     *
     * @param filter restricts the comparison population (e.g. to one
     *        partition's ways); nullptr means all valid lines.
     */
    void
    recordEviction(const CacheArray &array, const ReplPolicy &policy,
                   LineId victim_slot,
                   const std::function<bool(LineId)> &filter = nullptr)
    {
        std::uint32_t seen = 0;
        std::uint32_t kept = 0;
        // Bound the attempts so sparse filters cannot stall the probe.
        const std::uint32_t max_tries = samples_ * 8;
        for (std::uint32_t t = 0; t < max_tries && seen < samples_;
             ++t) {
            const auto slot = static_cast<LineId>(
                rng_.range(array.numLines()));
            const Line &other = array.line(slot);
            if (!other.valid()) {
                continue;
            }
            if (filter && !filter(slot)) {
                continue;
            }
            ++seen;
            // The victim has higher eviction priority than `other`
            // iff the policy would evict the victim first.
            if (policy.prefer(array, victim_slot, slot)) {
                ++kept;
            }
        }
        if (seen == 0) {
            return;
        }
        cdf_.add(static_cast<double>(kept) /
                 static_cast<double>(seen));
    }

    const EmpiricalCdf &cdf() const { return cdf_; }
    EmpiricalCdf &cdf() { return cdf_; }
    void reset() { cdf_.reset(); }

  private:
    std::uint32_t samples_;
    Rng rng_;
    EmpiricalCdf cdf_;
};

} // namespace vantage

#endif // VANTAGE_PARTITION_ASSOC_PROBE_H_

/**
 * @file
 * Way-partitioning / column caching [Chiou et al., DAC 2000].
 *
 * Each partition owns a contiguous range of ways; a fill from
 * partition p may only evict lines residing in p's ways, so the
 * scheme enforces sizes strictly but reduces each partition's
 * associativity to its way count — the central weakness Vantage
 * fixes. The replacement process follows the UCP implementation [19]:
 * LRU among the candidate ways the inserting partition owns.
 *
 * On repartitioning, ways are reassigned immediately but resident
 * lines are displaced only as new fills claim them, which is why the
 * paper's Fig. 8 shows way-partitioning converging slowly after
 * downsizing.
 */

#ifndef VANTAGE_PARTITION_WAY_PARTITION_H_
#define VANTAGE_PARTITION_WAY_PARTITION_H_

#include <memory>

#include "partition/assoc_probe.h"
#include "partition/scheme.h"
#include "replacement/repl_policy.h"

namespace vantage {

/** Strict way-granular partitioning with per-partition LRU. */
class WayPartitioning : public PartitionScheme
{
  public:
    /**
     * @param num_partitions partition count; must be <= total ways.
     * @param total_ways the array's associativity.
     * @param lines_per_way capacity of one way, in lines.
     * @param policy base replacement policy (typically ExactLru).
     */
    WayPartitioning(std::uint32_t num_partitions,
                    std::uint32_t total_ways,
                    std::uint64_t lines_per_way,
                    std::unique_ptr<ReplPolicy> policy);

    std::string name() const override { return "way-partitioning"; }
    std::uint32_t numPartitions() const override { return numParts_; }
    std::uint32_t allocationQuantum() const override { return ways_; }

    void setAllocations(
        const std::vector<std::uint32_t> &units) override;

    void onHit(CacheArray &array, LineId slot,
               PartId accessor) override;
    VictimChoice selectVictim(CacheArray &array, PartId inserting,
                              Addr addr,
                              const CandidateBuf &cands) override;
    void onEvict(CacheArray &array, LineId slot) override;
    void onInsert(CacheArray &array, LineId slot,
                  PartId part) override;

    std::uint64_t actualSize(PartId part) const override;
    std::uint64_t targetSize(PartId part) const override;

    /** First way owned by a partition (for tests). */
    std::uint32_t wayStart(PartId part) const;
    /** Number of ways owned by a partition. */
    std::uint32_t wayCount(PartId part) const;

    /** Attach a per-partition eviction-priority probe. */
    void attachProbe(AssocProbe *probe, PartId part);

    /**
     * Way boundaries must be monotone within the array's ways, and
     * per-partition size counters must match a recount of tagged
     * lines.
     */
    void checkInvariants(const CacheArray &array,
                         InvariantReport &rep) const override;

  private:
    bool ownsWay(PartId part, std::uint32_t way) const;

    std::uint32_t numParts_;
    std::uint32_t ways_;
    std::uint64_t linesPerWay_;
    std::unique_ptr<ReplPolicy> policy_;
    std::vector<std::uint32_t> wayStart_; // numParts_ + 1 boundaries
    std::vector<std::uint64_t> sizes_;
    AssocProbe *probe_ = nullptr;
    PartId probePart_ = kInvalidPart;
    bool warnedNoWays_ = false;
};

} // namespace vantage

#endif // VANTAGE_PARTITION_WAY_PARTITION_H_

/**
 * @file
 * PIPP: promotion/insertion pseudo-partitioning (Xie & Loh, ISCA'09).
 *
 * PIPP manages a per-set recency chain itself (it subsumes the
 * replacement policy — one of its drawbacks per the paper's Table 1).
 * Each partition inserts at a chain position equal to its way
 * allocation; hits promote a line by one position with probability
 * pprom = 3/4; the victim is the line at the bottom of the chain.
 * Partitions with streaming behavior (interval miss ratio >= thetaM)
 * are clamped to one way and insert at the bottom of the chain except
 * with probability pstream = 1/128, limiting their pollution.
 *
 * Configuration matches the paper's evaluation (Sec. 5):
 * pprom = 3/4, thetaM = 12.5%, 1 way per streaming app,
 * pstream = 1/128. Requires a set-associative array.
 */

#ifndef VANTAGE_PARTITION_PIPP_H_
#define VANTAGE_PARTITION_PIPP_H_

#include <vector>

#include "common/rng.h"
#include "partition/scheme.h"

namespace vantage {

/** PIPP configuration knobs. */
struct PippConfig
{
    double pprom = 0.75;      ///< Hit-promotion probability.
    double thetaM = 0.125;    ///< Streaming-detection miss ratio.
    double pstream = 1.0 / 128.0; ///< Normal-insert prob. if streaming.
    std::uint64_t detectInterval = 1u << 16; ///< Accesses per check.
};

/** Promotion/insertion pseudo-partitioning over set-assoc arrays. */
class Pipp : public PartitionScheme
{
  public:
    /**
     * @param num_partitions partition (thread) count.
     * @param ways set associativity of the array.
     * @param lines_per_way lines in one way (for target sizes).
     * @param num_lines total array lines.
     */
    Pipp(std::uint32_t num_partitions, std::uint32_t ways,
         std::uint64_t lines_per_way, std::size_t num_lines,
         const PippConfig &cfg = {}, std::uint64_t seed = 0x9199);

    std::string name() const override { return "pipp"; }
    std::uint32_t numPartitions() const override { return numParts_; }
    std::uint32_t allocationQuantum() const override { return ways_; }

    void setAllocations(
        const std::vector<std::uint32_t> &units) override;

    void onHit(CacheArray &array, LineId slot,
               PartId accessor) override;
    VictimChoice selectVictim(CacheArray &array, PartId inserting,
                              Addr addr,
                              const CandidateBuf &cands) override;
    void onEvict(CacheArray &array, LineId slot) override;
    void onInsert(CacheArray &array, LineId slot,
                  PartId part) override;

    std::uint64_t actualSize(PartId part) const override;
    std::uint64_t targetSize(PartId part) const override;

    /** Whether a partition is currently classified as streaming. */
    bool isStreaming(PartId part) const;

    /** Chain position of a slot, or kNoPos if invalid (for tests). */
    std::uint32_t positionOf(LineId slot) const { return pos_[slot]; }

    /** Sentinel chain position of an empty slot. */
    static constexpr std::uint8_t kNoPos = 0xff;

    /**
     * Each set's chain positions must form a dense permutation of
     * [0, validCnt), tracked exactly by the slots' validity; size
     * counters must match a recount.
     */
    void checkInvariants(const CacheArray &array,
                         InvariantReport &rep) const override;

  protected:
    /**
     * A new tenant must not inherit the previous occupant's streaming
     * classification or interval counters; resident lines (sizes_,
     * chain positions) are inherited and displaced normally.
     */
    void
    onPartitionCreate(PartId part) override
    {
        streaming_[part] = false;
        intervalAccesses_[part] = 0;
        intervalMisses_[part] = 0;
    }

  private:
    std::uint64_t setOf(LineId slot) const { return slot / ways_; }

    /** Re-evaluate streaming classification from interval counters. */
    void updateStreaming();

    std::uint32_t numParts_;
    std::uint32_t ways_;
    std::uint64_t linesPerWay_;
    PippConfig cfg_;
    Rng rng_;

    std::vector<std::uint32_t> alloc_;    ///< Ways per partition.
    std::vector<std::uint8_t> pos_;       ///< Chain position per slot.
    std::vector<std::uint8_t> validCnt_;  ///< Valid lines per set.
    std::vector<std::uint64_t> sizes_;    ///< Lines per partition.

    // Streaming detection state.
    std::vector<std::uint64_t> intervalAccesses_;
    std::vector<std::uint64_t> intervalMisses_;
    std::vector<bool> streaming_;
    std::uint64_t accessesSinceCheck_ = 0;
};

} // namespace vantage

#endif // VANTAGE_PARTITION_PIPP_H_

#include "partition/scheme.h"

#include "common/log.h"
#include "stats/registry.h"

namespace vantage {

void
PartitionScheme::ensureLifecycle() const
{
    if (active_.empty()) {
        active_.assign(numPartitions(), 1);
    }
}

void
PartitionScheme::createPartition(PartId part)
{
    ensureLifecycle();
    vantage_assert(part < active_.size(),
                   "createPartition(%u) with %zu slots", part,
                   active_.size());
    vantage_assert(active_[part] == 0,
                   "createPartition(%u): slot already active", part);
    active_[part] = 1;
    onPartitionCreate(part);
}

void
PartitionScheme::destroyPartition(PartId part)
{
    ensureLifecycle();
    vantage_assert(part < active_.size(),
                   "destroyPartition(%u) with %zu slots", part,
                   active_.size());
    vantage_assert(active_[part] != 0,
                   "destroyPartition(%u): slot already retired", part);
    active_[part] = 0;
    onPartitionDestroy(part);
}

bool
PartitionScheme::partitionActive(PartId part) const
{
    if (active_.empty()) {
        return part < numPartitions();
    }
    return part < active_.size() && active_[part] != 0;
}

std::uint32_t
PartitionScheme::activePartitions() const
{
    if (active_.empty()) {
        return numPartitions();
    }
    std::uint32_t n = 0;
    for (const std::uint8_t a : active_) {
        n += a;
    }
    return n;
}

void
PartitionScheme::registerIntrospection(StatsRegistry &reg,
                                       const std::string &prefix) const
{
    reg.addString(prefix + ".scheme", name());
    for (std::uint32_t p = 0; p < numPartitions(); ++p) {
        const std::string pp = prefix + ".part" + std::to_string(p);
        // Closures over `this` + the partition id: single-word reads
        // of size counters, tolerant of a concurrent sampler.
        reg.addGauge(pp + ".target_lines", [this, p] {
            return static_cast<double>(targetSize(p));
        });
        reg.addGauge(pp + ".actual_lines", [this, p] {
            return static_cast<double>(actualSize(p));
        });
    }
    reg.addCounter(prefix + ".demotions",
                   [this] { return demotionCount(); });
}

} // namespace vantage

#include "partition/scheme.h"

#include "stats/registry.h"

namespace vantage {

void
PartitionScheme::registerIntrospection(StatsRegistry &reg,
                                       const std::string &prefix) const
{
    reg.addString(prefix + ".scheme", name());
    for (std::uint32_t p = 0; p < numPartitions(); ++p) {
        const std::string pp = prefix + ".part" + std::to_string(p);
        // Closures over `this` + the partition id: single-word reads
        // of size counters, tolerant of a concurrent sampler.
        reg.addGauge(pp + ".target_lines", [this, p] {
            return static_cast<double>(targetSize(p));
        });
        reg.addGauge(pp + ".actual_lines", [this, p] {
            return static_cast<double>(actualSize(p));
        });
    }
    reg.addCounter(prefix + ".demotions",
                   [this] { return demotionCount(); });
}

} // namespace vantage

#include "partition/scheme.h"

#include "common/log.h"
#include "stats/registry.h"

namespace vantage {

void
PartitionScheme::ensureLifecycle() const
{
    if (active_.empty()) {
        active_.assign(numPartitions(), 1);
    }
}

void
PartitionScheme::createPartition(PartId part)
{
    ensureLifecycle();
    vantage_assert(part < active_.size(),
                   "createPartition(%u) with %zu slots", part,
                   active_.size());
    vantage_assert(active_[part] == 0,
                   "createPartition(%u): slot already active", part);
    active_[part] = 1;
    onPartitionCreate(part);
    recordDecision(DecisionKind::PartitionCreate, part);
}

void
PartitionScheme::destroyPartition(PartId part)
{
    ensureLifecycle();
    vantage_assert(part < active_.size(),
                   "destroyPartition(%u) with %zu slots", part,
                   active_.size());
    vantage_assert(active_[part] != 0,
                   "destroyPartition(%u): slot already retired", part);
    active_[part] = 0;
    onPartitionDestroy(part);
    recordDecision(DecisionKind::PartitionDestroy, part);
}

void
PartitionScheme::recordDecision(DecisionKind kind, PartId part)
{
    if (audit_ == nullptr) {
        return;
    }
    DecisionRecord rec;
    rec.kind = kind;
    rec.part = part;
    rec.targetLines = targetSize(part);
    rec.actualLines = actualSize(part);
    audit_->record(rec);
}

bool
PartitionScheme::partitionActive(PartId part) const
{
    if (active_.empty()) {
        return part < numPartitions();
    }
    return part < active_.size() && active_[part] != 0;
}

std::uint32_t
PartitionScheme::activePartitions() const
{
    if (active_.empty()) {
        return numPartitions();
    }
    std::uint32_t n = 0;
    for (const std::uint8_t a : active_) {
        n += a;
    }
    return n;
}

void
PartitionScheme::registerIntrospection(StatsRegistry &reg,
                                       const std::string &prefix) const
{
    reg.addString(prefix + ".scheme", name());
    // Size active_ now: the guards below read it from the sampler
    // thread, and a lazy first allocation mid-run would race.
    ensureLifecycle();
    for (std::uint32_t p = 0; p < numPartitions(); ++p) {
        const std::string pp = prefix + ".part" + std::to_string(p);
        // Closures over `this` + the partition id: single-word reads
        // of size counters, tolerant of a concurrent sampler.
        reg.addGauge(pp + ".target_lines", [this, p] {
            return static_cast<double>(targetSize(p));
        });
        reg.addGauge(pp + ".actual_lines", [this, p] {
            return static_cast<double>(actualSize(p));
        });
        // Retired slots drop their series instead of exporting the
        // last tenant's values; slot reuse re-appears as fresh.
        reg.addGuard(pp, [this, p] { return partitionActive(p); });
    }
    reg.addCounter(prefix + ".demotions",
                   [this] { return demotionCount(); });
}

} // namespace vantage

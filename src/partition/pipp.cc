#include "partition/pipp.h"

#include <algorithm>
#include <numeric>

#include "common/log.h"

namespace vantage {

Pipp::Pipp(std::uint32_t num_partitions, std::uint32_t ways,
           std::uint64_t lines_per_way, std::size_t num_lines,
           const PippConfig &cfg, std::uint64_t seed)
    : numParts_(num_partitions), ways_(ways),
      linesPerWay_(lines_per_way), cfg_(cfg), rng_(seed),
      alloc_(num_partitions, std::max(1u, ways / num_partitions)),
      pos_(num_lines, kNoPos), validCnt_(num_lines / ways, 0),
      sizes_(num_partitions, 0),
      intervalAccesses_(num_partitions, 0),
      intervalMisses_(num_partitions, 0),
      streaming_(num_partitions, false)
{
    vantage_assert(num_partitions >= 1, "need at least one partition");
    vantage_assert(ways >= 2, "PIPP needs at least 2 ways");
    vantage_assert(num_lines % ways == 0,
                   "%zu lines not divisible by %u ways", num_lines,
                   ways);
    if (num_partitions > ways) {
        fatal("PIPP cannot hold %u partitions in %u ways",
              num_partitions, ways);
    }
}

void
Pipp::setAllocations(const std::vector<std::uint32_t> &units)
{
    vantage_assert(units.size() == numParts_,
                   "got %zu allocations for %u partitions",
                   units.size(), numParts_);
    const std::uint64_t total =
        std::accumulate(units.begin(), units.end(), std::uint64_t{0});
    vantage_assert(total <= ways_,
                   "allocations total %llu ways, array has %u",
                   static_cast<unsigned long long>(total), ways_);
    const std::vector<std::uint32_t> before = alloc_;
    alloc_ = units;
    if (audit() != nullptr) {
        for (std::uint32_t p = 0; p < numParts_; ++p) {
            if (p >= before.size() || units[p] != before[p]) {
                recordDecision(DecisionKind::Repartition, p);
            }
        }
    }
}

void
Pipp::updateStreaming()
{
    for (PartId p = 0; p < numParts_; ++p) {
        if (intervalAccesses_[p] >= 64) {
            const double ratio =
                static_cast<double>(intervalMisses_[p]) /
                static_cast<double>(intervalAccesses_[p]);
            streaming_[p] = ratio >= cfg_.thetaM;
        }
        intervalAccesses_[p] = 0;
        intervalMisses_[p] = 0;
    }
}

bool
Pipp::isStreaming(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return streaming_[part];
}

void
Pipp::onHit(CacheArray &array, LineId slot, PartId accessor)
{
    (void)array;
    if (accessor < numParts_) {
        ++intervalAccesses_[accessor];
    }
    if (++accessesSinceCheck_ >= cfg_.detectInterval) {
        accessesSinceCheck_ = 0;
        updateStreaming();
    }

    // Promote by one chain position with probability pprom.
    if (!rng_.chance(cfg_.pprom)) {
        return;
    }
    const std::uint64_t set = setOf(slot);
    const std::uint8_t my_pos = pos_[slot];
    vantage_assert(my_pos != kNoPos, "hit on an untracked slot");
    if (my_pos + 1u >= validCnt_[set]) {
        return; // Already at the top of the chain.
    }
    const LineId base = static_cast<LineId>(set * ways_);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const LineId other = base + w;
        if (other != slot && pos_[other] == my_pos + 1) {
            std::swap(pos_[slot], pos_[other]);
            return;
        }
    }
    panic("dense chain invariant broken in set %llu",
          static_cast<unsigned long long>(set));
}

VictimChoice
Pipp::selectVictim(CacheArray &array, PartId inserting, Addr addr,
                   const CandidateBuf &cands)
{
    (void)addr;
    vantage_assert(inserting < numParts_, "partition %u out of range",
                   inserting);
    ++intervalAccesses_[inserting];
    ++intervalMisses_[inserting];
    if (++accessesSinceCheck_ >= cfg_.detectInterval) {
        accessesSinceCheck_ = 0;
        updateStreaming();
    }

    // Prefer empty slots; otherwise evict the chain bottom (pos 0).
    std::int32_t bottom = -1;
    for (std::uint32_t i = 0; i < cands.size(); ++i) {
        const LineId slot = cands[i].slot;
        if (!array.line(slot).valid()) {
            return {static_cast<std::int32_t>(i), false};
        }
        if (bottom < 0 || pos_[slot] < pos_[cands[bottom].slot]) {
            bottom = static_cast<std::int32_t>(i);
        }
    }
    vantage_assert(bottom >= 0, "no candidates offered");
    return {bottom, false};
}

void
Pipp::onEvict(CacheArray &array, LineId slot)
{
    const PartId victim_part = array.line(slot).part;
    const std::uint64_t set = setOf(slot);
    const std::uint8_t gone = pos_[slot];
    vantage_assert(gone != kNoPos, "evicting an untracked slot");
    const LineId base = static_cast<LineId>(set * ways_);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const LineId other = base + w;
        if (pos_[other] != kNoPos && pos_[other] > gone) {
            --pos_[other];
        }
    }
    pos_[slot] = kNoPos;
    vantage_assert(validCnt_[set] > 0, "evicting from an empty set");
    --validCnt_[set];
    if (victim_part < sizes_.size() && sizes_[victim_part] > 0) {
        --sizes_[victim_part];
    }
}

void
Pipp::onInsert(CacheArray &array, LineId slot, PartId part)
{
    (void)array;
    vantage_assert(part < numParts_, "partition %u out of range", part);
    const std::uint64_t set = setOf(slot);
    vantage_assert(pos_[slot] == kNoPos, "inserting into a live slot");
    vantage_assert(validCnt_[set] < ways_, "inserting into a full set");

    std::uint32_t desired;
    if (streaming_[part]) {
        // Streaming apps are limited to one way's worth of presence:
        // insert at the bottom except with probability pstream.
        desired = rng_.chance(cfg_.pstream) ? 1 : 0;
    } else {
        desired = alloc_[part];
    }
    const std::uint32_t chosen =
        std::min<std::uint32_t>(desired, validCnt_[set]);

    const LineId base = static_cast<LineId>(set * ways_);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const LineId other = base + w;
        if (other != slot && pos_[other] != kNoPos &&
            pos_[other] >= chosen) {
            ++pos_[other];
        }
    }
    pos_[slot] = static_cast<std::uint8_t>(chosen);
    ++validCnt_[set];
    ++sizes_[part];
}

void
Pipp::checkInvariants(const CacheArray &array,
                      InvariantReport &rep) const
{
    const std::uint64_t num_sets = validCnt_.size();
    std::vector<std::uint64_t> counted(numParts_, 0);
    for (std::uint64_t set = 0; set < num_sets; ++set) {
        const LineId base = static_cast<LineId>(set * ways_);
        std::uint32_t valid = 0;
        std::uint64_t pos_mask = 0;
        // The mask covers up to 64 ways; wider arrays (none today)
        // skip only the density check.
        const bool maskable = ways_ <= 64;
        bool dense = maskable;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const LineId slot = base + w;
            const Line &line = array.line(slot);
            if (!line.valid()) {
                dense &= rep.expect(
                    pos_[slot] == kNoPos,
                    "pipp: empty slot %u in set %llu has chain "
                    "position %u",
                    slot, static_cast<unsigned long long>(set),
                    pos_[slot]);
                continue;
            }
            ++valid;
            if (rep.expect(line.part < numParts_,
                           "pipp: line %#llx carries illegal "
                           "partition %u",
                           static_cast<unsigned long long>(line.addr),
                           line.part)) {
                ++counted[line.part];
            }
            const std::uint8_t pos = pos_[slot];
            if (!rep.expect(pos != kNoPos && pos < ways_,
                            "pipp: valid slot %u in set %llu has no "
                            "chain position",
                            slot,
                            static_cast<unsigned long long>(set))) {
                dense = false;
                continue;
            }
            if (maskable) {
                if (!rep.expect(
                        (pos_mask & (1ull << pos)) == 0,
                        "pipp: chain position %u duplicated in "
                        "set %llu",
                        pos,
                        static_cast<unsigned long long>(set))) {
                    dense = false;
                }
                pos_mask |= 1ull << pos;
            }
        }
        rep.expect(valid == validCnt_[set],
                   "pipp: set %llu recount %u != validCnt %u",
                   static_cast<unsigned long long>(set), valid,
                   validCnt_[set]);
        // Dense chain: positions of the valid lines are exactly
        // {0, ..., valid-1}.
        if (dense) {
            const std::uint64_t want =
                valid >= 64 ? ~0ull : (1ull << valid) - 1;
            rep.expect(pos_mask == want,
                       "pipp: set %llu chain positions not dense",
                       static_cast<unsigned long long>(set));
        }
    }
    for (std::uint32_t p = 0; p < numParts_; ++p) {
        rep.expect(counted[p] == sizes_[p],
                   "pipp: part %u recount %llu != size counter %llu",
                   p, static_cast<unsigned long long>(counted[p]),
                   static_cast<unsigned long long>(sizes_[p]));
    }
}

std::uint64_t
Pipp::actualSize(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return sizes_[part];
}

std::uint64_t
Pipp::targetSize(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return static_cast<std::uint64_t>(alloc_[part]) * linesPerWay_;
}

} // namespace vantage

#include "partition/way_partition.h"

#include <numeric>

#include "common/log.h"

namespace vantage {

WayPartitioning::WayPartitioning(std::uint32_t num_partitions,
                                 std::uint32_t total_ways,
                                 std::uint64_t lines_per_way,
                                 std::unique_ptr<ReplPolicy> policy)
    : numParts_(num_partitions), ways_(total_ways),
      linesPerWay_(lines_per_way), policy_(std::move(policy)),
      wayStart_(num_partitions + 1, 0), sizes_(num_partitions, 0)
{
    vantage_assert(policy_ != nullptr, "need a policy");
    vantage_assert(num_partitions >= 1, "need at least one partition");
    if (num_partitions > total_ways) {
        fatal("way-partitioning cannot hold %u partitions in %u ways",
              num_partitions, total_ways);
    }
    // Default: equal split, remainder to the first partitions.
    std::vector<std::uint32_t> units(num_partitions,
                                     total_ways / num_partitions);
    for (std::uint32_t p = 0; p < total_ways % num_partitions; ++p) {
        ++units[p];
    }
    setAllocations(units);
}

void
WayPartitioning::setAllocations(
    const std::vector<std::uint32_t> &units)
{
    vantage_assert(units.size() == numParts_,
                   "got %zu allocations for %u partitions",
                   units.size(), numParts_);
    const std::uint64_t total =
        std::accumulate(units.begin(), units.end(), std::uint64_t{0});
    vantage_assert(total <= ways_,
                   "allocations total %llu ways, array has %u",
                   static_cast<unsigned long long>(total), ways_);
    std::vector<std::uint32_t> before;
    if (audit() != nullptr) {
        before.resize(numParts_);
        for (std::uint32_t p = 0; p < numParts_; ++p) {
            before[p] = wayStart_[p + 1] - wayStart_[p];
        }
    }
    wayStart_[0] = 0;
    for (std::uint32_t p = 0; p < numParts_; ++p) {
        wayStart_[p + 1] = wayStart_[p] + units[p];
    }
    if (audit() != nullptr) {
        for (std::uint32_t p = 0; p < numParts_; ++p) {
            if (units[p] != before[p]) {
                recordDecision(DecisionKind::Repartition, p);
            }
        }
    }
}

bool
WayPartitioning::ownsWay(PartId part, std::uint32_t way) const
{
    return way >= wayStart_[part] && way < wayStart_[part + 1];
}

std::uint32_t
WayPartitioning::wayStart(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return wayStart_[part];
}

std::uint32_t
WayPartitioning::wayCount(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return wayStart_[part + 1] - wayStart_[part];
}

void
WayPartitioning::onHit(CacheArray &array, LineId slot, PartId accessor)
{
    (void)accessor;
    policy_->onHit(array, slot);
}

VictimChoice
WayPartitioning::selectVictim(CacheArray &array, PartId inserting,
                              Addr addr, const CandidateBuf &cands)
{
    (void)addr;
    vantage_assert(inserting < numParts_, "partition %u out of range",
                   inserting);

    std::int32_t best = -1;
    for (std::uint32_t i = 0; i < cands.size(); ++i) {
        if (!ownsWay(inserting, array.wayOf(cands[i].slot))) {
            continue;
        }
        if (!array.line(cands[i].slot).valid()) {
            return {static_cast<std::int32_t>(i), false};
        }
        if (best < 0 ||
            policy_->prefer(array, cands[i].slot,
                            cands[best].slot)) {
            best = static_cast<std::int32_t>(i);
        }
    }

    if (best < 0) {
        // Zero ways allocated (allocation policies should prevent
        // this); fall back to a global choice rather than deadlock.
        if (!warnedNoWays_) {
            warn("partition %u has no ways; using global replacement",
                 inserting);
            warnedNoWays_ = true;
        }
        best = policy_->selectVictim(array, cands);
    }

    const LineId victim_slot = cands[best].slot;
    if (probe_ && array.line(victim_slot).part == probePart_) {
        // Priority within the victim's own partition population.
        probe_->recordEviction(
            array, *policy_, victim_slot,
            [this, &array](LineId slot) {
                return array.line(slot).part == probePart_;
            });
    }
    return {best, false};
}

void
WayPartitioning::onEvict(CacheArray &array, LineId slot)
{
    const PartId part = array.line(slot).part;
    if (part < sizes_.size() && sizes_[part] > 0) {
        --sizes_[part];
    }
    policy_->onEvict(array, slot);
}

void
WayPartitioning::onInsert(CacheArray &array, LineId slot, PartId part)
{
    policy_->onInsert(array, slot);
    if (part < sizes_.size()) {
        ++sizes_[part];
    }
}

std::uint64_t
WayPartitioning::actualSize(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return sizes_[part];
}

std::uint64_t
WayPartitioning::targetSize(PartId part) const
{
    vantage_assert(part < numParts_, "partition %u out of range", part);
    return static_cast<std::uint64_t>(wayCount(part)) * linesPerWay_;
}

void
WayPartitioning::checkInvariants(const CacheArray &array,
                                 InvariantReport &rep) const
{
    for (std::uint32_t p = 0; p < numParts_; ++p) {
        rep.expect(wayStart_[p] <= wayStart_[p + 1],
                   "waypart: way boundaries not monotone at "
                   "partition %u",
                   p);
    }
    rep.expect(wayStart_[numParts_] <= ways_,
               "waypart: boundaries reach way %u of %u",
               wayStart_[numParts_], ways_);

    // Resident lines may sit in ways their partition no longer owns
    // (repartitioning displaces lazily), so only size accounting is
    // checkable: each partition's counter must equal a recount of the
    // lines tagged with it.
    std::vector<std::uint64_t> counted(numParts_, 0);
    for (LineId slot = 0; slot < array.numLines(); ++slot) {
        const Line &line = array.line(slot);
        if (!line.valid()) {
            continue;
        }
        if (rep.expect(line.part < numParts_,
                       "waypart: line %#llx carries illegal "
                       "partition %u",
                       static_cast<unsigned long long>(line.addr),
                       line.part)) {
            ++counted[line.part];
        }
    }
    for (std::uint32_t p = 0; p < numParts_; ++p) {
        rep.expect(counted[p] == sizes_[p],
                   "waypart: part %u recount %llu != size counter "
                   "%llu",
                   p, static_cast<unsigned long long>(counted[p]),
                   static_cast<unsigned long long>(sizes_[p]));
    }
}

void
WayPartitioning::attachProbe(AssocProbe *probe, PartId part)
{
    probe_ = probe;
    probePart_ = part;
}

} // namespace vantage

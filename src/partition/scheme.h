/**
 * @file
 * Partitioning-scheme interface.
 *
 * A scheme enforces per-partition capacity allocations at replacement
 * time. The Cache drives it: on a hit it calls onHit(); on a miss it
 * obtains the array's replacement candidates and asks the scheme to
 * pick a victim (or to bypass the fill entirely), then notifies it of
 * the eviction and insertion so it can track sizes.
 *
 * Allocation targets are expressed in *allocation units*; a scheme
 * advertises how many units exist in total (ways for way-partitioning
 * and PIPP, a finer quantum for Vantage). This mirrors how UCP drives
 * each scheme in the paper (Sec. 5): way-granular Lookahead for
 * way-partitioning/PIPP, 256-point interpolated curves for Vantage.
 */

#ifndef VANTAGE_PARTITION_SCHEME_H_
#define VANTAGE_PARTITION_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/cache_array.h"
#include "obs/introspect.h"

namespace vantage {

class StatsRegistry;

/** Outcome of victim selection for one fill. */
struct VictimChoice
{
    /** Index into the candidate list; ignored when bypass is set. */
    std::int32_t candIdx = 0;
    /** When true, the incoming line is not cached at all. */
    bool bypass = false;
};

/** Abstract allocation-enforcement scheme. */
class PartitionScheme : public Introspectable
{
  public:
    virtual ~PartitionScheme() = default;

    /** Human-readable scheme name for reports. */
    virtual std::string name() const = 0;

    /** Number of partitions the scheme was configured with. */
    virtual std::uint32_t numPartitions() const = 0;

    /** Total allocation units available for distribution. */
    virtual std::uint32_t allocationQuantum() const = 0;

    /**
     * Set per-partition targets, in allocation units.
     * @pre units.size() == numPartitions();
     *      sum(units) <= allocationQuantum().
     */
    virtual void setAllocations(
        const std::vector<std::uint32_t> &units) = 0;

    /**
     * The line in `slot` hit for `accessor`; update bookkeeping and
     * metadata via the array's hot/cold planes.
     */
    virtual void onHit(CacheArray &array, LineId slot,
                       PartId accessor) = 0;

    /**
     * Pick the victim for a fill by `inserting` among `cands`.
     * Schemes must cope with invalid (empty) candidates, preferring
     * them where their placement rules allow.
     */
    virtual VictimChoice selectVictim(CacheArray &array,
                                      PartId inserting, Addr addr,
                                      const CandidateBuf &cands) = 0;

    /**
     * The chosen victim (valid lines only) is about to be evicted;
     * it is still resident in `slot` when this runs.
     */
    virtual void onEvict(CacheArray &array, LineId slot) = 0;

    /**
     * A new line was installed in `slot` (addr/part already set); set
     * the scheme's replacement metadata and size accounting.
     */
    virtual void onInsert(CacheArray &array, LineId slot,
                          PartId part) = 0;

    /** Current actual size of a partition, in lines. */
    virtual std::uint64_t actualSize(PartId part) const = 0;

    /** Current target size of a partition, in lines. */
    virtual std::uint64_t targetSize(PartId part) const = 0;

    /**
     * Lines demoted managed -> unmanaged so far (Vantage schemes);
     * 0 for schemes without a region split. Folded into the access
     * digest so demotion-accounting drift is caught by golden tests.
     */
    virtual std::uint64_t demotionCount() const { return 0; }

    /**
     * Verify the scheme's bookkeeping against ground truth: recount
     * per-partition sizes (and any per-line metadata the scheme
     * shadows) from `array`'s line table and compare with the scheme's
     * counters, recording every mismatch in `rep`. Side-effect free on
     * simulation state.
     */
    virtual void
    checkInvariants(const CacheArray &array, InvariantReport &rep) const
    {
        (void)array;
        (void)rep;
    }

    /**
     * Default live-introspection export: per-partition target/actual
     * sizes (gauges, in lines) plus the scheme-wide demotion counter
     * under `prefix`. Schemes with richer internal state (Vantage's
     * apertures, UCP's utility curves) override and extend this.
     * See obs/introspect.h for the threading contract.
     */
    void registerIntrospection(
        StatsRegistry &reg, const std::string &prefix) const override;
};

} // namespace vantage

#endif // VANTAGE_PARTITION_SCHEME_H_

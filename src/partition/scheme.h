/**
 * @file
 * Partitioning-scheme interface.
 *
 * A scheme enforces per-partition capacity allocations at replacement
 * time. The Cache drives it: on a hit it calls onHit(); on a miss it
 * obtains the array's replacement candidates and asks the scheme to
 * pick a victim (or to bypass the fill entirely), then notifies it of
 * the eviction and insertion so it can track sizes.
 *
 * Allocation targets are expressed in *allocation units*; a scheme
 * advertises how many units exist in total (ways for way-partitioning
 * and PIPP, a finer quantum for Vantage). This mirrors how UCP drives
 * each scheme in the paper (Sec. 5): way-granular Lookahead for
 * way-partitioning/PIPP, 256-point interpolated curves for Vantage.
 */

#ifndef VANTAGE_PARTITION_SCHEME_H_
#define VANTAGE_PARTITION_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/cache_array.h"
#include "obs/audit.h"
#include "obs/introspect.h"

namespace vantage {

class StatsRegistry;

/** Outcome of victim selection for one fill. */
struct VictimChoice
{
    /** Index into the candidate list; ignored when bypass is set. */
    std::int32_t candIdx = 0;
    /** When true, the incoming line is not cached at all. */
    bool bypass = false;
};

/** Abstract allocation-enforcement scheme. */
class PartitionScheme : public Introspectable
{
  public:
    virtual ~PartitionScheme() = default;

    /** Human-readable scheme name for reports. */
    virtual std::string name() const = 0;

    /** Number of partitions the scheme was configured with. */
    virtual std::uint32_t numPartitions() const = 0;

    /** Total allocation units available for distribution. */
    virtual std::uint32_t allocationQuantum() const = 0;

    /**
     * Set per-partition targets, in allocation units.
     * @pre units.size() == numPartitions();
     *      sum(units) <= allocationQuantum().
     */
    virtual void setAllocations(
        const std::vector<std::uint32_t> &units) = 0;

    /**
     * The line in `slot` hit for `accessor`; update bookkeeping and
     * metadata via the array's hot/cold planes.
     */
    virtual void onHit(CacheArray &array, LineId slot,
                       PartId accessor) = 0;

    /**
     * Pick the victim for a fill by `inserting` among `cands`.
     * Schemes must cope with invalid (empty) candidates, preferring
     * them where their placement rules allow.
     */
    virtual VictimChoice selectVictim(CacheArray &array,
                                      PartId inserting, Addr addr,
                                      const CandidateBuf &cands) = 0;

    /**
     * The chosen victim (valid lines only) is about to be evicted;
     * it is still resident in `slot` when this runs.
     */
    virtual void onEvict(CacheArray &array, LineId slot) = 0;

    /**
     * A new line was installed in `slot` (addr/part already set); set
     * the scheme's replacement metadata and size accounting.
     */
    virtual void onInsert(CacheArray &array, LineId slot,
                          PartId part) = 0;

    /** Current actual size of a partition, in lines. */
    virtual std::uint64_t actualSize(PartId part) const = 0;

    /** Current target size of a partition, in lines. */
    virtual std::uint64_t targetSize(PartId part) const = 0;

    /**
     * Lines demoted managed -> unmanaged so far (Vantage schemes);
     * 0 for schemes without a region split. Folded into the access
     * digest so demotion-accounting drift is caught by golden tests.
     */
    virtual std::uint64_t demotionCount() const { return 0; }

    /**
     * Verify the scheme's bookkeeping against ground truth: recount
     * per-partition sizes (and any per-line metadata the scheme
     * shadows) from `array`'s line table and compare with the scheme's
     * counters, recording every mismatch in `rep`. Side-effect free on
     * simulation state.
     */
    virtual void
    checkInvariants(const CacheArray &array, InvariantReport &rep) const
    {
        (void)array;
        (void)rep;
    }

    /**
     * Default live-introspection export: per-partition target/actual
     * sizes (gauges, in lines) plus the scheme-wide demotion counter
     * under `prefix`. Schemes with richer internal state (Vantage's
     * apertures, UCP's utility curves) override and extend this.
     * See obs/introspect.h for the threading contract.
     */
    void registerIntrospection(
        StatsRegistry &reg, const std::string &prefix) const override;

    // ------------------------------------------------------------------
    // Dynamic partition lifecycle.
    //
    // Schemes are constructed with a fixed maximum partition count
    // (numPartitions()); tenants joining and leaving at runtime flip
    // slots between *active* and *retired* instead of resizing any
    // per-partition state (stats/introspection registries capture raw
    // pointers into those vectors, so they must never reallocate).
    // Every slot starts active, which keeps all pre-lifecycle
    // configurations — and their pinned golden digests — bit-identical.
    //
    // Retiring a slot stops new allocation to it; resident lines drain
    // lazily through the scheme's own churn mechanism (Vantage: target
    // 0 forces full-aperture demotion per Sec. 3.4 of the paper; way
    // schemes displace on demand). Re-creating a slot adopts any lines
    // still draining — size accounting stays exact throughout.

    /**
     * Activate a retired partition slot for a new tenant. Resets the
     * scheme's per-partition control state via onPartitionCreate();
     * any resident lines still draining from the previous tenant are
     * inherited. @pre !partitionActive(part).
     */
    void createPartition(PartId part);

    /**
     * Retire an active partition slot: its target drops to zero and
     * resident lines drain through the scheme's replacement churn.
     * @pre partitionActive(part).
     */
    void destroyPartition(PartId part);

    /** Whether `part` currently belongs to a live tenant. */
    bool partitionActive(PartId part) const;

    /** Number of active partition slots. */
    std::uint32_t activePartitions() const;

    /**
     * Attach a decision audit ring (nullptr detaches): repartitions
     * and lifecycle transitions — plus scheme-specific decisions like
     * Vantage's setpoint moves — are recorded with the register state
     * that caused them. Purely observational (digest-neutral); the
     * ring must outlive the scheme's use of it. See obs/audit.h.
     */
    void attachAudit(DecisionAudit *audit) { audit_ = audit; }
    DecisionAudit *audit() const { return audit_; }

  protected:
    /**
     * Record a decision about `part` with the base register state
     * (current target/actual sizes); a no-op while detached. Schemes
     * with richer registers fill DecisionRecord at their own sites.
     */
    void recordDecision(DecisionKind kind, PartId part);
    /**
     * Scheme hook run by createPartition() after the slot is marked
     * active: reset per-partition control registers (setpoints,
     * counters) for the new tenant. State describing resident lines
     * (size counters, timestamp histograms) must be kept — draining
     * leftovers are inherited.
     */
    virtual void onPartitionCreate(PartId part) { (void)part; }

    /**
     * Scheme hook run by destroyPartition() after the slot is marked
     * retired: drop the slot's target to zero so resident lines drain.
     */
    virtual void onPartitionDestroy(PartId part) { (void)part; }

    /**
     * Ensures active_ is sized; lazy because numPartitions() is
     * virtual and unavailable during base construction. Introspection
     * overrides must call this before installing partitionActive()
     * guards so the flag vector never reallocates under a concurrent
     * sampler.
     */
    void ensureLifecycle() const;

  private:

    /** Per-slot active flag; empty until the first lifecycle call
     *  (all slots implicitly active). */
    mutable std::vector<std::uint8_t> active_;

    /** Optional decision audit ring; not owned. */
    DecisionAudit *audit_ = nullptr;
};

} // namespace vantage

#endif // VANTAGE_PARTITION_SCHEME_H_

/**
 * @file
 * The no-partitioning scheme: a plain shared cache.
 *
 * Wraps a base replacement policy and applies it to all candidates.
 * This is the paper's baseline (LRU or RRIP on SA/zcache arrays) and
 * also serves as the policy engine for private L1 caches.
 */

#ifndef VANTAGE_PARTITION_UNPARTITIONED_H_
#define VANTAGE_PARTITION_UNPARTITIONED_H_

#include <memory>

#include "partition/assoc_probe.h"
#include "partition/scheme.h"
#include "replacement/repl_policy.h"

namespace vantage {

/** Shared, unpartitioned cache management. */
class Unpartitioned : public PartitionScheme
{
  public:
    /**
     * @param num_partitions number of access streams (for size
     *        accounting only; placement is fully shared).
     * @param policy base replacement policy.
     */
    Unpartitioned(std::uint32_t num_partitions,
                  std::unique_ptr<ReplPolicy> policy)
        : numParts_(num_partitions), policy_(std::move(policy)),
          sizes_(num_partitions, 0)
    {
        vantage_assert(policy_ != nullptr, "need a policy");
    }

    std::string name() const override { return "unpartitioned"; }
    std::uint32_t numPartitions() const override { return numParts_; }
    std::uint32_t allocationQuantum() const override { return 1; }

    void
    setAllocations(const std::vector<std::uint32_t> &units) override
    {
        (void)units; // Nothing to enforce.
    }

    void
    onHit(CacheArray &array, LineId slot, PartId accessor) override
    {
        (void)accessor;
        policy_->onHit(array, slot);
    }

    VictimChoice
    selectVictim(CacheArray &array, PartId inserting, Addr addr,
                 const CandidateBuf &cands) override
    {
        (void)inserting;
        (void)addr;
        // Prefer an empty slot; candidate order ties break toward the
        // earliest (shortest relocation chain in a zcache).
        for (std::uint32_t i = 0; i < cands.size(); ++i) {
            if (!array.line(cands[i].slot).valid()) {
                return {static_cast<std::int32_t>(i), false};
            }
        }
        const std::int32_t victim = policy_->selectVictim(array, cands);
        if (probe_) {
            probe_->recordEviction(array, *policy_,
                                   cands[victim].slot);
        }
        return {victim, false};
    }

    void
    onEvict(CacheArray &array, LineId slot) override
    {
        const PartId part = array.line(slot).part;
        if (part < sizes_.size() && sizes_[part] > 0) {
            --sizes_[part];
        }
        policy_->onEvict(array, slot);
    }

    void
    onInsert(CacheArray &array, LineId slot, PartId part) override
    {
        policy_->onInsert(array, slot);
        if (part < sizes_.size()) {
            ++sizes_[part];
        }
    }

    std::uint64_t
    actualSize(PartId part) const override
    {
        return part < sizes_.size() ? sizes_[part] : 0;
    }

    std::uint64_t
    targetSize(PartId part) const override
    {
        (void)part;
        return 0; // No targets in a shared cache.
    }

    /** Attach an eviction-priority probe (Fig. 1 style CDFs). */
    void attachProbe(AssocProbe *probe) { probe_ = probe; }

    ReplPolicy &policy() { return *policy_; }

  private:
    std::uint32_t numParts_;
    std::unique_ptr<ReplPolicy> policy_;
    std::vector<std::uint64_t> sizes_;
    AssocProbe *probe_ = nullptr;
};

} // namespace vantage

#endif // VANTAGE_PARTITION_UNPARTITIONED_H_

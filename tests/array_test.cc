/**
 * @file
 * Tests for the cache arrays: set-associative, zcache (walk and
 * relocation), and the idealized random-candidates array.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "array/random_array.h"
#include "array/set_assoc.h"
#include "array/zarray.h"
#include "common/rng.h"

namespace vantage {
namespace {

/** Install addr, preferring an empty candidate slot (warmup fill). */
void
fillInsert(CacheArray &arr, Addr a, CandidateBuf &cands)
{
    arr.candidates(a, cands);
    std::int32_t victim = 0;
    for (std::size_t i = 0; i < cands.size(); ++i) {
        if (!arr.line(cands[i].slot).valid()) {
            victim = static_cast<std::int32_t>(i);
            break;
        }
    }
    arr.replace(a, cands, victim);
}

// ---------------------------------------------------------------
// SetAssocArray
// ---------------------------------------------------------------

TEST(SetAssocArray, GeometryChecks)
{
    SetAssocArray arr(1024, 16);
    EXPECT_EQ(arr.numLines(), 1024u);
    EXPECT_EQ(arr.numWays(), 16u);
    EXPECT_EQ(arr.numSets(), 64u);
    EXPECT_EQ(arr.numCandidates(), 16u);
}

TEST(SetAssocArray, LookupMissesOnEmpty)
{
    SetAssocArray arr(256, 4);
    EXPECT_EQ(arr.lookup(0x1234), kInvalidLine);
}

TEST(SetAssocArray, InstallThenLookup)
{
    SetAssocArray arr(256, 4);
    CandidateBuf cands;
    arr.candidates(0x42, cands);
    ASSERT_EQ(cands.size(), 4u);
    const LineId slot = arr.replace(0x42, cands, 0);
    EXPECT_EQ(arr.line(slot).addr, 0x42u);
    EXPECT_EQ(arr.lookup(0x42), slot);
}

TEST(SetAssocArray, CandidatesAreTheMappedSet)
{
    SetAssocArray arr(256, 4);
    CandidateBuf cands;
    arr.candidates(0x99, cands);
    const std::uint64_t set = arr.setOf(0x99);
    for (std::uint32_t w = 0; w < 4; ++w) {
        EXPECT_EQ(cands[w].slot, set * 4 + w);
        EXPECT_EQ(cands[w].parent, -1);
    }
}

TEST(SetAssocArray, WayOfIsConsistent)
{
    SetAssocArray arr(256, 4);
    for (LineId s = 0; s < 256; ++s) {
        EXPECT_EQ(arr.wayOf(s), s % 4);
    }
}

TEST(SetAssocArray, UnhashedUsesLowBits)
{
    SetAssocArray arr(256, 4, /*hash_index=*/false);
    EXPECT_EQ(arr.setOf(0), 0u);
    EXPECT_EQ(arr.setOf(63), 63u);
    EXPECT_EQ(arr.setOf(64), 0u);
}

TEST(SetAssocArray, HashedIndexSpreadsStridedAddresses)
{
    // A pathological power-of-two stride maps to one set unhashed but
    // spreads with H3 — the reason modern LLCs hash (Sec. 2).
    SetAssocArray hashed(1024, 4, true);
    std::set<std::uint64_t> sets;
    for (Addr a = 0; a < 64; ++a) {
        sets.insert(hashed.setOf(a * 256));
    }
    EXPECT_GT(sets.size(), 32u);
}

TEST(SetAssocArray, EvictionReplacesVictim)
{
    SetAssocArray arr(16, 4, false);
    CandidateBuf cands;
    // Fill set 0 (addresses 0, 4, 8, 12 with 4 sets).
    for (Addr a = 0; a < 16; a += 4) {
        arr.candidates(a, cands);
        std::int32_t victim = -1;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (!arr.line(cands[i].slot).valid()) {
                victim = static_cast<std::int32_t>(i);
                break;
            }
        }
        ASSERT_GE(victim, 0);
        arr.replace(a, cands, victim);
    }
    // Set 0 full; replacing evicts exactly the chosen victim.
    arr.candidates(16, cands);
    const Addr evicted = arr.line(cands[2].slot).addr;
    arr.replace(16, cands, 2);
    EXPECT_EQ(arr.lookup(evicted), kInvalidLine);
    EXPECT_NE(arr.lookup(16), kInvalidLine);
}

// ---------------------------------------------------------------
// ZArray
// ---------------------------------------------------------------

TEST(ZArray, WalkProducesExactlyR)
{
    ZArray arr(4096, 4, 52);
    // Fill the array so the walk can expand fully.
    Rng rng(7);
    CandidateBuf cands;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.next() >> 8;
        if (arr.lookup(a) != kInvalidLine) continue;
        fillInsert(arr, a, cands);
    }
    arr.candidates(0xdeadbeef, cands);
    EXPECT_EQ(cands.size(), 52u);
}

TEST(ZArray, SkewAssociativeIsFirstLevelOnly)
{
    auto skew = ZArray::makeSkewAssociative(4096, 4);
    CandidateBuf cands;
    skew->candidates(0x1234, cands);
    EXPECT_LE(cands.size(), 4u);
    for (const auto &c : cands) {
        EXPECT_EQ(c.parent, -1);
    }
}

TEST(ZArray, CandidateSlotsAreUnique)
{
    ZArray arr(4096, 4, 52);
    Rng rng(3);
    CandidateBuf cands;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.next() >> 8;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        std::set<LineId> slots;
        for (const auto &c : cands) {
            EXPECT_TRUE(slots.insert(c.slot).second)
                << "duplicate slot in walk";
        }
        fillInsert(arr, a, cands);
    }
}

TEST(ZArray, ParentChainsAreWellFormed)
{
    ZArray arr(1024, 4, 16);
    Rng rng(11);
    CandidateBuf cands;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.next() >> 8;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        for (std::size_t j = 0; j < cands.size(); ++j) {
            // Parents precede children (BFS order).
            EXPECT_LT(cands[j].parent, static_cast<std::int32_t>(j));
            EXPECT_GE(cands[j].parent, -1);
        }
        fillInsert(arr, a, cands);
    }
}

/**
 * The crucial zcache property: after any replacement (including
 * multi-level relocations), every cached line must still be reachable
 * by lookup. This exercises the relocation chain logic heavily.
 */
TEST(ZArray, RelocationPreservesAllResidents)
{
    ZArray arr(512, 4, 16);
    Rng rng(23);
    std::unordered_set<Addr> resident;
    CandidateBuf cands;

    for (int i = 0; i < 30000; ++i) {
        const Addr a = (rng.next() >> 8) % 4096 + 1;
        if (arr.lookup(a) != kInvalidLine) {
            continue; // A hit; nothing changes.
        }
        arr.candidates(a, cands);
        // Pick a random victim, exercising all chain depths.
        const auto victim = static_cast<std::int32_t>(
            rng.range(cands.size()));
        const Line &victim_line = arr.line(cands[victim].slot);
        if (victim_line.valid()) {
            resident.erase(victim_line.addr);
        }
        arr.replace(a, cands, victim);
        resident.insert(a);

        if (i % 1000 == 0) {
            for (const Addr r : resident) {
                EXPECT_NE(arr.lookup(r), kInvalidLine)
                    << "line lost after relocation";
            }
        }
    }
    EXPECT_EQ(resident.size(), 512u) << "array should be full";
}

TEST(ZArray, RelocationMovesMetadata)
{
    ZArray arr(512, 4, 16);
    Rng rng(29);
    std::unordered_map<Addr, std::uint8_t> tag;
    CandidateBuf cands;

    for (int i = 0; i < 20000; ++i) {
        const Addr a = (rng.next() >> 8) % 4096 + 1;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        const auto victim = static_cast<std::int32_t>(
            rng.range(cands.size()));
        const Line &victim_line = arr.line(cands[victim].slot);
        if (victim_line.valid()) {
            tag.erase(victim_line.addr);
        }
        const LineId root = arr.replace(a, cands, victim);
        const auto mark = static_cast<std::uint8_t>(rng.range(256));
        arr.line(root).rank = mark;
        tag[a] = mark;
    }
    for (const auto &[addr, mark] : tag) {
        const LineId slot = arr.lookup(addr);
        ASSERT_NE(slot, kInvalidLine);
        EXPECT_EQ(arr.line(slot).rank, mark)
            << "metadata did not travel with the line";
    }
}

TEST(ZArray, Z452WalkLevels)
{
    // With W = 4, the BFS yields 4 + 12 + 36 = 52 candidates in three
    // levels — the paper's Z4/52 design point.
    ZArray arr(1u << 14, 4, 52);
    Rng rng(31);
    CandidateBuf cands;
    for (int i = 0; i < 60000; ++i) {
        const Addr a = rng.next() >> 4;
        if (arr.lookup(a) != kInvalidLine) continue;
        fillInsert(arr, a, cands);
    }
    arr.candidates(0xabcdef, cands);
    ASSERT_EQ(cands.size(), 52u);
    int roots = 0;
    for (const auto &c : cands) {
        if (c.parent == -1) ++roots;
    }
    EXPECT_EQ(roots, 4);
}

// ---------------------------------------------------------------
// RandomArray
// ---------------------------------------------------------------

TEST(RandomArray, FillsSequentiallyThenRandom)
{
    RandomArray arr(64, 8);
    CandidateBuf cands;
    for (Addr a = 1; a <= 64; ++a) {
        arr.candidates(a, cands);
        ASSERT_EQ(cands.size(), 8u);
        // The leading candidate is the next free slot during warmup.
        EXPECT_FALSE(arr.line(cands[0].slot).valid());
        arr.replace(a, cands, 0);
    }
    arr.candidates(1000, cands);
    EXPECT_EQ(cands.size(), 8u);
    EXPECT_TRUE(arr.line(cands[0].slot).valid()) << "array is full";
}

TEST(RandomArray, LookupTracksReplacements)
{
    RandomArray arr(64, 8, 5);
    Rng rng(17);
    std::unordered_set<Addr> resident;
    CandidateBuf cands;
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.range(512) + 1;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        const auto victim = static_cast<std::int32_t>(
            rng.range(cands.size()));
        const Line &v = arr.line(cands[victim].slot);
        if (v.valid()) resident.erase(v.addr);
        arr.replace(a, cands, victim);
        resident.insert(a);
    }
    for (const Addr r : resident) {
        EXPECT_NE(arr.lookup(r), kInvalidLine);
    }
    EXPECT_EQ(resident.size(), 64u);
}

TEST(RandomArray, CandidatesAreDistinct)
{
    RandomArray arr(64, 16, 9);
    CandidateBuf cands;
    // Fill.
    for (Addr a = 1; a <= 64; ++a) {
        arr.candidates(a, cands);
        arr.replace(a, cands, 0);
    }
    for (int i = 0; i < 100; ++i) {
        arr.candidates(1, cands);
        std::set<LineId> slots;
        for (const auto &c : cands) {
            EXPECT_TRUE(slots.insert(c.slot).second);
        }
    }
}

/**
 * Uniformity check: over many draws, every slot should appear as a
 * candidate with roughly equal frequency (this is the assumption the
 * whole analysis rests on).
 */
TEST(RandomArray, CandidateDrawsAreUniform)
{
    RandomArray arr(256, 16, 13);
    CandidateBuf cands;
    for (Addr a = 1; a <= 256; ++a) {
        arr.candidates(a, cands);
        arr.replace(a, cands, 0);
    }
    std::vector<std::uint64_t> counts(256, 0);
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        arr.candidates(0, cands);
        for (const auto &c : cands) {
            ++counts[c.slot];
        }
    }
    const double expected = draws * 16.0 / 256.0;
    for (const auto count : counts) {
        EXPECT_NEAR(static_cast<double>(count), expected,
                    expected * 0.30);
    }
}

} // namespace
} // namespace vantage

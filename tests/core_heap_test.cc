/**
 * @file
 * CoreClockHeap tests: the indexed min-heap CmpSim uses to pick the
 * next core to step must agree exactly with the linear scan it
 * replaced — minimum cycle, ties broken toward the lowest core
 * index — under long randomized update sequences.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/core_heap.h"

namespace vantage {
namespace {

/** The replaced implementation: strict-<, lowest index wins ties. */
std::uint32_t
scanMin(const std::vector<Cycle> &clocks)
{
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c < clocks.size(); ++c) {
        if (clocks[c] < clocks[best]) {
            best = c;
        }
    }
    return best;
}

TEST(CoreClockHeap, FreshHeapPicksCoreZero)
{
    CoreClockHeap heap;
    heap.reset(8);
    EXPECT_EQ(heap.top(), 0u);
    EXPECT_EQ(heap.key(7), 0u);
}

TEST(CoreClockHeap, TiesBreakTowardLowestIndex)
{
    CoreClockHeap heap;
    heap.reset(4);
    heap.update(0, 10);
    heap.update(1, 5);
    heap.update(2, 5);
    heap.update(3, 5);
    EXPECT_EQ(heap.top(), 1u);
    heap.update(1, 5); // Re-setting the same key keeps the order.
    EXPECT_EQ(heap.top(), 1u);
    heap.update(1, 6);
    EXPECT_EQ(heap.top(), 2u);
}

TEST(CoreClockHeap, SingleCore)
{
    CoreClockHeap heap;
    heap.reset(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(heap.top(), 0u);
        heap.update(0, heap.key(0) + 3);
    }
}

/** Simulation-shaped traffic: always advance the minimum core. */
TEST(CoreClockHeap, AgreesWithLinearScanUnderSimTraffic)
{
    constexpr std::uint32_t kCores = 32;
    CoreClockHeap heap;
    heap.reset(kCores);
    std::vector<Cycle> ref(kCores, 0);

    Rng rng(41);
    for (int i = 0; i < 200000; ++i) {
        const std::uint32_t next = heap.top();
        ASSERT_EQ(next, scanMin(ref)) << "at step " << i;
        const Cycle advance = 1 + rng.range(200);
        ref[next] += advance;
        heap.update(next, heap.key(next) + advance);
        ASSERT_EQ(heap.key(next), ref[next]);
    }
}

/** Arbitrary updates (any core, up or down) must also agree. */
TEST(CoreClockHeap, AgreesWithLinearScanUnderRandomUpdates)
{
    constexpr std::uint32_t kCores = 17; // Odd, non-power-of-two.
    CoreClockHeap heap;
    heap.reset(kCores);
    std::vector<Cycle> ref(kCores, 0);

    Rng rng(43);
    for (int i = 0; i < 100000; ++i) {
        const auto core =
            static_cast<std::uint32_t>(rng.range(kCores));
        const Cycle value = rng.range(1000);
        ref[core] = value;
        heap.update(core, value);
        ASSERT_EQ(heap.top(), scanMin(ref)) << "at step " << i;
    }
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for epoch snapshots and deltas (stats/snapshot.h): counter
 * wrap, gauge vs counter semantics, paths appearing mid-run, rate
 * computation including the zero-elapsed guard, and the scalar
 * projections the snapshot layer inherits from the registry.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "stats/counters.h"
#include "stats/registry.h"
#include "stats/snapshot.h"

namespace vantage {
namespace {

TEST(Snapshot, CapturesCountersAndGauges)
{
    StatsRegistry reg;
    std::uint64_t evictions = 42;
    double level = 0.75;
    reg.addCounter("cache.evictions", &evictions);
    reg.addGauge("cache.fill", [&level] { return level; });

    StatsSnapshot snap = takeSnapshot(reg, 7, 1.5);
    EXPECT_EQ(snap.epoch, 7u);
    EXPECT_DOUBLE_EQ(snap.wallSeconds, 1.5);
    ASSERT_EQ(snap.values.size(), 2u);

    const ScalarSample &ev = snap.values.at("cache.evictions");
    EXPECT_TRUE(ev.isCounter);
    EXPECT_DOUBLE_EQ(ev.value, 42.0);

    const ScalarSample &fill = snap.values.at("cache.fill");
    EXPECT_FALSE(fill.isCounter);
    EXPECT_DOUBLE_EQ(fill.value, 0.75);
}

TEST(Snapshot, RunningStatProjectsToScalars)
{
    StatsRegistry reg;
    RunningStat stat;
    stat.add(2.0);
    stat.add(4.0);
    stat.add(9.0);
    reg.addStat("walk.len", &stat);

    StatsSnapshot snap = takeSnapshot(reg, 0, 0.0);
    EXPECT_TRUE(snap.values.at("walk.len.count").isCounter);
    EXPECT_DOUBLE_EQ(snap.values.at("walk.len.count").value, 3.0);
    EXPECT_FALSE(snap.values.at("walk.len.mean").isCounter);
    EXPECT_DOUBLE_EQ(snap.values.at("walk.len.mean").value, 5.0);
    EXPECT_DOUBLE_EQ(snap.values.at("walk.len.min").value, 2.0);
    EXPECT_DOUBLE_EQ(snap.values.at("walk.len.max").value, 9.0);
}

TEST(Snapshot, DeltaAndRate)
{
    StatsRegistry reg;
    std::uint64_t hits = 100;
    reg.addCounter("hits", &hits);

    StatsSnapshot a = takeSnapshot(reg, 1, 10.0);
    hits = 350;
    StatsSnapshot b = takeSnapshot(reg, 2, 12.0);

    SnapshotDelta d = deltaBetween(a, b);
    EXPECT_EQ(d.fromEpoch, 1u);
    EXPECT_EQ(d.toEpoch, 2u);
    EXPECT_DOUBLE_EQ(d.elapsedSeconds, 2.0);

    const DeltaEntry &e = d.entries.at("hits");
    EXPECT_TRUE(e.isCounter);
    EXPECT_FALSE(e.fresh);
    EXPECT_FALSE(e.wrapped);
    EXPECT_DOUBLE_EQ(e.current, 350.0);
    EXPECT_DOUBLE_EQ(e.delta, 250.0);
    EXPECT_DOUBLE_EQ(e.rate, 125.0);
}

TEST(Snapshot, CounterWrapRestartsDelta)
{
    // A counter that goes backwards (reset/wrap) must not produce a
    // negative delta; Prometheus-rate semantics restart the delta at
    // the current value.
    StatsRegistry reg;
    std::uint64_t n = 1000;
    reg.addCounter("n", &n);

    StatsSnapshot a = takeSnapshot(reg, 1, 0.0);
    n = 30; // reset
    StatsSnapshot b = takeSnapshot(reg, 2, 1.0);

    const DeltaEntry &e = deltaBetween(a, b).entries.at("n");
    EXPECT_TRUE(e.wrapped);
    EXPECT_DOUBLE_EQ(e.delta, 30.0);
    EXPECT_DOUBLE_EQ(e.rate, 30.0);
}

TEST(Snapshot, GaugesDeltaSignedAndNeverWrap)
{
    // Gauges move both ways; a drop is a real (negative) delta, not a
    // wrap.
    StatsRegistry reg;
    double g = 10.0;
    reg.addGauge("g", [&g] { return g; });

    StatsSnapshot a = takeSnapshot(reg, 1, 0.0);
    g = 4.0;
    StatsSnapshot b = takeSnapshot(reg, 2, 2.0);

    const DeltaEntry &e = deltaBetween(a, b).entries.at("g");
    EXPECT_FALSE(e.isCounter);
    EXPECT_FALSE(e.wrapped);
    EXPECT_DOUBLE_EQ(e.delta, -6.0);
    EXPECT_DOUBLE_EQ(e.rate, -3.0);
}

TEST(Snapshot, FreshPathsCountFromZero)
{
    // A partition registered mid-run shows up in the newer snapshot
    // only; its delta counts from zero and is flagged fresh.
    StatsRegistry reg;
    std::uint64_t base = 5;
    reg.addCounter("part0.hits", &base);
    StatsSnapshot a = takeSnapshot(reg, 1, 0.0);

    std::uint64_t late = 17;
    reg.addCounter("part1.hits", &late);
    base = 9;
    StatsSnapshot b = takeSnapshot(reg, 2, 1.0);

    SnapshotDelta d = deltaBetween(a, b);
    const DeltaEntry &old_e = d.entries.at("part0.hits");
    EXPECT_FALSE(old_e.fresh);
    EXPECT_DOUBLE_EQ(old_e.delta, 4.0);

    const DeltaEntry &new_e = d.entries.at("part1.hits");
    EXPECT_TRUE(new_e.fresh);
    EXPECT_FALSE(new_e.wrapped);
    EXPECT_DOUBLE_EQ(new_e.current, 17.0);
    EXPECT_DOUBLE_EQ(new_e.delta, 17.0);
    EXPECT_DOUBLE_EQ(new_e.rate, 17.0);
}

TEST(Snapshot, RemovedPathsDropFromDelta)
{
    StatsRegistry old_reg;
    std::uint64_t a_val = 1, b_val = 2;
    old_reg.addCounter("a", &a_val);
    old_reg.addCounter("b", &b_val);
    StatsSnapshot a = takeSnapshot(old_reg, 1, 0.0);

    StatsRegistry new_reg;
    new_reg.addCounter("a", &a_val);
    StatsSnapshot b = takeSnapshot(new_reg, 2, 1.0);

    SnapshotDelta d = deltaBetween(a, b);
    EXPECT_EQ(d.entries.size(), 1u);
    EXPECT_TRUE(d.entries.count("a"));
}

TEST(Snapshot, ZeroElapsedYieldsNanRate)
{
    // Two snapshots at the same instant: the delta is still exact but
    // a rate would divide by zero — it must be NaN, not Inf, so the
    // exporter can suppress it.
    StatsRegistry reg;
    std::uint64_t n = 10;
    reg.addCounter("n", &n);

    StatsSnapshot a = takeSnapshot(reg, 1, 5.0);
    n = 25;
    StatsSnapshot b = takeSnapshot(reg, 2, 5.0);

    SnapshotDelta d = deltaBetween(a, b);
    EXPECT_DOUBLE_EQ(d.elapsedSeconds, 0.0);
    const DeltaEntry &e = d.entries.at("n");
    EXPECT_DOUBLE_EQ(e.delta, 15.0);
    EXPECT_TRUE(std::isnan(e.rate));
}

TEST(Snapshot, BackwardsClockAlsoYieldsNanRate)
{
    StatsRegistry reg;
    std::uint64_t n = 0;
    reg.addCounter("n", &n);

    StatsSnapshot a = takeSnapshot(reg, 1, 5.0);
    StatsSnapshot b = takeSnapshot(reg, 2, 4.0);
    EXPECT_TRUE(std::isnan(deltaBetween(a, b).entries.at("n").rate));
}

TEST(Snapshot, EmptyRegistry)
{
    StatsRegistry reg;
    StatsSnapshot a = takeSnapshot(reg, 1, 0.0);
    EXPECT_TRUE(a.empty());
    StatsSnapshot b = takeSnapshot(reg, 2, 1.0);
    EXPECT_TRUE(deltaBetween(a, b).entries.empty());
}

TEST(Snapshot, CounterObjectAndClosureKindsAgree)
{
    // All three counter registration forms must project as counters.
    StatsRegistry reg;
    Counter c("c");
    c.inc(3);
    std::uint64_t raw = 4;
    reg.addCounter("obj", &c);
    reg.addCounter("raw", &raw);
    reg.addCounter("fn", [] { return std::uint64_t{5}; });

    StatsSnapshot snap = takeSnapshot(reg, 0, 0.0);
    EXPECT_TRUE(snap.values.at("obj").isCounter);
    EXPECT_DOUBLE_EQ(snap.values.at("obj").value, 3.0);
    EXPECT_TRUE(snap.values.at("raw").isCounter);
    EXPECT_DOUBLE_EQ(snap.values.at("raw").value, 4.0);
    EXPECT_TRUE(snap.values.at("fn").isCounter);
    EXPECT_DOUBLE_EQ(snap.values.at("fn").value, 5.0);
}

TEST(Snapshot, GuardedPrefixDropsWhileDisabled)
{
    // Tenant-slot lifecycle: a guard over the slot's prefix retires
    // its series from snapshots while the slot is empty, instead of
    // freezing them at their last values.
    StatsRegistry reg;
    bool attached = true;
    std::uint64_t hits = 10;
    reg.addGuard("tenant.part0", [&attached] { return attached; });
    reg.addCounter("tenant.part0.hits", &hits);
    reg.addCounter("tenant.other", [] { return std::uint64_t{1}; });

    StatsSnapshot live = takeSnapshot(reg, 1, 0.0);
    EXPECT_EQ(live.values.count("tenant.part0.hits"), 1u);

    attached = false; // Slot retired.
    StatsSnapshot gone = takeSnapshot(reg, 2, 1.0);
    EXPECT_EQ(gone.values.count("tenant.part0.hits"), 0u);
    EXPECT_EQ(gone.values.count("tenant.other"), 1u);

    // The guarded series drops from the delta like any removed path.
    SnapshotDelta d = deltaBetween(live, gone);
    EXPECT_EQ(d.entries.count("tenant.part0.hits"), 0u);
    EXPECT_EQ(d.entries.count("tenant.other"), 1u);
}

TEST(Snapshot, GuardedSlotReuseCountsFromZero)
{
    // A reused slot re-enables the guard with a rebuilt (reset)
    // counter behind it. Against the pre-retirement snapshot the
    // path reads as wrapped; against the retired-gap snapshot it is
    // fresh. Both restart the delta instead of going negative.
    StatsRegistry reg;
    bool attached = true;
    std::uint64_t hits = 500;
    reg.addGuard("tenant.part0", [&attached] { return attached; });
    reg.addCounter("tenant.part0.hits", &hits);

    StatsSnapshot before = takeSnapshot(reg, 1, 0.0);
    attached = false;
    StatsSnapshot gap = takeSnapshot(reg, 2, 1.0);
    attached = true; // New tenant in the slot, fresh counter.
    hits = 30;
    StatsSnapshot reused = takeSnapshot(reg, 3, 2.0);

    const DeltaEntry &vs_gap =
        deltaBetween(gap, reused).entries.at("tenant.part0.hits");
    EXPECT_TRUE(vs_gap.fresh);
    EXPECT_DOUBLE_EQ(vs_gap.delta, 30.0);

    const DeltaEntry &vs_before =
        deltaBetween(before, reused).entries.at("tenant.part0.hits");
    EXPECT_FALSE(vs_before.fresh);
    EXPECT_TRUE(vs_before.wrapped);
    EXPECT_DOUBLE_EQ(vs_before.delta, 30.0);
}

} // namespace
} // namespace vantage

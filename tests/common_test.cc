/**
 * @file
 * Tests for common utilities: RNG, bit helpers, logging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bits.h"
#include "common/log.h"
#include "common/rng.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// Rng
// ---------------------------------------------------------------

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_EQ(equal, 0);
}

TEST(Rng, RangeRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull,
                                (1ull << 33) + 7}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.range(bound), bound);
        }
    }
}

TEST(Rng, RangeOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(rng.range(1), 0u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.uniform();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeIsRoughlyUniform)
{
    Rng rng(13);
    const std::uint64_t buckets = 16;
    std::vector<int> counts(buckets, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i) {
        ++counts[rng.range(buckets)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, n / static_cast<int>(buckets),
                    n / static_cast<int>(buckets) / 10);
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.25)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngDeath, ZeroBoundPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.range(0), "zero bound");
}

// ---------------------------------------------------------------
// bits
// ---------------------------------------------------------------

TEST(Bits, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(Bits, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(1024), 10u);
    EXPECT_EQ(log2i(1ull << 50), 50u);
}

TEST(BitsDeath, Log2iNonPow2Panics)
{
    EXPECT_DEATH(log2i(3), "non-power-of-two");
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 5), 0u);
    EXPECT_EQ(ceilDiv(1, 5), 1u);
    EXPECT_EQ(ceilDiv(5, 5), 1u);
    EXPECT_EQ(ceilDiv(6, 5), 2u);
}

TEST(Bits, ModDistBasics)
{
    EXPECT_EQ(modDist(0, 0, 8), 0u);
    EXPECT_EQ(modDist(0, 5, 8), 5u);
    EXPECT_EQ(modDist(250, 4, 8), 10u); // Wraps across 256.
    EXPECT_EQ(modDist(5, 0, 8), 251u);
}

TEST(Bits, InModRangeBasics)
{
    // [10, 20) in 8-bit arithmetic.
    EXPECT_TRUE(inModRange(10, 10, 20, 8));
    EXPECT_TRUE(inModRange(19, 10, 20, 8));
    EXPECT_FALSE(inModRange(20, 10, 20, 8));
    EXPECT_FALSE(inModRange(9, 10, 20, 8));
}

TEST(Bits, InModRangeWrapping)
{
    // [250, 4): wraps across zero.
    EXPECT_TRUE(inModRange(250, 250, 4, 8));
    EXPECT_TRUE(inModRange(255, 250, 4, 8));
    EXPECT_TRUE(inModRange(0, 250, 4, 8));
    EXPECT_TRUE(inModRange(3, 250, 4, 8));
    EXPECT_FALSE(inModRange(4, 250, 4, 8));
    EXPECT_FALSE(inModRange(128, 250, 4, 8));
}

TEST(Bits, InModRangeEmpty)
{
    for (std::uint32_t x = 0; x < 256; ++x) {
        EXPECT_FALSE(inModRange(x, 42, 42, 8));
    }
}

/** Exhaustive property: membership count equals window width. */
TEST(Bits, InModRangeWidthProperty)
{
    for (std::uint32_t lo = 0; lo < 256; lo += 17) {
        for (std::uint32_t width = 0; width < 256; width += 13) {
            const auto hi = static_cast<std::uint8_t>(lo + width);
            std::uint32_t members = 0;
            for (std::uint32_t x = 0; x < 256; ++x) {
                if (inModRange(x, lo, hi, 8)) ++members;
            }
            EXPECT_EQ(members, width);
        }
    }
}

// ---------------------------------------------------------------
// log
// ---------------------------------------------------------------

TEST(LogDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LogDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LogDeath, AssertMacroFiresWithMessage)
{
    const int value = 3;
    EXPECT_DEATH(vantage_assert(value == 4, "value was %d", value),
                 "value was 3");
}

TEST(Log, WarnDoesNotTerminate)
{
    warn("this is only a warning (%d)", 1);
    SUCCEED();
}

TEST(Log, WarnOnceFiresOncePerSite)
{
    testing::internal::CaptureStderr();
    for (int i = 0; i < 5; ++i) {
        warn_once("deprecated knob used (%d)", i);
    }
    const std::string out = testing::internal::GetCapturedStderr();
    // One emission, from the first pass only.
    EXPECT_NE(out.find("deprecated knob used (0)"),
              std::string::npos);
    EXPECT_EQ(out.find("deprecated knob used (1)"),
              std::string::npos);
    EXPECT_EQ(out.find("(0)"), out.rfind("(0)"));
}

TEST(Log, WarnOnceSitesAreIndependent)
{
    testing::internal::CaptureStderr();
    warn_once("site A");
    warn_once("site B");
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("site A"), std::string::npos);
    EXPECT_NE(out.find("site B"), std::string::npos);
}

} // namespace
} // namespace vantage

/**
 * @file
 * Parallel-suite determinism: runSuite() must produce row-for-row
 * bit-identical MixRow output at any job count, because each mix is
 * a self-contained simulation (own RNG seeds, caches and scratch)
 * and rows are collected by job index, not completion order.
 *
 * The suite here is tiny (3 classes, 1 seed, short runs) so the
 * whole comparison stays in the seconds range; it still crosses
 * every layer a real suite does (mix generation, CmpSim, Vantage on
 * a zcache, UCP repartitioning).
 */

#include "suite.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace vantage;
using namespace vantage::bench;

namespace {

/** Tiny but layer-complete suite configuration. */
SuiteOptions
tinyOptions()
{
    // Read VANTAGE_JOBS (set by the tests below) exactly the way the
    // bench binaries do.
    RunScale defaults;
    defaults.warmupAccesses = 2'000;
    defaults.instructions = 30'000;
    defaults.mixSeedsPerClass = 1;
    SuiteOptions opts = SuiteOptions::fromEnv(
        CmpConfig::small4Core(), 1, defaults, /*default_stride=*/13);
    // The env may carry suite-scale overrides (VANTAGE_INSTRS etc.)
    // when run from a wrapper; pin the values so both runs agree.
    opts.scale.warmupAccesses = defaults.warmupAccesses;
    opts.scale.instructions = defaults.instructions;
    opts.scale.mixSeedsPerClass = defaults.mixSeedsPerClass;
    opts.classStride = 13; // Classes 0, 13, 26 -> 3 mixes.
    return opts;
}

std::vector<MixRow>
runTinySuite(const char *jobs_env)
{
    setenv("VANTAGE_JOBS", jobs_env, 1);
    const SuiteOptions opts = tinyOptions();
    L2Spec baseline;
    baseline.scheme = SchemeKind::UnpartLru;
    baseline.array = ArrayKind::SA16;
    baseline.numPartitions = opts.machine.numCores;
    baseline.lines = opts.machine.l2Lines();

    L2Spec vantage_spec;
    vantage_spec.scheme = SchemeKind::Vantage;
    vantage_spec.array = ArrayKind::Z4_52;
    vantage_spec.numPartitions = opts.machine.numCores;
    vantage_spec.lines = opts.machine.l2Lines();

    L2Spec waypart;
    waypart.scheme = SchemeKind::WayPart;
    waypart.array = ArrayKind::SA16;
    waypart.numPartitions = opts.machine.numCores;
    waypart.lines = opts.machine.l2Lines();

    const auto rows =
        runSuite(opts, baseline, {vantage_spec, waypart});
    unsetenv("VANTAGE_JOBS");
    return rows;
}

/** Bit-exact double comparison (1.0 vs 1.0+ulp must fail). */
bool
sameBits(double a, double b)
{
    std::uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof(a));
    std::memcpy(&bb, &b, sizeof(b));
    return ba == bb;
}

} // namespace

TEST(SuiteDeterminism, ParallelRunIsBitIdenticalToSerial)
{
    const std::vector<MixRow> serial = runTinySuite("1");
    const std::vector<MixRow> parallel = runTinySuite("4");

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 3u); // Classes 0, 13, 26.
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("row " + std::to_string(i));
        EXPECT_EQ(serial[i].mix, parallel[i].mix);
        EXPECT_TRUE(
            sameBits(serial[i].baseline, parallel[i].baseline))
            << serial[i].baseline << " vs " << parallel[i].baseline;
        ASSERT_EQ(serial[i].normalized.size(),
                  parallel[i].normalized.size());
        for (std::size_t k = 0; k < serial[i].normalized.size();
             ++k) {
            EXPECT_TRUE(sameBits(serial[i].normalized[k],
                                 parallel[i].normalized[k]))
                << "config " << k << ": "
                << serial[i].normalized[k] << " vs "
                << parallel[i].normalized[k];
        }
    }
}

TEST(SuiteDeterminism, RerunAtSameJobCountIsBitIdentical)
{
    // Guards against accidental global mutable state between runs
    // (the property the parallel runner depends on).
    const std::vector<MixRow> a = runTinySuite("4");
    const std::vector<MixRow> b = runTinySuite("4");
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].mix, b[i].mix);
        EXPECT_TRUE(sameBits(a[i].baseline, b[i].baseline));
        ASSERT_EQ(a[i].normalized, b[i].normalized);
    }
}

/**
 * @file
 * Tests for the correctness harness: InvariantReport, the per-module
 * checkInvariants() implementations (both that healthy caches pass
 * and that injected corruption is caught), the outcome digest, the
 * EmpiricalCdf cumulative cache, and the Lookahead post-conditions.
 */

#include <gtest/gtest.h>

#include "alloc/lookahead.h"
#include "cache/banked_cache.h"
#include "cache/cache.h"
#include "common/check.h"
#include "common/digest.h"
#include "common/rng.h"
#include "core/vantage.h"
#include "sim/experiment.h"
#include "stats/cdf.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// InvariantReport.

TEST(InvariantReport, CollectsFailuresAsData)
{
    InvariantReport rep;
    EXPECT_TRUE(rep.ok());
    EXPECT_TRUE(rep.expect(true, "never recorded"));
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.checksRun(), 1u);

    EXPECT_FALSE(rep.expect(false, "part %u short by %llu lines", 3u,
                            7ull));
    EXPECT_FALSE(rep.ok());
    ASSERT_EQ(rep.failures().size(), 1u);
    EXPECT_EQ(rep.failures()[0], "part 3 short by 7 lines");
    EXPECT_NE(rep.summary().find("short by 7"), std::string::npos);

    rep.fail("second failure");
    EXPECT_EQ(rep.failures().size(), 2u);

    rep.clear();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.checksRun(), 0u);
}

// ---------------------------------------------------------------
// Healthy caches pass their invariants under load.

L2Spec
smallSpec(SchemeKind scheme, ArrayKind array)
{
    L2Spec spec;
    spec.scheme = scheme;
    spec.array = array;
    spec.lines = 2048;
    spec.numPartitions = 4;
    spec.vantage.numPartitions = 4;
    spec.seed = 0x77;
    return spec;
}

/** Drive a mixed load/store stream with periodic check sweeps. */
void
driveAndCheck(Cache &cache, std::uint32_t parts,
              std::uint64_t accesses)
{
    Rng rng(0xd01ce);
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const auto part = static_cast<PartId>(rng.range(parts));
        const Addr addr = rng.range(6000);
        cache.access(addr, part,
                     rng.chance(0.3) ? AccessType::Store
                                     : AccessType::Load);
        if ((i + 1) % 1000 == 0) {
            InvariantReport rep;
            cache.checkInvariants(rep);
            ASSERT_TRUE(rep.ok())
                << "after " << (i + 1)
                << " accesses: " << rep.summary();
            EXPECT_GT(rep.checksRun(), 0u);
        }
    }
}

TEST(CheckInvariants, HealthySchemesPass)
{
    const struct
    {
        SchemeKind scheme;
        ArrayKind array;
    } points[] = {
        {SchemeKind::Vantage, ArrayKind::Z4_52},
        {SchemeKind::Vantage, ArrayKind::SA16},
        {SchemeKind::VantageDrrip, ArrayKind::Z4_16},
        {SchemeKind::VantageOracle, ArrayKind::Z4_52},
        {SchemeKind::WayPart, ArrayKind::SA16},
        {SchemeKind::Pipp, ArrayKind::SA16},
        {SchemeKind::UnpartLru, ArrayKind::Z4_52},
    };
    for (const auto &pt : points) {
        const L2Spec spec = smallSpec(pt.scheme, pt.array);
        std::unique_ptr<Cache> cache = buildL2(spec);
        SCOPED_TRACE(spec.name());
        driveAndCheck(*cache, spec.numPartitions, 5000);
    }
}

TEST(CheckInvariants, SurvivesReallocation)
{
    const L2Spec spec =
        smallSpec(SchemeKind::Vantage, ArrayKind::Z4_52);
    std::unique_ptr<Cache> cache = buildL2(spec);
    Rng rng(0xa110c);
    for (int round = 0; round < 8; ++round) {
        driveAndCheck(*cache, spec.numPartitions, 2000);
        // Random split of the 256-unit quantum.
        std::vector<std::uint32_t> units(4, 1);
        std::uint32_t left =
            cache->scheme().allocationQuantum() - 4;
        for (int p = 0; p < 3; ++p) {
            const auto grab =
                static_cast<std::uint32_t>(rng.range(left + 1));
            units[p] += grab;
            left -= grab;
        }
        units[3] += left;
        cache->scheme().setAllocations(units);
        InvariantReport rep;
        cache->checkInvariants(rep);
        ASSERT_TRUE(rep.ok()) << rep.summary();
    }
}

// ---------------------------------------------------------------
// Injected corruption is caught.

/** Fill a cache, then return a slot holding a valid line. */
LineId
someValidSlot(Cache &cache)
{
    for (LineId slot = 0; slot < cache.array().numLines(); ++slot) {
        if (cache.array().line(slot).valid()) {
            return slot;
        }
    }
    ADD_FAILURE() << "no valid line after warmup";
    return 0;
}

TEST(CheckInvariants, CatchesMispartitionedLine)
{
    for (const SchemeKind scheme :
         {SchemeKind::Vantage, SchemeKind::WayPart}) {
        const L2Spec spec = smallSpec(
            scheme, scheme == SchemeKind::WayPart ? ArrayKind::SA16
                                                  : ArrayKind::Z4_52);
        std::unique_ptr<Cache> cache = buildL2(spec);
        SCOPED_TRACE(spec.name());
        driveAndCheck(*cache, spec.numPartitions, 3000);

        // Retag one resident line: partition size counters no longer
        // match a recount.
        Line &line = cache->array().line(someValidSlot(*cache));
        line.part = (line.part + 1) % spec.numPartitions;

        InvariantReport rep;
        cache->checkInvariants(rep);
        EXPECT_FALSE(rep.ok())
            << "retagged line went undetected";
    }
}

TEST(CheckInvariants, CatchesCorruptChainPosition)
{
    const L2Spec spec = smallSpec(SchemeKind::Pipp, ArrayKind::SA16);
    std::unique_ptr<Cache> cache = buildL2(spec);
    driveAndCheck(*cache, spec.numPartitions, 3000);

    // Invalidate a tracked line behind the scheme's back: PIPP's
    // dense-chain recount must notice.
    Line &line = cache->array().line(someValidSlot(*cache));
    line.addr = kInvalidAddr;

    InvariantReport rep;
    cache->checkInvariants(rep);
    EXPECT_FALSE(rep.ok()) << "corrupt chain went undetected";
}

TEST(CheckInvariants, CatchesVantageSizeDrift)
{
    const L2Spec spec =
        smallSpec(SchemeKind::Vantage, ArrayKind::Z4_52);
    std::unique_ptr<Cache> cache = buildL2(spec);
    driveAndCheck(*cache, spec.numPartitions, 5000);

    auto *ctl =
        dynamic_cast<VantageController *>(&cache->scheme());
    ASSERT_NE(ctl, nullptr);
    InvariantReport before;
    cache->checkInvariants(before);
    ASSERT_TRUE(before.ok()) << before.summary();

    // Steal a line from partition 0 by retagging it as unmanaged:
    // both the partition recount and the unmanaged recount drift.
    Line &line = cache->array().line(someValidSlot(*cache));
    line.part = kUnmanagedPart;

    InvariantReport rep;
    cache->checkInvariants(rep);
    EXPECT_FALSE(rep.ok()) << "size drift went undetected";
}

TEST(CheckInvariants, BankedCacheAggregatesReports)
{
    std::vector<std::unique_ptr<Cache>> banks;
    for (int b = 0; b < 2; ++b) {
        L2Spec spec =
            smallSpec(SchemeKind::Vantage, ArrayKind::Z4_52);
        spec.lines = 1024;
        spec.seed = 0x77 + b;
        banks.push_back(buildL2(spec));
    }
    BankedCache banked(std::move(banks));
    Rng rng(0xbac);
    for (int i = 0; i < 4000; ++i) {
        banked.access(rng.range(5000),
                      static_cast<PartId>(rng.range(4)));
    }
    InvariantReport rep;
    banked.checkInvariants(rep);
    EXPECT_TRUE(rep.ok()) << rep.summary();

    Line &line = banked.bank(1).array().line(
        someValidSlot(banked.bank(1)));
    line.part = (line.part + 1) % 4;
    rep.clear();
    banked.checkInvariants(rep);
    EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------------------
// The outcome digest.

TEST(AccessDigest, FoldIsOrderSensitive)
{
    AccessDigest a, b, c;
    a.fold(1);
    a.fold(2);
    b.fold(2);
    b.fold(1);
    c.fold(1);
    c.fold(2);
    EXPECT_NE(a.value(), b.value());
    EXPECT_EQ(a.value(), c.value());

    AccessDigest fresh;
    b.reset();
    EXPECT_EQ(b.value(), fresh.value());
}

/** Digest of a fixed stream against a fixed spec. */
std::uint64_t
digestOfRun(const L2Spec &spec, std::uint64_t accesses,
            std::uint64_t stream_seed)
{
    std::unique_ptr<Cache> cache = buildL2(spec);
    AccessDigest digest;
    cache->attachDigest(&digest);
    Rng rng(stream_seed);
    for (std::uint64_t i = 0; i < accesses; ++i) {
        cache->access(rng.range(6000),
                      static_cast<PartId>(rng.range(4)),
                      rng.chance(0.3) ? AccessType::Store
                                      : AccessType::Load);
    }
    return digest.value();
}

TEST(AccessDigest, RunsAreReproducible)
{
    const L2Spec spec =
        smallSpec(SchemeKind::Vantage, ArrayKind::Z4_52);
    const std::uint64_t first = digestOfRun(spec, 8000, 0xfeed);
    const std::uint64_t second = digestOfRun(spec, 8000, 0xfeed);
    EXPECT_EQ(first, second);
}

TEST(AccessDigest, DigestSeesBehaviorChanges)
{
    const L2Spec spec =
        smallSpec(SchemeKind::Vantage, ArrayKind::Z4_52);
    L2Spec other = spec;
    other.vantage.unmanagedFraction = 0.15;
    EXPECT_NE(digestOfRun(spec, 8000, 0xfeed),
              digestOfRun(other, 8000, 0xfeed));
    // A different stream also moves it.
    EXPECT_NE(digestOfRun(spec, 8000, 0xfeed),
              digestOfRun(spec, 8000, 0xbeef));
}

// ---------------------------------------------------------------
// EmpiricalCdf: cumulative cache keeps exact semantics.

/** Reference O(bins) implementations (the pre-cache behavior). */
double
naiveAt(const std::vector<std::uint64_t> &counts, std::uint64_t total,
        double x)
{
    if (total == 0) return 0.0;
    if (x < 0.0) return 0.0;
    if (x >= 1.0) return 1.0;
    const auto upto = static_cast<std::size_t>(
        x * static_cast<double>(counts.size()));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < upto; ++i) acc += counts[i];
    return static_cast<double>(acc) / static_cast<double>(total);
}

double
naiveQuantile(const std::vector<std::uint64_t> &counts,
              std::uint64_t total, double q)
{
    if (total == 0) return 0.0;
    const double want = q * static_cast<double>(total);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        acc += counts[i];
        if (static_cast<double>(acc) >= want) {
            return static_cast<double>(i + 1) /
                   static_cast<double>(counts.size());
        }
    }
    return 1.0;
}

TEST(EmpiricalCdf, EmptyCdf)
{
    EmpiricalCdf cdf(100);
    EXPECT_EQ(cdf.samples(), 0u);
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 0.0);
}

TEST(EmpiricalCdf, SingleBin)
{
    EmpiricalCdf cdf(1);
    cdf.add(0.3);
    cdf.add(0.9);
    EXPECT_EQ(cdf.samples(), 2u);
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0); // Bin not yet complete.
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 1.0);
}

TEST(EmpiricalCdf, QuantileExtremes)
{
    EmpiricalCdf cdf(10);
    for (int i = 0; i < 100; ++i) {
        cdf.add(0.55); // All mass in bin 5.
    }
    // q=0 finds the first bin (running total 0 >= 0).
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.1);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.6);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 0.6);
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(0.6), 1.0);
}

TEST(EmpiricalCdf, MatchesNaiveReference)
{
    EmpiricalCdf cdf(97); // Deliberately not a round number.
    std::vector<std::uint64_t> counts(97, 0);
    std::uint64_t total = 0;
    Rng rng(0xcdf);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniform();
        cdf.add(x);
        auto bin = static_cast<std::size_t>(x * 97.0);
        if (bin == 97) --bin;
        ++counts[bin];
        ++total;
        if (i % 611 == 0) {
            // Interleave queries with adds to stress invalidation.
            const double q = rng.uniform();
            EXPECT_DOUBLE_EQ(cdf.at(q), naiveAt(counts, total, q));
            EXPECT_DOUBLE_EQ(cdf.quantile(q),
                             naiveQuantile(counts, total, q));
        }
    }
    for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.999, 1.0}) {
        EXPECT_DOUBLE_EQ(cdf.at(q), naiveAt(counts, total, q));
        EXPECT_DOUBLE_EQ(cdf.quantile(q),
                         naiveQuantile(counts, total, q));
    }
    cdf.reset();
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
}

// ---------------------------------------------------------------
// Lookahead post-conditions.

TEST(Lookahead, AssignsFullBudgetWithFloors)
{
    Rng rng(0x10cae);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint32_t parts =
            2 + static_cast<std::uint32_t>(rng.range(6));
        const std::uint32_t total = 32;
        std::vector<std::vector<double>> curves(parts);
        for (auto &curve : curves) {
            curve.resize(1 + rng.range(total));
            double acc = 0.0;
            for (double &v : curve) {
                acc += rng.uniform();
                v = acc;
            }
        }
        const std::vector<std::uint32_t> alloc =
            lookaheadAllocate(curves, total, 1);
        std::uint64_t sum = 0;
        for (const std::uint32_t a : alloc) {
            EXPECT_GE(a, 1u);
            sum += a;
        }
        EXPECT_EQ(sum, total);
    }
}

} // namespace
} // namespace vantage

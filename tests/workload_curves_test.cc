/**
 * @file
 * Parameterized per-profile miss-curve properties (TEST_P over all
 * 29 Table-3 profiles): every synthetic application's *measured*
 * cache behavior must have its category's shape. This is the
 * workload layer's contract with the evaluation — if these hold,
 * the mixes stress the partitioning schemes the way SPEC stresses
 * them in the paper.
 *
 * To keep the suite fast, curves are measured with a raw cache (no
 * CMP simulator) at three probe sizes per category.
 */

#include <gtest/gtest.h>

#include <memory>

#include "array/set_assoc.h"
#include "cache/cache.h"
#include "partition/unpartitioned.h"
#include "replacement/lru.h"
#include "workload/app_model.h"
#include "workload/profiles.h"

namespace vantage {
namespace {

/** Steady-state miss rate of `app` on a cache of `lines` lines. */
double
missRateAt(const AppSpec &spec, std::uint64_t lines,
           std::uint64_t accesses = 120'000)
{
    Cache cache(std::make_unique<SetAssocArray>(lines, 16, true, 0x3),
                std::make_unique<Unpartitioned>(
                    1, std::make_unique<ExactLru>()),
                "probe");
    AppModel app(spec, 0, 0xbeef);
    // Warm.
    for (std::uint64_t i = 0; i < accesses / 2; ++i) {
        cache.access(app.nextAddr(), 0);
    }
    cache.resetStats();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        cache.access(app.nextAddr(), 0);
    }
    return cache.totalStats().missRate();
}

class ProfileCurve : public ::testing::TestWithParam<std::string>
{
  protected:
    const AppSpec &spec() const { return appByName(GetParam()); }
};

TEST_P(ProfileCurve, ShapeMatchesCategory)
{
    const AppSpec &app = spec();
    switch (app.category) {
      case Category::Insensitive: {
        // Small working set: a 1 MB cache captures essentially all
        // reuse.
        const double mr = missRateAt(app, 16384);
        EXPECT_LT(mr, 0.02) << app.name;
        break;
      }
      case Category::CacheFriendly: {
        // Gradual: each doubling from 256 KB to 4 MB helps.
        const double mr256k = missRateAt(app, 4096);
        const double mr1m = missRateAt(app, 16384);
        const double mr4m = missRateAt(app, 65536);
        EXPECT_GT(mr256k, mr1m * 1.05) << app.name;
        EXPECT_GT(mr1m, mr4m * 1.05) << app.name;
        EXPECT_GT(mr4m, 0.0) << app.name;
        break;
      }
      case Category::CacheFitting: {
        // Sharp knee: 4 MB nearly eliminates misses, 512 KB does
        // not come close.
        const double mr512k = missRateAt(app, 8192);
        const double mr4m = missRateAt(app, 65536);
        EXPECT_GT(mr512k, 0.2) << app.name;
        EXPECT_LT(mr4m, mr512k * 0.2) << app.name;
        break;
      }
      case Category::Streaming: {
        // Capacity never helps: 4 MB is no better than 256 KB
        // (within 20%), and misses stay heavy.
        const double mr256k = missRateAt(app, 4096);
        const double mr4m = missRateAt(app, 65536);
        EXPECT_GT(mr4m, 0.3) << app.name;
        EXPECT_GT(mr4m, mr256k * 0.8) << app.name;
        break;
      }
    }
}

TEST_P(ProfileCurve, GeneratorIsDeterministic)
{
    AppModel a(spec(), 1, 7), b(spec(), 1, 7);
    for (int i = 0; i < 2000; ++i) {
        ASSERT_EQ(a.nextAddr(), b.nextAddr());
    }
}

TEST_P(ProfileCurve, StoresRoughlyMatchStoreFraction)
{
    AppModel app(spec(), 0, 11);
    int stores = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (app.next().type == AccessType::Store) {
            ++stores;
        }
    }
    EXPECT_NEAR(static_cast<double>(stores) / n,
                spec().storeFraction, 0.02);
}

std::vector<std::string>
allProfileNames()
{
    std::vector<std::string> names;
    for (const auto &app : appLibrary()) {
        names.push_back(app.name);
    }
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileCurve,
                         ::testing::ValuesIn(allProfileNames()),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace vantage

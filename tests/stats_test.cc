/**
 * @file
 * Tests for statistics utilities: counters, CDFs, time series, the
 * table printer, and the observability layer (JSON writer/parser,
 * stats registry, controller trace, profiling sites).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/vantage.h"
#include "sim/experiment.h"
#include "stats/cdf.h"
#include "stats/counters.h"
#include "stats/json.h"
#include "stats/prof.h"
#include "stats/registry.h"
#include "stats/table.h"
#include "stats/timeseries.h"
#include "stats/trace.h"
#include "workload/mixes.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// Counter / RunningStat
// ---------------------------------------------------------------

TEST(Counter, IncrementAndReset)
{
    Counter c("evictions");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(c.name(), "evictions");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

// ---------------------------------------------------------------
// EmpiricalCdf
// ---------------------------------------------------------------

TEST(EmpiricalCdf, EmptyReturnsZero)
{
    EmpiricalCdf cdf;
    EXPECT_EQ(cdf.samples(), 0u);
    EXPECT_EQ(cdf.at(0.5), 0.0);
}

TEST(EmpiricalCdf, UniformSamplesMatchIdentity)
{
    EmpiricalCdf cdf;
    Rng rng(3);
    for (int i = 0; i < 200000; ++i) {
        cdf.add(rng.uniform());
    }
    for (double x = 0.1; x < 1.0; x += 0.1) {
        EXPECT_NEAR(cdf.at(x), x, 0.01);
    }
}

TEST(EmpiricalCdf, PointMass)
{
    EmpiricalCdf cdf(100);
    for (int i = 0; i < 100; ++i) {
        cdf.add(0.75);
    }
    EXPECT_NEAR(cdf.at(0.74), 0.0, 1e-9);
    EXPECT_NEAR(cdf.at(0.76), 1.0, 1e-9);
    EXPECT_NEAR(cdf.quantile(0.5), 0.75, 0.02);
}

TEST(EmpiricalCdf, ClampsOutOfRange)
{
    EmpiricalCdf cdf(10);
    cdf.add(-3.0);
    cdf.add(17.0);
    EXPECT_EQ(cdf.samples(), 2u);
    EXPECT_NEAR(cdf.quantile(0.01), 0.1, 1e-9);
    EXPECT_NEAR(cdf.quantile(1.0), 1.0, 1e-9);
}

TEST(EmpiricalCdf, QuantileInvertsAt)
{
    EmpiricalCdf cdf;
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
        cdf.add(rng.uniform() * rng.uniform()); // Skewed low.
    }
    for (double q = 0.1; q < 1.0; q += 0.2) {
        const double x = cdf.quantile(q);
        EXPECT_NEAR(cdf.at(x), q, 0.02);
    }
}

TEST(EmpiricalCdf, ResetClears)
{
    EmpiricalCdf cdf;
    cdf.add(0.4);
    cdf.reset();
    EXPECT_EQ(cdf.samples(), 0u);
}

TEST(EmpiricalCdfDeath, BadQuantilePanics)
{
    EmpiricalCdf cdf;
    cdf.add(0.5);
    EXPECT_DEATH(cdf.quantile(1.5), "out of range");
}

// ---------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------

TEST(TimeSeries, RecordsPointsInOrder)
{
    TimeSeries ts("size");
    ts.add(10, 1.0);
    ts.add(20, 3.0);
    ASSERT_EQ(ts.points().size(), 2u);
    EXPECT_EQ(ts.points()[0].time, 10u);
    EXPECT_DOUBLE_EQ(ts.points()[1].value, 3.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
    EXPECT_EQ(ts.name(), "size");
}

TEST(TimeSeries, EmptyMeanIsZero)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.mean(), 0.0);
    EXPECT_TRUE(ts.name().empty());
}

TEST(TimeSeries, NegativeAndRepeatedTimesArePreserved)
{
    // The series is a plain capture: it must not sort, deduplicate
    // or reject repeated timestamps (a controller can sample twice
    // at the same access count), and negative values are legal.
    TimeSeries ts("aperture");
    ts.add(5, -1.0);
    ts.add(5, 3.0);
    ts.add(2, 0.0); // Out-of-order time is stored as given.
    ASSERT_EQ(ts.points().size(), 3u);
    EXPECT_EQ(ts.points()[0].time, 5u);
    EXPECT_EQ(ts.points()[1].time, 5u);
    EXPECT_EQ(ts.points()[2].time, 2u);
    EXPECT_DOUBLE_EQ(ts.points()[0].value, -1.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0 / 3.0);
    EXPECT_FALSE(ts.empty());
}

TEST(TimeSeries, RegistryJsonExportsParallelArrays)
{
    TimeSeries ts("size");
    ts.add(100, 1.5);
    ts.add(200, 2.5);
    StatsRegistry reg;
    reg.addSeries("part0.size", &ts);

    std::ostringstream out;
    reg.writeJson(out);
    std::string error;
    const JsonValue doc = JsonValue::parse(out.str(), error);
    ASSERT_TRUE(error.empty()) << error;
    const JsonValue *time = doc.find("part0.size.time");
    const JsonValue *value = doc.find("part0.size.value");
    ASSERT_NE(time, nullptr);
    ASSERT_NE(value, nullptr);
    ASSERT_EQ(time->array.size(), 2u);
    ASSERT_EQ(value->array.size(), 2u);
    EXPECT_DOUBLE_EQ(time->array[0].number, 100.0);
    EXPECT_DOUBLE_EQ(value->array[1].number, 2.5);
}

// ---------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header/separator/rows: 4 lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, FormatHelpers)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::fmtSci(0.000123, 1), "1.2e-04");
}

TEST(TablePrinterDeath, WrongArityPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

// ---------------------------------------------------------------
// JsonWriter / JsonValue
// ---------------------------------------------------------------

TEST(Json, WriterEmitsNestedDocument)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.kv("n", std::uint64_t{42});
    w.kv("x", 0.5);
    w.kv("s", "hi\"there");
    w.kv("b", true);
    w.key("arr");
    w.beginArray();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.endArray();
    w.key("inner");
    w.beginObject();
    w.kv("y", std::int64_t{-3});
    w.endObject();
    w.endObject();

    std::string error;
    const JsonValue doc = JsonValue::parse(out.str(), error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_TRUE(doc.isObject());
    EXPECT_DOUBLE_EQ(doc.find("n")->number, 42.0);
    EXPECT_DOUBLE_EQ(doc.find("x")->number, 0.5);
    EXPECT_EQ(doc.find("s")->str, "hi\"there");
    EXPECT_TRUE(doc.find("b")->boolean);
    ASSERT_TRUE(doc.find("arr")->isArray());
    EXPECT_EQ(doc.find("arr")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.find("inner.y")->number, -3.0);
    EXPECT_EQ(doc.find("inner.missing"), nullptr);
}

TEST(Json, NonFiniteBecomesNull)
{
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.kv("nan", std::nan(""));
    w.endObject();
    EXPECT_NE(out.str().find("null"), std::string::npos);
}

TEST(Json, AllNonFiniteFormsRoundTripAsNull)
{
    // NaN, +Inf and -Inf must all serialize as null, and the
    // resulting document must parse back with null at those keys
    // (a NaN leak would produce invalid JSON instead).
    std::ostringstream out;
    JsonWriter w(out);
    w.beginObject();
    w.kv("a", std::nan(""));
    w.kv("b", std::numeric_limits<double>::infinity());
    w.kv("c", -std::numeric_limits<double>::infinity());
    w.kv("d", 1.5);
    w.endObject();

    std::string error;
    const JsonValue doc = JsonValue::parse(out.str(), error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_TRUE(doc.find("a")->isNull());
    EXPECT_TRUE(doc.find("b")->isNull());
    EXPECT_TRUE(doc.find("c")->isNull());
    EXPECT_DOUBLE_EQ(doc.find("d")->number, 1.5);
    EXPECT_EQ(out.str().find("inf"), std::string::npos);
    EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

TEST(Json, ParseRejectsGarbage)
{
    std::string error;
    JsonValue::parse("{\"a\": }", error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("{\"a\": 1} trailing", error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("{\"a\": 1}", error);
    EXPECT_TRUE(error.empty());
}

// ---------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------

TEST(StatsRegistry, RegistersAndReadsLive)
{
    StatsRegistry reg;
    Counter c("demotions");
    std::uint64_t raw = 0;
    double gauge = 1.5;
    reg.addCounter("cache.l2.demotions", &c);
    reg.addCounter("cache.l2.raw", &raw);
    reg.addGauge("cache.l2.occupancy", [&] { return gauge; });
    reg.addString("run.config", "vantage-z4");

    EXPECT_EQ(reg.size(), 4u);
    EXPECT_TRUE(reg.contains("cache.l2.demotions"));
    EXPECT_FALSE(reg.contains("cache.l2.missing"));

    // Accessors read current values at export time, not copies.
    c.inc(7);
    raw = 11;
    gauge = 2.5;
    EXPECT_DOUBLE_EQ(*reg.value("cache.l2.demotions"), 7.0);
    EXPECT_DOUBLE_EQ(*reg.value("cache.l2.raw"), 11.0);
    EXPECT_DOUBLE_EQ(*reg.value("cache.l2.occupancy"), 2.5);
    EXPECT_FALSE(reg.value("run.config").has_value()); // Not scalar.
    EXPECT_FALSE(reg.value("nope").has_value());

    const auto paths = reg.paths();
    ASSERT_EQ(paths.size(), 4u);
    EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
}

TEST(StatsRegistry, JsonRoundTrip)
{
    StatsRegistry reg;
    Counter hits("hits");
    hits.inc(123);
    RunningStat rs;
    rs.add(1.0);
    rs.add(3.0);
    TimeSeries ts("size");
    ts.add(10, 4.0);
    ts.add(20, 8.0);
    reg.addCounter("cache.l2.part0.hits", &hits);
    reg.addGauge("cache.l2.miss_rate", [] { return 0.25; });
    reg.addStat("cache.l2.latency", &rs);
    reg.addSeries("cache.l2.size", &ts);
    reg.addString("run.config", "test");

    std::ostringstream out;
    reg.writeJson(out);

    std::string error;
    const JsonValue doc = JsonValue::parse(out.str(), error);
    ASSERT_TRUE(error.empty()) << error << "\n" << out.str();
    EXPECT_DOUBLE_EQ(doc.find("cache.l2.part0.hits")->number, 123.0);
    EXPECT_DOUBLE_EQ(doc.find("cache.l2.miss_rate")->number, 0.25);
    EXPECT_DOUBLE_EQ(doc.find("cache.l2.latency.count")->number, 2.0);
    EXPECT_DOUBLE_EQ(doc.find("cache.l2.latency.mean")->number, 2.0);
    ASSERT_NE(doc.find("cache.l2.size.time"), nullptr);
    EXPECT_EQ(doc.find("cache.l2.size.time")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(doc.find("cache.l2.size.value")->array[1].number,
                     8.0);
    EXPECT_EQ(doc.find("run.config")->str, "test");
}

TEST(StatsRegistry, CsvFlattensScalars)
{
    StatsRegistry reg;
    Counter c("hits");
    c.inc(5);
    RunningStat rs;
    rs.add(2.0);
    reg.addCounter("a.hits", &c);
    reg.addGauge("a.rate", [] { return 0.5; });
    reg.addStat("a.lat", &rs);

    std::ostringstream out;
    reg.writeCsv(out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find("path,kind,value"), std::string::npos);
    EXPECT_NE(csv.find("a.hits,counter,5"), std::string::npos);
    EXPECT_NE(csv.find("a.rate,gauge,0.5"), std::string::npos);
    EXPECT_NE(csv.find("a.lat.count,stat,1"), std::string::npos);
    EXPECT_NE(csv.find("a.lat.mean,stat,2"), std::string::npos);
}

TEST(StatsRegistryDeath, DuplicateAndCollidingPathsPanic)
{
    StatsRegistry reg;
    reg.addGauge("cache.l2.size", [] { return 0.0; });
    // Exact duplicate.
    EXPECT_DEATH(reg.addGauge("cache.l2.size", [] { return 0.0; }),
                 "duplicate");
    // Leaf used as a subtree.
    EXPECT_DEATH(
        reg.addGauge("cache.l2.size.bytes", [] { return 0.0; }),
        "collides");
    // Subtree used as a leaf.
    EXPECT_DEATH(reg.addGauge("cache.l2", [] { return 0.0; }),
                 "collides");
}

TEST(StatsRegistryDeath, UnwritablePathIsFatal)
{
    StatsRegistry reg;
    reg.addGauge("x", [] { return 1.0; });
    EXPECT_EXIT(reg.writeJsonFile("/nonexistent-dir/stats.json"),
                testing::ExitedWithCode(1), "cannot open");
    EXPECT_EXIT(reg.writeCsvFile("/nonexistent-dir/stats.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

// ---------------------------------------------------------------
// ControllerTrace
// ---------------------------------------------------------------

TEST(ControllerTrace, DueEveryPeriod)
{
    ControllerTrace trace(100);
    EXPECT_EQ(trace.period(), 100u);
    EXPECT_TRUE(trace.due(100));
    EXPECT_TRUE(trace.due(200));
    EXPECT_FALSE(trace.due(101));
    EXPECT_FALSE(trace.due(199));
}

TEST(ControllerTrace, CsvRendersAllColumns)
{
    ControllerTrace trace(10);
    TraceSample s;
    s.access = 10;
    s.part = 2;
    s.targetSize = 100;
    s.actualSize = 104;
    s.aperture = 0.125;
    s.currentTs = 9;
    s.setpointTs = 7;
    s.candsSeen = 52;
    s.candsDemoted = 3;
    s.demotions = 400;
    s.promotions = 20;
    trace.record(s);

    std::ostringstream out;
    trace.writeCsv(out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find(ControllerTrace::csvHeader()),
              std::string::npos);
    EXPECT_NE(csv.find("10,2,100,104,0.125"), std::string::npos);
    EXPECT_NE(csv.find("9,7,52,3,400,20"), std::string::npos);
}

TEST(ControllerTrace, CsvRoundTripsEveryField)
{
    // Parse the rendered CSV back field by field: a column drift
    // (reordering, dropped field, truncated precision) must fail
    // here even if substring spot-checks still pass.
    ControllerTrace trace(10);
    for (std::uint32_t p = 0; p < 3; ++p) {
        TraceSample s;
        s.access = 1000 + p;
        s.part = p;
        s.targetSize = 200 * (p + 1);
        s.actualSize = 200 * (p + 1) + 7;
        s.aperture = 0.0625 * (p + 1);
        s.currentTs = 30 + p;
        s.setpointTs = 20 + p;
        s.candsSeen = 52;
        s.candsDemoted = p;
        s.demotions = 1'000'000 + p;
        s.promotions = 500 + p;
        trace.record(s);
    }

    std::ostringstream out;
    trace.writeCsv(out);
    std::istringstream in(out.str());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, ControllerTrace::csvHeader());
    for (std::uint32_t p = 0; p < 3; ++p) {
        ASSERT_TRUE(std::getline(in, line)) << "row " << p;
        std::istringstream row(line);
        std::string cell;
        std::vector<std::string> cells;
        while (std::getline(row, cell, ',')) {
            cells.push_back(cell);
        }
        const TraceSample &s = trace.samples()[p];
        ASSERT_EQ(cells.size(), 11u);
        EXPECT_EQ(std::stoull(cells[0]), s.access);
        EXPECT_EQ(std::stoul(cells[1]), s.part);
        EXPECT_EQ(std::stoull(cells[2]), s.targetSize);
        EXPECT_EQ(std::stoull(cells[3]), s.actualSize);
        EXPECT_NEAR(std::stod(cells[4]), s.aperture, 1e-9);
        EXPECT_EQ(std::stoul(cells[5]), s.currentTs);
        EXPECT_EQ(std::stoul(cells[6]), s.setpointTs);
        EXPECT_EQ(std::stoul(cells[7]), s.candsSeen);
        EXPECT_EQ(std::stoul(cells[8]), s.candsDemoted);
        EXPECT_EQ(std::stoull(cells[9]), s.demotions);
        EXPECT_EQ(std::stoull(cells[10]), s.promotions);
    }
    EXPECT_FALSE(std::getline(in, line)); // No trailing rows.
}

TEST(ControllerTraceDeath, UnwritablePathIsFatal)
{
    ControllerTrace trace(10);
    EXPECT_EXIT(trace.writeCsvFile("/nonexistent-dir/trace.csv"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(ControllerTrace, SamplesVantageControllerAtExactCadence)
{
    CmpConfig machine = CmpConfig::small4Core();
    L2Spec spec;
    spec.scheme = SchemeKind::Vantage;
    spec.array = ArrayKind::Z4_52;
    spec.numPartitions = machine.numCores;
    spec.lines = machine.l2Lines();
    CmpSim sim(machine, makeMix(0, 1, 0), buildL2(spec));
    auto &ctl = static_cast<VantageController &>(sim.l2().scheme());

    const std::uint64_t kPeriod = 1'000;
    ControllerTrace trace(kPeriod);
    ctl.attachTrace(&trace);
    sim.warmup(2'000);
    sim.run(30'000);

    ASSERT_FALSE(trace.empty());
    // One row per partition per sample point.
    ASSERT_EQ(trace.samples().size() % machine.numCores, 0u);

    std::uint64_t last_access = 0;
    for (std::size_t i = 0; i < trace.samples().size(); ++i) {
        const TraceSample &s = trace.samples()[i];
        EXPECT_EQ(s.part, i % machine.numCores);
        EXPECT_EQ(s.access % kPeriod, 0u);
        if (s.part == 0 && last_access != 0) {
            EXPECT_EQ(s.access, last_access + kPeriod);
        }
        if (s.part == 0) {
            last_access = s.access;
        }
        // Register-file sanity: sizes bounded by the cache, aperture
        // within [0, Amax].
        EXPECT_LE(s.actualSize, spec.lines);
        EXPECT_LE(s.targetSize, spec.lines);
        EXPECT_GE(s.aperture, 0.0);
        EXPECT_LE(s.aperture, spec.vantage.maxAperture + 1e-12);
    }
    // The last sample sits at the final full period boundary.
    EXPECT_EQ(trace.samples().back().access,
              (ctl.accessesSeen() / kPeriod) * kPeriod);

    trace.clear();
    EXPECT_TRUE(trace.empty());
}

// ---------------------------------------------------------------
// ProfSite / ProfScope / profExport
// ---------------------------------------------------------------

TEST(Prof, SiteAccumulatesAndExports)
{
    static ProfSite site("test.prof_site");
    site.reset();
    {
        ProfScope scope(site);
    }
    site.add(500);
    EXPECT_EQ(site.calls(), 2u);
    EXPECT_GE(site.totalNs(), 500u);

    const auto &sites = profSites();
    EXPECT_NE(std::find(sites.begin(), sites.end(), &site),
              sites.end());

    StatsRegistry reg;
    profExport(reg);
    EXPECT_DOUBLE_EQ(*reg.value("prof.test.prof_site.calls"), 2.0);
    EXPECT_GE(*reg.value("prof.test.prof_site.total_ns"), 500.0);

    profResetAll();
    EXPECT_EQ(site.calls(), 0u);
}

} // namespace
} // namespace vantage

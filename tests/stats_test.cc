/**
 * @file
 * Tests for statistics utilities: counters, CDFs, time series, and
 * the table printer.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "stats/cdf.h"
#include "stats/counters.h"
#include "stats/table.h"
#include "stats/timeseries.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// Counter / RunningStat
// ---------------------------------------------------------------

TEST(Counter, IncrementAndReset)
{
    Counter c("evictions");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(c.name(), "evictions");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

// ---------------------------------------------------------------
// EmpiricalCdf
// ---------------------------------------------------------------

TEST(EmpiricalCdf, EmptyReturnsZero)
{
    EmpiricalCdf cdf;
    EXPECT_EQ(cdf.samples(), 0u);
    EXPECT_EQ(cdf.at(0.5), 0.0);
}

TEST(EmpiricalCdf, UniformSamplesMatchIdentity)
{
    EmpiricalCdf cdf;
    Rng rng(3);
    for (int i = 0; i < 200000; ++i) {
        cdf.add(rng.uniform());
    }
    for (double x = 0.1; x < 1.0; x += 0.1) {
        EXPECT_NEAR(cdf.at(x), x, 0.01);
    }
}

TEST(EmpiricalCdf, PointMass)
{
    EmpiricalCdf cdf(100);
    for (int i = 0; i < 100; ++i) {
        cdf.add(0.75);
    }
    EXPECT_NEAR(cdf.at(0.74), 0.0, 1e-9);
    EXPECT_NEAR(cdf.at(0.76), 1.0, 1e-9);
    EXPECT_NEAR(cdf.quantile(0.5), 0.75, 0.02);
}

TEST(EmpiricalCdf, ClampsOutOfRange)
{
    EmpiricalCdf cdf(10);
    cdf.add(-3.0);
    cdf.add(17.0);
    EXPECT_EQ(cdf.samples(), 2u);
    EXPECT_NEAR(cdf.quantile(0.01), 0.1, 1e-9);
    EXPECT_NEAR(cdf.quantile(1.0), 1.0, 1e-9);
}

TEST(EmpiricalCdf, QuantileInvertsAt)
{
    EmpiricalCdf cdf;
    Rng rng(5);
    for (int i = 0; i < 50000; ++i) {
        cdf.add(rng.uniform() * rng.uniform()); // Skewed low.
    }
    for (double q = 0.1; q < 1.0; q += 0.2) {
        const double x = cdf.quantile(q);
        EXPECT_NEAR(cdf.at(x), q, 0.02);
    }
}

TEST(EmpiricalCdf, ResetClears)
{
    EmpiricalCdf cdf;
    cdf.add(0.4);
    cdf.reset();
    EXPECT_EQ(cdf.samples(), 0u);
}

TEST(EmpiricalCdfDeath, BadQuantilePanics)
{
    EmpiricalCdf cdf;
    cdf.add(0.5);
    EXPECT_DEATH(cdf.quantile(1.5), "out of range");
}

// ---------------------------------------------------------------
// TimeSeries
// ---------------------------------------------------------------

TEST(TimeSeries, RecordsPointsInOrder)
{
    TimeSeries ts("size");
    ts.add(10, 1.0);
    ts.add(20, 3.0);
    ASSERT_EQ(ts.points().size(), 2u);
    EXPECT_EQ(ts.points()[0].time, 10u);
    EXPECT_DOUBLE_EQ(ts.points()[1].value, 3.0);
    EXPECT_DOUBLE_EQ(ts.mean(), 2.0);
    EXPECT_EQ(ts.name(), "size");
}

TEST(TimeSeries, EmptyMeanIsZero)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.mean(), 0.0);
}

// ---------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Header/separator/rows: 4 lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, FormatHelpers)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::fmtSci(0.000123, 1), "1.2e-04");
}

TEST(TablePrinterDeath, WrongArityPanics)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

} // namespace
} // namespace vantage

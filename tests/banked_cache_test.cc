/**
 * @file
 * Tests for the banked shared cache (the paper's 4-bank 8 MB L2).
 */

#include <gtest/gtest.h>

#include <memory>

#include "array/zarray.h"
#include "cache/banked_cache.h"
#include "common/rng.h"
#include "core/vantage.h"

namespace vantage {
namespace {

constexpr std::size_t kBankLines = 2048;
constexpr std::uint32_t kBanks = 4;
constexpr std::uint32_t kParts = 2;

BankedCache
makeBanked()
{
    std::vector<std::unique_ptr<Cache>> banks;
    for (std::uint32_t b = 0; b < kBanks; ++b) {
        VantageConfig cfg;
        cfg.numPartitions = kParts;
        cfg.unmanagedFraction = 0.1;
        banks.push_back(std::make_unique<Cache>(
            std::make_unique<ZArray>(kBankLines, 4, 52, 0x100 + b),
            std::make_unique<VantageController>(kBankLines, cfg),
            "bank" + std::to_string(b)));
    }
    return BankedCache(std::move(banks));
}

TEST(BankedCache, RoutesConsistently)
{
    BankedCache cache = makeBanked();
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next() >> 16;
        const std::uint32_t b1 = cache.bankOf(a);
        const std::uint32_t b2 = cache.bankOf(a);
        EXPECT_EQ(b1, b2);
        EXPECT_LT(b1, kBanks);
    }
}

TEST(BankedCache, SpreadsAddressesAcrossBanks)
{
    BankedCache cache = makeBanked();
    std::vector<int> counts(kBanks, 0);
    for (Addr a = 0; a < 40000; ++a) {
        ++counts[cache.bankOf(a)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, 10000, 1000);
    }
}

TEST(BankedCache, MissThenHit)
{
    BankedCache cache = makeBanked();
    EXPECT_EQ(cache.access(0x42, 0), AccessResult::Miss);
    EXPECT_EQ(cache.access(0x42, 0), AccessResult::Hit);
    EXPECT_TRUE(cache.contains(0x42));
}

TEST(BankedCache, AggregateStats)
{
    BankedCache cache = makeBanked();
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        cache.access(rng.range(2000), 0);
        cache.access((1ull << 40) | rng.range(2000), 1);
    }
    const CacheAccessStats total = cache.totalStats();
    EXPECT_EQ(total.accesses(), 20000u);
    EXPECT_EQ(cache.partAccessStats(0).accesses(), 10000u);
    EXPECT_GT(total.hits, 0u);
    cache.resetStats();
    EXPECT_EQ(cache.totalStats().accesses(), 0u);
}

TEST(BankedCache, GlobalAllocationsEnforcedPerBank)
{
    BankedCache cache = makeBanked();
    // 3/4 of each bank's quantum to partition 0.
    cache.setAllocations({192, 64});
    Rng rng(7);
    for (int i = 0; i < 400000; ++i) {
        cache.access((1ull << 40) | (rng.next() >> 16), 0);
        cache.access((2ull << 40) | (rng.next() >> 16), 1);
    }
    // Aggregate sizes reflect the 3:1 split.
    const auto s0 = static_cast<double>(cache.actualSize(0));
    const auto s1 = static_cast<double>(cache.actualSize(1));
    EXPECT_NEAR(s0 / (s0 + s1), 0.75, 0.05);
    // And each bank individually enforces it (hash-spread churn).
    for (std::uint32_t b = 0; b < kBanks; ++b) {
        const auto &scheme = cache.bank(b).scheme();
        EXPECT_GT(scheme.actualSize(0),
                  scheme.actualSize(1) * 2)
            << "bank " << b;
    }
}

TEST(BankedCache, WritebacksAggregate)
{
    BankedCache cache = makeBanked();
    Rng rng(9);
    for (int i = 0; i < 60000; ++i) {
        cache.access(rng.next() >> 16, 0, AccessType::Store);
    }
    EXPECT_GT(cache.writebacks(), 1000u);
}

TEST(BankedCacheDeath, MismatchedBanksPanic)
{
    std::vector<std::unique_ptr<Cache>> banks;
    for (std::uint32_t parts : {2u, 3u}) {
        VantageConfig cfg;
        cfg.numPartitions = parts;
        cfg.unmanagedFraction = 0.1;
        banks.push_back(std::make_unique<Cache>(
            std::make_unique<ZArray>(kBankLines, 4, 16, 1),
            std::make_unique<VantageController>(kBankLines, cfg),
            "b"));
    }
    EXPECT_DEATH(BankedCache(std::move(banks)), "disagree");
}

} // namespace
} // namespace vantage

/**
 * @file
 * ThreadPool unit tests: result ordering, exception propagation,
 * and the zero/one-worker edge cases the suite runner relies on.
 */

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace vantage;

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numWorkers(), 0u);

    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    auto fut = pool.submit([&] { ran_on = std::this_thread::get_id(); });
    // With zero workers the job completed before submit() returned.
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    fut.get();
    EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, OneWorkerRunsJobsInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i) {
        futs.push_back(pool.submit([&order, i] {
            order.push_back(i); // Single worker: no racing appends.
        }));
    }
    for (auto &f : futs) {
        f.get();
    }
    std::vector<int> expect(64);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(order, expect);
}

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(2);
    auto a = pool.submit([] { return 21; });
    auto b = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(a.get(), 21);
    EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (const unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        constexpr std::size_t kN = 200;
        std::vector<std::atomic<int>> hits(kN);
        pool.parallelFor(kN, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kN; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " workers " << workers;
        }
    }
}

TEST(ThreadPool, ParallelForCollectsResultsByIndex)
{
    // The determinism contract: slot i holds f(i) regardless of
    // which worker ran it or in what order jobs finished.
    ThreadPool pool(4);
    constexpr std::size_t kN = 100;
    std::vector<std::uint64_t> out(kN, 0);
    pool.parallelFor(kN, [&](std::size_t i) {
        out[i] = i * i + 1;
    });
    for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(out[i], i * i + 1);
    }
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    for (const unsigned workers : {0u, 1u, 4u}) {
        ThreadPool pool(workers);
        std::atomic<int> completed{0};
        EXPECT_THROW(
            pool.parallelFor(50,
                             [&](std::size_t i) {
                                 if (i == 17) {
                                     throw std::runtime_error("boom");
                                 }
                                 completed.fetch_add(1);
                             }),
            std::runtime_error)
            << "workers " << workers;
        // Every non-throwing iteration still ran to completion.
        EXPECT_EQ(completed.load(), 49) << "workers " << workers;
    }
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFutures)
{
    ThreadPool pool(1);
    auto fut = pool.submit(
        []() -> int { throw std::logic_error("bad"); });
    EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPool, ParallelForZeroJobsIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ResolveJobsPrefersExplicitRequest)
{
    setenv("VANTAGE_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::resolveJobs(7), 7u);
    EXPECT_EQ(ThreadPool::resolveJobs(0), 3u);
    unsetenv("VANTAGE_JOBS");
    // Env unset: falls back to hardware concurrency, always >= 1.
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
}

TEST(ThreadPool, ResolveJobsIgnoresBadEnv)
{
    setenv("VANTAGE_JOBS", "0", 1);
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
    setenv("VANTAGE_JOBS", "junk", 1);
    EXPECT_GE(ThreadPool::resolveJobs(0), 1u);
    unsetenv("VANTAGE_JOBS");
}

TEST(ThreadPool, ManySmallJobsDrainCleanly)
{
    // Destructor joins with a non-empty history of finished work;
    // also exercises queue contention under TSAN.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(1000, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000ull * 999ull / 2ull);
}

/**
 * @file
 * Histogram: bucket boundaries, moments, merge, quantiles, and the
 * registry JSON/CSV export (including NaN -> null for empty
 * histograms).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/histogram.h"
#include "stats/json.h"
#include "stats/registry.h"

using namespace vantage;

TEST(Histogram, BucketIndexBoundaries)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(7), 3u);
    EXPECT_EQ(Histogram::bucketIndex(8), 4u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
    EXPECT_EQ(Histogram::bucketIndex(
                  std::numeric_limits<std::uint64_t>::max()),
              64u);
}

TEST(Histogram, BucketBoundsRoundTrip)
{
    // Every bucket's [low, high] must map back to that bucket.
    for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i) {
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketLow(i)), i)
            << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketHigh(i)), i)
            << "bucket " << i;
    }
    EXPECT_EQ(Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Histogram::bucketHigh(0), 0u);
    EXPECT_EQ(Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Histogram::bucketHigh(1), 1u);
    EXPECT_EQ(Histogram::bucketHigh(64),
              std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, MomentsAndCounts)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_TRUE(std::isnan(h.mean()));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));

    for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 10ull}) {
        h.add(v);
    }
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 16u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 16.0 / 5.0);
    EXPECT_EQ(h.bucketCount(0), 1u); // 0
    EXPECT_EQ(h.bucketCount(1), 1u); // 1
    EXPECT_EQ(h.bucketCount(2), 2u); // 2, 3
    EXPECT_EQ(h.bucketCount(4), 1u); // 10
}

TEST(Histogram, Merge)
{
    Histogram a, b, empty;
    a.add(1);
    a.add(100);
    b.add(7);
    b.add(5000);

    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_EQ(a.sum(), 1u + 100u + 7u + 5000u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 5000u);

    // Merging an empty histogram is a no-op; merging into an empty
    // one copies the source's extremes.
    a.merge(empty);
    EXPECT_EQ(a.count(), 4u);
    Histogram c;
    c.merge(b);
    EXPECT_EQ(c.min(), 7u);
    EXPECT_EQ(c.max(), 5000u);
}

TEST(Histogram, QuantilesMonotoneAndClamped)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        h.add(v);
    }
    double prev = -1.0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const double x = h.quantile(q);
        EXPECT_GE(x, static_cast<double>(h.min()));
        EXPECT_LE(x, static_cast<double>(h.max()));
        EXPECT_GE(x, prev) << "quantile not monotone at q=" << q;
        prev = x;
    }
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
    // Out-of-range q clamps instead of misbehaving.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
    // Median of 1..1000 should land near 500 (log-bucket precision).
    EXPECT_NEAR(h.quantile(0.5), 500.0, 130.0);
}

TEST(Histogram, SingleValue)
{
    Histogram h;
    h.add(42);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
}

TEST(Histogram, Reset)
{
    Histogram h;
    h.add(3);
    h.add(9);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_TRUE(std::isnan(h.mean()));
    for (std::uint32_t i = 0; i < Histogram::kBuckets; ++i) {
        EXPECT_EQ(h.bucketCount(i), 0u);
    }
}

TEST(HistogramRegistry, JsonExportRoundTrips)
{
    Histogram h;
    for (std::uint64_t v : {1ull, 2ull, 2ull, 3ull, 100ull}) {
        h.add(v);
    }
    StatsRegistry reg;
    reg.addHistogram("cache.walk", &h);

    std::ostringstream out;
    reg.writeJson(out);
    std::string error;
    const JsonValue doc = JsonValue::parse(out.str(), error);
    ASSERT_TRUE(error.empty()) << error;

    const JsonValue *node = doc.find("cache.walk");
    ASSERT_NE(node, nullptr);
    EXPECT_DOUBLE_EQ(node->find("count")->number, 5.0);
    EXPECT_DOUBLE_EQ(node->find("sum")->number, 108.0);
    EXPECT_DOUBLE_EQ(node->find("min")->number, 1.0);
    EXPECT_DOUBLE_EQ(node->find("max")->number, 100.0);
    EXPECT_NEAR(node->find("mean")->number, 108.0 / 5.0, 1e-9);
    ASSERT_NE(node->find("p50"), nullptr);
    ASSERT_NE(node->find("p90"), nullptr);
    ASSERT_NE(node->find("p99"), nullptr);

    // Only non-empty buckets are listed, as parallel arrays.
    const JsonValue *lows = node->find("bucket_low");
    const JsonValue *counts = node->find("bucket_count");
    ASSERT_NE(lows, nullptr);
    ASSERT_NE(counts, nullptr);
    ASSERT_TRUE(lows->isArray());
    ASSERT_EQ(lows->array.size(), counts->array.size());
    ASSERT_EQ(lows->array.size(), 3u); // buckets for 1, {2,3}, 100
    double total = 0.0;
    for (const auto &c : counts->array) {
        total += c.number;
    }
    EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(HistogramRegistry, EmptyHistogramExportsNulls)
{
    // The empty histogram's NaN mean/quantiles must serialize as
    // JSON null (satellite of the non-finite JsonWriter fix), and
    // the file must still parse.
    Histogram h;
    StatsRegistry reg;
    reg.addHistogram("empty", &h);

    std::ostringstream out;
    reg.writeJson(out);
    std::string error;
    const JsonValue doc = JsonValue::parse(out.str(), error);
    ASSERT_TRUE(error.empty()) << error;

    const JsonValue *node = doc.find("empty");
    ASSERT_NE(node, nullptr);
    EXPECT_DOUBLE_EQ(node->find("count")->number, 0.0);
    EXPECT_TRUE(node->find("mean")->isNull());
    EXPECT_TRUE(node->find("p50")->isNull());
    EXPECT_TRUE(node->find("p99")->isNull());
    EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

TEST(HistogramRegistry, CsvExport)
{
    Histogram h;
    h.add(4);
    h.add(4);
    Histogram empty;
    StatsRegistry reg;
    reg.addHistogram("filled", &h);
    reg.addHistogram("none", &empty);

    std::ostringstream out;
    reg.writeCsv(out);
    const std::string csv = out.str();
    EXPECT_NE(csv.find("filled.count,histogram,2"), std::string::npos);
    EXPECT_NE(csv.find("filled.sum,histogram,8"), std::string::npos);
    // Empty histograms emit only their count row.
    EXPECT_NE(csv.find("none.count,histogram,0"), std::string::npos);
    EXPECT_EQ(csv.find("none.sum"), std::string::npos);
}

/**
 * @file
 * Parameterized property suites (TEST_P sweeps).
 *
 * - SchemeContract: every (scheme x array) combination obeys the
 *   PartitionScheme contract under randomized traffic: consistent
 *   size accounting, functional lookup after every operation, and
 *   tolerance of repeated re-allocation.
 * - VantageSweep: the controller's guarantees hold across the
 *   (u, Amax, slack) configuration space.
 * - ZGeometry: the zcache walk is exact for many (ways, R) shapes.
 * - AssocModel: FA(x) = x^R matches the ideal array for many R.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "array/random_array.h"
#include "array/set_assoc.h"
#include "array/zarray.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "core/model.h"
#include "core/vantage_variants.h"
#include "partition/assoc_probe.h"
#include "partition/pipp.h"
#include "partition/unpartitioned.h"
#include "partition/way_partition.h"
#include "replacement/lru.h"
#include "replacement/rrip.h"
#include "sim/experiment.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// SchemeContract
// ---------------------------------------------------------------

using SchemeArrayCase = std::tuple<SchemeKind, ArrayKind>;

class SchemeContract
    : public ::testing::TestWithParam<SchemeArrayCase>
{
  protected:
    static constexpr std::size_t kLines = 4096;
    static constexpr std::uint32_t kParts = 4;

    std::unique_ptr<Cache>
    build() const
    {
        L2Spec spec;
        spec.scheme = std::get<0>(GetParam());
        spec.array = std::get<1>(GetParam());
        spec.lines = kLines;
        spec.numPartitions = kParts;
        spec.vantage.unmanagedFraction = 0.1;
        return buildL2(spec);
    }

    bool
    isVantage() const
    {
        const SchemeKind k = std::get<0>(GetParam());
        return k == SchemeKind::Vantage ||
               k == SchemeKind::VantageDrrip ||
               k == SchemeKind::VantageOracle;
    }
};

TEST_P(SchemeContract, SizeAccountingMatchesArray)
{
    auto cache = build();
    Rng rng(3);
    for (int round = 0; round < 30; ++round) {
        for (PartId p = 0; p < kParts; ++p) {
            const Addr space = static_cast<Addr>(p + 1) << 40;
            for (int i = 0; i < 200; ++i) {
                cache->access(space | (rng.next() >> 20), p);
            }
        }
        std::uint64_t tracked = 0;
        for (PartId p = 0; p < kParts; ++p) {
            tracked += cache->scheme().actualSize(p);
        }
        if (isVantage()) {
            tracked += static_cast<VantageController &>(
                           cache->scheme())
                           .unmanagedSize();
        }
        std::uint64_t valid = 0;
        for (LineId s = 0; s < cache->array().numLines(); ++s) {
            if (cache->array().line(s).valid()) ++valid;
        }
        ASSERT_EQ(tracked, valid);
    }
}

TEST_P(SchemeContract, HitAfterInsert)
{
    auto cache = build();
    for (PartId p = 0; p < kParts; ++p) {
        const Addr addr = (static_cast<Addr>(p + 1) << 40) | 0x123;
        cache->access(addr, p);
        EXPECT_EQ(cache->access(addr, p), AccessResult::Hit);
    }
}

TEST_P(SchemeContract, SurvivesRepeatedReallocation)
{
    auto cache = build();
    Rng rng(7);
    const std::uint32_t q = cache->scheme().allocationQuantum();
    if (q < kParts) {
        GTEST_SKIP() << "scheme does not support allocation";
    }
    for (int round = 0; round < 12; ++round) {
        // A rotating skewed allocation.
        std::vector<std::uint32_t> units(kParts, 0);
        std::uint32_t left = q;
        for (PartId p = 0; p < kParts; ++p) {
            const auto share =
                p + 1 < kParts
                    ? std::min<std::uint32_t>(
                          left, q / (2 + ((round + p) % 3)))
                    : left;
            units[p] = std::max(1u, share);
            left -= std::min(left, units[p]);
        }
        // Clamp to quantum.
        std::uint32_t total = 0;
        for (auto &u : units) total += u;
        ASSERT_GE(q, kParts);
        while (total > q) {
            bool trimmed = false;
            for (auto &u : units) {
                if (u > 1 && total > q) {
                    --u;
                    --total;
                    trimmed = true;
                }
            }
            ASSERT_TRUE(trimmed) << "cannot fit minimums in quantum";
        }
        cache->scheme().setAllocations(units);
        for (PartId p = 0; p < kParts; ++p) {
            const Addr space = static_cast<Addr>(p + 1) << 40;
            for (int i = 0; i < 400; ++i) {
                cache->access(space | (rng.next() >> 20), p);
            }
        }
    }
    SUCCEED();
}

TEST_P(SchemeContract, CapacityNeverExceeded)
{
    auto cache = build();
    Rng rng(9);
    for (int i = 0; i < 40000; ++i) {
        cache->access((1ull << 40) | (rng.next() >> 18),
                      static_cast<PartId>(i % kParts));
    }
    std::uint64_t valid = 0;
    for (LineId s = 0; s < cache->array().numLines(); ++s) {
        if (cache->array().line(s).valid()) ++valid;
    }
    EXPECT_LE(valid, cache->array().numLines());
}

std::string
schemeCaseName(
    const ::testing::TestParamInfo<SchemeArrayCase> &info)
{
    std::string name =
        std::string(schemeKindName(std::get<0>(info.param))) + "_" +
        arrayKindName(std::get<1>(info.param));
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
            c = '_';
        }
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeContract,
    ::testing::Values(
        SchemeArrayCase{SchemeKind::UnpartLru, ArrayKind::SA16},
        SchemeArrayCase{SchemeKind::UnpartLru, ArrayKind::Z4_52},
        SchemeArrayCase{SchemeKind::UnpartSrrip, ArrayKind::Z4_52},
        SchemeArrayCase{SchemeKind::UnpartDrrip, ArrayKind::Z4_16},
        SchemeArrayCase{SchemeKind::UnpartTaDrrip, ArrayKind::Z4_52},
        SchemeArrayCase{SchemeKind::WayPart, ArrayKind::SA16},
        SchemeArrayCase{SchemeKind::WayPart, ArrayKind::SA64},
        SchemeArrayCase{SchemeKind::Pipp, ArrayKind::SA16},
        SchemeArrayCase{SchemeKind::Pipp, ArrayKind::SA64},
        SchemeArrayCase{SchemeKind::Vantage, ArrayKind::Z4_52},
        SchemeArrayCase{SchemeKind::Vantage, ArrayKind::Z4_16},
        SchemeArrayCase{SchemeKind::Vantage, ArrayKind::SA16},
        SchemeArrayCase{SchemeKind::Vantage, ArrayKind::SA64},
        SchemeArrayCase{SchemeKind::Vantage, ArrayKind::Random},
        SchemeArrayCase{SchemeKind::VantageDrrip, ArrayKind::Z4_52},
        SchemeArrayCase{SchemeKind::VantageOracle,
                        ArrayKind::Z4_52}),
    schemeCaseName);

// ---------------------------------------------------------------
// VantageSweep over (u, Amax, slack)
// ---------------------------------------------------------------

using VantageCase = std::tuple<double, double, double>;

class VantageSweep : public ::testing::TestWithParam<VantageCase>
{
};

TEST_P(VantageSweep, ConvergesWithinSlackAndIsolates)
{
    const auto [u, amax, slack] = GetParam();
    constexpr std::size_t kLines = 8192;
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = u;
    cfg.maxAperture = amax;
    cfg.slack = slack;
    auto ctl = std::make_unique<VantageController>(kLines, cfg);
    VantageController &c = *ctl;
    Cache cache(std::make_unique<RandomArray>(kLines, 52, 5),
                std::move(ctl), "l2");

    Rng rng(21);
    for (int round = 0; round < 120; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            const Addr space = static_cast<Addr>(p + 1) << 40;
            for (int i = 0; i < 400; ++i) {
                cache.access(space | (rng.next() >> 16), p);
            }
        }
    }
    for (PartId p = 0; p < 4; ++p) {
        const auto target = static_cast<double>(c.targetSize(p));
        const auto actual = static_cast<double>(c.actualSize(p));
        EXPECT_GE(actual, target * 0.93) << "u=" << u;
        EXPECT_LE(actual, target * (1.0 + slack) + 96.0)
            << "u=" << u << " Amax=" << amax;
    }
    // Forced evictions stay below the model's worst case for the
    // *eviction* share of u (u minus the borrow/slack reserves).
    const double reserve = (1.0 + slack) / (amax * 52.0);
    const double u_ev = std::max(0.01, u - reserve);
    const double bound = model::worstCaseEvictionProb(52, u_ev);
    const auto &st = c.stats();
    ASSERT_GT(st.evictions, 1000u);
    const double measured =
        static_cast<double>(st.evictionsFromManaged) /
        static_cast<double>(st.evictions);
    EXPECT_LE(measured, std::max(bound * 3.0, 1e-4))
        << "u=" << u << " Amax=" << amax << " slack=" << slack;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, VantageSweep,
    ::testing::Combine(::testing::Values(0.10, 0.20, 0.30), // u
                       ::testing::Values(0.25, 0.5, 0.75),  // Amax
                       ::testing::Values(0.05, 0.1, 0.3))); // slack

// ---------------------------------------------------------------
// ZGeometry over (ways, R)
// ---------------------------------------------------------------

using ZCase = std::tuple<std::uint32_t, std::uint32_t>;

class ZGeometry : public ::testing::TestWithParam<ZCase>
{
};

TEST_P(ZGeometry, WalkYieldsRAndPreservesResidents)
{
    const auto [ways, r] = GetParam();
    const std::size_t lines = 256 * ways;
    ZArray arr(lines, ways, r, 0x5);
    Rng rng(ways * 1000 + r);
    CandidateBuf cands;
    std::uint64_t resident = 0;

    for (int i = 0; i < 20000; ++i) {
        const Addr a = (rng.next() >> 8) % (lines * 8) + 1;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        ASSERT_LE(cands.size(), r);
        // Pick a random victim; track occupancy.
        const auto v =
            static_cast<std::int32_t>(rng.range(cands.size()));
        if (!arr.line(cands[v].slot).valid()) {
            ++resident;
        }
        arr.replace(a, cands, v);
        ASSERT_NE(arr.lookup(a), kInvalidLine);
    }
    EXPECT_GE(resident, lines * 98 / 100)
        << "array should be nearly full";

    // Top up the last empty slots (random victims may skip them),
    // then the walk must produce exactly R candidates.
    for (int i = 0; i < 20000 && resident < lines; ++i) {
        const Addr a = (rng.next() >> 8) % (lines * 8) + 1;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        for (std::size_t j = 0; j < cands.size(); ++j) {
            if (!arr.line(cands[j].slot).valid()) {
                arr.replace(a, cands,
                            static_cast<std::int32_t>(j));
                ++resident;
                break;
            }
        }
    }
    ASSERT_EQ(resident, lines);
    arr.candidates(0xabcdef01, cands);
    EXPECT_EQ(cands.size(), r);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZGeometry,
    ::testing::Values(ZCase{2, 2}, ZCase{2, 8}, ZCase{4, 4},
                      ZCase{4, 16}, ZCase{4, 52}, ZCase{8, 8},
                      ZCase{8, 32}, ZCase{8, 64}),
    [](const ::testing::TestParamInfo<ZCase> &info) {
        return "W" + std::to_string(std::get<0>(info.param)) + "_R" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------
// AssocModel over R
// ---------------------------------------------------------------

class AssocModel : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(AssocModel, IdealArrayMatchesClosedForm)
{
    const std::uint32_t r = GetParam();
    auto scheme = std::make_unique<Unpartitioned>(
        1, std::make_unique<ExactLru>());
    AssocProbe probe(128, 0x77);
    scheme->attachProbe(&probe);
    Cache cache(std::make_unique<RandomArray>(4096, r, 0x7),
                std::move(scheme), "probe");
    Rng rng(31);
    for (int i = 0; i < 150000; ++i) {
        cache.access(rng.next() >> 16, 0);
    }
    ASSERT_GT(probe.cdf().samples(), 50000u);
    for (double x = 0.6; x < 1.0; x += 0.1) {
        EXPECT_NEAR(probe.cdf().at(x), model::assocCdf(x, r),
                    0.03 + model::assocCdf(x, r) * 0.25)
            << "R=" << r << " x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(CandidateCounts, AssocModel,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u),
                         [](const auto &info) {
                             return "R" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------
// Lookahead properties over unit counts
// ---------------------------------------------------------------

class LookaheadSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(LookaheadSweep, AlwaysSumsAndDominatesEqualSplit)
{
    const std::uint32_t units = GetParam();
    Rng rng(units);
    std::vector<std::vector<double>> curves(4);
    for (auto &c : curves) {
        double acc = 0.0;
        c.push_back(0.0);
        for (std::uint32_t v = 1; v <= units; ++v) {
            acc += rng.uniform() * rng.uniform(); // Concave-ish.
            c.push_back(acc);
        }
    }
    const auto alloc = lookaheadAllocate(curves, units, 1);
    std::uint32_t total = 0;
    double utility = 0.0;
    for (std::size_t p = 0; p < 4; ++p) {
        total += alloc[p];
        utility += curves[p][alloc[p]];
    }
    EXPECT_EQ(total, units);

    double equal_utility = 0.0;
    for (std::size_t p = 0; p < 4; ++p) {
        equal_utility += curves[p][units / 4];
    }
    EXPECT_GE(utility, equal_utility * 0.999)
        << "lookahead should not lose to a naive equal split";
}

INSTANTIATE_TEST_SUITE_P(UnitCounts, LookaheadSweep,
                         ::testing::Values(8u, 16u, 64u, 256u),
                         [](const auto &info) {
                             return "U" + std::to_string(info.param);
                         });

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the Vantage controller: size convergence, isolation,
 * feedback bounds, promotions, deletion, and accounting invariants.
 *
 * Most tests drive a Cache built on the idealized RandomArray (the
 * analysis' uniformity assumption holds exactly there) with synthetic
 * per-partition traffic, then check the properties the paper proves.
 */

#include <gtest/gtest.h>

#include <memory>

#include "array/random_array.h"
#include "array/zarray.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "core/model.h"
#include "core/vantage.h"

namespace vantage {
namespace {

constexpr std::size_t kLines = 8192;

std::unique_ptr<Cache>
makeVantageCache(const VantageConfig &cfg, bool zcache = false,
                 std::uint32_t r = 52)
{
    std::unique_ptr<CacheArray> array;
    if (zcache) {
        array = std::make_unique<ZArray>(kLines, 4, r, 0x77);
    } else {
        array = std::make_unique<RandomArray>(kLines, r, 0x77);
    }
    return std::make_unique<Cache>(
        std::move(array),
        std::make_unique<VantageController>(kLines, cfg), "l2");
}

VantageController &
controller(Cache &cache)
{
    return static_cast<VantageController &>(cache.scheme());
}

/** Per-partition streaming traffic: always-miss churn. */
void
streamTraffic(Cache &cache, PartId part, std::uint64_t accesses,
              Rng &rng)
{
    const Addr space = static_cast<Addr>(part + 1) << 40;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        cache.access(space | (rng.next() >> 16), part);
    }
}

/** Re-use traffic over a fixed working set (mostly hits once warm). */
void
reuseTraffic(Cache &cache, PartId part, std::uint64_t ws_lines,
             std::uint64_t accesses, Rng &rng)
{
    const Addr space = static_cast<Addr>(part + 1) << 40;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        cache.access(space | rng.range(ws_lines), part);
    }
}

TEST(VantageController, ConstructionDefaults)
{
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.25;
    VantageController ctl(1000, cfg);
    EXPECT_EQ(ctl.managedLines(), 750u);
    EXPECT_EQ(ctl.allocationQuantum(), 256u);
    std::uint64_t total = 0;
    for (PartId p = 0; p < 4; ++p) {
        total += ctl.targetSize(p);
        EXPECT_EQ(ctl.actualSize(p), 0u);
    }
    EXPECT_EQ(total, 750u);
}

TEST(VantageController, SetAllocationsScalesToManagedRegion)
{
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.5;
    VantageController ctl(1024, cfg);
    ctl.setAllocations({192, 64}); // 3/4 and 1/4 of 256 units.
    EXPECT_EQ(ctl.targetSize(0), 384u);
    EXPECT_EQ(ctl.targetSize(1), 128u);
}

TEST(VantageControllerDeath, OversizedTargetsAreFatal)
{
    VantageConfig cfg;
    cfg.numPartitions = 1;
    cfg.unmanagedFraction = 0.5;
    VantageController ctl(1024, cfg);
    EXPECT_EXIT(ctl.setTargetLines({513}),
                ::testing::ExitedWithCode(1), "managed region");
}

TEST(VantageController, SizesConvergeUnderEqualChurn)
{
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(5);
    for (int round = 0; round < 200; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            streamTraffic(*cache, p, 500, rng);
        }
    }
    for (PartId p = 0; p < 4; ++p) {
        const auto target = static_cast<double>(ctl.targetSize(p));
        const auto actual = static_cast<double>(ctl.actualSize(p));
        EXPECT_GE(actual, target * 0.97)
            << "partition " << p << " under target";
        EXPECT_LE(actual, target * (1.0 + cfg.slack) + 64.0)
            << "partition " << p << " beyond feedback slack";
    }
}

TEST(VantageController, UnequalTargetsAreTracked)
{
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);
    const std::uint64_t m = ctl.managedLines();
    ctl.setTargetLines({m / 2, m / 4, m / 8, m / 8});

    Rng rng(7);
    for (int round = 0; round < 200; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            streamTraffic(*cache, p, 500, rng);
        }
    }
    for (PartId p = 0; p < 4; ++p) {
        const auto target = static_cast<double>(ctl.targetSize(p));
        const auto actual = static_cast<double>(ctl.actualSize(p));
        EXPECT_GE(actual, target * 0.95);
        EXPECT_LE(actual, target * (1.0 + cfg.slack) + 64.0);
    }
}

TEST(VantageController, IsolationProtectsQuietPartition)
{
    // Partition 0 holds a working set below its target and re-uses
    // it; partition 1 thrashes. P0 must keep (nearly) all its lines:
    // Vantage eliminates inter-partition interference.
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);
    const std::uint64_t ws = ctl.targetSize(0) / 2;

    Rng rng(9);
    reuseTraffic(*cache, 0, ws, 8 * ws, rng); // Warm P0.
    const std::uint64_t before = ctl.actualSize(0);
    EXPECT_GE(before, ws * 95 / 100);

    streamTraffic(*cache, 1, 200000, rng); // Thrash P1 hard.

    // P0 was never over target, so none of its lines were demoted.
    EXPECT_EQ(ctl.partStats(0).demotions, 0u);
    EXPECT_GE(ctl.actualSize(0), before * 95 / 100);

    // And its content is still there: re-touching the set hits.
    cache->resetStats();
    reuseTraffic(*cache, 0, ws, ws, rng);
    const auto &stats = cache->partAccessStats(0);
    EXPECT_GT(static_cast<double>(stats.hits) /
                  static_cast<double>(stats.accesses()),
              0.95);
}

TEST(VantageController, EvictionsComeFromUnmanagedRegion)
{
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(11);
    for (int round = 0; round < 100; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            streamTraffic(*cache, p, 1000, rng);
        }
    }
    const VantageStats &s = ctl.stats();
    ASSERT_GT(s.evictions, 10000u);
    const double forced_frac =
        static_cast<double>(s.evictionsFromManaged) /
        static_cast<double>(s.evictions);
    EXPECT_LT(forced_frac, 0.02)
        << "unmanaged region should absorb nearly all evictions";
}

TEST(VantageController, AccountingInvariantHolds)
{
    VantageConfig cfg;
    cfg.numPartitions = 3;
    cfg.unmanagedFraction = 0.2;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(13);
    for (int round = 0; round < 50; ++round) {
        for (PartId p = 0; p < 3; ++p) {
            streamTraffic(*cache, p, 300, rng);
            reuseTraffic(*cache, p, 200, 300, rng);
        }
        std::uint64_t tracked = ctl.unmanagedSize();
        for (PartId p = 0; p < 3; ++p) {
            tracked += ctl.actualSize(p);
        }
        std::uint64_t valid = 0;
        for (LineId s = 0; s < cache->array().numLines(); ++s) {
            if (cache->array().line(s).valid()) ++valid;
        }
        ASSERT_EQ(tracked, valid)
            << "size accounting diverged from array contents";
    }
}

TEST(VantageController, PromotionsRecoverReusedLines)
{
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.3;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(17);
    // Working set slightly over target: constant demotions, but the
    // lines keep being re-used, so demoted lines get promoted back.
    const std::uint64_t ws = ctl.targetSize(0) + ctl.targetSize(0) / 4;
    reuseTraffic(*cache, 0, ws, 30 * ws, rng);
    EXPECT_GT(ctl.partStats(0).demotions, 0u);
    EXPECT_GT(ctl.partStats(0).promotions, 0u);
    EXPECT_GT(ctl.stats().promotions, 0u);
}

TEST(VantageController, DeletePartitionDrains)
{
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(19);
    streamTraffic(*cache, 0, 30000, rng);
    streamTraffic(*cache, 1, 30000, rng);
    ASSERT_GT(ctl.actualSize(0), 1000u);

    ctl.deletePartition(0);
    EXPECT_EQ(ctl.targetSize(0), 0u);
    // Keep churning partition 1; its misses demote P0's lines.
    streamTraffic(*cache, 1, 300000, rng);
    EXPECT_LT(ctl.actualSize(0), 64u)
        << "deleted partition should drain to ~zero";
}

TEST(VantageController, DownsizeConvergesToNewTarget)
{
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(23);
    for (int r = 0; r < 50; ++r) {
        streamTraffic(*cache, 0, 1000, rng);
        streamTraffic(*cache, 1, 1000, rng);
    }
    const std::uint64_t m = ctl.managedLines();
    ctl.setTargetLines({m / 8, 7 * m / 8});
    for (int r = 0; r < 100; ++r) {
        streamTraffic(*cache, 0, 1000, rng);
        streamTraffic(*cache, 1, 1000, rng);
    }
    const auto t0 = static_cast<double>(ctl.targetSize(0));
    const auto a0 = static_cast<double>(ctl.actualSize(0));
    EXPECT_LE(a0, t0 * (1.0 + cfg.slack) + 64.0);
    const auto t1 = static_cast<double>(ctl.targetSize(1));
    EXPECT_GE(static_cast<double>(ctl.actualSize(1)), t1 * 0.95);
}

TEST(VantageController, HighChurnTinyPartitionStaysBounded)
{
    // A 1-line-target partition with huge churn must stabilize at its
    // minimum stable size, bounded by ~1/(Amax R) of the cache
    // (Eq. 5/6), not grow without limit.
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.25;
    cfg.maxAperture = 0.4;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);
    const std::uint64_t m = ctl.managedLines();
    ctl.setTargetLines({1, m - 1});

    Rng rng(29);
    // Warm P1 to its allocation, then thrash P0 only (worst case:
    // other partitions have zero churn).
    streamTraffic(*cache, 1, 8 * m, rng);
    streamTraffic(*cache, 0, 400000, rng);

    const double bound =
        model::worstCaseBorrow(cfg.maxAperture, 52) *
        static_cast<double>(kLines);
    EXPECT_LE(static_cast<double>(ctl.actualSize(0)),
              bound * 1.35 + 64.0)
        << "minimum stable size exceeded the analytic bound";
    EXPECT_GT(ctl.actualSize(0), 16u)
        << "high-churn partition should hold a working size";
}

TEST(VantageController, WorksOnZcache)
{
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.15;
    auto cache = makeVantageCache(cfg, /*zcache=*/true);
    VantageController &ctl = controller(*cache);

    Rng rng(31);
    for (int round = 0; round < 150; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            streamTraffic(*cache, p, 500, rng);
        }
    }
    for (PartId p = 0; p < 4; ++p) {
        const auto target = static_cast<double>(ctl.targetSize(p));
        const auto actual = static_cast<double>(ctl.actualSize(p));
        EXPECT_GE(actual, target * 0.95);
        EXPECT_LE(actual, target * (1.0 + cfg.slack) + 96.0);
    }
    const VantageStats &s = ctl.stats();
    const double forced_frac =
        static_cast<double>(s.evictionsFromManaged) /
        static_cast<double>(s.evictions);
    EXPECT_LT(forced_frac, 0.05);
}

TEST(VantageController, TimestampWraparoundIsHarmless)
{
    // Run long enough for many 8-bit timestamp wraparounds.
    VantageConfig cfg;
    cfg.numPartitions = 1;
    cfg.unmanagedFraction = 0.2;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);

    Rng rng(37);
    reuseTraffic(*cache, 0, ctl.targetSize(0) + 200, 3'000'000, rng);
    const auto target = static_cast<double>(ctl.targetSize(0));
    EXPECT_LE(static_cast<double>(ctl.actualSize(0)),
              target * (1.0 + cfg.slack) + 64.0);
}

TEST(VantageController, DemotionCdfIsSkewedHigh)
{
    // With healthy apertures, demoted lines should come from the top
    // of the partition's eviction priorities (Fig. 2c).
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.3;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);
    EmpiricalCdf cdf;
    ctl.attachDemotionCdf(0, &cdf);

    Rng rng(41);
    for (int r = 0; r < 100; ++r) {
        streamTraffic(*cache, 0, 1000, rng);
        streamTraffic(*cache, 1, 1000, rng);
    }
    ASSERT_GT(cdf.samples(), 1000u);
    // Median demotion priority should be well above 0.5.
    EXPECT_GT(cdf.quantile(0.5), 0.7);
}

TEST(VantageController, StatsResetKeepsState)
{
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.2;
    auto cache = makeVantageCache(cfg);
    VantageController &ctl = controller(*cache);
    Rng rng(43);
    streamTraffic(*cache, 0, 20000, rng);
    const std::uint64_t size = ctl.actualSize(0);
    ctl.resetStats();
    EXPECT_EQ(ctl.stats().evictions, 0u);
    EXPECT_EQ(ctl.partStats(0).insertions, 0u);
    EXPECT_EQ(ctl.actualSize(0), size);
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the baseline partitioning schemes: way-partitioning and
 * PIPP (plus the Unpartitioned passthrough).
 */

#include <gtest/gtest.h>

#include <memory>

#include "array/set_assoc.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "partition/pipp.h"
#include "partition/unpartitioned.h"
#include "partition/way_partition.h"
#include "replacement/lru.h"

namespace vantage {
namespace {

constexpr std::size_t kLines = 2048;
constexpr std::uint32_t kWays = 16;
constexpr std::uint64_t kLinesPerWay = kLines / kWays;

std::unique_ptr<Cache>
makeWayPartCache(std::uint32_t parts)
{
    return std::make_unique<Cache>(
        std::make_unique<SetAssocArray>(kLines, kWays, true, 0x5a),
        std::make_unique<WayPartitioning>(
            parts, kWays, kLinesPerWay, std::make_unique<ExactLru>()),
        "l2");
}

std::unique_ptr<Cache>
makePippCache(std::uint32_t parts, const PippConfig &cfg = {})
{
    return std::make_unique<Cache>(
        std::make_unique<SetAssocArray>(kLines, kWays, true, 0x5b),
        std::make_unique<Pipp>(parts, kWays, kLinesPerWay, kLines,
                               cfg, 0x17),
        "l2");
}

void
stream(Cache &cache, PartId part, std::uint64_t accesses, Rng &rng)
{
    const Addr space = static_cast<Addr>(part + 1) << 40;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        cache.access(space | (rng.next() >> 16), part);
    }
}

// ---------------------------------------------------------------
// Unpartitioned
// ---------------------------------------------------------------

TEST(Unpartitioned, TracksPerPartitionSizes)
{
    auto cache = std::make_unique<Cache>(
        std::make_unique<SetAssocArray>(kLines, kWays, true, 0x5c),
        std::make_unique<Unpartitioned>(2,
                                        std::make_unique<ExactLru>()),
        "l2");
    Rng rng(1);
    for (int round = 0; round < 10; ++round) {
        stream(*cache, 0, 500, rng);
        stream(*cache, 1, 500, rng);
    }
    const auto &scheme = cache->scheme();
    EXPECT_GT(scheme.actualSize(0), 0u);
    EXPECT_GT(scheme.actualSize(1), 0u);
    std::uint64_t valid = 0;
    for (LineId s = 0; s < kLines; ++s) {
        if (cache->array().line(s).valid()) ++valid;
    }
    EXPECT_EQ(scheme.actualSize(0) + scheme.actualSize(1), valid);
}

// ---------------------------------------------------------------
// Way-partitioning
// ---------------------------------------------------------------

TEST(WayPartitioning, DefaultEqualSplit)
{
    WayPartitioning wp(4, 16, kLinesPerWay,
                       std::make_unique<ExactLru>());
    for (PartId p = 0; p < 4; ++p) {
        EXPECT_EQ(wp.wayCount(p), 4u);
        EXPECT_EQ(wp.targetSize(p), 4 * kLinesPerWay);
    }
}

TEST(WayPartitioning, RemainderGoesToFirstPartitions)
{
    WayPartitioning wp(3, 16, kLinesPerWay,
                       std::make_unique<ExactLru>());
    EXPECT_EQ(wp.wayCount(0), 6u);
    EXPECT_EQ(wp.wayCount(1), 5u);
    EXPECT_EQ(wp.wayCount(2), 5u);
}

TEST(WayPartitioning, SetAllocationsMovesBoundaries)
{
    WayPartitioning wp(2, 16, kLinesPerWay,
                       std::make_unique<ExactLru>());
    wp.setAllocations({12, 4});
    EXPECT_EQ(wp.wayStart(0), 0u);
    EXPECT_EQ(wp.wayCount(0), 12u);
    EXPECT_EQ(wp.wayStart(1), 12u);
    EXPECT_EQ(wp.wayCount(1), 4u);
}

TEST(WayPartitioningDeath, TooManyPartitionsIsFatal)
{
    EXPECT_EXIT(WayPartitioning(17, 16, kLinesPerWay,
                                std::make_unique<ExactLru>()),
                ::testing::ExitedWithCode(1), "cannot hold");
}

/** The defining property: fills only ever evict within own ways. */
TEST(WayPartitioning, StrictPlacementIsolation)
{
    auto cache = makeWayPartCache(4);
    Rng rng(3);
    for (int round = 0; round < 40; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            stream(*cache, p, 500, rng);
        }
    }
    // Every line must sit in a way owned by its partition.
    const auto &wp =
        static_cast<const WayPartitioning &>(cache->scheme());
    for (LineId s = 0; s < kLines; ++s) {
        const Line &line = cache->array().line(s);
        if (!line.valid()) continue;
        const std::uint32_t way = cache->array().wayOf(s);
        EXPECT_GE(way, wp.wayStart(line.part));
        EXPECT_LT(way, wp.wayStart(line.part) + wp.wayCount(line.part));
    }
}

TEST(WayPartitioning, SizesMatchWayAllocations)
{
    auto cache = makeWayPartCache(4);
    auto &wp = static_cast<WayPartitioning &>(cache->scheme());
    wp.setAllocations({8, 4, 2, 2});
    Rng rng(5);
    for (int round = 0; round < 100; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            stream(*cache, p, 400, rng);
        }
    }
    for (PartId p = 0; p < 4; ++p) {
        const auto target = static_cast<double>(wp.targetSize(p));
        EXPECT_NEAR(static_cast<double>(wp.actualSize(p)), target,
                    target * 0.05);
    }
}

TEST(WayPartitioning, QuietPartitionIsUntouched)
{
    auto cache = makeWayPartCache(2);
    Rng rng(7);
    // P0 loads a working set smaller than its allocation.
    const Addr space0 = 1ull << 40;
    for (Addr a = 0; a < 512; ++a) {
        cache->access(space0 | a, 0);
    }
    const std::uint64_t before = cache->scheme().actualSize(0);
    stream(*cache, 1, 100000, rng); // P1 thrashes.
    EXPECT_EQ(cache->scheme().actualSize(0), before);
}

TEST(WayPartitioning, ReallocatedWaysDrainLazily)
{
    auto cache = makeWayPartCache(2);
    auto &wp = static_cast<WayPartitioning &>(cache->scheme());
    wp.setAllocations({12, 4});
    Rng rng(9);
    stream(*cache, 0, 50000, rng);
    const std::uint64_t big = wp.actualSize(0);
    EXPECT_GT(big, 10 * kLinesPerWay);

    // Shrink P0 to 4 ways; its lines drain only as P1 fills claim
    // them (the paper's slow-convergence observation, Fig. 8).
    wp.setAllocations({4, 12});
    EXPECT_EQ(wp.actualSize(0), big);
    stream(*cache, 1, 100000, rng);
    EXPECT_LE(wp.actualSize(0), 5 * kLinesPerWay);
}

// ---------------------------------------------------------------
// PIPP
// ---------------------------------------------------------------

TEST(Pipp, ChainPositionsStayDense)
{
    auto cache = makePippCache(4);
    const auto &pipp = static_cast<const Pipp &>(cache->scheme());
    Rng rng(11);
    for (int round = 0; round < 50; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            stream(*cache, p, 200, rng);
        }
        // Within each set, valid positions must be {0..valid-1}.
        for (std::uint64_t set = 0; set < kLines / kWays; ++set) {
            std::vector<bool> seen(kWays, false);
            std::uint32_t valid = 0;
            for (std::uint32_t w = 0; w < kWays; ++w) {
                const auto slot =
                    static_cast<LineId>(set * kWays + w);
                const std::uint32_t pos = pipp.positionOf(slot);
                if (pos == Pipp::kNoPos) continue;
                ASSERT_LT(pos, kWays);
                ASSERT_FALSE(seen[pos]) << "duplicate chain position";
                seen[pos] = true;
                ++valid;
            }
            for (std::uint32_t i = 0; i < valid; ++i) {
                ASSERT_TRUE(seen[i]) << "chain has a hole";
            }
        }
    }
}

TEST(Pipp, LargerAllocationGetsMoreSpace)
{
    auto cache = makePippCache(2);
    auto &pipp = static_cast<Pipp &>(cache->scheme());
    pipp.setAllocations({12, 4});
    Rng rng(13);
    for (int round = 0; round < 100; ++round) {
        stream(*cache, 0, 400, rng);
        stream(*cache, 1, 400, rng);
    }
    // PIPP is approximate, but the skew must be clearly visible.
    EXPECT_GT(pipp.actualSize(0), pipp.actualSize(1) * 2);
}

TEST(Pipp, ApproximateSizesOnly)
{
    // Unlike Vantage/way-partitioning, PIPP does not hit its targets
    // exactly (paper Fig. 8c); verify it deviates but tracks the
    // ordering.
    auto cache = makePippCache(4);
    auto &pipp = static_cast<Pipp &>(cache->scheme());
    pipp.setAllocations({8, 4, 2, 2});
    Rng rng(17);
    for (int round = 0; round < 100; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            stream(*cache, p, 300, rng);
        }
    }
    EXPECT_GT(pipp.actualSize(0), pipp.actualSize(1));
    EXPECT_GT(pipp.actualSize(1), pipp.actualSize(3));
}

TEST(Pipp, StreamingDetection)
{
    PippConfig cfg;
    cfg.detectInterval = 4096;
    auto cache = makePippCache(2, cfg);
    const auto &pipp = static_cast<const Pipp &>(cache->scheme());
    Rng rng(19);
    // P0 streams (all misses); P1 re-uses a small set (all hits).
    const Addr space1 = 2ull << 40;
    for (Addr a = 0; a < 256; ++a) {
        cache->access(space1 | a, 1);
    }
    for (int round = 0; round < 20; ++round) {
        stream(*cache, 0, 2000, rng);
        for (int i = 0; i < 2000; ++i) {
            cache->access(space1 | rng.range(256), 1);
        }
    }
    EXPECT_TRUE(pipp.isStreaming(0));
    EXPECT_FALSE(pipp.isStreaming(1));
}

TEST(Pipp, StreamingPartitionStaysSmall)
{
    PippConfig cfg;
    cfg.detectInterval = 4096;
    auto cache = makePippCache(2, cfg);
    auto &pipp = static_cast<Pipp &>(cache->scheme());
    pipp.setAllocations({8, 8});
    Rng rng(23);
    const Addr space1 = 2ull << 40;
    for (int round = 0; round < 50; ++round) {
        stream(*cache, 0, 2000, rng); // Streams forever.
        for (int i = 0; i < 2000; ++i) {
            cache->access(space1 | rng.range(512), 1);
        }
    }
    // Pollution control: the re-using app keeps (almost) its whole
    // working set resident despite the thrasher nominally owning half
    // the cache; the thrasher merely fills otherwise-idle space.
    EXPECT_GT(pipp.actualSize(1), 480u);
    cache->resetStats();
    for (int i = 0; i < 2000; ++i) {
        cache->access(space1 | rng.range(512), 1);
    }
    const auto &s1 = cache->partAccessStats(1);
    EXPECT_GT(static_cast<double>(s1.hits) /
                  static_cast<double>(s1.accesses()),
              0.9);
}

TEST(Pipp, PromotionMovesUpOnePosition)
{
    // Single set, no hashing: lines 0..3 in one 4-way set.
    PippConfig cfg;
    cfg.pprom = 1.0; // Deterministic promotion for the test.
    auto cache = std::make_unique<Cache>(
        std::make_unique<SetAssocArray>(4, 4, false),
        std::make_unique<Pipp>(1, 4, 1, 4, cfg, 0x17), "l2");
    const auto &pipp = static_cast<const Pipp &>(cache->scheme());

    for (Addr a = 0; a < 16; a += 4) {
        cache->access(a, 0); // All map to set 0.
    }
    // Find address 0's slot and position, hit it, check +1.
    const LineId slot = cache->array().lookup(0);
    ASSERT_NE(slot, kInvalidLine);
    const std::uint32_t before = pipp.positionOf(slot);
    if (before < 3) {
        cache->access(0, 0);
        EXPECT_EQ(pipp.positionOf(slot), before + 1);
    }
}

TEST(PippDeath, TooManyPartitionsIsFatal)
{
    EXPECT_EXIT(Pipp(17, 16, kLinesPerWay, kLines, PippConfig{}, 1),
                ::testing::ExitedWithCode(1), "cannot hold");
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the extension features: trace replay, dirty-line /
 * writeback modeling, churn throttling (Sec. 3.4 option 2), the
 * Vantage-LFU setpoint variant (Sec. 4.2), and gradual resizing
 * (Sec. 3.4 transients).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "array/random_array.h"
#include "array/set_assoc.h"
#include "array/zarray.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "core/resizer.h"
#include "core/vantage_variants.h"
#include "partition/unpartitioned.h"
#include "replacement/lru.h"
#include "sim/cmp_sim.h"
#include "workload/trace_stream.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// TraceStream
// ---------------------------------------------------------------

TEST(TraceStream, ParsesAddressesAndTypes)
{
    std::istringstream in("# a comment\n"
                          "# instr_per_mem 2.5\n"
                          "1a L\n"
                          "1b S\n"
                          "\n"
                          "1c\n");
    TraceStream trace = TraceStream::fromStream(in, "t");
    EXPECT_EQ(trace.records(), 3u);
    EXPECT_DOUBLE_EQ(trace.instrPerMem(), 2.5);

    const MemRef a = trace.next();
    EXPECT_EQ(a.addr, 0x1au);
    EXPECT_EQ(a.type, AccessType::Load);
    const MemRef b = trace.next();
    EXPECT_EQ(b.addr, 0x1bu);
    EXPECT_EQ(b.type, AccessType::Store);
    const MemRef c = trace.next();
    EXPECT_EQ(c.addr, 0x1cu);
    EXPECT_EQ(c.type, AccessType::Load);
}

TEST(TraceStream, LoopsAtEnd)
{
    std::istringstream in("10 L\n20 S\n");
    TraceStream trace = TraceStream::fromStream(in, "t");
    EXPECT_EQ(trace.next().addr, 0x10u);
    EXPECT_EQ(trace.next().addr, 0x20u);
    EXPECT_EQ(trace.next().addr, 0x10u); // Wrapped.
}

TEST(TraceStreamDeath, EmptyTraceIsFatal)
{
    std::istringstream in("# nothing but comments\n");
    EXPECT_EXIT(TraceStream::fromStream(in, "t"),
                ::testing::ExitedWithCode(1), "no references");
}

TEST(TraceStreamDeath, BadAddressIsFatal)
{
    std::istringstream in("zzz L\n");
    EXPECT_EXIT(TraceStream::fromStream(in, "t"),
                ::testing::ExitedWithCode(1), "bad address");
}

TEST(TraceStreamDeath, BadTypeIsFatal)
{
    std::istringstream in("10 X\n");
    EXPECT_EXIT(TraceStream::fromStream(in, "t"),
                ::testing::ExitedWithCode(1), "bad access type");
}

TEST(TraceStreamDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceStream::fromFile("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceStream, DrivesTheSimulator)
{
    // Two cores replaying traces: one loops over 4 hot lines (hits),
    // one streams 4096 distinct lines.
    std::ostringstream hot;
    hot << "# instr_per_mem 2\n";
    for (int i = 0; i < 4; ++i) {
        hot << std::hex << (0x1000 + i) << " L\n";
    }
    std::ostringstream cold;
    cold << "# instr_per_mem 2\n";
    for (int i = 0; i < 4096; ++i) {
        cold << std::hex << (0x100000 + i) << " S\n";
    }

    std::vector<std::unique_ptr<AccessStream>> streams;
    std::istringstream hot_in(hot.str()), cold_in(cold.str());
    streams.push_back(std::make_unique<TraceStream>(
        TraceStream::fromStream(hot_in, "hot")));
    streams.push_back(std::make_unique<TraceStream>(
        TraceStream::fromStream(cold_in, "cold")));

    CmpConfig cfg = CmpConfig::small4Core();
    cfg.numCores = 2;
    cfg.useUcp = false;

    VantageConfig vcfg;
    vcfg.numPartitions = 2;
    vcfg.unmanagedFraction = 0.1;
    auto l2 = std::make_unique<Cache>(
        std::make_unique<ZArray>(8192, 4, 52, 1),
        std::make_unique<VantageController>(8192, vcfg), "l2");

    CmpSim sim(cfg, std::move(streams), std::move(l2));
    sim.warmup(5'000);
    sim.run(60'000);
    // The hot-loop core runs near IPC 1; the streamer is memory-bound.
    EXPECT_GT(sim.result(0).ipc(), 0.8);
    EXPECT_LT(sim.result(1).ipc(), 0.5);
}

// ---------------------------------------------------------------
// Dirty lines / writebacks
// ---------------------------------------------------------------

TEST(Writebacks, StoreMarksDirtyAndEvictionCounts)
{
    // 1-set, 2-way cache: deterministic evictions.
    Cache cache(std::make_unique<SetAssocArray>(2, 2, false),
                std::make_unique<Unpartitioned>(
                    1, std::make_unique<ExactLru>()),
                "c");
    cache.access(1, 0, AccessType::Store);
    cache.access(2, 0, AccessType::Load);
    EXPECT_EQ(cache.writebacks(), 0u);
    cache.access(3, 0, AccessType::Load); // Evicts dirty line 1.
    EXPECT_EQ(cache.writebacks(), 1u);
    cache.access(4, 0, AccessType::Load); // Evicts clean line 2.
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Writebacks, HitUpgradesToDirty)
{
    Cache cache(std::make_unique<SetAssocArray>(2, 2, false),
                std::make_unique<Unpartitioned>(
                    1, std::make_unique<ExactLru>()),
                "c");
    cache.access(1, 0, AccessType::Load);
    cache.access(1, 0, AccessType::Store); // Hit; now dirty.
    cache.access(2, 0, AccessType::Load);
    cache.access(3, 0, AccessType::Load); // Evicts 1.
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Writebacks, ZcacheRelocationCarriesDirtyBit)
{
    ZArray arr(512, 4, 16, 3);
    Rng rng(5);
    CandidateBuf cands;
    // Fill with dirty lines, relocating aggressively.
    for (int i = 0; i < 20000; ++i) {
        const Addr a = (rng.next() >> 8) % 2048 + 1;
        if (arr.lookup(a) != kInvalidLine) continue;
        arr.candidates(a, cands);
        const auto victim =
            static_cast<std::int32_t>(rng.range(cands.size()));
        const LineId root = arr.replace(a, cands, victim);
        arr.cold(root).dirty = true;
    }
    // Every resident line must still be dirty, wherever it moved
    // (relocations carry the cold plane along with the hot tags).
    for (LineId s = 0; s < 512; ++s) {
        if (arr.line(s).valid()) {
            EXPECT_TRUE(arr.cold(s).dirty);
        }
    }
}

TEST(Writebacks, ResetClearsCounter)
{
    Cache cache(std::make_unique<SetAssocArray>(2, 2, false),
                std::make_unique<Unpartitioned>(
                    1, std::make_unique<ExactLru>()),
                "c");
    cache.access(1, 0, AccessType::Store);
    cache.access(2, 0, AccessType::Load);
    cache.access(3, 0, AccessType::Load);
    ASSERT_EQ(cache.writebacks(), 1u);
    cache.resetStats();
    EXPECT_EQ(cache.writebacks(), 0u);
}

// ---------------------------------------------------------------
// Churn throttling (Sec. 3.4, stability option 2)
// ---------------------------------------------------------------

TEST(ChurnThrottle, CapsPartitionAtSlackBand)
{
    constexpr std::size_t kLines = 8192;
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.25;
    cfg.maxAperture = 0.4;
    cfg.slack = 0.1;
    cfg.throttleHighChurn = true;
    auto ctl = std::make_unique<VantageController>(kLines, cfg);
    VantageController &c = *ctl;
    const std::uint64_t m = c.managedLines();
    c.setTargetLines({64, m - 64});

    Cache cache(std::make_unique<RandomArray>(kLines, 52, 7),
                std::move(ctl), "l2");
    Rng rng(9);
    // Warm partition 1 to its share, then thrash tiny partition 0.
    for (std::uint64_t i = 0; i < 8 * m; ++i) {
        cache.access((2ull << 40) | (rng.next() >> 16), 1);
    }
    for (int i = 0; i < 300000; ++i) {
        cache.access((1ull << 40) | (rng.next() >> 16), 0);
    }

    // Unlike the borrow-to-MSS default, the throttled partition is
    // pinned near (1 + slack) * target instead of growing to
    // ~1/(Amax R) of the cache.
    EXPECT_LE(c.actualSize(0), 64 + 64 / 10 + 16);
    EXPECT_GT(c.partStats(0).throttledInserts, 10000u);
}

TEST(ChurnThrottle, InactiveBelowSlackBand)
{
    constexpr std::size_t kLines = 4096;
    VantageConfig cfg;
    cfg.numPartitions = 1;
    cfg.unmanagedFraction = 0.25;
    cfg.throttleHighChurn = true;
    auto ctl = std::make_unique<VantageController>(kLines, cfg);
    VantageController &c = *ctl;
    Cache cache(std::make_unique<RandomArray>(kLines, 52, 7),
                std::move(ctl), "l2");
    Rng rng(11);
    // Working set below target: no throttling should occur.
    for (int i = 0; i < 50000; ++i) {
        cache.access((1ull << 40) | rng.range(c.targetSize(0) / 2),
                     0);
    }
    EXPECT_EQ(c.partStats(0).throttledInserts, 0u);
}

// ---------------------------------------------------------------
// VantageLfu (Sec. 4.2 generality)
// ---------------------------------------------------------------

TEST(VantageLfu, SizesConverge)
{
    constexpr std::size_t kLines = 8192;
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.15;
    auto ctl = std::make_unique<VantageLfu>(kLines, cfg);
    VantageController &c = *ctl;
    Cache cache(std::make_unique<RandomArray>(kLines, 52, 3),
                std::move(ctl), "l2");
    Rng rng(13);
    for (int round = 0; round < 150; ++round) {
        for (PartId p = 0; p < 4; ++p) {
            const Addr space = static_cast<Addr>(p + 1) << 40;
            for (int i = 0; i < 500; ++i) {
                cache.access(space | (rng.next() >> 16), p);
            }
        }
    }
    for (PartId p = 0; p < 4; ++p) {
        const auto target = static_cast<double>(c.targetSize(p));
        const auto actual = static_cast<double>(c.actualSize(p));
        EXPECT_GE(actual, target * 0.90);
        EXPECT_LE(actual, target * (1.0 + cfg.slack) + 128.0);
    }
}

TEST(VantageLfu, KeepsHotLinesDemotesCold)
{
    constexpr std::size_t kLines = 8192;
    VantageConfig cfg;
    cfg.numPartitions = 1;
    cfg.unmanagedFraction = 0.3;
    auto ctl = std::make_unique<VantageLfu>(kLines, cfg);
    VantageLfu &c = *ctl;
    Cache cache(std::make_unique<RandomArray>(kLines, 52, 3),
                std::move(ctl), "l2");
    Rng rng(17);
    const std::uint64_t hot = 512;
    // Hot lines get many hits; a cold stream overflows the target.
    for (int i = 0; i < 400000; ++i) {
        cache.access((1ull << 40) | rng.range(hot), 0);
        cache.access((2ull << 40) | (rng.next() >> 16), 0);
    }
    // The hot set keeps hitting despite the partition being over
    // target the whole time (cold lines get demoted instead).
    cache.resetStats();
    for (std::uint64_t a = 0; a < hot; ++a) {
        cache.access((1ull << 40) | a, 0);
    }
    const auto &s = cache.partAccessStats(0);
    EXPECT_GT(static_cast<double>(s.hits) /
                  static_cast<double>(s.accesses()),
              0.9);
    // The cold stream (inserted at frequency 0) satisfies the
    // demotion demand, so the setpoint frequency stays low.
    EXPECT_LE(c.setpointFreq(0), 8u);
}

// ---------------------------------------------------------------
// GradualResizer
// ---------------------------------------------------------------

TEST(GradualResizer, StepsTowardGoals)
{
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.5;
    VantageController ctl(2048, cfg);
    const std::uint64_t m = ctl.managedLines();
    ctl.setTargetLines({m / 2, m / 2});

    GradualResizer resizer(ctl, 64);
    resizer.setGoals({m / 2 - 256, m / 2 + 256});

    EXPECT_FALSE(resizer.step());
    EXPECT_EQ(ctl.targetSize(0), m / 2 - 64);
    EXPECT_EQ(ctl.targetSize(1), m / 2 + 64);
    for (int i = 0; i < 2; ++i) {
        EXPECT_FALSE(resizer.step());
    }
    EXPECT_TRUE(resizer.step());
    EXPECT_EQ(ctl.targetSize(0), m / 2 - 256);
    EXPECT_EQ(ctl.targetSize(1), m / 2 + 256);
    EXPECT_TRUE(resizer.step()); // Idempotent at the goals.
}

TEST(GradualResizer, TotalNeverExceedsManaged)
{
    VantageConfig cfg;
    cfg.numPartitions = 3;
    cfg.unmanagedFraction = 0.5;
    VantageController ctl(4096, cfg);
    const std::uint64_t m = ctl.managedLines();
    ctl.setTargetLines({m, 0, 0});

    GradualResizer resizer(ctl, 100);
    resizer.setGoals({0, m / 2, m - m / 2});
    for (int i = 0; i < 50; ++i) {
        resizer.step();
        std::uint64_t total = 0;
        for (PartId p = 0; p < 3; ++p) {
            total += ctl.targetSize(p);
        }
        ASSERT_LE(total, m);
    }
    EXPECT_EQ(ctl.targetSize(0), 0u);
    EXPECT_EQ(ctl.targetSize(1), m / 2);
    EXPECT_EQ(ctl.targetSize(2), m - m / 2);
}

TEST(GradualResizerDeath, OversizedGoalsPanic)
{
    VantageConfig cfg;
    cfg.numPartitions = 1;
    cfg.unmanagedFraction = 0.5;
    VantageController ctl(1024, cfg);
    GradualResizer resizer(ctl, 10);
    EXPECT_DEATH(resizer.setGoals({100000}), "exceed");
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the live metrics layer (src/obs): path-to-metric-name
 * mapping, Prometheus exposition rendering (grouping, escaping,
 * summaries, non-finite values), the MetricsService HTTP endpoint,
 * and controller introspection paths.
 */

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "core/vantage.h"
#include "obs/metrics_service.h"
#include "obs/prometheus.h"
#include "stats/histogram.h"
#include "stats/registry.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// promName: dotted path -> metric name + labels
// ---------------------------------------------------------------

TEST(PromName, IndexedSegmentsBecomeLabels)
{
    PromName n = promName("vantage.part3.aperture_bp");
    EXPECT_EQ(n.name, "vantage_aperture_bp");
    ASSERT_EQ(n.labels.size(), 1u);
    EXPECT_EQ(n.labels[0].key, "part");
    EXPECT_EQ(n.labels[0].value, "3");

    n = promName("cache.bank1.part0.hits");
    EXPECT_EQ(n.name, "cache_hits");
    ASSERT_EQ(n.labels.size(), 2u);
    EXPECT_EQ(n.labels[0].key, "bank");
    EXPECT_EQ(n.labels[0].value, "1");
    EXPECT_EQ(n.labels[1].key, "part");
    EXPECT_EQ(n.labels[1].value, "0");
}

TEST(PromName, BareNumericSegmentLabeledByParent)
{
    // `core.0.ipc`: the parent stays in the name AND names the label.
    PromName n = promName("core.0.ipc");
    EXPECT_EQ(n.name, "core_ipc");
    ASSERT_EQ(n.labels.size(), 1u);
    EXPECT_EQ(n.labels[0].key, "core");
    EXPECT_EQ(n.labels[0].value, "0");
}

TEST(PromName, PlainPathJoinsWithUnderscore)
{
    PromName n = promName("sim.heartbeats");
    EXPECT_EQ(n.name, "sim_heartbeats");
    EXPECT_TRUE(n.labels.empty());
}

TEST(PromName, SanitizesIllegalCharacters)
{
    PromName n = promName("l2-cache.miss%rate");
    EXPECT_EQ(n.name, "l2_cache_miss_rate");
}

TEST(PromSanitize, EdgeCases)
{
    EXPECT_EQ(promSanitizeName(""), "_");
    EXPECT_EQ(promSanitizeName("9lives"), "_9lives");
    EXPECT_EQ(promSanitizeName("a:b_c1"), "a:b_c1");
}

TEST(PromEscape, LabelValues)
{
    EXPECT_EQ(promEscapeLabel("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

// ---------------------------------------------------------------
// PromDoc rendering
// ---------------------------------------------------------------

TEST(PromDoc, GroupsSamplesUnderOneTypeLine)
{
    PromDoc doc;
    doc.add("hits", {{"part", "0"}}, PromDoc::Type::Counter, 1);
    doc.add("misses", {}, PromDoc::Type::Counter, 2);
    doc.add("hits", {{"part", "1"}}, PromDoc::Type::Counter, 3);
    EXPECT_EQ(doc.metricCount(), 2u);

    std::ostringstream out;
    doc.write(out);
    EXPECT_EQ(out.str(),
              "# TYPE hits counter\n"
              "hits{part=\"0\"} 1\n"
              "hits{part=\"1\"} 3\n"
              "# TYPE misses counter\n"
              "misses 2\n");
}

TEST(PromDoc, NonFiniteValues)
{
    PromDoc doc;
    doc.add("a", {}, PromDoc::Type::Gauge,
            std::numeric_limits<double>::quiet_NaN());
    doc.add("b", {}, PromDoc::Type::Gauge,
            std::numeric_limits<double>::infinity());
    doc.add("c", {}, PromDoc::Type::Gauge,
            -std::numeric_limits<double>::infinity());

    std::ostringstream out;
    doc.write(out);
    EXPECT_NE(out.str().find("a NaN\n"), std::string::npos);
    EXPECT_NE(out.str().find("b +Inf\n"), std::string::npos);
    EXPECT_NE(out.str().find("c -Inf\n"), std::string::npos);
}

TEST(PromDoc, EmptyHistogramSummary)
{
    // No quantile samples while empty — but _sum/_count must still be
    // present, under a single summary TYPE line.
    Histogram h;
    PromDoc doc;
    doc.addSummary("walk", {}, h);

    std::ostringstream out;
    doc.write(out);
    EXPECT_EQ(out.str(),
              "# TYPE walk summary\n"
              "walk_sum 0\n"
              "walk_count 0\n");
}

TEST(PromDoc, SingleBucketHistogramSummary)
{
    Histogram h;
    h.add(7);
    PromDoc doc;
    doc.addSummary("walk", {{"job", "j"}}, h);

    std::ostringstream out;
    doc.write(out);
    const std::string text = out.str();
    // All three quantiles exist and collapse onto the lone bucket.
    EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(text.find("walk_sum{job=\"j\"} 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("walk_count{job=\"j\"} 1\n"),
              std::string::npos);
    // Exactly one TYPE line for the family.
    EXPECT_EQ(text.find("# TYPE"), text.rfind("# TYPE"));
}

TEST(PromDoc, ValueFormatting)
{
    EXPECT_EQ(PromDoc::formatValue(0.0), "0");
    EXPECT_EQ(PromDoc::formatValue(1.5), "1.5");
    EXPECT_EQ(PromDoc::formatValue(
                  std::numeric_limits<double>::quiet_NaN()),
              "NaN");
    // Round-trip exactness at 17 significant digits.
    EXPECT_EQ(std::stod(PromDoc::formatValue(0.1)), 0.1);
}

// ---------------------------------------------------------------
// Controller introspection paths
// ---------------------------------------------------------------

TEST(Introspection, VantageControllerRegistersApertureAndSizes)
{
    VantageConfig cfg;
    cfg.numPartitions = 4;
    VantageController ctl(4096, cfg);

    StatsRegistry reg;
    ctl.registerIntrospection(reg, "vantage");

    for (int p = 0; p < 4; ++p) {
        const std::string base = "vantage.part" + std::to_string(p);
        EXPECT_TRUE(reg.contains(base + ".aperture_bp")) << base;
        EXPECT_TRUE(reg.contains(base + ".target_lines")) << base;
        EXPECT_TRUE(reg.contains(base + ".actual_lines")) << base;
        EXPECT_TRUE(reg.contains(base + ".demotions")) << base;
    }
    EXPECT_TRUE(reg.contains("vantage.demotions"));
    EXPECT_TRUE(reg.contains("vantage.unmanaged_lines"));
    EXPECT_TRUE(reg.contains("vantage.part0.thr_entries"));

    // The acceptance-critical names must map as promised.
    PromName n = promName("vantage.part2.aperture_bp");
    EXPECT_EQ(n.name, "vantage_aperture_bp");
    ASSERT_EQ(n.labels.size(), 1u);
    EXPECT_EQ(n.labels[0].value, "2");

    // Values are readable straight away (all zero before any access).
    const std::optional<double> ap =
        reg.value("vantage.part0.aperture_bp");
    ASSERT_TRUE(ap.has_value());
    EXPECT_GE(*ap, 0.0);
}

// ---------------------------------------------------------------
// MetricsService end-to-end
// ---------------------------------------------------------------

/** One-shot HTTP GET against 127.0.0.1:port; returns the raw
 *  response (headers + body), empty on failure. */
std::string
httpGet(int port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string req =
        "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    (void)!::send(fd, req.data(), req.size(), 0);
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        resp.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return resp;
}

TEST(MetricsService, ServesRegisteredSource)
{
    StatsRegistry reg;
    std::uint64_t hits = 123;
    double fill = 0.5;
    reg.addCounter("cache.hits", &hits);
    reg.addGauge("cache.fill", [&fill] { return fill; });

    MetricsServiceConfig cfg;
    cfg.port = 0; // ephemeral
    cfg.epochMillis = 10;
    MetricsService svc(cfg);
    std::string error;
    ASSERT_TRUE(svc.start(error)) << error;
    ASSERT_GT(svc.port(), 0);
    svc.addSource("test-job", &reg);

    const std::string resp = httpGet(svc.port(), "/metrics");
    EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(resp.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(resp.find("cache_hits{job=\"test-job\"} 123"),
              std::string::npos);
    EXPECT_NE(resp.find("cache_fill{job=\"test-job\"} 0.5"),
              std::string::npos);
    EXPECT_GE(svc.scrapes(), 1u);

    svc.removeSource(&reg);
    svc.stop();
}

TEST(MetricsService, UnknownPathIs404)
{
    MetricsServiceConfig cfg;
    cfg.port = 0;
    MetricsService svc(cfg);
    std::string error;
    ASSERT_TRUE(svc.start(error)) << error;

    const std::string resp = httpGet(svc.port(), "/nope");
    EXPECT_NE(resp.find("HTTP/1.1 404"), std::string::npos);
    svc.stop();
}

TEST(MetricsService, RenderIsValidWithoutSocket)
{
    StatsRegistry reg;
    std::uint64_t n = 9;
    reg.addCounter("n", &n);
    Histogram h;
    h.add(3);
    reg.addHistogram("lat", &h);
    reg.addString("scheme", "Vantage");

    MetricsService svc(MetricsServiceConfig{});
    svc.addSource("job-a", &reg);

    const std::string text = svc.render();
    EXPECT_NE(text.find("# TYPE n counter\n"), std::string::npos);
    EXPECT_NE(text.find("n{job=\"job-a\"} 9"), std::string::npos);
    EXPECT_NE(text.find("lat_count{job=\"job-a\"} 1"),
              std::string::npos);
    EXPECT_NE(
        text.find("scheme_info{job=\"job-a\",value=\"Vantage\"} 1"),
        std::string::npos);
    EXPECT_NE(text.find("vsim_exporter_epochs_total"),
              std::string::npos);
    svc.removeSource(&reg);
}

TEST(MetricsService, StopIsIdempotentAndRestartIsSafe)
{
    MetricsServiceConfig cfg;
    cfg.port = 0;
    MetricsService svc(cfg);
    std::string error;
    ASSERT_TRUE(svc.start(error)) << error;
    svc.stop();
    svc.stop();
}

TEST(MetricsService, BindFailureReportsError)
{
    MetricsServiceConfig cfg;
    cfg.port = 0;
    MetricsService a(cfg);
    std::string error;
    ASSERT_TRUE(a.start(error)) << error;

    MetricsServiceConfig busy = cfg;
    busy.port = static_cast<std::uint16_t>(a.port());
    MetricsService b(busy);
    EXPECT_FALSE(b.start(error));
    EXPECT_FALSE(error.empty());
    a.stop();
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the H3 universal hash family.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "hash/h3.h"

namespace vantage {
namespace {

TEST(H3Hash, DeterministicPerSeed)
{
    H3Hash a(1), b(1);
    for (Addr x = 0; x < 1000; ++x) {
        EXPECT_EQ(a(x), b(x));
    }
}

TEST(H3Hash, ZeroMapsToZero)
{
    // H3 is linear over GF(2): h(0) = 0 by construction.
    H3Hash h(99);
    EXPECT_EQ(h(0), 0u);
}

TEST(H3Hash, LinearOverXor)
{
    // The defining H3 property: h(a ^ b) == h(a) ^ h(b).
    H3Hash h(7);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        EXPECT_EQ(h(a ^ b), h(a) ^ h(b));
    }
}

TEST(H3Hash, SeedsGiveDifferentFunctions)
{
    H3Hash a(1), b(2);
    int same = 0;
    for (Addr x = 1; x <= 100; ++x) {
        if (a(x) == b(x)) ++same;
    }
    EXPECT_LE(same, 2);
}

TEST(H3Hash, ModStaysInBound)
{
    H3Hash h(5);
    for (Addr x = 0; x < 10000; ++x) {
        EXPECT_LT(h.mod(x, 64), 64u);
    }
}

TEST(H3Hash, BucketsAreBalanced)
{
    H3Hash h(11);
    const std::uint64_t buckets = 64;
    std::vector<int> counts(buckets, 0);
    const int n = 64000;
    for (Addr x = 1; x <= n; ++x) {
        ++counts[h.mod(x, buckets)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, n / static_cast<int>(buckets),
                    n / static_cast<int>(buckets) / 4);
    }
}

TEST(H3Hash, SequentialAddressesSpread)
{
    // Strided/sequential patterns — the pathological cases for plain
    // index bits — must spread under H3.
    H3Hash h(13);
    std::vector<int> counts(16, 0);
    for (Addr x = 0; x < 1600; ++x) {
        ++counts[h.mod(x * 4096, 16)];
    }
    for (const int c : counts) {
        EXPECT_GT(c, 40);
        EXPECT_LT(c, 180);
    }
}

TEST(H3Hash, SingleBitFlipsAvalanche)
{
    H3Hash h(17);
    Rng rng(5);
    double total_flips = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t x = rng.next();
        const int bit = static_cast<int>(rng.range(64));
        const std::uint64_t d = h(x) ^ h(x ^ (1ull << bit));
        total_flips += __builtin_popcountll(d);
    }
    // Each input bit XORs in a random 64-bit word: ~32 output bits
    // flip on average.
    EXPECT_NEAR(total_flips / n, 32.0, 3.0);
}

TEST(H3Hash, PairwiseIndependenceSample)
{
    // 2-universality: for x != y, Pr[h(x) = h(y) mod 64] ~ 1/64
    // over random h.
    int collisions = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
        H3Hash h(1000 + t);
        if (h.mod(0x1234, 64) == h.mod(0x9876, 64)) {
            ++collisions;
        }
    }
    const double rate = static_cast<double>(collisions) / trials;
    EXPECT_NEAR(rate, 1.0 / 64.0, 0.012);
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the analytical models (Eqs. 1-9), including the worked
 * numeric examples the paper itself gives, and Monte-Carlo
 * cross-checks of the closed forms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/model.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// Eq. 1: FA(x) = x^R
// ---------------------------------------------------------------

TEST(AssocCdf, Boundaries)
{
    EXPECT_EQ(model::assocCdf(0.0, 16), 0.0);
    EXPECT_EQ(model::assocCdf(1.0, 16), 1.0);
    EXPECT_EQ(model::assocCdf(-1.0, 16), 0.0);
    EXPECT_EQ(model::assocCdf(2.0, 16), 1.0);
}

TEST(AssocCdf, PaperExampleR64)
{
    // "with R = 64, the probability of evicting a line with eviction
    //  priority e < 0.8 is FA(0.8) = 10^-6" (Sec. 3.2).
    EXPECT_NEAR(model::assocCdf(0.8, 64), 1e-6, 5e-7);
}

TEST(AssocCdf, MonotoneInX)
{
    double prev = 0.0;
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        const double v = model::assocCdf(x, 8);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(AssocCdf, MoreCandidatesSkewHigher)
{
    for (double x = 0.1; x < 1.0; x += 0.1) {
        EXPECT_GT(model::assocCdf(x, 4), model::assocCdf(x, 8));
        EXPECT_GT(model::assocCdf(x, 8), model::assocCdf(x, 64));
    }
}

/** Monte-Carlo: max of R uniforms has CDF x^R. */
TEST(AssocCdf, MatchesMonteCarlo)
{
    Rng rng(3);
    const int n = 200000;
    const std::uint32_t r = 16;
    int below = 0;
    const double x = 0.9;
    for (int i = 0; i < n; ++i) {
        double best = 0.0;
        for (std::uint32_t k = 0; k < r; ++k) {
            best = std::max(best, rng.uniform());
        }
        if (best <= x) ++below;
    }
    EXPECT_NEAR(static_cast<double>(below) / n,
                model::assocCdf(x, r), 0.005);
}

// ---------------------------------------------------------------
// Binomial PMF
// ---------------------------------------------------------------

TEST(BinomialPmf, SumsToOne)
{
    for (const double p : {0.1, 0.5, 0.7, 0.95}) {
        double sum = 0.0;
        for (std::uint32_t i = 0; i <= 52; ++i) {
            sum += model::binomialPmf(i, 52, p);
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(BinomialPmf, KnownValues)
{
    EXPECT_NEAR(model::binomialPmf(1, 2, 0.5), 0.5, 1e-12);
    EXPECT_NEAR(model::binomialPmf(2, 4, 0.5), 6.0 / 16.0, 1e-12);
    EXPECT_NEAR(model::binomialPmf(0, 10, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(model::binomialPmf(10, 10, 1.0), 1.0, 1e-12);
    EXPECT_EQ(model::binomialPmf(3, 10, 0.0), 0.0);
}

TEST(BinomialPmf, MeanMatches)
{
    const std::uint32_t r = 16;
    const double p = 0.7;
    double mean = 0.0;
    for (std::uint32_t i = 0; i <= r; ++i) {
        mean += i * model::binomialPmf(i, r, p);
    }
    EXPECT_NEAR(mean, r * p, 1e-9);
}

// ---------------------------------------------------------------
// Eq. 2 / Eq. 3: managed-region demotion CDFs
// ---------------------------------------------------------------

TEST(ManagedCdfExactOne, Boundaries)
{
    EXPECT_EQ(model::managedCdfExactOne(0.0, 16, 0.3), 0.0);
    EXPECT_EQ(model::managedCdfExactOne(1.0, 16, 0.3), 1.0);
    EXPECT_NEAR(model::managedCdfExactOne(0.999999, 16, 0.3), 1.0,
                1e-3);
}

TEST(ManagedCdfExactOne, WorseThanOnAverage)
{
    // Demoting exactly one line per eviction touches much lower
    // priorities than demoting on the average (Fig. 2b vs 2c): at
    // R=16, u=0.3, Eq. 2 gives FM(0.9) ~= 0.31 — a third of
    // demotions hit lines the policy ranks below the top 10% —
    // versus exactly zero below 1 - A for the aperture scheme.
    const double exact_one = model::managedCdfExactOne(0.9, 16, 0.3);
    EXPECT_GT(exact_one, 0.25);
    const double aperture = 1.0 / (16 * 0.7);
    EXPECT_EQ(model::managedCdfOnAverage(0.9, aperture), 0.0);
}

TEST(ManagedCdfOnAverage, UniformOnAperture)
{
    const double a = 0.1;
    EXPECT_EQ(model::managedCdfOnAverage(0.85, a), 0.0);
    EXPECT_NEAR(model::managedCdfOnAverage(0.95, a), 0.5, 1e-12);
    EXPECT_EQ(model::managedCdfOnAverage(1.0, a), 1.0);
}

// ---------------------------------------------------------------
// Eq. 4: apertures — the paper's Sec. 3.4 worked example
// ---------------------------------------------------------------

TEST(Aperture, PaperWorkedExample)
{
    // 4 equally sized partitions, partition 1 with twice the churn of
    // the others; R = 16, m = 0.625. The paper derives A1 = 16% and
    // A2..4 = 8%.
    const std::uint32_t r = 16;
    const double m = 0.625;
    const double churn1 = 2.0 / 5.0; // C1 / sum(C)
    const double churn_rest = 1.0 / 5.0;
    const double size_share = 0.25;
    EXPECT_NEAR(model::aperture(churn1, size_share, r, m), 0.16,
                1e-12);
    EXPECT_NEAR(model::aperture(churn_rest, size_share, r, m), 0.08,
                1e-12);
}

TEST(Aperture, BalancedEqualsInverseRm)
{
    const double a = model::balancedAperture(52, 0.95);
    EXPECT_NEAR(a, 1.0 / (52 * 0.95), 1e-12);
    EXPECT_NEAR(model::aperture(0.25, 0.25, 52, 0.95), a, 1e-12);
}

// ---------------------------------------------------------------
// Eqs. 5/6: minimum stable sizes and worst-case borrow
// ---------------------------------------------------------------

TEST(MinStableSize, ScalesWithChurn)
{
    const double mss1 =
        model::minStableSize(0.5, 0.9, 0.4, 52, 0.9);
    const double mss2 =
        model::minStableSize(0.25, 0.9, 0.4, 52, 0.9);
    EXPECT_NEAR(mss1, 2.0 * mss2, 1e-12);
}

TEST(WorstCaseBorrow, PaperExample)
{
    // "if the cache has R = 52 candidates, with Amax = 0.4, we need
    //  to assign an extra 1/(0.4*52) = 4.8% to the unmanaged region."
    EXPECT_NEAR(model::worstCaseBorrow(0.4, 52), 0.048, 0.0005);
}

TEST(WorstCaseBorrow, SumOfMssEqualsBorrow)
{
    // Eq. 6: the borrow bound is independent of how churn is split.
    const std::uint32_t r = 52;
    const double amax = 0.4, m = 0.9;
    double total = 0.0;
    const double churn_shares[] = {0.5, 0.3, 0.2};
    for (const double c : churn_shares) {
        total += model::minStableSize(c, m, amax, r, m);
    }
    EXPECT_NEAR(total, model::worstCaseBorrow(amax, r) * (m / m),
                0.01);
}

// ---------------------------------------------------------------
// Eq. 9 and unmanaged sizing (Sec. 4.3)
// ---------------------------------------------------------------

TEST(AggregateOutgrowth, PaperExample)
{
    // "with R = 52 candidates, slack = 0.1 and Amax = 0.4,
    //  sum(dSi) = 0.48% of the cache size."
    EXPECT_NEAR(model::aggregateOutgrowth(0.1, 0.4, 52), 0.0048,
                5e-5);
}

TEST(UnmanagedFraction, PaperFig5Examples)
{
    // "with 52 candidates, having Amax = 0.4 requires 13% of the
    //  cache to be unmanaged for Pev = 1e-2, while going down to
    //  Pev = 1e-4 would require 21%."
    EXPECT_NEAR(model::unmanagedFraction(52, 0.4, 0.1, 1e-2), 0.13,
                0.01);
    EXPECT_NEAR(model::unmanagedFraction(52, 0.4, 0.1, 1e-4), 0.21,
                0.015);
}

TEST(UnmanagedFraction, DecreasesWithMoreCandidates)
{
    EXPECT_GT(model::unmanagedFraction(16, 0.4, 0.1, 1e-2),
              model::unmanagedFraction(52, 0.4, 0.1, 1e-2));
}

TEST(UnmanagedFraction, GrowsWithStricterPev)
{
    EXPECT_GT(model::unmanagedFraction(52, 0.4, 0.1, 1e-6),
              model::unmanagedFraction(52, 0.4, 0.1, 1e-2));
}

TEST(WorstCaseEvictionProb, InvertsSizing)
{
    const std::uint32_t r = 52;
    const double pev = 1e-3;
    const double u_ev = 1.0 - std::pow(pev, 1.0 / r);
    EXPECT_NEAR(model::worstCaseEvictionProb(r, u_ev), pev,
                pev * 0.01);
}

TEST(WorstCaseEvictionProb, MonteCarlo)
{
    // Probability that none of R candidates lands in the unmanaged
    // fraction u.
    Rng rng(7);
    const double u = 0.15;
    const std::uint32_t r = 16;
    int forced = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        bool any = false;
        for (std::uint32_t k = 0; k < r && !any; ++k) {
            any = rng.uniform() < u;
        }
        if (!any) ++forced;
    }
    EXPECT_NEAR(static_cast<double>(forced) / n,
                model::worstCaseEvictionProb(r, u), 0.005);
}

// ---------------------------------------------------------------
// State overhead (Sec. 4.3 / abstract: ~1.5% for 8 MB, 32 parts)
// ---------------------------------------------------------------

TEST(StateOverhead, PaperEightMbThirtyTwoPartitions)
{
    // 8 MB = 131072 lines, 32 partitions, 4 banks: 6 tag bits
    // (1.17% of line capacity; the paper quotes 1.01% against its
    // slightly larger nominal tag+data budget) plus 4 KB of
    // controller registers — about 1.5% in total, matching the
    // paper's headline overhead within rounding.
    const model::StateOverhead o =
        model::stateOverhead(131072, 32, 4);
    EXPECT_EQ(o.tagBitsPerLine, 6u);
    EXPECT_EQ(o.controllerBits, 256u * 32 * 4);
    EXPECT_NEAR(o.totalOverhead, 0.015, 0.004);
}

TEST(StateOverhead, GrowsLogarithmicallyWithPartitions)
{
    const auto small = model::stateOverhead(131072, 8);
    const auto large = model::stateOverhead(131072, 64);
    EXPECT_EQ(small.tagBitsPerLine, 4u);  // 8 + unmanaged -> 9 ids.
    EXPECT_EQ(large.tagBitsPerLine, 7u);  // 64 + unmanaged.
    EXPECT_LT(large.totalOverhead, 0.03);
}

TEST(StateOverheadDeath, ZeroLinesPanics)
{
    EXPECT_DEATH(model::stateOverhead(0, 4), "empty");
}

} // namespace
} // namespace vantage

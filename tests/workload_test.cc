/**
 * @file
 * Tests for the synthetic workload layer: generators, the profile
 * library (Table 3), and mix construction (Sec. 5).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "workload/app_model.h"
#include "workload/mixes.h"
#include "workload/profiles.h"

namespace vantage {
namespace {

AppSpec
simpleSpec(std::uint64_t lines, AccessPattern pat,
           std::uint64_t phase_len = 1000)
{
    return AppSpec{"test", Category::Insensitive, 2.0,
                   {PhaseSpec{phase_len, {{lines, 1.0, pat}}}}};
}

// ---------------------------------------------------------------
// AppModel
// ---------------------------------------------------------------

TEST(AppModel, SequentialCyclesThroughSegment)
{
    AppModel app(simpleSpec(4, AccessPattern::Sequential), 0, 1);
    const Addr a0 = app.nextAddr();
    const Addr a1 = app.nextAddr();
    app.nextAddr(); // a2
    const Addr a3 = app.nextAddr();
    const Addr a4 = app.nextAddr();
    EXPECT_EQ(a1, a0 + 1);
    EXPECT_EQ(a3, a0 + 3);
    EXPECT_EQ(a4, a0); // Wrapped.
}

TEST(AppModel, RandomStaysInSegment)
{
    AppModel app(simpleSpec(64, AccessPattern::Random), 0, 2);
    std::set<Addr> seen;
    Addr base = ~0ull;
    for (int i = 0; i < 10000; ++i) {
        const Addr a = app.nextAddr();
        base = std::min(base, a);
        seen.insert(a);
    }
    EXPECT_LE(seen.size(), 64u);
    for (const Addr a : seen) {
        EXPECT_LT(a - base, 64u);
    }
}

TEST(AppModel, Deterministic)
{
    AppSpec spec = simpleSpec(1024, AccessPattern::Random);
    AppModel a(spec, 3, 42), b(spec, 3, 42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.nextAddr(), b.nextAddr());
    }
}

TEST(AppModel, DistinctAppIdsAreDisjoint)
{
    AppSpec spec = simpleSpec(1024, AccessPattern::Random);
    AppModel a(spec, 0, 1), b(spec, 1, 1);
    std::unordered_set<Addr> from_a;
    for (int i = 0; i < 2000; ++i) {
        from_a.insert(a.nextAddr());
    }
    for (int i = 0; i < 2000; ++i) {
        EXPECT_EQ(from_a.count(b.nextAddr()), 0u);
    }
}

TEST(AppModel, PhasesRotate)
{
    AppSpec spec{"phased", Category::CacheFriendly, 1.0,
                 {PhaseSpec{10, {{16, 1.0, AccessPattern::Random}}},
                  PhaseSpec{10, {{16, 1.0, AccessPattern::Random}}}}};
    AppModel app(spec, 0, 7);
    std::set<Addr> first, second;
    for (int i = 0; i < 10; ++i) first.insert(app.nextAddr());
    for (int i = 0; i < 10; ++i) second.insert(app.nextAddr());
    // Phases use different address bases, so the sets are disjoint.
    for (const Addr a : second) {
        EXPECT_EQ(first.count(a), 0u);
    }
    // Phase sequence loops back to the first phase's addresses.
    std::set<Addr> third;
    for (int i = 0; i < 10; ++i) third.insert(app.nextAddr());
    for (const Addr a : third) {
        EXPECT_EQ(second.count(a), 0u);
    }
}

TEST(AppModel, MixtureRespectsWeights)
{
    AppSpec spec{"weighted", Category::CacheFriendly, 1.0,
                 {PhaseSpec{1u << 20,
                            {{16, 0.8, AccessPattern::Random},
                             {1u << 20, 0.2, AccessPattern::Random}}}}};
    AppModel app(spec, 0, 9);
    int small = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        // The small segment occupies the low offsets of its base
        // (segment index 0); the large one has a different base.
        const Addr a = app.nextAddr();
        if (((a >> 28) & 0xff) == 0) ++small;
    }
    EXPECT_NEAR(static_cast<double>(small) / n, 0.8, 0.02);
}

TEST(AppModelDeath, EmptySpecPanics)
{
    AppSpec bad{"bad", Category::Insensitive, 1.0, {}};
    EXPECT_DEATH(AppModel(bad, 0, 1), "no phases");
}

// ---------------------------------------------------------------
// Profiles (Table 3)
// ---------------------------------------------------------------

TEST(Profiles, LibraryHasAllTwentyNine)
{
    EXPECT_EQ(appLibrary().size(), 29u);
}

TEST(Profiles, CategoryCountsMatchTable3)
{
    EXPECT_EQ(appsInCategory(Category::Insensitive).size(), 14u);
    EXPECT_EQ(appsInCategory(Category::CacheFriendly).size(), 6u);
    EXPECT_EQ(appsInCategory(Category::CacheFitting).size(), 5u);
    EXPECT_EQ(appsInCategory(Category::Streaming).size(), 4u);
}

TEST(Profiles, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &app : appLibrary()) {
        EXPECT_TRUE(names.insert(app.name).second)
            << "duplicate profile " << app.name;
    }
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(appByName("mcf").category, Category::Streaming);
    EXPECT_EQ(appByName("soplex").category, Category::CacheFitting);
    EXPECT_EQ(appByName("gcc").category, Category::CacheFriendly);
    EXPECT_EQ(appByName("povray").category, Category::Insensitive);
}

TEST(ProfilesDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(appByName("nosuchapp"),
                ::testing::ExitedWithCode(1), "unknown application");
}

TEST(Profiles, StreamingWorkingSetsExceedCache)
{
    for (const auto &app : appsInCategory(Category::Streaming)) {
        std::uint64_t ws = 0;
        for (const auto &seg : app.phases[0].segments) {
            ws += seg.lines;
        }
        EXPECT_GT(ws, 8 * kLinesPerMb) << app.name;
    }
}

TEST(Profiles, InsensitiveWorkingSetsAreSmall)
{
    for (const auto &app : appsInCategory(Category::Insensitive)) {
        std::uint64_t ws = 0;
        for (const auto &seg : app.phases[0].segments) {
            ws += seg.lines;
        }
        EXPECT_LT(ws, kLinesPerMb / 8) << app.name;
    }
}

TEST(Profiles, CategoryCodes)
{
    EXPECT_EQ(categoryCode(Category::Insensitive), 'n');
    EXPECT_EQ(categoryCode(Category::CacheFriendly), 'f');
    EXPECT_EQ(categoryCode(Category::CacheFitting), 't');
    EXPECT_EQ(categoryCode(Category::Streaming), 's');
}

// ---------------------------------------------------------------
// Mixes
// ---------------------------------------------------------------

TEST(Mixes, ThirtyFiveClasses)
{
    EXPECT_EQ(allMixClasses().size(), 35u);
}

TEST(Mixes, ClassesAreUniqueAndSorted)
{
    std::set<std::string> names;
    for (std::uint32_t c = 0; c < 35; ++c) {
        const std::string name = mixName(c, 0);
        EXPECT_TRUE(names.insert(name.substr(0, 4)).second)
            << "duplicate class " << name;
    }
}

TEST(Mixes, FourCoreMixHasFourApps)
{
    const auto apps = makeMix(0, 1, 0);
    EXPECT_EQ(apps.size(), 4u);
}

TEST(Mixes, ThirtyTwoCoreMixHasThirtyTwoApps)
{
    const auto apps = makeMix(0, 8, 0);
    EXPECT_EQ(apps.size(), 32u);
}

TEST(Mixes, AppsMatchClassCategories)
{
    const auto &classes = allMixClasses();
    for (std::uint32_t c = 0; c < 35; c += 7) {
        const auto apps = makeMix(c, 2, 1);
        ASSERT_EQ(apps.size(), 8u);
        for (std::size_t slot = 0; slot < 4; ++slot) {
            for (std::size_t k = 0; k < 2; ++k) {
                EXPECT_EQ(apps[slot * 2 + k].category,
                          classes[c][slot]);
            }
        }
    }
}

TEST(Mixes, SeedsVaryTheDraw)
{
    bool any_difference = false;
    for (std::uint32_t c = 0; c < 35 && !any_difference; ++c) {
        const auto a = makeMix(c, 1, 0);
        const auto b = makeMix(c, 1, 1);
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (a[i].name != b[i].name) {
                any_difference = true;
            }
        }
    }
    EXPECT_TRUE(any_difference);
}

TEST(Mixes, DeterministicForSameSeed)
{
    const auto a = makeMix(17, 8, 3);
    const auto b = makeMix(17, 8, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
    }
}

TEST(Mixes, NameFormat)
{
    EXPECT_EQ(mixName(0, 3).size(), 5u);
    // Class 0 is all-streaming by construction order.
    EXPECT_EQ(mixName(0, 3).substr(0, 4), "ssss");
    // Last class is all-insensitive.
    EXPECT_EQ(mixName(34, 0).substr(0, 4), "nnnn");
}

} // namespace
} // namespace vantage

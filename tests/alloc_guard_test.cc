/**
 * @file
 * Zero-allocation guard for the miss path.
 *
 * The data-oriented miss path — lookup, candidate walk into the
 * inline CandidateBuf, demotion scan over the hot SoA plane, and
 * relocation — must not touch the heap. This binary replaces the
 * global allocator with a counting shim and asserts that a warmed
 * cache performs zero allocations across hundreds of thousands of
 * accesses (hits, misses, evictions and writebacks included).
 *
 * Skipped under -DVANTAGE_CHECK=ON: the periodic invariant sweep
 * that build wires into Cache::access allocates scratch by design.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "array/set_assoc.h"
#include "array/zarray.h"
#include "cache/banked_cache.h"
#include "cache/cache.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/vantage.h"
#include "partition/unpartitioned.h"
#include "replacement/lru.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t
newCount()
{
    return g_news.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

} // namespace

// Global allocator shim: every operator new funnels through
// countedAlloc; deletes stay free of bookkeeping so destructors on
// the measured path cost nothing extra.
void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size, std::align_val_t)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace vantage {
namespace {

#ifdef VANTAGE_CHECK_ENABLED
constexpr bool kChecked = true;
#else
constexpr bool kChecked = false;
#endif

/** Drive `accesses` mixed loads/stores; return allocations counted. */
template <typename CacheT>
std::uint64_t
allocationsDuring(CacheT &cache, std::uint64_t accesses,
                  std::uint32_t parts, std::uint64_t seed)
{
    Rng rng(seed);
    // Warm until the array is full and steady-state demotion runs.
    for (std::uint64_t i = 0; i < 300000; ++i) {
        cache.access((1ull << 40) | (rng.next() >> 18),
                     static_cast<PartId>(i % parts),
                     rng.chance(0.3) ? AccessType::Store
                                     : AccessType::Load);
    }
    const std::uint64_t before = newCount();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        cache.access((1ull << 40) | (rng.next() >> 18),
                     static_cast<PartId>(i % parts),
                     rng.chance(0.3) ? AccessType::Store
                                     : AccessType::Load);
    }
    return newCount() - before;
}

TEST(AllocGuard, ShimCountsAllocations)
{
    const std::uint64_t before = newCount();
    auto p = std::make_unique<std::uint64_t>(7);
    EXPECT_GT(newCount(), before);
    EXPECT_EQ(*p, 7u);
}

TEST(AllocGuard, VantageZcacheMissPathIsAllocationFree)
{
    if (kChecked) {
        GTEST_SKIP() << "VANTAGE_CHECK builds sweep invariants "
                        "inside access(), which allocates";
    }
    VantageConfig cfg;
    cfg.numPartitions = 4;
    cfg.unmanagedFraction = 0.05;
    Cache cache(std::make_unique<ZArray>(16384, 4, 52, 1),
                std::make_unique<VantageController>(16384, cfg),
                "alloc_guard_v");
    EXPECT_EQ(allocationsDuring(cache, 200000, 4, 0x11), 0u);
}

TEST(AllocGuard, SetAssocLruMissPathIsAllocationFree)
{
    if (kChecked) {
        GTEST_SKIP() << "VANTAGE_CHECK builds sweep invariants "
                        "inside access(), which allocates";
    }
    Cache cache(std::make_unique<SetAssocArray>(8192, 16, true, 0x5),
                std::make_unique<Unpartitioned>(
                    1, std::make_unique<ExactLru>()),
                "alloc_guard_sa");
    EXPECT_EQ(allocationsDuring(cache, 200000, 1, 0x13), 0u);
}

TEST(AllocGuard, BankedVantageMissPathIsAllocationFree)
{
    if (kChecked) {
        GTEST_SKIP() << "VANTAGE_CHECK builds sweep invariants "
                        "inside access(), which allocates";
    }
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.05;
    std::vector<std::unique_ptr<Cache>> banks;
    for (int b = 0; b < 4; ++b) {
        banks.push_back(std::make_unique<Cache>(
            std::make_unique<ZArray>(4096, 4, 52, 100 + b),
            std::make_unique<VantageController>(4096, cfg),
            "alloc_guard_bank"));
    }
    BankedCache banked(std::move(banks), 0xb);
    EXPECT_EQ(allocationsDuring(banked, 200000, 2, 0x17), 0u);
}

} // namespace
} // namespace vantage

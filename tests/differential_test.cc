/**
 * @file
 * Differential tests: the production implementations are checked
 * against small, obviously-correct reference models under long
 * randomized traffic.
 *
 *  - SetAssocArray + ExactLru vs a map-of-LRU-lists reference cache.
 *  - Umon vs an exact per-set LRU-stack-distance counter.
 *  - Pipp's chain bookkeeping vs a literal per-set vector model.
 *  - CoarseLru vs ExactLru: the 8-bit approximation must agree with
 *    exact LRU on the vast majority of victim decisions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc/umon.h"
#include "array/set_assoc.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "partition/pipp.h"
#include "partition/unpartitioned.h"
#include "replacement/lru.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// Reference LRU cache: per-set std::list, MRU at front.
// ---------------------------------------------------------------

class RefLruCache
{
  public:
    RefLruCache(std::uint64_t sets, std::uint32_t ways,
                const SetAssocArray &geometry)
        : sets_(sets), ways_(ways), geometry_(geometry),
          lists_(sets)
    {}

    bool
    access(Addr addr)
    {
        auto &list = lists_[geometry_.setOf(addr)];
        const auto it = std::find(list.begin(), list.end(), addr);
        if (it != list.end()) {
            list.erase(it);
            list.push_front(addr);
            return true;
        }
        if (list.size() >= ways_) {
            list.pop_back();
        }
        list.push_front(addr);
        return false;
    }

  private:
    std::uint64_t sets_;
    std::uint32_t ways_;
    const SetAssocArray &geometry_;
    std::vector<std::list<Addr>> lists_;
};

TEST(Differential, SetAssocLruMatchesReference)
{
    constexpr std::size_t kLines = 1024;
    constexpr std::uint32_t kWays = 8;
    auto array =
        std::make_unique<SetAssocArray>(kLines, kWays, true, 0x9);
    const SetAssocArray &geometry = *array;
    Cache cache(std::move(array),
                std::make_unique<Unpartitioned>(
                    1, std::make_unique<ExactLru>()),
                "dut");
    RefLruCache ref(kLines / kWays, kWays, geometry);

    Rng rng(3);
    for (int i = 0; i < 200000; ++i) {
        // Zipf-ish: small addresses much more likely.
        const Addr a = rng.range(rng.range(4096) + 1);
        const bool dut_hit = cache.access(a, 0) == AccessResult::Hit;
        const bool ref_hit = ref.access(a);
        ASSERT_EQ(dut_hit, ref_hit) << "diverged at access " << i;
    }
}

// ---------------------------------------------------------------
// Umon vs exact stack-distance counting.
// ---------------------------------------------------------------

TEST(Differential, UmonMatchesExactStackDistances)
{
    constexpr std::uint32_t kWays = 16;
    // Monitor everything: one set, modeled = 1.
    Umon umon(kWays, 1, 1, 0x7);

    std::list<Addr> stack;
    std::vector<std::uint64_t> hits(kWays, 0);
    std::uint64_t misses = 0;

    Rng rng(5);
    for (int i = 0; i < 100000; ++i) {
        const Addr a = rng.range(rng.range(64) + 1);
        umon.access(a);
        const auto it = std::find(stack.begin(), stack.end(), a);
        if (it != stack.end()) {
            const auto depth = static_cast<std::uint32_t>(
                std::distance(stack.begin(), it));
            if (depth < kWays) {
                ++hits[depth];
            }
            stack.erase(it);
        } else {
            ++misses;
        }
        stack.push_front(a);
        if (stack.size() > kWays) {
            stack.pop_back();
        }
    }

    EXPECT_EQ(umon.misses(), misses);
    std::uint64_t acc = 0;
    for (std::uint32_t w = 0; w < kWays; ++w) {
        acc += hits[w];
        EXPECT_EQ(umon.hitsUpTo(w + 1), acc) << "way " << w;
    }
}

// ---------------------------------------------------------------
// PIPP chains vs a literal recency-vector model.
// ---------------------------------------------------------------

/** Reference: per-set vector, index 0 = bottom of the chain. */
class RefPipp
{
  public:
    RefPipp(std::uint64_t sets, std::uint32_t ways) : ways_(ways)
    {
        (void)sets;
    }

    /** @return evicted address, or kInvalidAddr. */
    Addr
    insert(std::uint64_t set, Addr addr, std::uint32_t position)
    {
        auto &chain = sets_[set];
        Addr evicted = kInvalidAddr;
        if (chain.size() >= ways_) {
            evicted = chain.front();
            chain.erase(chain.begin());
        }
        const std::size_t pos =
            std::min<std::size_t>(position, chain.size());
        chain.insert(chain.begin() + static_cast<long>(pos), addr);
        return evicted;
    }

    void
    promote(std::uint64_t set, Addr addr)
    {
        auto &chain = sets_[set];
        const auto it = std::find(chain.begin(), chain.end(), addr);
        ASSERT_NE(it, chain.end());
        const auto pos = it - chain.begin();
        if (static_cast<std::size_t>(pos) + 1 < chain.size()) {
            std::swap(chain[pos], chain[pos + 1]);
        }
    }

    std::uint32_t
    positionOf(std::uint64_t set, Addr addr) const
    {
        const auto &chain = sets_.at(set);
        const auto it = std::find(chain.begin(), chain.end(), addr);
        EXPECT_NE(it, chain.end());
        return static_cast<std::uint32_t>(it - chain.begin());
    }

    const std::vector<Addr> &chain(std::uint64_t set) const
    {
        return sets_.at(set);
    }

  private:
    std::uint32_t ways_;
    std::map<std::uint64_t, std::vector<Addr>> sets_;
};

TEST(Differential, PippChainsMatchReference)
{
    constexpr std::size_t kLines = 256;
    constexpr std::uint32_t kWays = 8;
    PippConfig cfg;
    cfg.pprom = 1.0; // Deterministic for the comparison.
    cfg.thetaM = 2.0; // Never classify as streaming.
    auto array = std::make_unique<SetAssocArray>(kLines, kWays,
                                                 true, 0xd);
    const SetAssocArray &geometry = *array;
    auto scheme = std::make_unique<Pipp>(2, kWays, kLines / kWays,
                                         kLines, cfg, 0x11);
    const Pipp &pipp = *scheme;
    Cache cache(std::move(array), std::move(scheme), "dut");
    RefPipp ref(kLines / kWays, kWays);

    Rng rng(7);
    for (int i = 0; i < 60000; ++i) {
        const PartId part = static_cast<PartId>(rng.range(2));
        const Addr a = (static_cast<Addr>(part + 1) << 40) |
                       rng.range(512);
        const std::uint64_t set = geometry.setOf(a);
        const bool hit = cache.contains(a);
        cache.access(a, part);
        if (hit) {
            ref.promote(set, a);
        } else {
            // Default allocation: ways/parts = 4 each -> position 4.
            ref.insert(set, a, 4);
        }

        if (i % 500 == 0) {
            // Full structural comparison of this set's chain.
            const auto &chain = ref.chain(set);
            for (std::size_t pos = 0; pos < chain.size(); ++pos) {
                const LineId slot = geometry.lookup(chain[pos]);
                ASSERT_NE(slot, kInvalidLine);
                ASSERT_EQ(pipp.positionOf(slot), pos)
                    << "chain order diverged at access " << i;
            }
        }
    }
}

// ---------------------------------------------------------------
// CoarseLru vs ExactLru victim agreement.
// ---------------------------------------------------------------

TEST(Differential, CoarseLruAgreesWithExactLruMostly)
{
    // Two identical arrays driven with identical traffic; count how
    // often the 8-bit-timestamp policy picks a victim that exact LRU
    // considers "old" (in the oldest half of the candidates).
    constexpr std::size_t kLines = 512;
    constexpr std::uint32_t kWays = 8;
    SetAssocArray arr(kLines, kWays, true, 0x21);
    ExactLru exact;
    CoarseLru coarse(kLines);

    Rng rng(9);
    CandidateBuf cands;
    int decisions = 0;
    int agreements = 0;
    for (int i = 0; i < 120000; ++i) {
        const Addr a = rng.range(4096);
        const LineId slot = arr.lookup(a);
        if (slot != kInvalidLine) {
            exact.onHit(arr, slot);
            coarse.onHit(arr, slot);
            continue;
        }
        arr.candidates(a, cands);
        std::int32_t invalid = -1;
        for (std::size_t j = 0; j < cands.size(); ++j) {
            if (!arr.line(cands[j].slot).valid()) {
                invalid = static_cast<std::int32_t>(j);
                break;
            }
        }
        std::int32_t victim;
        if (invalid >= 0) {
            victim = invalid;
        } else {
            victim = coarse.selectVictim(arr, cands);
            // Rank of the coarse choice under exact LRU.
            int older = 0;
            for (const auto &cand : cands) {
                if (arr.cold(cand.slot).lastAccess <
                    arr.cold(cands[victim].slot).lastAccess) {
                    ++older;
                }
            }
            ++decisions;
            if (older <= static_cast<int>(kWays) / 2) {
                ++agreements;
            }
        }
        const LineId root = arr.replace(a, cands, victim);
        exact.onInsert(arr, root);
        coarse.onInsert(arr, root);
    }
    ASSERT_GT(decisions, 10000);
    EXPECT_GT(static_cast<double>(agreements) /
                  static_cast<double>(decisions),
              0.95)
        << "coarse timestamps should rarely evict recent lines";
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the replacement policies: exact LRU, coarse-timestamp
 * LRU, the RRIP family, and LFU. Policies operate on array slots
 * (hot rank plane + cold lastAccess plane), so the unit tests stage
 * their lines inside a small SetAssocArray.
 */

#include <gtest/gtest.h>

#include <memory>

#include "array/set_assoc.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "partition/unpartitioned.h"
#include "replacement/lfu.h"
#include "replacement/lru.h"
#include "replacement/nru.h"
#include "replacement/rrip.h"

namespace vantage {
namespace {

std::unique_ptr<Cache>
makeCache(std::unique_ptr<ReplPolicy> policy, std::size_t lines = 256,
          std::uint32_t ways = 4)
{
    return std::make_unique<Cache>(
        std::make_unique<SetAssocArray>(lines, ways, true, 0xabc),
        std::make_unique<Unpartitioned>(1, std::move(policy)), "c");
}

/** A small slot pool for exercising policies directly. */
SetAssocArray
makeSlots(std::size_t lines = 8, std::uint32_t ways = 8)
{
    return SetAssocArray(lines, ways, false);
}

// ---------------------------------------------------------------
// ExactLru
// ---------------------------------------------------------------

TEST(ExactLru, PrefersOlder)
{
    SetAssocArray arr = makeSlots();
    ExactLru lru;
    lru.onInsert(arr, 0);
    lru.onInsert(arr, 1);
    EXPECT_TRUE(lru.prefer(arr, 0, 1));
    lru.onHit(arr, 0);
    EXPECT_TRUE(lru.prefer(arr, 1, 0));
}

TEST(ExactLru, PriorityOrdersByAge)
{
    SetAssocArray arr = makeSlots();
    ExactLru lru;
    lru.onInsert(arr, 0);
    lru.onInsert(arr, 1);
    lru.onInsert(arr, 2);
    EXPECT_GT(lru.priority(arr, 0), lru.priority(arr, 1));
    EXPECT_GT(lru.priority(arr, 1), lru.priority(arr, 2));
}

TEST(ExactLru, CacheEvictsLeastRecentlyUsed)
{
    // Fully associative via 1 set: 4 ways, 4 lines.
    auto cache = makeCache(std::make_unique<ExactLru>(), 4, 4);
    for (Addr a = 1; a <= 4; ++a) {
        cache->access(a, 0);
    }
    cache->access(1, 0); // Refresh 1; LRU is now 2.
    cache->access(5, 0); // Evicts 2.
    EXPECT_TRUE(cache->contains(1));
    EXPECT_FALSE(cache->contains(2));
    EXPECT_TRUE(cache->contains(5));
}

// ---------------------------------------------------------------
// CoarseLru
// ---------------------------------------------------------------

TEST(CoarseLru, TimestampAdvancesEverySixteenth)
{
    SetAssocArray arr = makeSlots();
    CoarseLru lru(160); // Tick period = 10 accesses.
    const std::uint8_t t0 = lru.currentTimestamp();
    for (int i = 0; i < 10; ++i) {
        lru.onInsert(arr, 7); // Scratch slot.
    }
    EXPECT_EQ(lru.currentTimestamp(),
              static_cast<std::uint8_t>(t0 + 1));
}

TEST(CoarseLru, PrefersLargerAge)
{
    SetAssocArray arr = makeSlots();
    CoarseLru lru(16); // Tick every access.
    lru.onInsert(arr, 0); // Old line.
    for (int i = 0; i < 50; ++i) {
        lru.onInsert(arr, 7); // Scratch slot.
    }
    lru.onInsert(arr, 1); // New line.
    EXPECT_TRUE(lru.prefer(arr, 0, 1));
    EXPECT_GT(lru.priority(arr, 0), lru.priority(arr, 1));
}

TEST(CoarseLru, WrapAroundStillOrdersRecentPairs)
{
    SetAssocArray arr = makeSlots();
    CoarseLru lru(16);
    // Push the timestamp through several wraparounds.
    for (int i = 0; i < 1000; ++i) {
        lru.onInsert(arr, 7);
    }
    lru.onInsert(arr, 0); // a
    for (int i = 0; i < 20; ++i) {
        lru.onInsert(arr, 7);
    }
    lru.onInsert(arr, 1); // b
    EXPECT_TRUE(lru.prefer(arr, 0, 1));
}

TEST(CoarseLru, ApproximatesLruInCache)
{
    // Working set just over capacity: LRU-ish behavior means very few
    // hits; a small hot set re-accessed often keeps hitting.
    auto cache = makeCache(std::make_unique<CoarseLru>(256), 256, 4);
    Rng rng(3);
    for (int i = 0; i < 20000; ++i) {
        cache->access(1000 + rng.range(64), 0); // Hot set, 64 lines.
        cache->access(2000 + rng.range(4096), 0); // Churn.
    }
    cache->resetStats();
    for (int i = 0; i < 2000; ++i) {
        cache->access(1000 + rng.range(64), 0);
    }
    const auto &stats = cache->partAccessStats(0);
    EXPECT_GT(static_cast<double>(stats.hits) /
                  static_cast<double>(stats.accesses()),
              0.8);
}

// ---------------------------------------------------------------
// RRIP family
// ---------------------------------------------------------------

TEST(Srrip, InsertsAtLongHitsToZero)
{
    SetAssocArray arr = makeSlots();
    Srrip policy;
    policy.onInsert(arr, 0);
    EXPECT_EQ(arr.line(0).rank, RripBase::kLong);
    policy.onHit(arr, 0);
    EXPECT_EQ(arr.line(0).rank, 0);
}

TEST(Srrip, VictimIsMaxRrpvAndNeighborhoodAges)
{
    SetAssocArray arr(4, 4, false);
    CandidateBuf cands;
    arr.candidates(0, cands);
    for (std::uint32_t i = 0; i < 4; ++i) {
        arr.replace(static_cast<Addr>(i * 4), cands, i);
        arr.line(cands[i].slot).rank = static_cast<std::uint8_t>(i);
    }
    Srrip policy;
    const std::int32_t victim = policy.selectVictim(arr, cands);
    EXPECT_EQ(victim, 3);
    // All candidates aged by 7 - 3 = 4.
    EXPECT_EQ(arr.line(cands[0].slot).rank, 4);
    EXPECT_EQ(arr.line(cands[2].slot).rank, 6);
    EXPECT_EQ(arr.line(cands[3].slot).rank, 7);
}

TEST(Srrip, ScanResistance)
{
    // A hot working set plus a one-shot scan: SRRIP should keep the
    // hot set (scan lines enter at RRPV 6 and get evicted first).
    auto cache = makeCache(std::make_unique<Srrip>(), 256, 16);
    Rng rng(5);
    // Establish the hot set with reuse.
    for (int i = 0; i < 8000; ++i) {
        cache->access(1000 + rng.range(128), 0);
    }
    // Scan 4096 cold lines once.
    for (Addr a = 0; a < 4096; ++a) {
        cache->access(100000 + a, 0);
    }
    cache->resetStats();
    for (int i = 0; i < 2000; ++i) {
        cache->access(1000 + rng.range(128), 0);
    }
    const auto &stats = cache->partAccessStats(0);
    EXPECT_GT(static_cast<double>(stats.hits) /
                  static_cast<double>(stats.accesses()),
              0.5);
}

TEST(Brrip, MostInsertionsAreDistant)
{
    SetAssocArray arr = makeSlots();
    Brrip policy(123);
    int distant = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        policy.onInsert(arr, 0);
        if (arr.line(0).rank == RripBase::kDistant) ++distant;
    }
    EXPECT_NEAR(static_cast<double>(distant) / n, 31.0 / 32.0, 0.01);
}

TEST(Drrip, DuelConvergesToBrripUnderThrash)
{
    // Thrashing working set (larger than cache): BRRIP wins the duel.
    auto cache = makeCache(std::make_unique<Drrip>(512, 16, 7), 512, 16);
    auto &drrip = static_cast<Drrip &>(
        static_cast<Unpartitioned &>(cache->scheme()).policy());
    for (int round = 0; round < 200; ++round) {
        for (Addr a = 0; a < 2048; ++a) {
            cache->access(a, 0);
        }
    }
    EXPECT_TRUE(drrip.followersUseBrrip());
}

TEST(Drrip, DuelPrefersSrripUnderReuse)
{
    auto cache = makeCache(std::make_unique<Drrip>(512, 16, 9), 512, 16);
    auto &drrip = static_cast<Drrip &>(
        static_cast<Unpartitioned &>(cache->scheme()).policy());
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        cache->access(rng.range(256), 0); // Fits comfortably.
    }
    EXPECT_FALSE(drrip.followersUseBrrip());
}

TEST(TaDrrip, PerPartitionInsertion)
{
    SetAssocArray arr = makeSlots();
    TaDrrip policy(2, 512, 16, 13);
    arr.line(0).part = 0;
    arr.line(0).addr = 0x123;
    policy.onInsert(arr, 0);
    EXPECT_TRUE(arr.line(0).rank == RripBase::kLong ||
                arr.line(0).rank == RripBase::kDistant);
    arr.line(1).part = 1;
    arr.line(1).addr = 0x456;
    policy.onInsert(arr, 1);
    EXPECT_TRUE(arr.line(1).rank == RripBase::kLong ||
                arr.line(1).rank == RripBase::kDistant);
}

TEST(TaDrripDeath, BadPartitionPanics)
{
    SetAssocArray arr = makeSlots();
    TaDrrip policy(2, 512, 16, 13);
    arr.line(0).part = 5;
    arr.line(0).addr = 1;
    EXPECT_DEATH(policy.onInsert(arr, 0), "out of range");
}

// ---------------------------------------------------------------
// NRU / RandomRepl
// ---------------------------------------------------------------

TEST(Nru, EvictsNotRecentlyUsedFirst)
{
    SetAssocArray arr(4, 4, false);
    CandidateBuf cands;
    arr.candidates(0, cands);
    for (std::uint32_t i = 0; i < 4; ++i) {
        arr.replace(static_cast<Addr>(i * 4), cands, i);
        arr.line(cands[i].slot).rank = i == 2 ? 0 : 1;
    }
    Nru policy;
    EXPECT_EQ(policy.selectVictim(arr, cands), 2);
}

TEST(Nru, ClearsNeighborhoodWhenAllUsed)
{
    SetAssocArray arr(4, 4, false);
    CandidateBuf cands;
    arr.candidates(0, cands);
    for (std::uint32_t i = 0; i < 4; ++i) {
        arr.replace(static_cast<Addr>(i * 4), cands, i);
        arr.line(cands[i].slot).rank = 1;
    }
    Nru policy;
    EXPECT_EQ(policy.selectVictim(arr, cands), 0);
    // All other candidates were aged to not-recently-used.
    EXPECT_EQ(arr.line(cands[1].slot).rank, 0);
    EXPECT_EQ(arr.line(cands[3].slot).rank, 0);
}

TEST(Nru, KeepsHotWorkingSet)
{
    auto cache = makeCache(std::make_unique<Nru>(), 256, 16);
    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
        cache->access(1000 + rng.range(64), 0); // Hot.
        cache->access(5000 + rng.range(2048), 0); // Churn.
    }
    cache->resetStats();
    for (int i = 0; i < 2000; ++i) {
        cache->access(1000 + rng.range(64), 0);
    }
    const auto &stats = cache->partAccessStats(0);
    EXPECT_GT(static_cast<double>(stats.hits) /
                  static_cast<double>(stats.accesses()),
              0.6);
}

TEST(RandomRepl, DrawsAreSpreadAcrossCandidates)
{
    SetAssocArray arr(16, 16, false);
    CandidateBuf cands;
    arr.candidates(0, cands);
    for (std::uint32_t i = 0; i < 16; ++i) {
        arr.replace(static_cast<Addr>(i * 1), cands, i);
    }
    RandomRepl policy(7);
    std::vector<int> counts(16, 0);
    for (int i = 0; i < 16000; ++i) {
        ++counts[policy.selectVictim(arr, cands)];
    }
    for (const int c : counts) {
        EXPECT_NEAR(c, 1000, 250);
    }
}

// ---------------------------------------------------------------
// LFU
// ---------------------------------------------------------------

TEST(Lfu, PrefersLessFrequent)
{
    SetAssocArray arr = makeSlots();
    Lfu lfu;
    lfu.onInsert(arr, 0); // Hot.
    lfu.onInsert(arr, 1); // Cold.
    for (int i = 0; i < 5; ++i) {
        lfu.onHit(arr, 0);
    }
    EXPECT_TRUE(lfu.prefer(arr, 1, 0));
    EXPECT_GT(lfu.priority(arr, 1), lfu.priority(arr, 0));
}

TEST(Lfu, CounterSaturates)
{
    SetAssocArray arr = makeSlots();
    Lfu lfu;
    lfu.onInsert(arr, 0);
    for (int i = 0; i < 1000; ++i) {
        lfu.onHit(arr, 0);
    }
    EXPECT_EQ(arr.line(0).rank, 255);
}

} // namespace
} // namespace vantage

/**
 * @file
 * Scalar-vs-SIMD parity tests.
 *
 * Two layers: (1) randomized kernel-level parity — every dispatched
 * kernel, driven over fuzzed hot/cold planes and candidate lists at
 * every dispatch level this host can run, must return exactly what
 * the scalar reference returns (ties included); (2) whole-simulation
 * parity — full CmpSim runs re-executed at each level must produce
 * bit-identical access digests. Together with the pinned golden
 * digests (which CI runs under VANTAGE_SIMD=scalar and =avx2) this
 * pins the digest-neutrality contract of the vector kernels.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "array/set_assoc.h"
#include "array/zarray.h"
#include "common/digest.h"
#include "common/hp_alloc.h"
#include "common/rng.h"
#include "sim/experiment.h"
#include "simd/kernels.h"
#include "simd/simd.h"
#include "workload/mixes.h"

namespace vantage {
namespace {

std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> out;
    for (const simd::Level lvl :
         {simd::Level::Scalar, simd::Level::Avx2, simd::Level::Neon}) {
        if (simd::opsFor(lvl) != nullptr) {
            out.push_back(lvl);
        }
    }
    return out;
}

/** Restore the startup dispatch when a test body returns. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(simd::level()) {}
    ~LevelGuard() { simd::setLevelForTest(saved_); }

  private:
    simd::Level saved_;
};

/**
 * A fuzzed hot/cold plane plus a candidate list of unique slots —
 * the invariant every array upholds (set-associative sets are
 * distinct ways, zcache walks dedup via epoch stamps, the random
 * array rejects repeats).
 */
struct FuzzPlane
{
    std::vector<Line> lines;
    std::vector<LineCold> cold;
    CandidateBuf cands;

    FuzzPlane(Rng &rng, std::uint32_t num_lines, std::uint32_t n)
        : lines(num_lines), cold(num_lines)
    {
        for (std::uint32_t i = 0; i < num_lines; ++i) {
            const std::uint32_t kind = rng.range(8);
            if (kind == 0) {
                lines[i].invalidate();
            } else if (kind <= 2) {
                lines[i].addr = rng.next() | 1; // Never kInvalidAddr.
                lines[i].part = kUnmanagedPart;
                // Tiny rank range to force age ties.
                lines[i].rank =
                    static_cast<std::uint8_t>(rng.range(5));
            } else {
                lines[i].addr = rng.next() | 1;
                lines[i].part = static_cast<PartId>(rng.range(4));
                lines[i].rank =
                    static_cast<std::uint8_t>(rng.range(5));
            }
            // Small stamp range to force lastAccess ties.
            cold[i].lastAccess = rng.range(7);
            cold[i].dirty = rng.range(2);
        }
        std::vector<LineId> slots(num_lines);
        for (std::uint32_t i = 0; i < num_lines; ++i) {
            slots[i] = i;
        }
        // Partial Fisher-Yates: n distinct random slots.
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t j =
                i + static_cast<std::uint32_t>(
                        rng.range(num_lines - i));
            std::swap(slots[i], slots[j]);
            cands.push_back({slots[i], -1});
        }
    }
};

TEST(SimdKernelParity, FindTagMatchesScalarAtEveryLevel)
{
    Rng rng(0xf1a9);
    for (const simd::Level lvl : availableLevels()) {
        const simd::Ops &ops = *simd::opsFor(lvl);
        for (int iter = 0; iter < 200; ++iter) {
            const std::uint32_t n =
                1 + static_cast<std::uint32_t>(rng.range(64));
            FuzzPlane plane(rng, 256, n);
            // Probe a resident tag, a missing tag, and every way in
            // between: sometimes plant the probe (possibly twice, to
            // pin first-match semantics).
            Addr addr = rng.next() | 1;
            if (rng.range(2) == 0) {
                plane.lines[rng.range(n)].addr = addr;
            }
            if (rng.range(4) == 0) {
                plane.lines[rng.range(n)].addr = addr;
            }
            EXPECT_EQ(
                ops.findTag(plane.lines.data(), n, addr),
                simd::scalar::findTag(plane.lines.data(), n, addr))
                << "level " << simd::levelName(lvl) << " iter "
                << iter;
        }
    }
}

TEST(SimdKernelParity, FindTagAtMatchesScalarAtEveryLevel)
{
    Rng rng(0xf1b0);
    for (const simd::Level lvl : availableLevels()) {
        const simd::Ops &ops = *simd::opsFor(lvl);
        for (int iter = 0; iter < 200; ++iter) {
            const std::uint32_t n =
                1 + static_cast<std::uint32_t>(rng.range(16));
            FuzzPlane plane(rng, 512, n);
            std::vector<LineId> slots;
            for (std::uint32_t i = 0; i < n; ++i) {
                slots.push_back(plane.cands[i].slot);
            }
            Addr addr = rng.next() | 1;
            if (rng.range(2) == 0) {
                plane.lines[slots[rng.range(n)]].addr = addr;
            }
            EXPECT_EQ(ops.findTagAt(plane.lines.data(), slots.data(),
                                    n, addr),
                      simd::scalar::findTagAt(plane.lines.data(),
                                              slots.data(), n, addr))
                << "level " << simd::levelName(lvl) << " iter "
                << iter;
        }
    }
}

TEST(SimdKernelParity, ClassifyMatchesScalarAtEveryLevel)
{
    Rng rng(0xc1a5);
    for (const simd::Level lvl : availableLevels()) {
        const simd::Ops &ops = *simd::opsFor(lvl);
        for (int iter = 0; iter < 300; ++iter) {
            const std::uint32_t n =
                1 + static_cast<std::uint32_t>(rng.range(64));
            FuzzPlane plane(rng, 512, n);
            std::uint32_t parts_v[CandidateBuf::kCapacity];
            std::uint8_t ranks_v[CandidateBuf::kCapacity];
            std::uint64_t valid_v = 0, unman_v = 0;
            std::uint32_t parts_s[CandidateBuf::kCapacity];
            std::uint8_t ranks_s[CandidateBuf::kCapacity];
            std::uint64_t valid_s = 0, unman_s = 0;
            ops.classify(plane.lines.data(), plane.cands.data(), n,
                         parts_v, ranks_v, &valid_v, &unman_v);
            simd::scalar::classify(plane.lines.data(),
                                   plane.cands.data(), n, parts_s,
                                   ranks_s, &valid_s, &unman_s);
            EXPECT_EQ(valid_v, valid_s)
                << "level " << simd::levelName(lvl);
            EXPECT_EQ(unman_v, unman_s)
                << "level " << simd::levelName(lvl);
            EXPECT_EQ(0, std::memcmp(parts_v, parts_s,
                                     n * sizeof(std::uint32_t)));
            EXPECT_EQ(0, std::memcmp(ranks_v, ranks_s, n));
        }
    }
}

TEST(SimdKernelParity, LruFoldsMatchScalarAtEveryLevel)
{
    Rng rng(0x17c4);
    for (const simd::Level lvl : availableLevels()) {
        const simd::Ops &ops = *simd::opsFor(lvl);
        for (int iter = 0; iter < 300; ++iter) {
            const std::uint32_t n =
                1 + static_cast<std::uint32_t>(rng.range(64));
            FuzzPlane plane(rng, 512, n);
            const std::uint8_t ts =
                static_cast<std::uint8_t>(rng.range(256));
            EXPECT_EQ(ops.oldestRank(plane.lines.data(),
                                     plane.cands.data(), n, ts),
                      simd::scalar::oldestRank(plane.lines.data(),
                                               plane.cands.data(), n,
                                               ts))
                << "level " << simd::levelName(lvl) << " iter "
                << iter;
            EXPECT_EQ(
                ops.minLastAccess(plane.cold.data(),
                                  plane.cands.data(), n),
                simd::scalar::minLastAccess(plane.cold.data(),
                                            plane.cands.data(), n))
                << "level " << simd::levelName(lvl) << " iter "
                << iter;
        }
    }
}

TEST(SimdKernelParity, XorRows8MatchesScalarAtEveryLevel)
{
    Rng rng(0x8a54);
    std::vector<std::uint32_t> tables(8 * 2048);
    for (auto &w : tables) {
        w = static_cast<std::uint32_t>(rng.next());
    }
    for (const simd::Level lvl : availableLevels()) {
        const simd::Ops &ops = *simd::opsFor(lvl);
        for (int iter = 0; iter < 500; ++iter) {
            const Addr addr = rng.next();
            std::uint32_t pos_v[8];
            std::uint32_t pos_s[8];
            ops.xorRows8(tables.data(), addr, pos_v);
            simd::scalar::xorRows8(tables.data(), addr, pos_s);
            EXPECT_EQ(0, std::memcmp(pos_v, pos_s, sizeof(pos_v)))
                << "level " << simd::levelName(lvl) << " iter "
                << iter;
        }
    }
}

TEST(SimdParity, HotPlanesAreCacheLineAligned)
{
    SetAssocArray sa(1024, 16);
    ZArray za(4096, 4, 52);
    for (const CacheArray *array :
         {static_cast<const CacheArray *>(&sa),
          static_cast<const CacheArray *>(&za)}) {
        EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(
                          array->linesData()) %
                          kPlaneAlignment);
        EXPECT_EQ(0u, reinterpret_cast<std::uintptr_t>(
                          array->coldData()) %
                          kPlaneAlignment);
    }
}

/**
 * The W == 8 batched hash feeds lookup and the walk through the
 * dispatched xorRows8 kernel: positions and candidate lists of an
 * 8-way zcache must be identical at every level.
 */
TEST(SimdParity, ZArrayWay8WalkIsLevelInvariant)
{
    LevelGuard guard;
    Rng rng(0x2a8);
    ZArray za(8192, 8, 8);
    for (int iter = 0; iter < 2000; ++iter) {
        const Addr addr = rng.next() | 1;
        ASSERT_TRUE(simd::setLevelForTest(simd::Level::Scalar));
        const LineId hit_s = za.lookup(addr);
        CandidateBuf cands_s;
        za.candidates(addr, cands_s);
        for (const simd::Level lvl : availableLevels()) {
            ASSERT_TRUE(simd::setLevelForTest(lvl));
            EXPECT_EQ(hit_s, za.lookup(addr))
                << "level " << simd::levelName(lvl);
            CandidateBuf cands_v;
            za.candidates(addr, cands_v);
            ASSERT_EQ(cands_s.size(), cands_v.size());
            for (std::uint32_t i = 0; i < cands_s.size(); ++i) {
                EXPECT_EQ(cands_s[i].slot, cands_v[i].slot);
                EXPECT_EQ(cands_s[i].parent, cands_v[i].parent);
            }
        }
    }
}

std::uint64_t
runDigest(SchemeKind scheme, ArrayKind array)
{
    L2Spec spec;
    spec.scheme = scheme;
    spec.array = array;
    spec.lines = 8192;
    spec.numPartitions = 4;
    spec.vantage.unmanagedFraction = 0.05;
    spec.vantage.maxAperture = 0.4;
    spec.vantage.slack = 0.1;

    CmpConfig cfg = CmpConfig::small4Core();
    if (scheme == SchemeKind::VantageDrrip) {
        cfg.ucp.rripMonitors = true; // Dueling needs RRIP monitors.
    }
    const auto apps = makeMix(2, 1, 0);
    CmpSim sim(cfg, apps, buildL2(spec), /*seed=*/3);
    AccessDigest digest;
    sim.sharedL2().attachDigest(&digest);
    sim.warmup(10'000);
    sim.run(60'000);
    sim.sharedL2().finalizeDigest();
    return digest.value();
}

/**
 * Whole-simulation digest parity: the exact stream the golden suite
 * pins, in miniature, re-run at every dispatch level available here.
 * Covers the integrated paths the kernel tests cannot: lookup memo
 * reuse, the selectVictim serial-commit ordering, and LRU folds
 * feeding real evictions.
 */
TEST(SimdParity, SimulationDigestsAreLevelInvariant)
{
    LevelGuard guard;
    const struct
    {
        SchemeKind scheme;
        ArrayKind array;
    } points[] = {
        {SchemeKind::Vantage, ArrayKind::Z4_52},
        {SchemeKind::Vantage, ArrayKind::SA16},
        {SchemeKind::UnpartLru, ArrayKind::SA16},
        {SchemeKind::UnpartLru, ArrayKind::Z4_52},
        {SchemeKind::VantageDrrip, ArrayKind::Z4_16},
    };
    for (const auto &pt : points) {
        ASSERT_TRUE(simd::setLevelForTest(simd::Level::Scalar));
        const std::uint64_t want = runDigest(pt.scheme, pt.array);
        EXPECT_NE(0u, want);
        for (const simd::Level lvl : availableLevels()) {
            ASSERT_TRUE(simd::setLevelForTest(lvl));
            EXPECT_EQ(want, runDigest(pt.scheme, pt.array))
                << schemeKindName(pt.scheme) << "/"
                << arrayKindName(pt.array) << " at level "
                << simd::levelName(lvl);
        }
    }
}

} // namespace
} // namespace vantage

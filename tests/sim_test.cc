/**
 * @file
 * End-to-end tests of the CMP simulator and experiment plumbing.
 */

#include <gtest/gtest.h>

#include "core/model.h"
#include "sim/experiment.h"
#include "workload/mixes.h"
#include "workload/profiles.h"

namespace vantage {
namespace {

RunScale
tinyScale()
{
    RunScale s;
    s.warmupAccesses = 5'000;
    s.instructions = 150'000;
    return s;
}

CmpConfig
tinyMachine()
{
    CmpConfig cfg = CmpConfig::small4Core();
    cfg.repartitionCycles = 100'000;
    return cfg;
}

L2Spec
specFor(SchemeKind scheme, ArrayKind array, std::uint32_t cores,
        std::uint64_t lines)
{
    L2Spec spec;
    spec.scheme = scheme;
    spec.array = array;
    spec.numPartitions = cores;
    spec.lines = lines;
    spec.vantage.unmanagedFraction = 0.05;
    spec.vantage.maxAperture = 0.5;
    spec.vantage.slack = 0.1;
    return spec;
}

TEST(Experiment, SpecNames)
{
    EXPECT_EQ(specFor(SchemeKind::Vantage, ArrayKind::Z4_52, 4, 1024)
                  .name(),
              "Vantage-Z4/52");
    EXPECT_EQ(specFor(SchemeKind::Pipp, ArrayKind::SA16, 4, 1024)
                  .name(),
              "PIPP-SA16");
}

TEST(Experiment, BuildAllConfigs)
{
    for (const auto scheme :
         {SchemeKind::UnpartLru, SchemeKind::UnpartSrrip,
          SchemeKind::UnpartDrrip, SchemeKind::UnpartTaDrrip,
          SchemeKind::WayPart, SchemeKind::Pipp, SchemeKind::Vantage,
          SchemeKind::VantageDrrip, SchemeKind::VantageOracle}) {
        for (const auto array :
             {ArrayKind::Z4_52, ArrayKind::SA16, ArrayKind::SA64}) {
            if ((scheme == SchemeKind::WayPart ||
                 scheme == SchemeKind::Pipp) &&
                array == ArrayKind::Z4_52) {
                continue; // Way schemes target SA arrays.
            }
            auto cache = buildL2(specFor(scheme, array, 4, 4096));
            ASSERT_NE(cache, nullptr);
            EXPECT_EQ(cache->scheme().numPartitions(), 4u);
        }
    }
}

TEST(Experiment, RunScaleEnvOverride)
{
    setenv("VANTAGE_INSTRS", "12345", 1);
    setenv("VANTAGE_MIX_SEEDS", "7", 1);
    const RunScale scale = RunScale::fromEnv();
    EXPECT_EQ(scale.instructions, 12345u);
    EXPECT_EQ(scale.mixSeedsPerClass, 7u);
    unsetenv("VANTAGE_INSTRS");
    unsetenv("VANTAGE_MIX_SEEDS");
}

TEST(CmpSim, RunsAndProducesSaneIpc)
{
    const CmpConfig cfg = tinyMachine();
    const auto apps = makeMix(34, 1, 0); // All-insensitive mix.
    const MixResult r =
        runMix(cfg, specFor(SchemeKind::UnpartLru, ArrayKind::SA16, 4,
                            cfg.l2Lines()),
               apps, tinyScale(), "nnnn0");
    ASSERT_EQ(r.cores.size(), 4u);
    for (const auto &core : r.cores) {
        EXPECT_GT(core.ipc(), 0.05);
        EXPECT_LE(core.ipc(), 1.0);
        EXPECT_EQ(core.instructions, 150'000u);
    }
    EXPECT_NEAR(r.throughput,
                r.cores[0].ipc() + r.cores[1].ipc() +
                    r.cores[2].ipc() + r.cores[3].ipc(),
                1e-9);
}

TEST(CmpSim, InsensitiveAppsBarelyMissL2)
{
    const CmpConfig cfg = tinyMachine();
    const auto apps = makeMix(34, 1, 0); // nnnn.
    const MixResult r =
        runMix(cfg, specFor(SchemeKind::UnpartLru, ArrayKind::SA16, 4,
                            cfg.l2Lines()),
               apps, tinyScale(), "nnnn0");
    for (const auto &core : r.cores) {
        EXPECT_LT(core.mpki(), 5.0)
            << "insensitive apps must stay under 5 L2 MPKI (Table 3)";
    }
}

TEST(CmpSim, StreamingAppsMissALot)
{
    const CmpConfig cfg = tinyMachine();
    const auto apps = makeMix(0, 1, 0); // ssss.
    const MixResult r =
        runMix(cfg, specFor(SchemeKind::UnpartLru, ArrayKind::SA16, 4,
                            cfg.l2Lines()),
               apps, tinyScale(), "ssss0");
    double total_mpki = 0.0;
    for (const auto &core : r.cores) {
        total_mpki += core.mpki();
    }
    EXPECT_GT(total_mpki / 4.0, 20.0);
}

TEST(CmpSim, DeterministicAcrossRuns)
{
    const CmpConfig cfg = tinyMachine();
    const auto apps = makeMix(10, 1, 2);
    const L2Spec spec = specFor(SchemeKind::Vantage, ArrayKind::Z4_52,
                                4, cfg.l2Lines());
    const MixResult a = runMix(cfg, spec, apps, tinyScale(), "m", 5);
    const MixResult b = runMix(cfg, spec, apps, tinyScale(), "m", 5);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
    }
}

TEST(CmpSim, RepartitionCallbackFires)
{
    const CmpConfig cfg = tinyMachine();
    const auto apps = makeMix(5, 1, 0);
    CmpSim sim(cfg, apps,
               buildL2(specFor(SchemeKind::Vantage, ArrayKind::Z4_52,
                               4, cfg.l2Lines())));
    int repartitions = 0;
    sim.onRepartition = [&](Cycle) { ++repartitions; };
    sim.warmup(20'000);
    sim.run(200'000);
    EXPECT_GT(repartitions, 2);
}

TEST(CmpSim, VantagePartitionSizesRespectTargets)
{
    const CmpConfig cfg = tinyMachine();
    // A mix with both thrashers and reusers stresses enforcement.
    const auto apps = makeMix(3, 1, 1); // sssn-ish class.
    CmpSim sim(cfg, apps,
               buildL2(specFor(SchemeKind::Vantage, ArrayKind::Z4_52,
                               4, cfg.l2Lines())));
    sim.warmup(50'000);
    sim.run(400'000);
    auto &ctl = static_cast<VantageController &>(sim.l2().scheme());
    // Individual partitions may legitimately sit above their target
    // mid-transient (the paper's Sec. 3.4: a just-downsized partition
    // drains at Amax). The controller's hard guarantee is aggregate:
    // the managed region as a whole can only outgrow its share by
    // the borrow + feedback-slack reserves, so the unmanaged region
    // never collapses.
    std::uint64_t total_managed = 0;
    for (PartId p = 0; p < 4; ++p) {
        total_managed += ctl.actualSize(p);
    }
    const double reserve =
        (model::worstCaseBorrow(0.5, 52) +
         model::aggregateOutgrowth(0.1, 0.5, 52)) *
        static_cast<double>(cfg.l2Lines());
    EXPECT_LE(static_cast<double>(total_managed),
              static_cast<double>(ctl.managedLines()) + reserve +
                  64.0);
    const auto &stats = ctl.stats();
    if (stats.evictions > 1000) {
        EXPECT_LT(static_cast<double>(stats.evictionsFromManaged) /
                      static_cast<double>(stats.evictions),
                  0.25);
    }
}

TEST(CmpSim, WeightedSpeedupComputes)
{
    const CmpConfig cfg = tinyMachine();
    const auto apps = makeMix(20, 1, 0);
    CmpSim sim(cfg, apps,
               buildL2(specFor(SchemeKind::UnpartLru, ArrayKind::SA16,
                               4, cfg.l2Lines())));
    sim.warmup(5'000);
    sim.run(100'000);
    const double ws = sim.weightedSpeedup({1.0, 1.0, 1.0, 1.0});
    EXPECT_GT(ws, 0.0);
    EXPECT_NEAR(ws, sim.throughput(), 1e-9);
}

} // namespace
} // namespace vantage

/**
 * @file
 * Sharded-execution parity tests: a banked simulation run with any
 * number of bank workers must be bit-identical to the serial run —
 * same per-core results, writebacks, partition sizes, and access
 * digest. This is the in-process counterpart of the golden-digest
 * parity check (tests/golden) and runs under TSAN via the
 * `concurrency` label.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/digest.h"
#include "sim/experiment.h"
#include "workload/mixes.h"

namespace vantage {
namespace {

struct ShardRun
{
    std::vector<CoreResult> cores;
    std::uint64_t writebacks = 0;
    std::uint64_t digest = 0;
    std::vector<std::uint64_t> actual;
};

L2Spec
smallBankedSpec(SchemeKind scheme)
{
    L2Spec spec;
    spec.scheme = scheme;
    spec.array = ArrayKind::Z4_52;
    spec.numPartitions = 4;
    spec.lines = 4096;
    spec.vantage.unmanagedFraction = 0.05;
    spec.vantage.maxAperture = 0.4;
    spec.vantage.slack = 0.1;
    return spec;
}

ShardRun
runSharded(SchemeKind scheme, std::uint32_t banks,
           std::uint32_t workers)
{
    CmpConfig cfg = CmpConfig::small4Core();
    cfg.repartitionCycles = 100'000; // Several epoch barriers.
    if (scheme == SchemeKind::VantageDrrip) {
        cfg.ucp.rripMonitors = true; // Dueling needs RRIP monitors.
    }
    const auto apps = makeMix(2, 1, 0); // Mixed-sensitivity apps.

    CmpSim sim(cfg, apps, buildBankedL2(smallBankedSpec(scheme), banks),
               /*seed=*/1, workers);
    AccessDigest digest;
    sim.sharedL2().attachDigest(&digest);
    sim.warmup(10'000);
    sim.sharedL2().resetStats();
    sim.run(120'000);

    ShardRun out;
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        out.cores.push_back(sim.result(c));
    }
    out.writebacks = sim.sharedL2().writebacks();
    sim.sharedL2().finalizeDigest();
    out.digest = digest.value();
    for (PartId p = 0; p < sim.sharedL2().numPartitions(); ++p) {
        out.actual.push_back(sim.sharedL2().actualSize(p));
    }
    return out;
}

void
expectSameRun(const ShardRun &a, const ShardRun &b,
              std::uint32_t workers)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions)
            << "core " << c << " workers " << workers;
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles)
            << "core " << c << " workers " << workers;
        EXPECT_EQ(a.cores[c].l2Accesses, b.cores[c].l2Accesses)
            << "core " << c << " workers " << workers;
        EXPECT_EQ(a.cores[c].l2Misses, b.cores[c].l2Misses)
            << "core " << c << " workers " << workers;
    }
    EXPECT_EQ(a.writebacks, b.writebacks) << "workers " << workers;
    EXPECT_EQ(a.actual, b.actual) << "workers " << workers;
    EXPECT_EQ(a.digest, b.digest) << "workers " << workers;
}

TEST(ShardSim, VantageParityAcrossWorkerCounts)
{
    const ShardRun serial =
        runSharded(SchemeKind::Vantage, 4, 0);
    EXPECT_NE(serial.digest, 0u);
    for (const std::uint32_t workers : {1u, 2u, 3u}) {
        const ShardRun sharded =
            runSharded(SchemeKind::Vantage, 4, workers);
        expectSameRun(serial, sharded, workers);
    }
}

TEST(ShardSim, VantageDrripParityExercisesBrripBarrier)
{
    // Vantage-DRRIP repartitions also push per-partition BRRIP
    // choices into every bank, exercising the epoch barrier before
    // applyBrrip.
    const ShardRun serial =
        runSharded(SchemeKind::VantageDrrip, 4, 0);
    for (const std::uint32_t workers : {1u, 3u}) {
        const ShardRun sharded =
            runSharded(SchemeKind::VantageDrrip, 4, workers);
        expectSameRun(serial, sharded, workers);
    }
}

TEST(ShardSim, WorkerCountEqualToBanksIsValid)
{
    const ShardRun serial = runSharded(SchemeKind::Vantage, 2, 0);
    const ShardRun sharded = runSharded(SchemeKind::Vantage, 2, 2);
    expectSameRun(serial, sharded, 2);
}

TEST(ShardSim, BankedSerialMatchesMonolithicSemantics)
{
    // Not a digest comparison against a flat cache (bank hashing
    // changes placement), but the sharded runtime must report the
    // same totals the serial banked run does even without a digest
    // attached.
    CmpConfig cfg = CmpConfig::small4Core();
    cfg.repartitionCycles = 100'000;
    const auto apps = makeMix(2, 1, 0);

    auto run = [&](std::uint32_t workers) {
        CmpSim sim(cfg, apps,
                   buildBankedL2(smallBankedSpec(SchemeKind::Vantage),
                                 4),
                   1, workers);
        sim.warmup(10'000);
        sim.sharedL2().resetStats();
        sim.run(60'000);
        return sim.sharedL2().totalStats();
    };
    const CacheAccessStats serial = run(0);
    const CacheAccessStats sharded = run(2);
    EXPECT_EQ(serial.hits, sharded.hits);
    EXPECT_EQ(serial.misses, sharded.misses);
}

} // namespace
} // namespace vantage

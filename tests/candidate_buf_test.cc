/**
 * @file
 * CandidateBuf and walk-shape tests.
 *
 * The miss path stores its candidate list in a fixed-capacity inline
 * buffer (array/candidate_buf.h); these tests pin the container
 * semantics, the overflow assert, and the shape of the lists the
 * arrays emit into it: a walk never exceeds numCandidates(), and on
 * a full array a Z4 walk's BFS levels hold exactly 4 / 12 / 36
 * candidates (the paper's Z4/4, Z4/16 and Z4/52 designs).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "array/candidate_buf.h"
#include "array/set_assoc.h"
#include "array/zarray.h"
#include "common/rng.h"

namespace vantage {
namespace {

TEST(CandidateBuf, StartsEmptyAndClears)
{
    CandidateBuf buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    buf.push_back({3, -1});
    buf.push_back({7, 0});
    EXPECT_FALSE(buf.empty());
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf[0].slot, 3u);
    EXPECT_EQ(buf[0].parent, -1);
    EXPECT_EQ(buf[1].slot, 7u);
    EXPECT_EQ(buf[1].parent, 0);
    buf.clear();
    EXPECT_TRUE(buf.empty());
}

TEST(CandidateBuf, IterationCoversExactlyTheContents)
{
    CandidateBuf buf;
    for (std::uint32_t i = 0; i < 10; ++i) {
        buf.push_back({i, static_cast<std::int32_t>(i) - 1});
    }
    std::uint32_t n = 0;
    for (const Candidate &c : buf) {
        EXPECT_EQ(c.slot, n);
        ++n;
    }
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(buf.end() - buf.begin(), 10);
}

TEST(CandidateBufDeath, OverflowAsserts)
{
    CandidateBuf buf;
    for (std::uint32_t i = 0; i < CandidateBuf::kCapacity; ++i) {
        buf.push_back({i, -1});
    }
    EXPECT_DEATH(buf.push_back({0, -1}), "overflow");
}

// ---------------------------------------------------------------
// Walk-shape properties.
// ---------------------------------------------------------------

/** BFS level of candidate i: root candidates are level 0. */
int
levelOf(const CandidateBuf &cands, std::uint32_t i)
{
    int level = 0;
    std::int32_t idx = cands[i].parent;
    while (idx >= 0) {
        ++level;
        idx = cands[idx].parent;
    }
    return level;
}

/** Fill `arr` completely with distinct addresses. */
void
fillArray(CacheArray &arr, Rng &rng)
{
    CandidateBuf cands;
    Addr next = 1;
    // Random inserts until every slot is valid; eviction of valid
    // lines is fine — only full occupancy matters here.
    for (int i = 0; i < 400000; ++i) {
        const Addr a = next++;
        if (arr.lookup(a) != kInvalidLine) {
            continue;
        }
        arr.candidates(a, cands);
        const auto victim = static_cast<std::int32_t>(
            rng.range(cands.size()));
        arr.replace(a, cands, victim);
        bool full = true;
        for (LineId s = 0; s < arr.numLines(); ++s) {
            if (!arr.line(s).valid()) {
                full = false;
                break;
            }
        }
        if (full) {
            return;
        }
    }
    FAIL() << "array never filled";
}

struct WalkShapeParam
{
    std::uint32_t ways;
    std::uint32_t cands;
};

class WalkShape : public ::testing::TestWithParam<WalkShapeParam>
{};

TEST_P(WalkShape, NeverExceedsNumCandidatesAndLevelsAreDense)
{
    const WalkShapeParam p = GetParam();
    ZArray arr(4096, p.ways, p.cands, 0x77);
    Rng rng(13);
    fillArray(arr, rng);

    CandidateBuf cands;
    int full_walks = 0;
    int exact_walks = 0;
    for (int i = 0; i < 2000; ++i) {
        const Addr a = 0x5000000ull + rng.range(1 << 20);
        arr.candidates(a, cands);
        ASSERT_LE(cands.size(), arr.numCandidates());
        ASSERT_GE(cands.size(), arr.numWays());

        // Parents must precede children; ways occupy disjoint slot
        // ranges, so the first level is always exactly W distinct
        // slots; deeper levels can only lose slots to dedup.
        std::vector<int> perLevel(8, 0);
        for (std::uint32_t j = 0; j < cands.size(); ++j) {
            ASSERT_LT(cands[j].parent, static_cast<std::int32_t>(j));
            const int lvl = levelOf(cands, j);
            ASSERT_LT(lvl, 8);
            ++perLevel[static_cast<std::size_t>(lvl)];
        }
        ASSERT_EQ(perLevel[0], static_cast<int>(p.ways));
        if (p.ways == 4) {
            ASSERT_LE(perLevel[1], 12);
            if (p.cands <= 16) {
                ASSERT_LE(perLevel[1], static_cast<int>(p.cands) - 4);
            }
        }

        if (cands.size() == arr.numCandidates()) {
            ++full_walks;
        }
        // Collision-free composition on W = 4: exactly 4 / 12 / 36
        // (each expanded head contributes W - 1 children).
        const bool exact =
            p.cands == 4
                ? perLevel[0] == 4
                : (p.cands == 16
                       ? perLevel[0] == 4 && perLevel[1] == 12
                       : perLevel[0] == 4 && perLevel[1] == 12 &&
                             perLevel[2] == 36);
        if (exact) {
            ++exact_walks;
        }
    }
    // On a full 4K-line array, dedup collisions that shrink a walk
    // or shift a candidate to a deeper level are rare: nearly every
    // walk reaches the full R, and most have the clean per-level
    // composition.
    EXPECT_GT(full_walks, 1800);
    EXPECT_GT(exact_walks, 1200);
}

INSTANTIATE_TEST_SUITE_P(
    ZWalks, WalkShape,
    ::testing::Values(WalkShapeParam{4, 4}, WalkShapeParam{4, 16},
                      WalkShapeParam{4, 52}),
    [](const ::testing::TestParamInfo<WalkShapeParam> &info) {
        return "Z" + std::to_string(info.param.ways) + "_" +
               std::to_string(info.param.cands);
    });

TEST(WalkShapeSetAssoc, EmitsExactlyTheSetWays)
{
    SetAssocArray arr(1024, 8, true, 0x3);
    Rng rng(17);
    CandidateBuf cands;
    for (int i = 0; i < 1000; ++i) {
        arr.candidates(rng.next(), cands);
        ASSERT_EQ(cands.size(), 8u);
        for (const Candidate &c : cands) {
            ASSERT_EQ(c.parent, -1);
        }
    }
}

} // namespace
} // namespace vantage

/**
 * @file
 * Tests for the Cache composition layer (array + scheme + stats).
 */

#include <gtest/gtest.h>

#include <memory>

#include "array/set_assoc.h"
#include "array/zarray.h"
#include "cache/cache.h"
#include "common/rng.h"
#include "core/vantage.h"
#include "partition/unpartitioned.h"
#include "replacement/lru.h"

namespace vantage {
namespace {

std::unique_ptr<Cache>
smallCache(std::uint32_t parts = 1)
{
    return std::make_unique<Cache>(
        std::make_unique<SetAssocArray>(64, 4, true, 0xfe),
        std::make_unique<Unpartitioned>(parts,
                                        std::make_unique<ExactLru>()),
        "test-cache");
}

TEST(Cache, MissThenHit)
{
    auto cache = smallCache();
    EXPECT_EQ(cache->access(0x10, 0), AccessResult::Miss);
    EXPECT_EQ(cache->access(0x10, 0), AccessResult::Hit);
    EXPECT_TRUE(cache->contains(0x10));
    EXPECT_FALSE(cache->contains(0x11));
}

TEST(Cache, StatsPerPartition)
{
    auto cache = smallCache(2);
    cache->access(1, 0);
    cache->access(1, 0);
    cache->access(2, 1);
    EXPECT_EQ(cache->partAccessStats(0).misses, 1u);
    EXPECT_EQ(cache->partAccessStats(0).hits, 1u);
    EXPECT_EQ(cache->partAccessStats(1).misses, 1u);
    const auto total = cache->totalStats();
    EXPECT_EQ(total.accesses(), 3u);
    EXPECT_NEAR(total.missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, ResetStatsZeroes)
{
    auto cache = smallCache();
    cache->access(1, 0);
    cache->resetStats();
    EXPECT_EQ(cache->totalStats().accesses(), 0u);
}

TEST(Cache, NameIsKept)
{
    auto cache = smallCache();
    EXPECT_EQ(cache->name(), "test-cache");
}

TEST(Cache, CapacityIsRespected)
{
    auto cache = smallCache();
    // Touch 10x capacity; residents never exceed line count.
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        cache->access(rng.range(640), 0);
    }
    std::uint64_t valid = 0;
    for (LineId s = 0; s < cache->array().numLines(); ++s) {
        if (cache->array().line(s).valid()) ++valid;
    }
    EXPECT_EQ(valid, 64u);
}

TEST(Cache, WorkingSetWithinCapacityStopsMissing)
{
    auto cache = smallCache();
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        cache->access(rng.range(32), 0);
    }
    cache->resetStats();
    for (int i = 0; i < 1000; ++i) {
        cache->access(rng.range(32), 0);
    }
    EXPECT_GT(static_cast<double>(cache->totalStats().hits) /
                  static_cast<double>(cache->totalStats().accesses()),
              0.97);
}

TEST(Cache, PartitionIdIsStampedOnInsert)
{
    auto cache = smallCache(2);
    cache->access(0x77, 1);
    const LineId slot = cache->array().lookup(0x77);
    ASSERT_NE(slot, kInvalidLine);
    EXPECT_EQ(cache->array().line(slot).part, 1u);
}

TEST(CacheDeath, OutOfRangePartitionPanics)
{
    auto cache = smallCache(2);
    EXPECT_DEATH(cache->access(1, 7), "out of range");
}

TEST(Cache, VantageOnZArrayEndToEnd)
{
    // Smoke test of the full paper stack: Z4/52 + Vantage.
    VantageConfig cfg;
    cfg.numPartitions = 2;
    cfg.unmanagedFraction = 0.15;
    auto cache = std::make_unique<Cache>(
        std::make_unique<ZArray>(4096, 4, 52, 0x31),
        std::make_unique<VantageController>(4096, cfg), "vz");
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        cache->access((1ull << 40) | (rng.next() >> 16), 0);
        cache->access((2ull << 40) | rng.range(1024), 1);
    }
    auto &ctl = static_cast<VantageController &>(cache->scheme());
    // Partition 1's working set fits under its target and hits.
    const auto &s1 = cache->partAccessStats(1);
    EXPECT_GT(static_cast<double>(s1.hits) /
                  static_cast<double>(s1.accesses()),
              0.9);
    // Sizes tracked.
    EXPECT_GT(ctl.actualSize(0), 0u);
    EXPECT_GE(ctl.actualSize(1), 1000u);
}

} // namespace
} // namespace vantage

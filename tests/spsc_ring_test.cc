/**
 * @file
 * SpscRing unit tests: FIFO order, capacity rounding, blocking
 * push/pop handoff, and a two-thread stress run that exercises the
 * wait/notify paths under TSAN.
 */

#include "common/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

using namespace vantage;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(9).capacity(), 16u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, SingleThreadFifoOrder)
{
    SpscRing<int> ring(8);
    EXPECT_EQ(ring.size(), 0u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(ring.tryPush(i));
    }
    // Full: the next push must fail without blocking.
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        int v = -1;
        EXPECT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    int v = -1;
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, WrapsAroundManyTimes)
{
    SpscRing<std::uint64_t> ring(4);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        EXPECT_TRUE(ring.tryPush(i));
        if (i % 3 == 0) {
            continue; // Let occupancy build up to force wraps.
        }
        std::uint64_t v = 0;
        while (ring.tryPop(v)) {
            EXPECT_EQ(v, expect++);
        }
    }
    std::uint64_t v = 0;
    while (ring.tryPop(v)) {
        EXPECT_EQ(v, expect++);
    }
    EXPECT_EQ(expect, 1000u);
}

TEST(SpscRing, BlockingHandoffAcrossThreads)
{
    // Tiny ring so the producer blocks in push() and the consumer
    // blocks in pop(); both sides must wake each other.
    SpscRing<int> ring(2);
    constexpr int kN = 10000;
    std::thread producer([&ring] {
        for (int i = 0; i < kN; ++i) {
            ring.push(i);
        }
    });
    for (int i = 0; i < kN; ++i) {
        int v = -1;
        ring.pop(v);
        ASSERT_EQ(v, i);
    }
    producer.join();
    EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, MixedTryAndBlockingStress)
{
    SpscRing<std::uint64_t> ring(16);
    constexpr std::uint64_t kN = 200000;
    std::thread producer([&ring] {
        for (std::uint64_t i = 0; i < kN; ++i) {
            if (!ring.tryPush(i)) {
                ring.push(i); // Fall back to blocking when full.
            }
        }
    });
    std::uint64_t expect = 0;
    std::uint64_t sum = 0;
    while (expect < kN) {
        std::uint64_t v = 0;
        if (!ring.tryPop(v)) {
            ring.pop(v);
        }
        ASSERT_EQ(v, expect);
        sum += v;
        ++expect;
    }
    producer.join();
    EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(SpscRing, MovesNonTrivialPayloads)
{
    SpscRing<std::vector<int>> ring(4);
    ring.push(std::vector<int>{1, 2, 3});
    std::vector<int> out;
    ring.pop(out);
    EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

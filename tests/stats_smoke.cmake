# End-to-end observability smoke test, driven from ctest.
#
# Runs a short instrumented vsim mix, then validates the emitted JSON
# with scripts/check_json.py and sanity-checks the trace CSV. Invoked
# with -DVSIM=... -DPYTHON=... -DCHECKER=... -DWORKDIR=...

set(stats_json "${WORKDIR}/smoke.stats.json")
set(trace_csv "${WORKDIR}/smoke.trace.csv")
file(REMOVE "${stats_json}" "${trace_csv}")

execute_process(
    COMMAND "${VSIM}" --mix 0 --instrs 30000 --warmup 2000
        --stats-out "${stats_json}" --trace-out "${trace_csv}"
        --stats-period 1000
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "vsim exited with ${rc}")
endif()

execute_process(
    COMMAND "${PYTHON}" "${CHECKER}"
        --require cache.l2.vantage --require run.config
        "${stats_json}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "check_json.py rejected ${stats_json}")
endif()

# The trace must have the header plus at least one sample row.
file(STRINGS "${trace_csv}" trace_lines)
list(LENGTH trace_lines n_lines)
if(n_lines LESS 2)
    message(FATAL_ERROR "trace CSV ${trace_csv} has no samples")
endif()
list(GET trace_lines 0 header)
if(NOT header MATCHES "^access,part,target,actual,aperture")
    message(FATAL_ERROR "unexpected trace header: ${header}")
endif()

/**
 * @file
 * Deterministic configuration x access-stream fuzzer.
 *
 * Each iteration derives a full cache configuration (scheme, array,
 * size, partition count, Vantage knobs, reallocation cadence) and a
 * synthetic access stream from a single 64-bit seed, replays the
 * stream against a freshly built cache, and runs the structural
 * invariant checks (common/check.h) every --check-every accesses.
 *
 * On a violation the driver minimizes before reporting: it replays
 * the same case with per-access checking to find the earliest failing
 * access, then retries with reallocation disabled to learn whether
 * repartitioning is part of the trigger. The report is a
 * self-contained (seed, config) tuple plus an exact reproduction
 * command line.
 *
 * Everything is a pure function of the seed — no wall clock, no
 * global state — so a failure printed by CI reproduces anywhere.
 *
 * Usage: fuzz_driver [--iters N] [--seed S] [--accesses N]
 *                    [--check-every N] [--banks N]
 *                    [--shard-workers N] [--lifecycle]
 *                    [--no-realloc] [--simd-compare] [--verbose]
 *
 * --lifecycle interleaves seeded partition create/destroy events
 * with the access stream: retired partitions stop receiving accesses
 * (their draws are remapped to the lowest active partition without
 * consuming extra rng) and shed their allocation at the next
 * reallocation, so their lines drain through the scheme's churn
 * mechanism. The minimizer reports whether lifecycle events are part
 * of a failure's trigger, mirroring the --no-realloc probe.
 *
 * --banks N (N > 0) routes every case through an N-bank BankedCache
 * of Z4/52 zcaches instead of a single flat cache. The option is
 * applied after the seed-derived case is drawn, so it never perturbs
 * the rng sequences: `--seed S` replays the same addresses with and
 * without banking.
 *
 * --shard-workers N (requires --banks, N <= banks) replays each
 * banked case twice: once serially and once through the sharded
 * bank-worker runtime, with invariant checks and reallocations
 * landing at the same stream positions (quiescing in-flight accesses
 * first). The two replays must produce identical access digests.
 *
 * --simd-compare replays each case once per available SIMD dispatch
 * level (scalar first, then every vector backend the host supports),
 * forcing the level between replays. Every vectorized kernel is
 * contractually digest-neutral, so all replays must produce the
 * scalar digest bit-for-bit.
 *
 * Exit status: 0 when every iteration holds all invariants, 1 on the
 * first (minimized) violation, 2 on usage errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cache/banked_cache.h"
#include "cache/cache.h"
#include "common/digest.h"
#include "common/rng.h"
#include "sim/experiment.h"
#include "simd/simd.h"

using namespace vantage;

namespace {

/** One fuzz case, fully derived from a seed. */
struct FuzzCase
{
    L2Spec spec;
    std::uint64_t accesses = 20'000;
    std::uint64_t hotLines = 0;      ///< Per-partition hot set.
    std::uint64_t sharedLines = 0;   ///< Shared warm region.
    std::uint64_t reallocEvery = 0;  ///< 0 = never repartition.
    std::uint64_t seed = 0;
    std::uint32_t banks = 0;         ///< 0 = flat cache (CLI-forced).
    std::uint32_t shardWorkers = 0;  ///< 0 = serial replay.
    bool lifecycle = false;          ///< CLI-forced, like banks.
    std::uint64_t lifecycleEvery = 0; ///< Accesses between events.

    std::string
    describe() const
    {
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "%s lines=%llu parts=%u u=%.3f amax=%.3f slack=%.3f "
            "hot=%llu shared=%llu realloc=%llu",
            spec.name().c_str(),
            static_cast<unsigned long long>(spec.lines),
            spec.numPartitions, spec.vantage.unmanagedFraction,
            spec.vantage.maxAperture, spec.vantage.slack,
            static_cast<unsigned long long>(hotLines),
            static_cast<unsigned long long>(sharedLines),
            static_cast<unsigned long long>(reallocEvery));
        std::string out = buf;
        if (lifecycle) {
            std::snprintf(buf, sizeof(buf), " lifecycle=%llu",
                          static_cast<unsigned long long>(
                              lifecycleEvery));
            out += buf;
        }
        if (banks > 0) {
            std::snprintf(buf, sizeof(buf), " banks=%u", banks);
            out += buf;
        }
        if (shardWorkers > 0) {
            std::snprintf(buf, sizeof(buf), " shard-workers=%u",
                          shardWorkers);
            out += buf;
        }
        return out;
    }
};

/** Derive a case from its seed (pure). */
FuzzCase
makeCase(std::uint64_t seed, std::uint64_t accesses)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xf022ull);
    FuzzCase fc;
    fc.seed = seed;
    fc.accesses = accesses;

    static const SchemeKind schemes[] = {
        SchemeKind::Vantage,      SchemeKind::VantageDrrip,
        SchemeKind::VantageOracle, SchemeKind::WayPart,
        SchemeKind::Pipp,         SchemeKind::UnpartLru,
    };
    fc.spec.scheme = schemes[rng.range(6)];

    // PIPP manages per-set chains, so it needs a set-assoc array;
    // everything else runs on any array kind.
    if (fc.spec.scheme == SchemeKind::Pipp) {
        static const ArrayKind saOnly[] = {ArrayKind::SA16,
                                           ArrayKind::SA64};
        fc.spec.array = saOnly[rng.range(2)];
    } else {
        static const ArrayKind anyKind[] = {
            ArrayKind::Z4_52, ArrayKind::Z4_16, ArrayKind::SA16,
            ArrayKind::SA64};
        fc.spec.array = anyKind[rng.range(4)];
    }

    fc.spec.lines = 1024ull << rng.range(3); // 1K..8K lines.
    fc.spec.numPartitions =
        1 + static_cast<std::uint32_t>(rng.range(8));
    // Way-granular schemes cannot hold more partitions than ways.
    if (fc.spec.scheme == SchemeKind::WayPart ||
        fc.spec.scheme == SchemeKind::Pipp) {
        const std::uint32_t ways =
            fc.spec.array == ArrayKind::SA16   ? 16
            : fc.spec.array == ArrayKind::SA64 ? 64
                                               : 4;
        fc.spec.numPartitions =
            std::min(fc.spec.numPartitions, ways);
    }
    fc.spec.seed = seed ^ 0x5eedull;

    fc.spec.vantage.numPartitions = fc.spec.numPartitions;
    fc.spec.vantage.unmanagedFraction =
        0.05 + 0.25 * rng.uniform();
    fc.spec.vantage.maxAperture = 0.3 + 0.7 * rng.uniform();
    fc.spec.vantage.slack = 0.05 + 0.25 * rng.uniform();

    // Working sets chosen to straddle the cache size so streams mix
    // hits, misses, and capacity pressure.
    fc.hotLines = 1 + rng.range(fc.spec.lines / 2);
    fc.sharedLines = 1 + rng.range(fc.spec.lines * 2);
    fc.reallocEvery = rng.chance(0.5) ? 1000 + rng.range(4000) : 0;
    // Drawn last so pre-lifecycle seeds replay identical cases; the
    // cadence only takes effect under --lifecycle.
    fc.lifecycleEvery = 500 + rng.range(2000);
    return fc;
}

/**
 * Random allocation in scheme units: every partition keeps a floor
 * of one unit, the rest is split at random cut points.
 */
std::vector<std::uint32_t>
randomAllocations(Rng &rng, std::uint32_t parts,
                  std::uint32_t quantum)
{
    std::vector<std::uint32_t> units(parts, 1);
    if (quantum <= parts) {
        return std::vector<std::uint32_t>(parts, quantum / parts);
    }
    std::uint32_t remaining = quantum - parts;
    for (std::uint32_t p = 0; p + 1 < parts && remaining > 0; ++p) {
        const auto grab = static_cast<std::uint32_t>(
            rng.range(remaining + 1));
        units[p] += grab;
        remaining -= grab;
    }
    units[parts - 1] += remaining;
    return units;
}

/** Next address in the stream (pure function of the rng + counter). */
Addr
nextAddr(Rng &rng, const FuzzCase &fc, PartId part,
         std::uint64_t &scan_counter)
{
    const std::uint64_t kind = rng.range(10);
    if (kind < 6) {
        // Hot per-partition set: mostly hits once warm.
        return (static_cast<Addr>(part) + 1) * 0x10000000ull +
               rng.range(fc.hotLines);
    }
    if (kind < 9) {
        // Shared warm region: cross-partition interference.
        return 0x900000000ull + rng.range(fc.sharedLines);
    }
    // Cold scan: guaranteed misses, exercises eviction paths.
    return 0xdead0000000ull + scan_counter++;
}

/**
 * Replay one case, checking invariants every `check_every` accesses
 * and once at the end. @return the access index at which the first
 * violation was observed (checks run after the access), or -1 when
 * the case holds. `rep` receives the failing report.
 */
std::int64_t
runCase(const FuzzCase &fc, std::uint64_t check_every,
        bool allow_realloc, bool allow_lifecycle,
        InvariantReport &rep, AccessDigest *digest = nullptr)
{
    // --banks routes everything through a BankedCache; the flat path
    // is otherwise untouched.
    std::unique_ptr<Cache> cache;
    std::unique_ptr<BankedCache> banked;
    if (fc.banks > 0) {
        std::vector<std::unique_ptr<Cache>> bs;
        bs.reserve(fc.banks);
        for (std::uint32_t b = 0; b < fc.banks; ++b) {
            L2Spec bank_spec = fc.spec;
            bank_spec.seed = fc.spec.seed + 0x9e37ull * (b + 1);
            bs.push_back(buildL2(bank_spec));
        }
        banked = std::make_unique<BankedCache>(std::move(bs),
                                               fc.seed ^ 0xba4cull);
    } else {
        cache = buildL2(fc.spec);
    }
    if (digest != nullptr) {
        if (banked) {
            banked->attachDigest(digest);
        } else {
            cache->attachDigest(digest);
        }
    }
    Rng rng(fc.seed ^ 0xacce55ull);
    std::uint64_t scan_counter = 0;

    // Partition lifecycle state. Event parameters are always drawn
    // when the case has lifecycle mode on, so `allow_lifecycle`
    // (the minimizer's probe) replays the exact same access stream
    // with the create/destroy calls suppressed.
    std::vector<std::uint8_t> active(fc.spec.numPartitions, 1);
    std::uint32_t active_count = fc.spec.numPartitions;
    const auto lowest_active = [&]() -> PartId {
        for (PartId p = 0; p < fc.spec.numPartitions; ++p) {
            if (active[p] != 0) {
                return p;
            }
        }
        return 0;
    };

    // --shard-workers: route accesses through the bank-worker
    // runtime, keeping a bounded in-flight window popped in issue
    // order. Checks and reallocations quiesce the window first so
    // they observe the same stream positions the serial replay does.
    const bool sharded = banked && fc.shardWorkers > 0;
    std::deque<std::uint32_t> inflight;
    const auto quiesce = [&] {
        while (!inflight.empty()) {
            banked->shardPopResult(inflight.front());
            inflight.pop_front();
        }
    };
    if (sharded) {
        banked->shardStart(fc.shardWorkers, 64);
    }
    const auto finish = [&] {
        if (sharded) {
            quiesce();
            banked->shardStop();
        }
        if (digest != nullptr && banked) {
            banked->finalizeDigest();
        }
    };

    const auto check = [&](InvariantReport &r) {
        if (sharded) {
            quiesce();
        }
        r.clear();
        if (banked) {
            banked->checkInvariants(r);
        } else {
            cache->checkInvariants(r);
        }
    };

    for (std::uint64_t i = 0; i < fc.accesses; ++i) {
        auto part = static_cast<PartId>(
            rng.range(fc.spec.numPartitions));
        const Addr addr = nextAddr(rng, fc, part, scan_counter);
        // Retired partitions receive no accesses: the accessor is
        // remapped to the lowest active one after the address is
        // derived, so lifecycle on/off replays an identical
        // (rng, address) stream.
        if (active[part] == 0) {
            part = lowest_active();
        }
        const AccessType type = rng.chance(0.3) ? AccessType::Store
                                                : AccessType::Load;
        if (sharded) {
            std::uint32_t w = 0;
            while (!banked->shardTryEnqueue(addr, part, type, w)) {
                banked->shardPopResult(inflight.front());
                inflight.pop_front();
            }
            inflight.push_back(w);
            if (inflight.size() >= 32) {
                banked->shardPopResult(inflight.front());
                inflight.pop_front();
            }
        } else if (banked) {
            banked->access(addr, part, type);
        } else {
            cache->access(addr, part, type);
        }

        // Lifecycle events: parameters are drawn whenever the case
        // runs in lifecycle mode (so the probe replays the same
        // stream); application is gated on allow_lifecycle.
        if (fc.lifecycle && fc.lifecycleEvery &&
            (i + 1) % fc.lifecycleEvery == 0) {
            const std::uint64_t action = rng.range(4);
            const auto target = static_cast<PartId>(
                rng.range(fc.spec.numPartitions));
            if (allow_lifecycle) {
                if (action == 0 && active[target] == 0) {
                    if (sharded) {
                        quiesce();
                    }
                    if (banked) {
                        banked->createPartition(target);
                    } else {
                        cache->createPartition(target);
                    }
                    active[target] = 1;
                    ++active_count;
                } else if (action != 0 && active[target] != 0 &&
                           active_count > 1) {
                    if (sharded) {
                        quiesce();
                    }
                    if (banked) {
                        banked->destroyPartition(target);
                    } else {
                        cache->destroyPartition(target);
                    }
                    active[target] = 0;
                    --active_count;
                }
            }
        }

        // Reallocation events are part of the stream derivation even
        // when suppressed, so --no-realloc replays identical
        // addresses.
        if (fc.reallocEvery && (i + 1) % fc.reallocEvery == 0) {
            PartitionScheme &scheme =
                banked ? banked->bank(0).scheme() : cache->scheme();
            std::vector<std::uint32_t> units =
                randomAllocations(rng, fc.spec.numPartitions,
                                  scheme.allocationQuantum());
            if (allow_realloc) {
                // Retired partitions shed their allocation: their
                // units move to the lowest active slot so the total
                // stays fixed and the retired lines drain.
                std::uint32_t freed = 0;
                for (PartId p = 0; p < fc.spec.numPartitions; ++p) {
                    if (active[p] == 0) {
                        freed += units[p];
                        units[p] = 0;
                    }
                }
                units[lowest_active()] += freed;
                if (sharded) {
                    quiesce();
                }
                if (banked) {
                    banked->setAllocations(units);
                } else {
                    cache->scheme().setAllocations(units);
                }
            }
        }

        if ((i + 1) % check_every == 0) {
            check(rep);
            if (!rep.ok()) {
                finish();
                return static_cast<std::int64_t>(i);
            }
        }
    }
    check(rep);
    finish();
    if (!rep.ok()) {
        return static_cast<std::int64_t>(fc.accesses - 1);
    }
    return -1;
}

/**
 * Force a seed-derived case onto N banks of Z4/52 zcaches. Applied
 * after makeCase so no rng draws change; schemes that require a
 * set-associative array (PIPP) or cap partitions at the way count
 * (way-partitioning) are adjusted to stay constructible.
 */
void
forceBanks(FuzzCase &fc, std::uint32_t banks)
{
    fc.banks = banks;
    fc.spec.array = ArrayKind::Z4_52;
    if (fc.spec.scheme == SchemeKind::Pipp) {
        fc.spec.scheme = SchemeKind::Vantage;
    }
    if (fc.spec.scheme == SchemeKind::WayPart) {
        fc.spec.numPartitions = std::min(fc.spec.numPartitions, 4u);
        fc.spec.vantage.numPartitions = fc.spec.numPartitions;
    }
}

/** Minimize and print a failing case; never returns success. */
int
reportFailure(FuzzCase fc, std::uint64_t coarse_idx)
{
    // Step 1: per-access checking finds the earliest failing access.
    InvariantReport rep;
    FuzzCase narrowed = fc;
    narrowed.accesses = coarse_idx + 1;
    std::int64_t first = runCase(narrowed, 1, true, true, rep);
    if (first < 0) {
        // Should not happen (same stream, finer checks); fall back
        // to the coarse index.
        first = static_cast<std::int64_t>(coarse_idx);
        runCase(narrowed, 1, true, true, rep);
    }

    // Step 2: is repartitioning part of the trigger?
    bool needs_realloc = false;
    if (fc.reallocEvery) {
        InvariantReport quiet;
        FuzzCase no_realloc = narrowed;
        needs_realloc =
            runCase(no_realloc, 1, false, true, quiet) < 0;
    }

    // Step 3: are the create/destroy events part of the trigger?
    bool needs_lifecycle = false;
    if (fc.lifecycle) {
        InvariantReport quiet;
        FuzzCase no_lifecycle = narrowed;
        needs_lifecycle =
            runCase(no_lifecycle, 1, true, false, quiet) < 0;
    }

    std::fprintf(stderr, "FUZZ FAILURE\n");
    std::fprintf(stderr, "  seed:    %llu\n",
                 static_cast<unsigned long long>(fc.seed));
    std::fprintf(stderr, "  config:  %s\n", fc.describe().c_str());
    std::fprintf(stderr, "  first failing access: %lld\n",
                 static_cast<long long>(first));
    if (fc.reallocEvery) {
        std::fprintf(stderr, "  requires realloc events: %s\n",
                     needs_realloc ? "yes" : "no");
    }
    if (fc.lifecycle) {
        std::fprintf(stderr, "  requires lifecycle events: %s\n",
                     needs_lifecycle ? "yes" : "no");
    }
    for (const std::string &f : rep.failures()) {
        std::fprintf(stderr, "  violation: %s\n", f.c_str());
    }
    std::fprintf(stderr,
                 "reproduce: fuzz_driver --seed %llu --iters 1 "
                 "--accesses %lld --check-every 1",
                 static_cast<unsigned long long>(fc.seed),
                 static_cast<long long>(first + 1));
    if (fc.banks > 0) {
        std::fprintf(stderr, " --banks %u", fc.banks);
    }
    if (fc.shardWorkers > 0) {
        std::fprintf(stderr, " --shard-workers %u", fc.shardWorkers);
    }
    if (fc.lifecycle) {
        std::fprintf(stderr, " --lifecycle");
    }
    std::fprintf(stderr, "\n");
    return 1;
}

} // namespace

#ifdef VANTAGE_LIBFUZZER_DRIVER

/**
 * libFuzzer entry point (Clang-only optional target): the input
 * bytes are hashed into a case seed, so coverage feedback steers the
 * same deterministic case space the CLI driver samples.
 */
extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t seed = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        seed = (seed ^ data[i]) * 0x100000001b3ULL;
    }
    const FuzzCase fc = makeCase(seed, 4'000);
    InvariantReport rep;
    if (runCase(fc, 256, true, true, rep) >= 0) {
        std::fprintf(stderr, "seed %llu violation: %s\n",
                     static_cast<unsigned long long>(seed),
                     rep.summary().c_str());
        std::abort();
    }
    return 0;
}

#else // !VANTAGE_LIBFUZZER_DRIVER

int
main(int argc, char **argv)
{
    std::uint64_t iters = 24;
    std::uint64_t base_seed = 1;
    std::uint64_t accesses = 20'000;
    std::uint64_t check_every = 512;
    std::uint64_t banks = 0;
    std::uint64_t shard_workers = 0;
    bool allow_realloc = true;
    bool lifecycle = false;
    bool simd_compare = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto numArg = [&](std::uint64_t &out) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fuzz_driver: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            out = std::strtoull(argv[++i], nullptr, 10);
        };
        if (arg == "--iters") {
            numArg(iters);
        } else if (arg == "--seed") {
            numArg(base_seed);
        } else if (arg == "--accesses") {
            numArg(accesses);
        } else if (arg == "--check-every") {
            numArg(check_every);
            if (check_every == 0) {
                check_every = 1;
            }
        } else if (arg == "--banks") {
            numArg(banks);
            if (banks > 64) {
                std::fprintf(stderr,
                             "fuzz_driver: --banks %llu too large "
                             "(max 64)\n",
                             static_cast<unsigned long long>(banks));
                return 2;
            }
        } else if (arg == "--shard-workers") {
            numArg(shard_workers);
        } else if (arg == "--no-realloc") {
            allow_realloc = false;
        } else if (arg == "--lifecycle") {
            lifecycle = true;
        } else if (arg == "--simd-compare") {
            simd_compare = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "fuzz_driver: unknown option '%s'\n"
                         "usage: fuzz_driver [--iters N] [--seed S] "
                         "[--accesses N] [--check-every N] "
                         "[--banks N] [--shard-workers N] "
                         "[--lifecycle] [--no-realloc] "
                         "[--simd-compare] [--verbose]\n",
                         arg.c_str());
            return 2;
        }
    }
    if (shard_workers > 0 &&
        (banks == 0 || shard_workers > banks)) {
        std::fprintf(stderr,
                     "fuzz_driver: --shard-workers needs --banks >= "
                     "the worker count\n");
        return 2;
    }
    if (simd_compare && shard_workers > 0) {
        std::fprintf(stderr,
                     "fuzz_driver: --simd-compare and --shard-workers "
                     "are separate comparison modes; pick one\n");
        return 2;
    }

    // Dispatch levels to sweep in --simd-compare mode: scalar first
    // (the reference), then whatever vector backends this host can
    // actually run.
    std::vector<simd::Level> sweep_levels;
    if (simd_compare) {
        for (const simd::Level lvl :
             {simd::Level::Scalar, simd::Level::Avx2,
              simd::Level::Neon}) {
            if (simd::opsFor(lvl) != nullptr) {
                sweep_levels.push_back(lvl);
            }
        }
        if (sweep_levels.size() < 2) {
            std::fprintf(stderr,
                         "fuzz_driver: --simd-compare: host has only "
                         "the scalar backend; sweep degenerates to a "
                         "plain run\n");
        }
    }
    const simd::Level startup_level = simd::level();

    for (std::uint64_t it = 0; it < iters; ++it) {
        const std::uint64_t seed = base_seed + it;
        FuzzCase fc = makeCase(seed, accesses);
        if (banks > 0) {
            forceBanks(fc, static_cast<std::uint32_t>(banks));
        }
        if (lifecycle) {
            fc.lifecycle = true;
        }
        if (verbose) {
            std::fprintf(stderr, "fuzz[%llu]: seed %llu: %s\n",
                         static_cast<unsigned long long>(it),
                         static_cast<unsigned long long>(seed),
                         fc.describe().c_str());
        }
        InvariantReport rep;
        if (simd_compare) {
            // SIMD sweep: replay the identical case once per dispatch
            // level. The scalar replay (always first) pins the
            // reference digest; every vector backend must match it
            // bit-for-bit.
            std::uint64_t ref_digest = 0;
            for (std::size_t li = 0; li < sweep_levels.size(); ++li) {
                const simd::Level lvl = sweep_levels[li];
                if (!simd::setLevelForTest(lvl)) {
                    continue;
                }
                AccessDigest digest;
                const std::int64_t bad =
                    runCase(fc, check_every, allow_realloc, true, rep,
                            &digest);
                if (bad >= 0) {
                    simd::setLevelForTest(startup_level);
                    std::fprintf(stderr,
                                 "  (under VANTAGE_SIMD=%s)\n",
                                 simd::levelName(lvl));
                    return reportFailure(
                        fc, static_cast<std::uint64_t>(bad));
                }
                if (li == 0) {
                    ref_digest = digest.value();
                } else if (digest.value() != ref_digest) {
                    simd::setLevelForTest(startup_level);
                    std::fprintf(
                        stderr,
                        "FUZZ FAILURE\n  seed:    %llu\n"
                        "  config:  %s\n"
                        "  digest mismatch: %s 0x%016llx != %s "
                        "0x%016llx\n"
                        "reproduce: fuzz_driver --seed %llu --iters 1 "
                        "--accesses %llu --simd-compare\n",
                        static_cast<unsigned long long>(seed),
                        fc.describe().c_str(),
                        simd::levelName(sweep_levels[0]),
                        static_cast<unsigned long long>(ref_digest),
                        simd::levelName(lvl),
                        static_cast<unsigned long long>(
                            digest.value()),
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(accesses));
                    return 1;
                }
            }
            simd::setLevelForTest(startup_level);
            continue;
        }
        if (shard_workers > 0) {
            // Sharded mode: replay serially for the reference
            // digest, then through the worker runtime. Both must
            // hold the invariants and produce identical digests.
            AccessDigest serial_digest;
            const std::int64_t bad_serial =
                runCase(fc, check_every, allow_realloc, true, rep,
                        &serial_digest);
            if (bad_serial >= 0) {
                return reportFailure(
                    fc, static_cast<std::uint64_t>(bad_serial));
            }
            fc.shardWorkers =
                static_cast<std::uint32_t>(shard_workers);
            AccessDigest shard_digest;
            const std::int64_t bad =
                runCase(fc, check_every, allow_realloc, true, rep,
                        &shard_digest);
            if (bad >= 0) {
                return reportFailure(fc,
                                     static_cast<std::uint64_t>(bad));
            }
            if (serial_digest.value() != shard_digest.value()) {
                std::fprintf(
                    stderr,
                    "FUZZ FAILURE\n  seed:    %llu\n  config:  %s\n"
                    "  digest mismatch: serial 0x%016llx != sharded "
                    "0x%016llx\n"
                    "reproduce: fuzz_driver --seed %llu --iters 1 "
                    "--accesses %llu --banks %u --shard-workers %u\n",
                    static_cast<unsigned long long>(seed),
                    fc.describe().c_str(),
                    static_cast<unsigned long long>(
                        serial_digest.value()),
                    static_cast<unsigned long long>(
                        shard_digest.value()),
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(accesses),
                    fc.banks, fc.shardWorkers);
                return 1;
            }
            continue;
        }
        const std::int64_t bad =
            runCase(fc, check_every, allow_realloc, true, rep);
        if (bad >= 0) {
            return reportFailure(fc, static_cast<std::uint64_t>(bad));
        }
    }
    std::fprintf(stderr,
                 "fuzz_driver: %llu iterations x %llu accesses clean "
                 "(base seed %llu)\n",
                 static_cast<unsigned long long>(iters),
                 static_cast<unsigned long long>(accesses),
                 static_cast<unsigned long long>(base_seed));
    return 0;
}

#endif // VANTAGE_LIBFUZZER_DRIVER

/**
 * @file
 * Tests for the allocation layer: UMON-DSS, UMON-RRIP, Lookahead,
 * and the UCP policy wrapper.
 */

#include <gtest/gtest.h>

#include "alloc/lookahead.h"
#include "alloc/ucp.h"
#include "alloc/umon.h"
#include "alloc/umon_rrip.h"
#include "common/rng.h"

namespace vantage {
namespace {

// ---------------------------------------------------------------
// Umon
// ---------------------------------------------------------------

TEST(Umon, CountsStackPositions)
{
    // Monitor everything: sampled == modeled == 1 set.
    Umon umon(4, 1, 1);
    umon.access(10); // Miss.
    umon.access(10); // Hit at MRU (position 0).
    umon.access(20); // Miss.
    umon.access(10); // Hit at position 1.
    EXPECT_EQ(umon.misses(), 2u);
    EXPECT_EQ(umon.hitsUpTo(1), 1u);
    EXPECT_EQ(umon.hitsUpTo(2), 2u);
}

TEST(Umon, LruStackProperty)
{
    // Inclusion property: hits at position p imply an allocation of
    // p+1 ways captures them; the curve is non-decreasing.
    Umon umon(8, 1, 1);
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        umon.access(rng.range(16));
    }
    const auto curve = umon.utilityCurve();
    for (std::size_t w = 1; w < curve.size(); ++w) {
        EXPECT_GE(curve[w], curve[w - 1]);
    }
}

TEST(Umon, EvictsBeyondWays)
{
    Umon umon(2, 1, 1);
    umon.access(1);
    umon.access(2);
    umon.access(3); // Evicts 1.
    umon.access(1); // Miss again.
    EXPECT_EQ(umon.misses(), 4u);
    EXPECT_EQ(umon.hitsUpTo(2), 0u);
}

TEST(Umon, SamplesSubsetOfSets)
{
    Umon umon(4, 4, 64);
    Rng rng(5);
    for (int i = 0; i < 100000; ++i) {
        umon.access(rng.next() >> 8);
    }
    // ~4/64 of accesses should be sampled.
    EXPECT_NEAR(static_cast<double>(umon.sampledAccesses()), 6250.0,
                1200.0);
}

TEST(Umon, CurveScalesBySamplingFactor)
{
    Umon umon(4, 4, 64);
    Rng rng(7);
    // Working set of 64 lines re-used heavily: big hit counts.
    for (int i = 0; i < 100000; ++i) {
        umon.access(rng.range(64));
    }
    const auto curve = umon.utilityCurve();
    // Scaled hits should approximate total hits across the cache.
    EXPECT_GT(curve[4], 100000.0 * 0.5);
}

TEST(Umon, AgeHalvesCounters)
{
    Umon umon(4, 1, 1);
    umon.access(1);
    umon.access(1);
    umon.access(1);
    EXPECT_EQ(umon.hitsUpTo(4), 2u);
    umon.ageCounters();
    EXPECT_EQ(umon.hitsUpTo(4), 1u);
}

TEST(Umon, InterpolatedCurveEndpoints)
{
    Umon umon(4, 1, 1);
    Rng rng(9);
    for (int i = 0; i < 5000; ++i) {
        umon.access(rng.range(8));
    }
    const auto base = umon.utilityCurve();
    const auto fine = umon.interpolatedCurve(256);
    ASSERT_EQ(fine.size(), 257u);
    EXPECT_DOUBLE_EQ(fine.front(), base.front());
    EXPECT_DOUBLE_EQ(fine.back(), base.back());
    // Way-aligned points match exactly.
    EXPECT_DOUBLE_EQ(fine[64], base[1]);
    EXPECT_DOUBLE_EQ(fine[128], base[2]);
    // Interpolation is monotone for monotone inputs.
    for (std::size_t i = 1; i < fine.size(); ++i) {
        EXPECT_GE(fine[i], fine[i - 1]);
    }
}

// ---------------------------------------------------------------
// UmonRrip
// ---------------------------------------------------------------

TEST(UmonRrip, CountsHitsAndDuels)
{
    UmonRrip umon(4, 2, 2);
    // Set 0 = SRRIP, set 1 = BRRIP (parity rule); feed reuse traffic.
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        umon.access(rng.range(8));
    }
    EXPECT_GT(umon.srripHits() + umon.brripHits(), 0u);
    const auto curve = umon.utilityCurve();
    for (std::size_t w = 1; w < curve.size(); ++w) {
        EXPECT_GE(curve[w], curve[w - 1]);
    }
}

TEST(UmonRrip, AgeHalves)
{
    UmonRrip umon(4, 2, 2);
    umon.access(1);
    umon.access(1);
    umon.access(1);
    const auto before = umon.srripHits() + umon.brripHits();
    umon.ageCounters();
    EXPECT_EQ(umon.srripHits() + umon.brripHits(), before / 2);
}

// ---------------------------------------------------------------
// lookaheadAllocate
// ---------------------------------------------------------------

TEST(Lookahead, LinearCurvesSplitBySlope)
{
    // Two linear curves; the steeper one takes everything above the
    // minimum.
    std::vector<std::vector<double>> curves(2);
    for (int u = 0; u <= 16; ++u) {
        curves[0].push_back(10.0 * u);
        curves[1].push_back(1.0 * u);
    }
    const auto alloc = lookaheadAllocate(curves, 16, 1);
    EXPECT_EQ(alloc[0], 15u);
    EXPECT_EQ(alloc[1], 1u);
}

TEST(Lookahead, SumsToTotal)
{
    Rng rng(13);
    std::vector<std::vector<double>> curves(4);
    for (auto &c : curves) {
        double acc = 0.0;
        c.push_back(0.0);
        for (int u = 1; u <= 64; ++u) {
            acc += rng.uniform();
            c.push_back(acc);
        }
    }
    const auto alloc = lookaheadAllocate(curves, 64, 1);
    std::uint32_t total = 0;
    for (const auto a : alloc) {
        EXPECT_GE(a, 1u);
        total += a;
    }
    EXPECT_EQ(total, 64u);
}

TEST(Lookahead, SeesPastPlateau)
{
    // Partition 0: no gain until 8 units, then a huge jump (a
    // cache-fitting app). Partition 1: small constant slope. Plain
    // hill climbing would starve partition 0; Lookahead must not.
    std::vector<std::vector<double>> curves(2);
    for (int u = 0; u <= 16; ++u) {
        curves[0].push_back(u >= 8 ? 1000.0 : 0.0);
        curves[1].push_back(10.0 * u);
    }
    const auto alloc = lookaheadAllocate(curves, 16, 1);
    EXPECT_GE(alloc[0], 8u) << "lookahead must jump the plateau";
}

TEST(Lookahead, FlatCurvesStillAssignEverything)
{
    std::vector<std::vector<double>> curves(3,
                                            std::vector<double>(17,
                                                                0.0));
    const auto alloc = lookaheadAllocate(curves, 16, 1);
    std::uint32_t total = 0;
    for (const auto a : alloc) total += a;
    EXPECT_EQ(total, 16u);
}

TEST(Lookahead, RespectsMinimum)
{
    std::vector<std::vector<double>> curves(4);
    for (int p = 0; p < 4; ++p) {
        for (int u = 0; u <= 32; ++u) {
            curves[p].push_back(p == 0 ? 100.0 * u : 0.0);
        }
    }
    const auto alloc = lookaheadAllocate(curves, 32, 2);
    for (const auto a : alloc) {
        EXPECT_GE(a, 2u);
    }
    EXPECT_EQ(alloc[0], 26u);
}

TEST(Lookahead, FineGrainQuantum)
{
    std::vector<std::vector<double>> curves(2);
    for (int u = 0; u <= 256; ++u) {
        curves[0].push_back(2.0 * u);
        curves[1].push_back(1.0 * u);
    }
    const auto alloc = lookaheadAllocate(curves, 256, 1);
    EXPECT_EQ(alloc[0] + alloc[1], 256u);
    EXPECT_GT(alloc[0], 200u);
}

TEST(LookaheadDeath, ImpossibleMinimumPanics)
{
    std::vector<std::vector<double>> curves(4,
                                            std::vector<double>(17,
                                                                0.0));
    EXPECT_DEATH(lookaheadAllocate(curves, 8, 4), "exceeds");
}

// ---------------------------------------------------------------
// Ucp
// ---------------------------------------------------------------

TEST(Ucp, AllocatesMoreToUtilityHeavyCore)
{
    UcpConfig cfg;
    cfg.umonWays = 16;
    cfg.umonSets = 64;
    cfg.modeledSets = 64; // Sample everything for the test.
    Ucp ucp(2, cfg);

    Rng rng(17);
    // Core 0: strong reuse over a working set that needs many ways;
    // core 1: pure streaming (no reuse at all).
    for (int i = 0; i < 200000; ++i) {
        ucp.observe(0, rng.range(768));
        ucp.observe(1, rng.next() >> 8);
    }
    const auto alloc = ucp.computeAllocations(16, 1);
    EXPECT_GT(alloc[0], 10u);
    EXPECT_EQ(alloc[0] + alloc[1], 16u);
}

TEST(Ucp, FineQuantumForVantage)
{
    UcpConfig cfg;
    cfg.umonWays = 16;
    cfg.umonSets = 64;
    cfg.modeledSets = 64;
    Ucp ucp(2, cfg);
    Rng rng(19);
    for (int i = 0; i < 100000; ++i) {
        ucp.observe(0, rng.range(512));
        ucp.observe(1, rng.next() >> 8);
    }
    const auto alloc = ucp.computeAllocations(256, 1);
    EXPECT_EQ(alloc.size(), 2u);
    EXPECT_EQ(alloc[0] + alloc[1], 256u);
    EXPECT_GT(alloc[0], 128u);
}

TEST(Ucp, RripMonitorsDuel)
{
    UcpConfig cfg;
    cfg.umonWays = 8;
    cfg.umonSets = 64;
    cfg.modeledSets = 64;
    cfg.rripMonitors = true;
    Ucp ucp(1, cfg);
    Rng rng(23);
    for (int i = 0; i < 50000; ++i) {
        ucp.observe(0, rng.range(128));
    }
    const auto choices = ucp.brripChoices();
    ASSERT_EQ(choices.size(), 1u);
    // Reuse-friendly traffic: either policy hits, but the call works
    // and the curves are sane.
    const auto alloc = ucp.computeAllocations(8, 1);
    EXPECT_EQ(alloc[0], 8u);
}

TEST(UcpDeath, BadCorePanics)
{
    Ucp ucp(2, UcpConfig{});
    EXPECT_DEATH(ucp.observe(5, 1), "out of range");
}

} // namespace
} // namespace vantage

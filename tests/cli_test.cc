/**
 * @file
 * Tests for the vsim option parser.
 */

#include <gtest/gtest.h>

#include "sim/cli.h"

namespace vantage {
namespace {

CliOptions
parseOk(const std::vector<std::string> &args)
{
    std::string error;
    const CliOptions opts = parseCli(args, error);
    EXPECT_TRUE(error.empty()) << error;
    return opts;
}

std::string
parseErr(const std::vector<std::string> &args)
{
    std::string error;
    parseCli(args, error);
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(Cli, DefaultsAreSane)
{
    const CliOptions opts = parseOk({});
    EXPECT_EQ(opts.machine.numCores, 4u);
    EXPECT_EQ(opts.l2.scheme, SchemeKind::Vantage);
    EXPECT_EQ(opts.l2.array, ArrayKind::Z4_52);
    EXPECT_EQ(opts.l2.lines, 32768u); // 2 MB small machine.
    EXPECT_TRUE(opts.mix.has_value());
    EXPECT_FALSE(opts.showHelp);
}

TEST(Cli, HelpShortCircuits)
{
    EXPECT_TRUE(parseOk({"--help"}).showHelp);
    EXPECT_TRUE(parseOk({"-h"}).showHelp);
    EXPECT_FALSE(cliUsage().empty());
}

TEST(Cli, SchemeAndArrayNames)
{
    const CliOptions opts =
        parseOk({"--scheme", "pipp", "--array", "sa16"});
    EXPECT_EQ(opts.l2.scheme, SchemeKind::Pipp);
    EXPECT_EQ(opts.l2.array, ArrayKind::SA16);
}

TEST(Cli, AllSchemeNamesResolve)
{
    for (const char *name :
         {"lru", "srrip", "drrip", "tadrrip", "waypart", "pipp",
          "vantage", "vantage-drrip", "vantage-oracle"}) {
        EXPECT_TRUE(schemeFromName(name).has_value()) << name;
    }
    EXPECT_FALSE(schemeFromName("bogus").has_value());
}

TEST(Cli, AllArrayNamesResolve)
{
    for (const char *name :
         {"z4-52", "z4-16", "sa16", "sa64", "random"}) {
        EXPECT_TRUE(arrayFromName(name).has_value()) << name;
    }
    EXPECT_FALSE(arrayFromName("bogus").has_value());
}

TEST(Cli, MixWithSeed)
{
    const CliOptions opts = parseOk({"--mix", "12:3"});
    ASSERT_TRUE(opts.mix.has_value());
    EXPECT_EQ(opts.mix->first, 12u);
    EXPECT_EQ(opts.mix->second, 3u);
}

TEST(Cli, AppsInferCoreCount)
{
    const CliOptions opts = parseOk({"--apps", "mcf,gcc,lbm"});
    EXPECT_EQ(opts.machine.numCores, 3u);
    EXPECT_EQ(opts.apps.size(), 3u);
    EXPECT_EQ(opts.apps[1], "gcc");
    EXPECT_EQ(opts.l2.numPartitions, 3u);
}

TEST(Cli, TracesInferCoreCount)
{
    const CliOptions opts = parseOk({"--traces", "a.t,b.t"});
    EXPECT_EQ(opts.machine.numCores, 2u);
    EXPECT_EQ(opts.traces.size(), 2u);
}

TEST(Cli, BigMachinePicksLargeDefaults)
{
    const CliOptions opts = parseOk({"--mix", "0", "--cores", "32"});
    EXPECT_EQ(opts.machine.numCores, 32u);
    EXPECT_EQ(opts.l2.lines, 131072u); // 8 MB.
    EXPECT_EQ(opts.machine.ucp.umonWays, 64u);
}

TEST(Cli, VantageKnobs)
{
    const CliOptions opts = parseOk({"--unmanaged", "0.2", "--amax",
                                     "0.4", "--slack", "0.05"});
    EXPECT_DOUBLE_EQ(opts.l2.vantage.unmanagedFraction, 0.2);
    EXPECT_DOUBLE_EQ(opts.l2.vantage.maxAperture, 0.4);
    EXPECT_DOUBLE_EQ(opts.l2.vantage.slack, 0.05);
}

TEST(Cli, RunControls)
{
    const CliOptions opts =
        parseOk({"--instrs", "123", "--warmup", "45", "--seed", "9",
                 "--no-ucp", "--repartition", "1000"});
    EXPECT_EQ(opts.scale.instructions, 123u);
    EXPECT_EQ(opts.scale.warmupAccesses, 45u);
    EXPECT_EQ(opts.seed, 9u);
    EXPECT_FALSE(opts.machine.useUcp);
    EXPECT_EQ(opts.machine.repartitionCycles, 1000u);
}

TEST(Cli, ObservabilityFlags)
{
    const CliOptions opts =
        parseOk({"--stats-out", "out.json", "--trace-out",
                 "trace.csv", "--stats-period", "500"});
    EXPECT_EQ(opts.statsOut, "out.json");
    EXPECT_EQ(opts.traceOut, "trace.csv");
    EXPECT_EQ(opts.scale.statsPeriod, 500u);
}

TEST(Cli, ObservabilityDefaultsAreOff)
{
    const CliOptions opts = parseOk({});
    EXPECT_TRUE(opts.statsOut.empty());
    EXPECT_TRUE(opts.traceOut.empty());
    EXPECT_EQ(opts.scale.statsPeriod, 10'000u);
}

TEST(Cli, InlineValueForm)
{
    const CliOptions opts =
        parseOk({"--stats-out=s.json", "--trace-out=t.csv",
                 "--stats-period=250", "--scheme=pipp",
                 "--instrs=77"});
    EXPECT_EQ(opts.statsOut, "s.json");
    EXPECT_EQ(opts.traceOut, "t.csv");
    EXPECT_EQ(opts.scale.statsPeriod, 250u);
    EXPECT_EQ(opts.l2.scheme, SchemeKind::Pipp);
    EXPECT_EQ(opts.scale.instructions, 77u);
}

TEST(Cli, EventTracingFlags)
{
    const CliOptions opts =
        parseOk({"--events-out", "events.json",
                 "--trace-categories", "vantage,pool",
                 "--heartbeat", "5000"});
    EXPECT_EQ(opts.eventsOut, "events.json");
    EXPECT_EQ(opts.traceCategories, kTraceVantage | kTracePool);
    EXPECT_EQ(opts.scale.heartbeatEvery, 5000u);
}

TEST(Cli, EventTracingDefaults)
{
    const CliOptions opts = parseOk({});
    EXPECT_TRUE(opts.eventsOut.empty());
    EXPECT_EQ(opts.traceCategories, kTraceAllCategories);
    EXPECT_EQ(opts.scale.heartbeatEvery, 0u);
}

TEST(Cli, EventTracingInlineForm)
{
    const CliOptions opts =
        parseOk({"--events-out=e.json", "--trace-categories=all",
                 "--heartbeat=100"});
    EXPECT_EQ(opts.eventsOut, "e.json");
    EXPECT_EQ(opts.traceCategories, kTraceAllCategories);
    EXPECT_EQ(opts.scale.heartbeatEvery, 100u);
}

TEST(Cli, EventTracingErrors)
{
    EXPECT_NE(parseErr({"--events-out"}).find("value"),
              std::string::npos);
    EXPECT_NE(parseErr({"--events-out", ""}).find("value"),
              std::string::npos);
    EXPECT_NE(parseErr({"--trace-categories", "bogus"})
                  .find("unknown trace category"),
              std::string::npos);
    EXPECT_NE(parseErr({"--trace-categories="}).find("empty"),
              std::string::npos);
    EXPECT_NE(parseErr({"--heartbeat", "0"}).find("heartbeat"),
              std::string::npos);
    EXPECT_NE(parseErr({"--heartbeat", "junk"}).find("heartbeat"),
              std::string::npos);
}

TEST(Cli, ObservabilityErrors)
{
    EXPECT_NE(parseErr({"--stats-out"}).find("value"),
              std::string::npos);
    EXPECT_NE(parseErr({"--stats-out", ""}).find("value"),
              std::string::npos);
    EXPECT_NE(parseErr({"--trace-out="}).find("value"),
              std::string::npos);
    EXPECT_NE(parseErr({"--stats-period", "0"})
                  .find("stats-period"),
              std::string::npos);
    EXPECT_NE(parseErr({"--stats-period", "junk"})
                  .find("stats-period"),
              std::string::npos);
    // Flags that take no value reject the inline form.
    EXPECT_NE(parseErr({"--no-ucp=x"}).find("takes no value"),
              std::string::npos);
}

TEST(Cli, Errors)
{
    EXPECT_NE(parseErr({"--bogus"}).find("unknown option"),
              std::string::npos);
    EXPECT_NE(parseErr({"--scheme", "nope"}).find("unknown scheme"),
              std::string::npos);
    EXPECT_NE(parseErr({"--mix", "99"}).find("0-34"),
              std::string::npos);
    EXPECT_NE(parseErr({"--instrs"}).find("value"),
              std::string::npos);
    EXPECT_NE(parseErr({"--mix", "1", "--apps", "gcc"})
                  .find("choose one"),
              std::string::npos);
    EXPECT_NE(parseErr({"--cores", "0"}).find("cores"),
              std::string::npos);
    EXPECT_NE(parseErr({"--mix", "0", "--cores", "6"})
                  .find("multiple of 4"),
              std::string::npos);
}

TEST(Cli, VantageKnobRangesAreParseErrors)
{
    // Out-of-range knobs must fail parsing (exit 1 in vsim), not
    // reach the controller and trip an assert there.
    EXPECT_NE(parseErr({"--unmanaged", "1.5"}).find("(0, 1)"),
              std::string::npos);
    EXPECT_NE(parseErr({"--unmanaged", "0"}).find("(0, 1)"),
              std::string::npos);
    EXPECT_NE(parseErr({"--unmanaged", "-0.3"}).find("(0, 1)"),
              std::string::npos);
    EXPECT_NE(parseErr({"--amax", "0"}).find("(0, 1]"),
              std::string::npos);
    EXPECT_NE(parseErr({"--amax", "2"}).find("(0, 1]"),
              std::string::npos);
    EXPECT_NE(parseErr({"--slack", "0"}).find("(0, 1)"),
              std::string::npos);
    EXPECT_NE(parseErr({"--slack", "1.5"}).find("(0, 1)"),
              std::string::npos);
    // In-range values parse.
    const CliOptions opts =
        parseOk({"--unmanaged", "0.1", "--amax", "1.0", "--slack",
                 "0.2"});
    EXPECT_DOUBLE_EQ(opts.l2.vantage.unmanagedFraction, 0.1);
    EXPECT_DOUBLE_EQ(opts.l2.vantage.maxAperture, 1.0);
}

TEST(Cli, JobsValidation)
{
    EXPECT_NE(parseErr({"--jobs", "0"}).find("jobs"),
              std::string::npos);
    EXPECT_NE(parseErr({"--jobs", "many"}).find("jobs"),
              std::string::npos);
    EXPECT_EQ(parseOk({"--jobs", "4"}).scale.jobs, 4u);
}

TEST(Cli, DigestFlag)
{
    EXPECT_FALSE(parseOk({}).digest);
    EXPECT_TRUE(parseOk({"--digest"}).digest);
    EXPECT_NE(parseErr({"--digest=1"}).find("takes no value"),
              std::string::npos);
}

TEST(Cli, BanksAndShardWorkers)
{
    const CliOptions defaults = parseOk({});
    EXPECT_EQ(defaults.banks, 0u);
    EXPECT_EQ(defaults.shardWorkers, 0u);

    const CliOptions opts =
        parseOk({"--banks", "8", "--shard-workers", "3"});
    EXPECT_EQ(opts.banks, 8u);
    EXPECT_EQ(opts.shardWorkers, 3u);

    // --shard-workers 0 with banks is the serial banked mode.
    EXPECT_EQ(parseOk({"--banks", "4", "--shard-workers", "0"})
                  .shardWorkers,
              0u);
    // Inline value form.
    EXPECT_EQ(parseOk({"--banks=16"}).banks, 16u);
}

TEST(Cli, BanksValidation)
{
    EXPECT_NE(parseErr({"--banks", "0"}).find("--banks"),
              std::string::npos);
    EXPECT_NE(parseErr({"--banks", "lots"}).find("--banks"),
              std::string::npos);
    EXPECT_NE(parseErr({"--banks", "2000"}).find("--banks"),
              std::string::npos);
    // Banks must divide the L2 line count (32768 default).
    EXPECT_NE(parseErr({"--banks", "7"}).find("divide"),
              std::string::npos);
}

TEST(Cli, ShardWorkersValidation)
{
    EXPECT_NE(parseErr({"--shard-workers", "nope"})
                  .find("--shard-workers"),
              std::string::npos);
    EXPECT_NE(parseErr({"--shard-workers", "300"})
                  .find("--shard-workers"),
              std::string::npos);
    // Workers without banks, or exceeding banks, are config errors.
    EXPECT_NE(parseErr({"--shard-workers", "2"}).find("requires"),
              std::string::npos);
    EXPECT_NE(parseErr({"--banks", "4", "--shard-workers", "8"})
                  .find("exceed"),
              std::string::npos);
}

} // namespace
} // namespace vantage
